//! Figure 7 / Table 2 in one example: run the five SPECfp95-shaped
//! applications and segment their loop-address streams with the DPD,
//! including the nested hydro2d/turb3d structures.
//!
//! ```sh
//! cargo run --release --example segmentation
//! ```

use dpd::apps::app::RunConfig;
use dpd::core::nested::NestedDetector;
use dpd::core::pipeline::{DpdBuilder, DEFAULT_SCALES};

fn main() {
    for app in dpd::apps::spec_apps() {
        let run = app.run(&RunConfig::default());

        // On-line multi-scale detection (what the paper's tool does).
        let mut bank = DpdBuilder::new()
            .scales(DEFAULT_SCALES)
            .build_multi_scale()
            .expect("default scale set is valid");
        let mut outer_marks = 0u64;
        for &s in &run.addresses.values {
            if bank.push(s).outer_start().is_some() {
                outer_marks += 1;
            }
        }

        // Off-line nested analysis for cross-validation.
        let nested = NestedDetector::new().analyze(&run.addresses.values);

        println!("{}:", app.name());
        println!("  stream length      : {}", run.addresses.len());
        println!("  paper periodicities: {:?}", app.expected_periods());
        println!("  multi-scale DPD    : {:?}", bank.detected_periods());
        println!("  nested analysis    : {:?}", nested.periods);
        println!("  outer period marks : {outer_marks}");
        println!();
    }
}
