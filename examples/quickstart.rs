//! Quickstart: detect, segment and predict on a simple event stream.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dpd::core::pipeline::{Detector, DpdBuilder, DpdEvent};
use dpd::core::prediction::PeriodicPredictor;
use dpd::core::segmentation::segment_events;
use dpd::core::streaming::SegmentEvent;

fn main() {
    // A stream of "parallel loop addresses": 4 loops called per iteration
    // of a main loop, 60 iterations.
    let addrs = [0x400000i64, 0x400040, 0x400080, 0x4000c0];
    let stream: Vec<i64> = (0..240).map(|i| addrs[i % 4]).collect();

    // 1. The unified pipeline: one builder, one event stream (the paper's
    //    Table 1 return value becomes sink traffic).
    println!("== DPD pipeline ==");
    let mut first = None;
    let mut pipe = DpdBuilder::new()
        .window(16)
        .build(|_, e: &DpdEvent| {
            if let DpdEvent::Segment(SegmentEvent::PeriodStart { period, position }) = e {
                if first.is_none() {
                    first = Some(*position);
                    println!("first period start at sample {position}, periodicity {period}");
                }
            }
        })
        .unwrap();
    pipe.push_slice(&stream);
    drop(pipe);
    assert!(first.is_some(), "period-4 stream must segment");

    // 2. Segmentation (paper §1, application 1).
    println!();
    println!("== Segmentation ==");
    let (segments, marks) = segment_events(&stream, 16);
    for seg in &segments {
        println!(
            "segment [{}, {}): period {}, {} complete periods",
            seg.start, seg.end, seg.period, seg.periods
        );
    }
    println!("{} period-start marks emitted", marks.len());

    // 3. Prediction (paper §1, application 3).
    println!();
    println!("== Prediction ==");
    let mut predictor = PeriodicPredictor::new(4);
    for &s in &stream {
        predictor.verify_and_observe(s);
    }
    println!(
        "next sample prediction: {:#x} (hit rate so far: {:.0}%)",
        predictor.predict_next().unwrap(),
        predictor.metrics().hit_rate().unwrap() * 100.0
    );
}
