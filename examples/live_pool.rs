//! Live end-to-end run: real Jacobi kernels on real OS threads, intercepted
//! loop calls, a wall-clock CPU-usage sampler, and the DPD analysing both
//! resulting streams — the production deployment shape of the paper's tool.
//!
//! ```sh
//! cargo run --release --example live_pool
//! ```

use dpd::apps::live::{live_jacobi_run, LiveConfig};
use dpd::core::pipeline::DpdBuilder;
use dpd::trace::quantize;
use std::time::Duration;

fn main() {
    let config = LiveConfig {
        grid: 128,
        iterations: 120,
        sample_period: Duration::from_micros(500),
        ..LiveConfig::default()
    };
    println!(
        "live run: {}x{} Jacobi grid, {} iterations, {} threads, sampling every {:?}",
        config.grid, config.grid, config.iterations, config.threads, config.sample_period
    );
    let run = live_jacobi_run(&config);
    println!(
        "finished in {:?}; residual {:.3e}; {} loop calls intercepted; {} CPU samples",
        run.elapsed,
        run.residual,
        run.addresses.len(),
        run.cpu_trace.len()
    );

    // Event-stream DPD on the intercepted addresses.
    let mut dpd = DpdBuilder::new().window(8).build_detector().unwrap();
    for &s in &run.addresses.values {
        dpd.push(s);
    }
    println!(
        "DPD on the live address stream: periods {:?}, {} boundaries",
        dpd.stats().detected_periods(),
        dpd.stats().boundaries
    );

    // Quantize the live CPU trace into change events (paper §2's second
    // acquisition model) and inspect it too.
    let changes = quantize::change_stream(&run.cpu_trace, 8);
    println!(
        "live CPU trace: peak {:.0} active workers, {} change events after quantization",
        run.cpu_trace.max().unwrap_or(0.0),
        changes.len()
    );
}
