//! Prediction and execution-time estimation (paper §1 application 3, §5).
//!
//! Locks onto tomcatv's period with the autotuned DPD, predicts upcoming
//! loop addresses, and estimates the application's total execution time
//! from the first measured iterations.
//!
//! ```sh
//! cargo run --release --example prediction
//! ```

use dpd::analyzer::ExecutionEstimator;
use dpd::apps::app::{App, RunConfig};
use dpd::apps::tomcatv::{Tomcatv, ITERATIONS};
use dpd::core::autotune::{TunedDpd, TunerPolicy};
use dpd::core::prediction::PeriodicPredictor;
use dpd::core::streaming::SegmentEvent;

fn main() {
    let run = Tomcatv.run(&RunConfig::default());
    let stream = &run.addresses.values;

    // 1. Lock with the autotuned detector (starts large, shrinks to 2x the
    //    period once confident — paper §3.1 / §4).
    let mut dpd = TunedDpd::new(TunerPolicy::default());
    let mut locked = None;
    let mut boundaries: Vec<u64> = Vec::new();
    for &s in stream {
        if let SegmentEvent::PeriodStart { period, position } = dpd.push(s) {
            locked = Some(period);
            boundaries.push(position);
        }
    }
    let period = locked.expect("tomcatv must lock");
    println!(
        "locked period {period}; window autotuned 1024 -> {} ({} resizes)",
        dpd.window(),
        dpd.resizes()
    );

    // 2. Predict future loop addresses from the locked period.
    let mut predictor = PeriodicPredictor::new(period);
    for &s in stream {
        predictor.verify_and_observe(s);
    }
    println!(
        "address prediction hit rate: {:.1}% over {} checks",
        predictor.metrics().hit_rate().unwrap() * 100.0,
        predictor.metrics().checked
    );
    let next: Vec<String> = (1..=period)
        .map(|k| format!("{:#x}", predictor.predict(k).unwrap()))
        .collect();
    println!("next {period} loop calls will be: {}", next.join(" "));

    // 3. Estimate total execution time after measuring 10 iterations.
    let iter_time_ns = run.elapsed_ns / ITERATIONS as u64; // true mean
    let mut est = ExecutionEstimator::new().with_total_iterations(ITERATIONS as u64);
    for _ in 0..10 {
        est.record_iteration(iter_time_ns);
    }
    let predicted = est.estimated_total_ns().unwrap();
    let actual = run.elapsed_ns as f64;
    println!(
        "execution-time estimate after 10/{} iterations: {:.2} s (actual {:.2} s, error {:.2}%)",
        ITERATIONS,
        predicted / 1e9,
        actual / 1e9,
        est.estimate_error(run.elapsed_ns).unwrap() * 100.0
    );
}
