//! Prediction and execution-time estimation (paper §1 application 3, §5).
//!
//! Locks onto tomcatv's period with the autotuned DPD, predicts upcoming
//! loop addresses — both with the simple period-locked predictor and with
//! the online forecasting subsystem (`dpd_core::predict`, see
//! docs/PREDICTION.md) — and estimates the application's total execution
//! time from the first measured iterations.
//!
//! Like every example in this workspace, it asserts its own expected
//! results, so the CI examples smoke job fails if behavior rots instead
//! of merely checking that the example still compiles.
//!
//! ```sh
//! cargo run --release --example prediction
//! ```

use dpd::analyzer::ExecutionEstimator;
use dpd::apps::app::{App, RunConfig};
use dpd::apps::tomcatv::{Tomcatv, ITERATIONS};
use dpd::core::autotune::{TunedDpd, TunerPolicy};
use dpd::core::pipeline::DpdBuilder;
use dpd::core::prediction::PeriodicPredictor;
use dpd::core::streaming::SegmentEvent;

fn main() {
    let run = Tomcatv.run(&RunConfig::default());
    let stream = &run.addresses.values;

    // 1. Lock with the autotuned detector (starts large, shrinks to 2x the
    //    period once confident — paper §3.1 / §4).
    let mut dpd = TunedDpd::new(TunerPolicy::default());
    let mut locked = None;
    let mut boundaries: Vec<u64> = Vec::new();
    for &s in stream {
        if let SegmentEvent::PeriodStart { period, position } = dpd.push(s) {
            locked = Some(period);
            boundaries.push(position);
        }
    }
    let period = locked.expect("tomcatv must lock");
    println!(
        "locked period {period}; window autotuned 1024 -> {} ({} resizes)",
        dpd.window(),
        dpd.resizes()
    );

    // 2. Predict future loop addresses from the locked period.
    let mut predictor = PeriodicPredictor::new(period);
    for &s in stream {
        predictor.verify_and_observe(s);
    }
    let hit_rate = predictor.metrics().hit_rate().unwrap();
    println!(
        "address prediction hit rate: {:.1}% over {} checks",
        hit_rate * 100.0,
        predictor.metrics().checked
    );
    assert!(
        hit_rate > 0.95,
        "tomcatv's loop stream is exactly periodic; hit rate was {hit_rate}"
    );
    let next: Vec<String> = (1..=period)
        .map(|k| format!("{:#x}", predictor.predict(k).unwrap()))
        .collect();
    println!("next {period} loop calls will be: {}", next.join(" "));

    // 3. The online forecasting subsystem: detector + forecaster in one,
    //    with confidence and forecast-error statistics maintained as the
    //    stream advances (docs/PREDICTION.md).
    let mut forecaster = DpdBuilder::new()
        .window(32)
        .forecast(period)
        .build_forecasting()
        .expect("valid config");
    for &s in stream {
        forecaster.push(s);
    }
    let stats = forecaster.predictor().stats();
    let forecast = forecaster.forecast(period).expect("locked and primed");
    println!(
        "online forecaster: hit-rate {:.1}% over {} checks, confidence {:.2}, \
         next period forecast {:?}",
        stats.hit_rate().unwrap() * 100.0,
        stats.checked,
        forecast.confidence,
        forecast
            .predicted
            .iter()
            .map(|v| format!("{v:#x}"))
            .collect::<Vec<_>>()
    );
    assert_eq!(forecast.period, period, "forecaster agrees with the lock");
    assert!(
        stats.hit_rate().unwrap() > 0.95,
        "forecast hit rate {:?} below the exactly-periodic expectation",
        stats.hit_rate()
    );
    assert!(
        forecast.confidence > 0.9,
        "stable stream must yield high confidence, got {}",
        forecast.confidence
    );
    assert_eq!(stats.invalidations, 0, "no phase change in tomcatv");
    // Both prediction paths agree on the upcoming values.
    let simple: Vec<i64> = (1..=period)
        .map(|k| predictor.predict(k).unwrap())
        .collect();
    assert_eq!(forecast.predicted, &simple[..], "predictors disagree");

    // 4. Estimate total execution time after measuring 10 iterations.
    let iter_time_ns = run.elapsed_ns / ITERATIONS as u64; // true mean
    let mut est = ExecutionEstimator::new().with_total_iterations(ITERATIONS as u64);
    for _ in 0..10 {
        est.record_iteration(iter_time_ns);
    }
    let predicted = est.estimated_total_ns().unwrap();
    let actual = run.elapsed_ns as f64;
    let error = est.estimate_error(run.elapsed_ns).unwrap();
    println!(
        "execution-time estimate after 10/{} iterations: {:.2} s (actual {:.2} s, error {:.2}%)",
        ITERATIONS,
        predicted / 1e9,
        actual / 1e9,
        error * 100.0
    );
    assert!(
        error.abs() < 0.05,
        "estimate from the true mean must land within 5%, got {error}"
    );
}
