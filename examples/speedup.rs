//! The paper's §5 case study as an example: the full
//! DITools → DPD → SelfAnalyzer pipeline (Fig. 6) measuring the speedup of
//! an application's parallel region at run time.
//!
//! ```sh
//! cargo run --release --example speedup
//! ```

use dpd::analyzer::report::{format_table, region_rows};
use dpd::analyzer::SelfAnalyzer;
use dpd::apps::app::App;
use dpd::apps::swim::Swim;
use dpd::interpose::dispatch::Interposer;
use dpd::interpose::registry::Registry;
use dpd::runtime::machine::{Machine, MachineConfig};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let structure = Swim.structure();
    let mut machine = Machine::new(MachineConfig::default());
    let mut ip = Interposer::new(Registry::new());

    // Attach the SelfAnalyzer to the interposition chain (paper Fig. 6).
    // Small DPD window: swim's periodicity is 6.
    let analyzer = Rc::new(RefCell::new(SelfAnalyzer::new(16, 1)));
    ip.attach(Box::new(Rc::clone(&analyzer)));

    // Baseline phase: 10 iterations on 1 CPU, then open up to 16 CPUs.
    let phases: [(usize, usize); 2] = [(1, 10), (16, 30)];
    for &(cpus, iters) in &phases {
        analyzer.borrow_mut().set_cpus(cpus);
        for _ in 0..iters {
            for call in &structure.iteration {
                let addr = ip.register(call.name);
                let now = machine.now_ns();
                ip.intercept_timed(addr, now, |/* encapsulated loop */| {
                    let span = machine.run_loop(&call.spec, cpus);
                    ((), span.end_ns)
                });
            }
        }
    }

    drop(ip);
    let analyzer = Rc::try_unwrap(analyzer).expect("unique").into_inner();
    let region = analyzer
        .regions()
        .first()
        .expect("DPD must discover swim's iterative region");

    println!("swim: region discovered by the DPD:");
    println!(
        "  start address {:#x}, period {} loop calls",
        region.start_addr, region.period
    );
    println!();
    println!("{}", format_table(&region_rows(region, 1)));
    let s = region.speedup(1, 16).expect("both phases measured");
    println!("speedup S(16) = {s:.2} (T(1 CPU) / T(16 CPUs), paper §5)");
}
