//! Figures 3 & 4 in one example: generate the NAS-FT-like CPU-usage trace
//! on the 16-CPU virtual machine and find its periodicity with equation (1).
//!
//! ```sh
//! cargo run --release --example ft_cpu_trace
//! ```

use dpd::apps::ft::{ft_run, PERIOD_MS};
use dpd::core::detector::FrameDetector;

fn main() {
    let run = ft_run(20);
    println!(
        "FT trace: {} samples at 1 ms, peak {} CPUs, {} loop calls intercepted",
        run.cpu_trace.len(),
        run.cpu_trace.max().unwrap(),
        run.addresses.len()
    );
    println!();
    println!("{}", run.cpu_trace.ascii_strip(120, 12));

    let det = FrameDetector::magnitudes(200, 0.5);
    let report = det.analyze(&run.cpu_trace.values).expect("long enough");
    match report.fundamental {
        Some(m) => println!(
            "detected periodicity: {} samples = {} ms (paper Figure 4: {} ms); d({}) = {:.3}",
            m.delay,
            run.cpu_trace.period_to_ns(m.delay) / 1_000_000,
            PERIOD_MS,
            m.delay,
            m.value
        ),
        None => println!("no periodicity found"),
    }
}
