//! Integration test: the paper's **Figure 6 pipeline** —
//! DITools interception → DPD → SelfAnalyzer → speedup.

use dpd::analyzer::SelfAnalyzer;
use dpd::apps::app::{App, RunConfig};
use dpd::interpose::dispatch::Interposer;
use dpd::interpose::registry::Registry;
use dpd::runtime::machine::{LoopSpec, Machine, MachineConfig};
use dpd::runtime::sched::{
    total_speedup, AllocationPolicy, Equipartition, PerformanceDriven, SpeedupCurve,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Drive a 4-loop iterative app through the full interposition chain at two
/// CPU allocations and return the region's measured speedup.
fn pipeline_speedup(cpus: usize) -> f64 {
    let mut machine = Machine::new(MachineConfig::default());
    let mut ip = Interposer::new(Registry::new());
    let analyzer = Rc::new(RefCell::new(SelfAnalyzer::new(16, 1)));
    ip.attach(Box::new(Rc::clone(&analyzer)));

    let loops = ["pipe_a", "pipe_b", "pipe_c", "pipe_d"];
    let spec = LoopSpec {
        iterations: 512,
        cost_per_iter_ns: 50_000,
        serial_fraction: 0.05,
    };
    for &(phase_cpus, iters) in &[(1usize, 12usize), (cpus, 24)] {
        analyzer.borrow_mut().set_cpus(phase_cpus);
        for _ in 0..iters {
            for name in loops {
                let addr = ip.register(name);
                let now = machine.now_ns();
                ip.intercept_timed(addr, now, || {
                    let span = machine.run_loop(&spec, phase_cpus);
                    ((), span.end_ns)
                });
            }
        }
    }
    drop(ip);
    let analyzer = Rc::try_unwrap(analyzer).expect("unique").into_inner();
    let region = analyzer.regions().first().expect("region discovered");
    assert_eq!(region.period, 4, "DPD must find the 4-loop iteration");
    region.speedup(1, cpus).expect("both buckets measured")
}

#[test]
fn speedup_is_monotone_and_bounded() {
    let mut prev = 1.0;
    for cpus in [2usize, 4, 8, 16] {
        let s = pipeline_speedup(cpus);
        assert!(s >= prev - 0.05, "S({cpus}) = {s} dropped below {prev}");
        assert!(s <= cpus as f64 + 0.01, "S({cpus}) = {s} super-linear");
        assert!(s > 1.0, "S({cpus}) = {s} shows no benefit");
        prev = s;
    }
}

#[test]
fn amdahl_shape_with_serial_fraction() {
    // With 5% inherent serial fraction plus overheads, S(16) stays well
    // under the Amdahl bound 1/(0.05 + 0.95/16) ≈ 9.14.
    let s16 = pipeline_speedup(16);
    assert!(s16 < 9.14, "S(16) = {s16} violates the Amdahl bound");
    assert!(s16 > 4.0, "S(16) = {s16} implausibly low");
}

#[test]
fn analyzer_labels_iterations_with_allocation() {
    let mut machine = Machine::new(MachineConfig::default());
    let mut ip = Interposer::new(Registry::new());
    let analyzer = Rc::new(RefCell::new(SelfAnalyzer::new(8, 3)));
    ip.attach(Box::new(Rc::clone(&analyzer)));
    let spec = LoopSpec::parallel(256, 10_000);
    for _ in 0..30 {
        for name in ["x_loop", "y_loop"] {
            let addr = ip.register(name);
            let now = machine.now_ns();
            ip.intercept_timed(addr, now, || {
                let span = machine.run_loop(&spec, 3);
                ((), span.end_ns)
            });
        }
    }
    drop(ip);
    let analyzer = Rc::try_unwrap(analyzer).expect("unique").into_inner();
    let region = &analyzer.regions()[0];
    assert_eq!(region.measured_cpu_counts(), vec![3]);
    assert!(region.iterations_with(3) > 10);
}

#[test]
fn measured_curves_drive_allocation_policies() {
    // End-to-end: measure a real speedup curve through the pipeline, then
    // allocate processors with it ([Corbalan2000] motivation, paper §5.1).
    let points: Vec<(usize, f64)> = [2usize, 4, 8, 16]
        .iter()
        .map(|&p| (p, pipeline_speedup(p)))
        .collect();
    let measured = SpeedupCurve::new(points);
    let apps = vec![
        measured,
        SpeedupCurve::amdahl(0.4, 16),
        SpeedupCurve::amdahl(0.02, 16),
    ];
    let eq = Equipartition.allocate(&apps, 16);
    let pd = PerformanceDriven.allocate(&apps, 16);
    assert_eq!(eq.iter().sum::<usize>(), 16);
    assert!(pd.iter().sum::<usize>() <= 16);
    assert!(
        total_speedup(&apps, &pd) >= total_speedup(&apps, &eq),
        "performance-driven {pd:?} must not lose to equipartition {eq:?}"
    );
}

#[test]
fn analyzer_attached_via_runconfig() {
    // The spec-apps Driver wires the same chain via RunConfig.
    let run = dpd::apps::tomcatv::Tomcatv.run(&RunConfig {
        with_analyzer: true,
        ..RunConfig::default()
    });
    let sa = run.analyzer.expect("requested");
    assert_eq!(sa.events(), 3750);
    // Window 512 locks on tomcatv's period 5 after ~517 events.
    assert!(!sa.regions().is_empty());
    assert_eq!(sa.regions()[0].period, 5);
}
