//! Property tests: batch ingestion (`push_slice` / `dpd_batch`) is
//! observably identical to sample-by-sample feeding.
//!
//! The incremental engine's batch path promises **bit-identical** running
//! sums (the per-accumulator floating-point operation order is preserved
//! exactly), and the streaming detectors promise the **same event
//! sequence**. These properties are exercised across arbitrary chunkings —
//! including chunks that straddle the warmup/steady-state boundary — for
//! both metrics, with and without the `resync_interval` drift-bound path.

use dpd::core::incremental::{EngineConfig, IncrementalEngine};
use dpd::core::metric::{EventMetric, L1Metric, Metric};
use dpd::core::pipeline::DpdBuilder;
use dpd::core::streaming::{SegmentEvent, StreamingDpd};
use proptest::prelude::*;

/// Split `data` into chunks whose sizes cycle through `chunk_sizes`.
fn chunked<'d>(data: &'d [i64], chunk_sizes: &[usize]) -> Vec<&'d [i64]> {
    let mut out = Vec::new();
    let mut rest = data;
    let mut it = chunk_sizes.iter().copied().cycle();
    while !rest.is_empty() {
        let k = it.next().unwrap_or(1).clamp(1, rest.len());
        let (now, later) = rest.split_at(k);
        out.push(now);
        rest = later;
    }
    out
}

fn chunked_f64<'d>(data: &'d [f64], chunk_sizes: &[usize]) -> Vec<&'d [f64]> {
    let mut out = Vec::new();
    let mut rest = data;
    let mut it = chunk_sizes.iter().copied().cycle();
    while !rest.is_empty() {
        let k = it.next().unwrap_or(1).clamp(1, rest.len());
        let (now, later) = rest.split_at(k);
        out.push(now);
        rest = later;
    }
    out
}

/// Assert two engines observing the same stream differently-chunked agree
/// bit-for-bit on every observable.
fn assert_engines_identical<T, M>(
    single: &IncrementalEngine<T, M>,
    batch: &IncrementalEngine<T, M>,
    m_max: usize,
) where
    T: Copy + PartialEq + std::fmt::Debug,
    M: Metric<T>,
{
    assert_eq!(single.pushed(), batch.pushed());
    assert_eq!(single.is_warm(), batch.is_warm());
    let ss = single.spectrum();
    let bs = batch.spectrum();
    for m in 1..=m_max {
        assert_eq!(
            single.pair_sum(m).map(f64::to_bits),
            batch.pair_sum(m).map(f64::to_bits),
            "pair_sum differs at m={m}"
        );
        assert_eq!(
            single.distance(m).map(f64::to_bits),
            batch.distance(m).map(f64::to_bits),
            "distance differs at m={m}"
        );
        assert_eq!(single.is_complete(m), batch.is_complete(m), "m={m}");
        assert_eq!(
            ss.at(m).map(f64::to_bits),
            bs.at(m).map(f64::to_bits),
            "spectrum differs at m={m}"
        );
    }
    assert_eq!(single.first_zero(), batch.first_zero());
    assert_eq!(single.history_vec(), batch.history_vec());
}

proptest! {
    /// Engine, event metric: arbitrary streams and chunkings, arbitrary
    /// configurations — bit-identical spectra. Short streams keep some
    /// chunkings entirely inside warmup; long ones straddle the boundary.
    #[test]
    fn engine_events_batch_bit_identical(
        data in collection::vec(0i64..6, 1..400),
        n in 2usize..40,
        m_extra in 0usize..20,
        chunk_sizes in collection::vec(1usize..80, 1..6),
    ) {
        let m_max = (n - 1).saturating_sub(m_extra).max(1);
        let cfg = EngineConfig { frame: n, m_max, resync_interval: 0 };
        let mut single = IncrementalEngine::new(EventMetric, cfg).unwrap();
        let mut batch = IncrementalEngine::new(EventMetric, cfg).unwrap();
        for &s in &data {
            single.push(s);
        }
        for chunk in chunked(&data, &chunk_sizes) {
            batch.push_slice(chunk);
        }
        assert_engines_identical(&single, &batch, m_max);
    }

    /// Engine, L1 metric with the resync drift-bound enabled: the batch path
    /// must fire resyncs at exactly the same stream positions, so sums stay
    /// bit-identical even though resync rewrites them from history.
    #[test]
    fn engine_l1_batch_bit_identical_with_resync(
        data in collection::vec(-100.0f64..100.0, 1..400),
        n in 2usize..32,
        resync in 1u64..120,
        chunk_sizes in collection::vec(1usize..90, 1..5),
    ) {
        let cfg = EngineConfig { frame: n, m_max: n, resync_interval: resync };
        let mut single = IncrementalEngine::new(L1Metric, cfg).unwrap();
        let mut batch = IncrementalEngine::new(L1Metric, cfg).unwrap();
        for &s in &data {
            single.push(s);
        }
        for chunk in chunked_f64(&data, &chunk_sizes) {
            batch.push_slice(chunk);
        }
        assert_engines_identical(&single, &batch, n);
    }

    /// Streaming detector, event metric: identical event sequences (periods,
    /// positions, losses) and identical final statistics under any chunking
    /// of a stream with a mid-stream structure change.
    #[test]
    fn streaming_events_same_event_sequence(
        period_a in 1usize..7,
        period_b in 1usize..7,
        len_a in 0usize..120,
        len_b in 0usize..120,
        window in 4usize..24,
        chunk_sizes in collection::vec(1usize..70, 1..5),
    ) {
        let mut data: Vec<i64> = (0..len_a).map(|i| (i % period_a) as i64).collect();
        data.extend((0..len_b).map(|i| 1000 + (i % period_b) as i64));
        if data.is_empty() {
            data.push(1);
        }

        let mut single = DpdBuilder::new().window(window).build_detector().unwrap();
        let expected: Vec<SegmentEvent> = data
            .iter()
            .map(|&s| single.push(s))
            .filter(|e| *e != SegmentEvent::None)
            .collect();

        let mut batch = DpdBuilder::new().window(window).build_detector().unwrap();
        let mut got = Vec::new();
        for chunk in chunked(&data, &chunk_sizes) {
            got.extend(batch.push_slice(chunk));
        }
        prop_assert_eq!(got, expected);
        prop_assert_eq!(batch.stats(), single.stats());
        prop_assert_eq!(batch.locked_period(), single.locked_period());
    }

    /// Streaming detector, L1 metric with confirmation, losses and resync:
    /// the noisy-magnitude configuration takes every state-machine path.
    #[test]
    fn streaming_magnitudes_same_event_sequence(
        period in 2usize..8,
        reps in 10usize..60,
        noise_scale in 0u32..40,
        chunk_sizes in collection::vec(1usize..50, 1..4),
    ) {
        let data: Vec<f64> = (0..period * reps)
            .map(|i| {
                let base = ((i % period) as f64) * 4.0;
                let noise = ((i * 7919) % 17) as f64 * (noise_scale as f64 * 0.001);
                base + noise
            })
            .collect();
        let mut config = DpdBuilder::new()
            .window(3 * period)
            .magnitudes()
            .detector_config()
            .unwrap();
        config.resync_interval = 37; // force mid-stream resyncs
        let mut single = StreamingDpd::new(L1Metric, config).unwrap();
        let expected: Vec<SegmentEvent> = data
            .iter()
            .map(|&s| single.push(s))
            .filter(|e| *e != SegmentEvent::None)
            .collect();
        let mut batch = StreamingDpd::new(L1Metric, config).unwrap();
        let mut got = Vec::new();
        for chunk in chunked_f64(&data, &chunk_sizes) {
            got.extend(batch.push_slice(chunk));
        }
        prop_assert_eq!(got, expected);
    }

    /// Table 1 batch interface: `dpd_batch` reports exactly the detections
    /// of per-sample `dpd()`, with chunk-relative offsets.
    #[test]
    fn capi_batch_matches_per_sample(
        period in 1usize..9,
        reps in 5usize..80,
        window in 4usize..32,
        chunk_sizes in collection::vec(1usize..60, 1..5),
    ) {
        let data: Vec<i64> = (0..period * reps).map(|i| (i % period) as i64).collect();

        let mut single = DpdBuilder::new().window(window).build_capi().unwrap();
        let mut period_out = 0i32;
        let mut expected = Vec::new();
        for (i, &s) in data.iter().enumerate() {
            if single.dpd(s, &mut period_out) != 0 {
                expected.push((i, period_out));
            }
        }

        let mut batch = DpdBuilder::new().window(window).build_capi().unwrap();
        let mut got = Vec::new();
        let mut consumed = 0usize;
        for chunk in chunked(&data, &chunk_sizes) {
            for (offset, p) in batch.dpd_batch(chunk) {
                got.push((consumed + offset, p));
            }
            consumed += chunk.len();
        }
        prop_assert_eq!(got, expected);
    }

    /// Multi-scale bank: batch ingestion preserves the per-sample dispatch
    /// order (position-major, then scale order) and the detected-period set.
    #[test]
    fn multiscale_batch_matches_per_sample(
        inner in 1usize..5,
        runs in 1usize..6,
        tail in 0usize..6,
        outers in 2usize..10,
        chunk_sizes in collection::vec(1usize..40, 1..4),
    ) {
        let mut one: Vec<i64> = Vec::new();
        for _ in 0..runs {
            one.extend((0..inner).map(|i| 0x100 + i as i64));
        }
        one.extend((0..tail).map(|i| 0x900 + i as i64));
        let data: Vec<i64> = (0..one.len() * outers).map(|i| one[i % one.len()]).collect();

        let mut single = DpdBuilder::new().scales(&[8, 64]).build_multi_scale().unwrap();
        let mut expected = Vec::new();
        for &s in &data {
            expected.extend(single.push(s).events);
        }

        let mut batch = DpdBuilder::new().scales(&[8, 64]).build_multi_scale().unwrap();
        let mut got = Vec::new();
        for chunk in chunked(&data, &chunk_sizes) {
            got.extend(batch.push_slice(chunk));
        }
        prop_assert_eq!(got, expected);
        prop_assert_eq!(batch.detected_periods(), single.detected_periods());
    }
}
