//! Property tests: the sharded multi-stream service is observationally
//! identical to the deterministic single-threaded fallback.
//!
//! For any shard count, any stream population, any interleaving of
//! per-stream record batches, any eviction watermark, and any mix of
//! explicit closes, the per-stream event sequences of the sharded
//! [`MultiStreamDpd`] must equal those of the `shards = 0` reference —
//! the central correctness claim of the shard layer (per-stream state is
//! owned by exactly one shard, shard queues are FIFO, and all lifecycle
//! decisions depend only on the stream's samples plus the global sample
//! clock carried with each batch).

use dpd::core::pipeline::DpdBuilder;
use dpd::core::shard::{MultiStreamEvent, StreamId};
use dpd::runtime::service::{MultiStreamDpd, ShardStats};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// One decoded frontend operation.
#[derive(Debug, Clone)]
enum Op {
    /// Ingest a record for `stream`: `len` samples of a periodic pattern
    /// starting at phase `start`, or fresh aperiodic values.
    Ingest {
        stream: u64,
        period: u64,
        start: u64,
        len: usize,
        aperiodic: bool,
    },
    /// Explicitly close `stream`.
    Close { stream: u64 },
}

/// Decode one raw 64-bit word into an operation over `streams` streams.
/// (The vendored proptest shim has no tuple/enum strategies; deriving the
/// structure from plain words keeps cases reproducible.)
fn decode(word: u64, streams: u64) -> Op {
    let stream = word % streams;
    let kind = (word >> 8) % 8;
    if kind == 0 {
        Op::Close { stream }
    } else {
        Op::Ingest {
            stream,
            period: (word >> 16) % 9 + 1,
            start: (word >> 24) % 64,
            len: ((word >> 32) % 40) as usize,
            aperiodic: (word >> 44) & 0b11 == 0,
        }
    }
}

/// Apply the same decoded schedule to a service, interleaving drains so
/// mid-run sink traffic is exercised too, then finish.
fn run(
    ops: &[Op],
    shards: usize,
    window: usize,
    evict_after: u64,
) -> (Vec<MultiStreamEvent>, ShardStats) {
    let mut builder = DpdBuilder::new().window(window).keyed().shards(shards);
    if evict_after > 0 {
        builder = builder.evict_after(evict_after);
    }
    let mut svc = MultiStreamDpd::from_builder(&builder).unwrap();
    let mut fresh = 0x7F00_0000i64;
    let mut events = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Ingest {
                stream,
                period,
                start,
                len,
                aperiodic,
            } => {
                let samples: Vec<i64> = (0..*len as u64)
                    .map(|k| {
                        if *aperiodic {
                            fresh += 1;
                            fresh
                        } else {
                            0x1000 + (*stream as i64) * 0x100 + ((start + k) % period) as i64
                        }
                    })
                    .collect();
                svc.ingest(&[(StreamId(*stream), &samples)]);
            }
            Op::Close { stream } => svc.close(StreamId(*stream)),
        }
        if i % 7 == 0 {
            events.extend(svc.drain());
        }
    }
    let (tail, snapshot) = svc.finish();
    events.extend(tail);
    // Queue depth and batch counts are shard-frontend bookkeeping (zero in
    // inline mode, per-worker in sharded mode); zero them so totals are
    // comparable across shard counts and against a raw table.
    let mut t = snapshot.total();
    t.queue_depth = 0;
    t.batches = 0;
    (events, t)
}

fn by_stream(events: &[MultiStreamEvent]) -> BTreeMap<u64, Vec<MultiStreamEvent>> {
    let mut m: BTreeMap<u64, Vec<MultiStreamEvent>> = BTreeMap::new();
    for &e in events {
        m.entry(e.stream().0).or_default().push(e);
    }
    m
}

/// Feed a generated record schedule one record per `ingest` call.
fn run_schedule(
    schedule: &[(u64, Vec<i64>)],
    shards: usize,
    window: usize,
) -> Vec<MultiStreamEvent> {
    let mut svc =
        MultiStreamDpd::from_builder(&DpdBuilder::new().window(window).shards(shards)).unwrap();
    for (stream, samples) in schedule {
        svc.ingest(&[(StreamId(*stream), samples)]);
    }
    let (events, _) = svc.finish();
    events
}

/// Without eviction, per-stream events depend only on per-stream sample
/// order — so *any* arrival order of the records (not just any shard
/// count) must reproduce the reference, sharded or not.
#[test]
fn adversarial_arrival_orders_match_inline() {
    use dpd::trace::gen::{interleaved_streams, shuffle_preserving_stream_order};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let round_robin = interleaved_streams(12, 5, 8);
    let reference = by_stream(&run_schedule(&round_robin, 0, 8));
    for seed in 0..4u64 {
        let mut shuffled = round_robin.clone();
        shuffle_preserving_stream_order(&mut shuffled, &mut StdRng::seed_from_u64(seed));
        for shards in [0usize, 3] {
            let got = by_stream(&run_schedule(&shuffled, shards, 8));
            assert_eq!(got, reference, "seed={seed} shards={shards}");
        }
    }
}

proptest! {
    /// Arbitrary interleavings + closes, no eviction.
    #[test]
    fn sharded_equals_inline_reference(
        words in collection::vec(any::<u64>(), 5..60),
        streams in 1u64..12,
    ) {
        let ops: Vec<Op> = words.iter().map(|&w| decode(w, streams)).collect();
        let (ref_events, ref_stats) = run(&ops, 0, 8, 0);
        let reference = by_stream(&ref_events);
        for shards in [1usize, 2, 4, 7] {
            let (events, stats) = run(&ops, shards, 8, 0);
            prop_assert_eq!(by_stream(&events), reference.clone(), "shards={}", shards);
            prop_assert_eq!(stats, ref_stats, "shards={}", shards);
        }
    }

    /// Same, with an idle-eviction watermark small enough to trigger
    /// (workers also run periodic memory sweeps in sharded mode).
    #[test]
    fn sharded_equals_inline_with_eviction(
        words in collection::vec(any::<u64>(), 5..60),
        streams in 1u64..10,
        evict in 10u64..120,
    ) {
        let ops: Vec<Op> = words.iter().map(|&w| decode(w, streams)).collect();
        let (ref_events, ref_stats) = run(&ops, 0, 8, evict);
        let reference = by_stream(&ref_events);
        for shards in [1usize, 2, 4, 7] {
            let (events, stats) = run(&ops, shards, 8, evict);
            prop_assert_eq!(
                by_stream(&events), reference.clone(),
                "shards={} evict={}", shards, evict
            );
            prop_assert_eq!(stats, ref_stats, "shards={} evict={}", shards, evict);
        }
    }

    /// Satellite of the slab rewrite: both service rollup paths (the
    /// inline snapshot arm and the worker-side publish refresh) map table
    /// stats through the single `ShardStats::from_table` helper. A raw
    /// `StreamTable` fed the service's exact schedule must therefore
    /// produce — through that same helper — the service's published
    /// totals, field by field, tier counters included.
    #[test]
    fn service_rollups_equal_raw_table_through_one_helper(
        words in collection::vec(any::<u64>(), 5..40),
        streams in 1u64..8,
        evict in 10u64..120,
    ) {
        let ops: Vec<Op> = words.iter().map(|&w| decode(w, streams)).collect();
        // Raw reference table, driven with the service's clock semantics
        // (the global clock advances by each batch's length; finish is a
        // final-clock sweep plus close_all).
        let mut table = DpdBuilder::new()
            .window(8)
            .evict_after(evict)
            .build_table()
            .unwrap();
        let mut fresh = 0x7F00_0000i64;
        let mut seq = 0u64;
        let mut sink = Vec::new();
        for op in &ops {
            match op {
                Op::Ingest { stream, period, start, len, aperiodic } => {
                    let samples: Vec<i64> = (0..*len as u64)
                        .map(|k| {
                            if *aperiodic {
                                fresh += 1;
                                fresh
                            } else {
                                0x1000 + (*stream as i64) * 0x100 + ((start + k) % period) as i64
                            }
                        })
                        .collect();
                    table.ingest(seq, StreamId(*stream), &samples, &mut sink);
                    seq += *len as u64;
                }
                Op::Close { stream } => {
                    table.close(seq, StreamId(*stream), &mut sink);
                }
            }
        }
        table.sweep(seq);
        table.close_all(seq, &mut sink);
        let expected = ShardStats::from_table(&table.stats());
        for shards in [0usize, 3] {
            let (_, stats) = run(&ops, shards, 8, evict);
            prop_assert_eq!(stats, expected, "shards={} evict={}", shards, evict);
        }
    }
}
