//! Torture property tests for the crash-safe pile segment log.
//!
//! The pile's whole job is surviving hostile byte streams: a `SIGKILL`
//! can tear the tail at any byte, and bit rot can land anywhere. Three
//! families pin the recovery policy down:
//!
//! 1. **Round-trip** — any frame schedule written through [`PileWriter`]
//!    recovers completely: every frame back in order, `valid_len` the
//!    whole file, `last_epoch` the last epoch written;
//! 2. **Truncation** — cutting the file at *any* byte offset never
//!    panics, and recovery returns a clean prefix of the original
//!    frames whose re-read decodes identically (the torn-tail policy
//!    behind `PileWriter::open`);
//! 3. **Corruption** — a single-byte flip anywhere never panics and
//!    never fabricates frames: recovery still yields a prefix of the
//!    original frame sequence (the CRC fence), with the one documented
//!    exception of the reserved header flags byte, which readers
//!    deliberately ignore.

use dpd::trace::pile::{recover, EpochMarker, PileFrame, PileReader, PileWriter};
use proptest::prelude::*;

/// Expand one generated word into a writer call, pushing the expected
/// decoded frame. The word's low bits pick the frame kind, the rest
/// parameterize it; `values` seeds event payloads (including `i64`
/// extremes when the generator lands on them).
fn apply_op(w: &mut PileWriter<Vec<u8>>, expect: &mut Vec<PileFrame>, word: u64, values: &[i64]) {
    match word % 3 {
        0 => {
            let wave = word >> 8;
            let n_records = ((word >> 2) % 4) as usize;
            let records: Vec<(u64, Vec<i64>)> = (0..n_records)
                .map(|r| {
                    let start = (word as usize >> 4).wrapping_add(r * 7) % (values.len() + 1);
                    let len = ((word >> 6) as usize + r) % 9;
                    let end = (start + len).min(values.len());
                    ((word >> 16) % 1000 + r as u64, values[start..end].to_vec())
                })
                .collect();
            w.events(wave, &records).unwrap();
            expect.push(PileFrame::Events { wave, records });
        }
        1 => {
            let payload: Vec<u8> = word
                .to_le_bytes()
                .iter()
                .cycle()
                .take((word % 97) as usize)
                .copied()
                .collect();
            w.checkpoint(&payload).unwrap();
            expect.push(PileFrame::Checkpoint(payload));
        }
        _ => {
            let m = EpochMarker {
                wave: word >> 3,
                samples: word.rotate_left(17),
                ordinal: word % 100,
            };
            w.epoch(m).unwrap();
            expect.push(PileFrame::Epoch(m));
        }
    }
}

/// Write a word-derived schedule through the pile writer, returning the
/// file bytes and the frames a full read must yield.
fn build(words: &[u64], values: &[i64]) -> (Vec<u8>, Vec<PileFrame>) {
    let mut w = PileWriter::new(Vec::new()).unwrap();
    let mut expect = Vec::new();
    for &word in words {
        apply_op(&mut w, &mut expect, word, values);
    }
    (w.into_inner().unwrap(), expect)
}

/// `true` if `frames` is a prefix of `of`.
fn is_prefix(frames: &[PileFrame], of: &[PileFrame]) -> bool {
    frames.len() <= of.len() && frames == &of[..frames.len()]
}

proptest! {
    /// Any schedule of frames recovers completely from its own bytes.
    #[test]
    fn full_pile_recovers_every_frame(
        words in collection::vec(any::<u64>(), 0..12),
        values in collection::vec(any::<i64>(), 0..48),
    ) {
        let (bytes, expect) = build(&words, &values);
        let rec = recover(&bytes);
        prop_assert_eq!(rec.valid_len, bytes.len());
        prop_assert_eq!(&rec.frames, &expect);
        let last_epoch = expect.iter().rev().find_map(|f| match f {
            PileFrame::Epoch(m) => Some(*m),
            _ => None,
        });
        prop_assert_eq!(rec.last_epoch, last_epoch);
        prop_assert!(rec.epoch_end <= rec.valid_len);
    }

    /// Cutting the pile at any byte offset — the disk state a `SIGKILL`
    /// mid-`write` leaves behind — never panics, and the recovered
    /// prefix is self-consistent: a clean re-read of `data[..valid_len]`
    /// yields exactly the recovered frames, which are a prefix of what
    /// was written.
    #[test]
    fn truncation_at_any_offset_recovers_a_clean_prefix(
        words in collection::vec(any::<u64>(), 1..10),
        values in collection::vec(any::<i64>(), 0..48),
        cut_word in any::<u64>(),
    ) {
        let (bytes, expect) = build(&words, &values);
        let cut = (cut_word % (bytes.len() as u64 + 1)) as usize;
        let torn = &bytes[..cut];

        let rec = recover(torn);
        prop_assert!(rec.valid_len <= cut);
        prop_assert!(is_prefix(&rec.frames, &expect),
            "recovery fabricated frames from a torn tail");
        prop_assert!(rec.epoch_end <= rec.valid_len);

        // The valid prefix must re-read cleanly end to end: recovery's
        // truncation point is a real frame boundary, not a guess.
        if rec.valid_len > 0 {
            let mut r = PileReader::new(&torn[..rec.valid_len]).unwrap();
            let mut again = Vec::new();
            while let Some(f) = r.next_frame() {
                again.push(f.expect("recovered prefix re-reads cleanly"));
            }
            prop_assert_eq!(again, rec.frames);
        } else {
            prop_assert!(rec.frames.is_empty());
        }
    }

    /// A single flipped byte anywhere in the file never panics the
    /// recovery scan and never fabricates data: the CRC fence reduces
    /// the file to a valid prefix of the original frames. The reserved
    /// header flags byte (offset 5) is the one byte readers ignore, so
    /// a flip there leaves the whole pile valid — still a prefix.
    #[test]
    fn single_byte_flip_never_fabricates_frames(
        words in collection::vec(any::<u64>(), 1..10),
        values in collection::vec(any::<i64>(), 0..48),
        pos_word in any::<u64>(),
        mask_word in 1u32..256,
    ) {
        let (bytes, expect) = build(&words, &values);
        let pos = (pos_word % bytes.len() as u64) as usize;
        let mut bad = bytes.clone();
        bad[pos] ^= mask_word as u8;

        let rec = recover(&bad);
        prop_assert!(rec.valid_len <= bad.len());
        prop_assert!(is_prefix(&rec.frames, &expect),
            "flip {mask_word:#04x} at byte {pos} fabricated frames");
        // Header damage (outside the ignored flags byte) voids the file.
        if pos < 5 {
            prop_assert_eq!(rec.valid_len, 0, "damaged header must not scan");
        }
    }
}
