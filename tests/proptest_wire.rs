//! Wire-protocol conformance tests (`docs/FORMAT.md` §10).
//!
//! The DTB container doubles as the `dpd serve` wire protocol, so the
//! properties here pin the *ingest path equivalence* the server promises:
//!
//! 1. **Fragmentation invariance** — a DTB byte stream fed to the
//!    incremental [`DtbDecoder`] under any fragmentation/coalescing of
//!    `read()` boundaries drives the multi-stream detector to exactly
//!    the per-stream event sequences of an in-process [`DtbReader`]
//!    replay (the differential oracle; event payloads compared exactly,
//!    which is bit-exactness — detector state is integer/`to_bits`
//!    serialized everywhere else in the suite).
//! 2. **Hostile bytes** — random single-byte flips are always rejected
//!    with a typed error, and truncations yield a clean decoded prefix
//!    of the original per-stream values; neither ever panics or
//!    fabricates samples.
//! 3. **Full-stack loopback** — a genuinely multi-connection TCP replay
//!    through [`DpdServer`] (100 connections, three fragmentation
//!    patterns, 10k streams) produces the oracle's per-stream events.

use dpd::core::pipeline::DpdBuilder;
use dpd::core::shard::{MultiStreamEvent, StreamId};
use dpd::runtime::net::{DpdServer, NetConfig, HANDSHAKE_MAGIC, PROTOCOL_VERSION};
use dpd::runtime::service::MultiStreamDpd;
use dpd::trace::dtb::{self, Block, DtbDecoder, DtbReader, DtbWriter};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::io::{Read, Write};

/// Group an event log by stream id (order within a stream preserved).
fn by_stream(events: &[MultiStreamEvent]) -> BTreeMap<u64, Vec<MultiStreamEvent>> {
    let mut m: BTreeMap<u64, Vec<MultiStreamEvent>> = BTreeMap::new();
    for &e in events {
        m.entry(e.stream().0).or_default().push(e);
    }
    m
}

/// Encode a multi-stream corpus: `streams[s]` pushed in round-robin
/// chunks so declarations and event frames interleave like live traffic.
fn encode_corpus(streams: &[Vec<i64>], block_len: usize, chunk: usize) -> Vec<u8> {
    let mut w = DtbWriter::with_block_len(Vec::new(), block_len).unwrap();
    for (s, _) in streams.iter().enumerate() {
        w.declare_events(s as u64, &format!("s{s}")).unwrap();
    }
    let mut offset = 0;
    loop {
        let mut any = false;
        for (s, values) in streams.iter().enumerate() {
            if offset < values.len() {
                let end = (offset + chunk).min(values.len());
                w.push_events(s as u64, &values[offset..end]).unwrap();
                any = true;
            }
        }
        if !any {
            break;
        }
        offset += chunk;
    }
    w.finish().unwrap()
}

/// Oracle: replay a DTB byte stream through the service with the
/// resident-slice reader, one `ingest` per events block.
fn replay_reader(bytes: &[u8], window: usize) -> Vec<MultiStreamEvent> {
    let builder = DpdBuilder::new().window(window).shards(0);
    let mut svc = MultiStreamDpd::from_builder(&builder).unwrap();
    let mut r = DtbReader::new(bytes).unwrap();
    while let Some(block) = r.next_block() {
        if let Block::Events { stream, values } = block.unwrap() {
            let owned = values.to_vec();
            svc.ingest(&[(StreamId(stream), &owned[..])]);
        }
    }
    svc.finish().0
}

/// Candidate: feed the same bytes through the incremental decoder in
/// `chunks` pieces (sizes derived from `seed`), ingesting blocks as they
/// complete — the server's read-loop shape.
fn replay_decoder(bytes: &[u8], window: usize, seed: u64) -> Vec<MultiStreamEvent> {
    let builder = DpdBuilder::new().window(window).shards(0);
    let mut svc = MultiStreamDpd::from_builder(&builder).unwrap();
    let mut dec = DtbDecoder::new();
    let mut state = seed;
    let mut pos = 0;
    while pos < bytes.len() {
        // splitmix64 chunk sizing: 1-byte dribbles up to 4 KiB bursts.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let n = ((z ^ (z >> 31)) % 4096 + 1) as usize;
        let end = (pos + n).min(bytes.len());
        dec.feed(&bytes[pos..end]);
        pos = end;
        while let Some(block) = dec.next_block().unwrap() {
            if let Block::Events { stream, values } = block {
                let owned = values.to_vec();
                svc.ingest(&[(StreamId(stream), &owned[..])]);
            }
        }
    }
    dec.finish().unwrap();
    svc.finish().0
}

/// Build `count` short periodic streams with per-stream period/phase.
fn periodic_streams(count: usize, len: usize) -> Vec<Vec<i64>> {
    (0..count)
        .map(|s| {
            let period = 2 + s % 5;
            (0..len)
                .map(|i| 0x4000 + (s as i64) * 0x100 + (i % period) as i64)
                .collect()
        })
        .collect()
}

proptest! {
    /// Property 1: fragmentation invariance of detector output.
    #[test]
    fn any_fragmentation_yields_identical_detector_output(
        words in collection::vec(any::<u64>(), 1..80),
        streams in 1usize..6,
        block_len in 1usize..96,
        chunk in 1usize..64,
        seed in any::<u64>(),
    ) {
        // Decode the word list into per-stream value sequences.
        let mut values: Vec<Vec<i64>> = vec![Vec::new(); streams];
        for (i, &w) in words.iter().enumerate() {
            let s = (w % streams as u64) as usize;
            let len = (w >> 8) % 23;
            values[s].extend((0..len).map(|k| ((w >> 16) % 7) as i64 + (i as i64) * 3 + k as i64 % 5));
        }
        let bytes = encode_corpus(&values, block_len, chunk);

        let oracle = by_stream(&replay_reader(&bytes, 8));
        let got = by_stream(&replay_decoder(&bytes, 8, seed));
        prop_assert_eq!(got, oracle);
    }

    /// Property 2a: single-byte flips past the header are always caught
    /// by the incremental decoder — typed error, no panic, and whatever
    /// decoded before the error is a clean prefix per stream.
    #[test]
    fn byte_flips_are_rejected_never_fabricated(
        streams in 1usize..4,
        len in 8usize..120,
        block_len in 1usize..64,
        pos_word in any::<u64>(),
        mask in 1u32..256,
        seed in any::<u64>(),
    ) {
        let values = periodic_streams(streams, len);
        let bytes = encode_corpus(&values, block_len, 16);
        let span = bytes.len() - dtb::HEADER_LEN;
        let pos = dtb::HEADER_LEN + (pos_word % span as u64) as usize;
        let mut bad = bytes.clone();
        bad[pos] ^= mask as u8;

        let mut dec = DtbDecoder::new();
        let mut decoded: BTreeMap<u64, Vec<i64>> = BTreeMap::new();
        let mut state = seed;
        let mut cursor = 0;
        let mut failed = false;
        'outer: while cursor < bad.len() {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let n = (state % 512 + 1) as usize;
            let end = (cursor + n).min(bad.len());
            dec.feed(&bad[cursor..end]);
            cursor = end;
            loop {
                match dec.next_block() {
                    Ok(None) => break,
                    Ok(Some(Block::Events { stream, values })) => {
                        decoded.entry(stream).or_default().extend_from_slice(values);
                    }
                    Ok(Some(_)) => {}
                    Err(_) => { failed = true; break 'outer; }
                }
            }
        }
        if !failed {
            // The flip may sit in bytes the decoder has not consumed as a
            // complete frame yet; then the stream must fail at finish().
            prop_assert!(dec.finish().is_err(), "flip {mask:#04x} at byte {pos} went undetected");
        }
        // Either way: everything decoded before the error is a prefix of
        // the true per-stream data — corruption never fabricates samples.
        for (s, got) in &decoded {
            let truth = &values[*s as usize];
            prop_assert!(got.len() <= truth.len(), "stream {s} over-long");
            prop_assert_eq!(&truth[..got.len()], &got[..], "stream {s} diverged");
        }
    }

    /// Property 2b: truncation at any byte yields a clean per-stream
    /// prefix, and `finish()` flags the cut unless it landed exactly on
    /// a frame boundary (a legitimate end-of-stream).
    #[test]
    fn truncation_yields_clean_prefix(
        streams in 1usize..4,
        len in 8usize..120,
        block_len in 1usize..64,
        cut_word in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let values = periodic_streams(streams, len);
        let bytes = encode_corpus(&values, block_len, 16);
        let cut = (cut_word % bytes.len() as u64) as usize;

        let mut dec = DtbDecoder::new();
        let mut decoded: BTreeMap<u64, Vec<i64>> = BTreeMap::new();
        let mut state = seed;
        let mut cursor = 0;
        let mut errored = false;
        'outer: while cursor < cut {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let n = (state % 512 + 1) as usize;
            let end = (cursor + n).min(cut);
            dec.feed(&bytes[cursor..end]);
            cursor = end;
            loop {
                match dec.next_block() {
                    Ok(None) => break,
                    Ok(Some(Block::Events { stream, values })) => {
                        decoded.entry(stream).or_default().extend_from_slice(values);
                    }
                    Ok(Some(_)) => {}
                    Err(_) => { errored = true; break 'outer; }
                }
            }
        }
        if !errored && dec.buffered() > 0 {
            prop_assert!(dec.finish().is_err(), "mid-frame cut at {cut} not flagged");
        }
        for (s, got) in &decoded {
            let truth = &values[*s as usize];
            prop_assert!(got.len() <= truth.len(), "stream {s} over-long");
            prop_assert_eq!(&truth[..got.len()], &got[..], "stream {s} diverged");
        }
    }
}

// ---------------------------------------------------------------------
// 3. Full-stack loopback: the acceptance differential. 10k streams over
// 100 real TCP connections, three fragmentation patterns, compared
// per-stream against the in-process oracle.

#[test]
fn loopback_10k_streams_100_conns_matches_in_process_replay() {
    const STREAMS: usize = 10_000;
    const CONNS: usize = 100;
    const LEN: usize = 24;
    const WINDOW: usize = 8;

    let values = periodic_streams(STREAMS, LEN);

    // Oracle: the whole corpus replayed in-process.
    let oracle_bytes = encode_corpus(&values, 32, 8);
    let oracle = by_stream(&replay_reader(&oracle_bytes, WINDOW));

    // Server under test.
    let builder = DpdBuilder::new().window(WINDOW).shards(0);
    let server = DpdServer::start(&builder, NetConfig::default(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // 100 clients, each replaying a disjoint share of the streams with
    // its own fragmentation pattern: whole-payload writes, 7-byte
    // dribbles, or seeded random sizes.
    std::thread::scope(|scope| {
        for c in 0..CONNS {
            let values = &values;
            scope.spawn(move || {
                let ids: Vec<usize> = (c..STREAMS).step_by(CONNS).collect();
                let mut w = DtbWriter::with_block_len(Vec::new(), 32).unwrap();
                for &s in &ids {
                    w.declare_events(s as u64, &format!("s{s}")).unwrap();
                }
                let mut offset = 0;
                loop {
                    let mut any = false;
                    for &s in &ids {
                        if offset < values[s].len() {
                            let end = (offset + 8).min(values[s].len());
                            w.push_events(s as u64, &values[s][offset..end]).unwrap();
                            any = true;
                        }
                    }
                    if !any {
                        break;
                    }
                    offset += 8;
                }
                let payload = w.finish().unwrap();

                let mut sock = std::net::TcpStream::connect(addr).unwrap();
                sock.set_nodelay(true).unwrap();
                let mut hello = [0u8; 6];
                sock.read_exact(&mut hello).unwrap();
                assert_eq!(&hello[..4], &HANDSHAKE_MAGIC);
                assert_eq!(hello[4], PROTOCOL_VERSION);

                match c % 3 {
                    0 => sock.write_all(&payload).unwrap(),
                    1 => {
                        for chunk in payload.chunks(7) {
                            sock.write_all(chunk).unwrap();
                        }
                    }
                    _ => {
                        let mut state = c as u64;
                        let mut pos = 0;
                        while pos < payload.len() {
                            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                            let n = ((state % 256) + 1) as usize;
                            let end = (pos + n).min(payload.len());
                            sock.write_all(&payload[pos..end]).unwrap();
                            pos = end;
                        }
                    }
                }
                sock.shutdown(std::net::Shutdown::Write).unwrap();
                // Drain acks until the server closes; the last ack must
                // cover every sample this connection sent.
                let total: u64 = ids.iter().map(|&s| values[s].len() as u64).sum();
                let mut last = 0;
                let mut buf = [0u8; 8];
                while sock.read_exact(&mut buf).is_ok() {
                    last = u64::from_le_bytes(buf);
                }
                assert_eq!(last, total, "conn {c}: final ack short");
            });
        }
    });

    let report = server.shutdown().unwrap();
    assert_eq!(report.stats.clean_closes, CONNS as u64);
    assert_eq!(report.stats.protocol_errors, 0);
    let got = by_stream(&report.events);
    assert_eq!(got.len(), oracle.len(), "stream count differs");
    assert_eq!(got, oracle, "wire replay diverged from in-process oracle");
}
