//! Integration test: the paper's **Table 1 interface** contract, exercised
//! end to end through the facade crate.

use dpd::core::capi::DEFAULT_WINDOW;
use dpd::core::pipeline::DpdBuilder;

#[test]
fn dpd_detects_and_segments() {
    // int DPD(long sample, int *period): nonzero exactly at period starts.
    let mut dpd = DpdBuilder::new().window(32).build_capi().unwrap();
    let mut period = 0i32;
    let addrs: Vec<i64> = (0..7).map(|i| 0x400000 + i * 0x40).collect();
    let mut start_positions = Vec::new();
    for i in 0..700usize {
        if dpd.dpd(addrs[i % 7], &mut period) != 0 {
            assert_eq!(period, 7);
            start_positions.push(i);
        }
    }
    assert!(!start_positions.is_empty());
    for w in start_positions.windows(2) {
        assert_eq!(w[1] - w[0], 7, "marks must be one period apart");
    }
}

#[test]
fn dpd_window_size_adjusts_behaviour() {
    // void DPDWindowSize(int size): a stream whose period exceeds the
    // window is undetectable until the window is enlarged (paper §3.1).
    let period = 40usize;
    let addrs: Vec<i64> = (0..period).map(|i| 0x500000 + i as i64 * 0x40).collect();
    let mut dpd = DpdBuilder::new().window(16).build_capi().unwrap();
    let mut p = 0i32;
    let mut detected_small = false;
    for i in 0..400usize {
        if dpd.dpd(addrs[i % period], &mut p) != 0 {
            detected_small = true;
        }
    }
    assert!(!detected_small, "period 40 must not fit in window 16");
    dpd.dpd_window_size(128);
    let mut detected_large = false;
    for i in 400..1200usize {
        if dpd.dpd(addrs[i % period], &mut p) != 0 {
            detected_large = true;
        }
    }
    assert!(detected_large, "window 128 must capture period 40");
    assert_eq!(p, 40);
}

#[test]
fn default_window_is_large_per_paper_guidance() {
    // §3.1: "the window size N of the periodicity detector should be set
    // initially to a large value"; the paper used up to 1024.
    assert_eq!(DEFAULT_WINDOW, 1024);
    assert_eq!(DpdBuilder::new().build_capi().unwrap().window(), 1024);
}

#[test]
fn interface_survives_phase_changes() {
    let mut dpd = DpdBuilder::new().window(16).build_capi().unwrap();
    let mut p = 0i32;
    // Phase A: period 3; Phase B: aperiodic; Phase C: period 5.
    let mut detections_a = 0;
    for i in 0..120usize {
        detections_a += dpd.dpd([1i64, 2, 3][i % 3], &mut p);
    }
    assert!(detections_a > 0);
    for i in 0..120i64 {
        assert_eq!(dpd.dpd(1_000 + i, &mut p), 0, "aperiodic phase");
    }
    let mut detections_c = 0;
    for i in 0..200usize {
        detections_c += dpd.dpd([10i64, 20, 30, 40, 50][i % 5], &mut p);
    }
    assert!(detections_c > 0);
    assert_eq!(p, 5);
}
