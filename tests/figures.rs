//! Integration test: properties of **Figures 3, 4 and 7**.

use dpd::apps::app::{App, RunConfig};
use dpd::apps::ft::{ft_run, PERIOD_MS};
use dpd::core::detector::FrameDetector;
use dpd::core::pipeline::DpdBuilder;
use dpd::core::segmentation::Segmenter;

#[test]
fn figure3_trace_shape() {
    let run = ft_run(20);
    let t = &run.cpu_trace;
    // 1 ms sampling, up to 16 CPUs, parallelism opened and closed.
    assert_eq!(t.sample_period_ns, 1_000_000);
    assert_eq!(t.max().unwrap(), 16.0);
    let distinct: std::collections::BTreeSet<u64> = t.values.iter().map(|&v| v as u64).collect();
    assert!(
        distinct.len() >= 4,
        "trace should show several parallelism levels: {distinct:?}"
    );
    // Mean parallelism strictly between serial and full-machine.
    let mean = t.mean().unwrap();
    assert!(mean > 2.0 && mean < 15.0, "mean {mean}");
}

#[test]
fn figure4_minimum_at_44() {
    let run = ft_run(20);
    let det = FrameDetector::magnitudes(200, 0.5);
    let report = det.analyze(&run.cpu_trace.values).unwrap();
    let f = report.fundamental.expect("periodicity detected");
    assert_eq!(f.delay, PERIOD_MS as usize);
    // The minimum is deep: d(44) well below the spectrum mean.
    let mean = report.spectrum.mean().unwrap();
    assert!(
        f.value < 0.35 * mean,
        "d(44) = {} not a clear minimum (mean {mean})",
        f.value
    );
}

#[test]
fn figure4_no_sharper_minimum_at_wrong_delay() {
    let run = ft_run(20);
    let det = FrameDetector::magnitudes(200, 0.5);
    let report = det.analyze(&run.cpu_trace.values).unwrap();
    let d44 = report.spectrum.at(44).unwrap();
    for m in 2..=100usize {
        if m % 44 == 0 {
            continue; // harmonics may be as deep
        }
        let dm = report.spectrum.at(m).unwrap();
        assert!(dm >= d44 - 1e-9, "d({m}) = {dm} undercuts d(44) = {d44}");
    }
}

#[test]
fn figure7_marks_are_period_spaced() {
    for app in dpd::apps::spec_apps() {
        let run = app.run(&RunConfig::default());
        let outer = app.expected_periods().into_iter().max().unwrap();
        let window = (2 * outer).next_power_of_two().max(16);
        let mut dpd = DpdBuilder::new().window(window).build_detector().unwrap();
        let mut seg = Segmenter::new();
        for &s in &run.addresses.values {
            seg.observe(dpd.push(s));
        }
        let marks = seg.marks().to_vec();
        assert!(
            marks.len() >= 3,
            "{}: expected several marks, got {}",
            app.name(),
            marks.len()
        );
        for w in marks.windows(2) {
            assert_eq!(
                w[1] - w[0],
                outer as u64,
                "{}: marks must be one outer period apart",
                app.name()
            );
        }
        let segments = seg.finish();
        assert_eq!(
            segments.len(),
            1,
            "{}: steady stream segments once",
            app.name()
        );
        assert_eq!(segments[0].period, outer, "{}", app.name());
    }
}

#[test]
fn figure7_segment_covers_most_of_stream() {
    // The single segment must cover nearly the entire periodic part.
    let run = dpd::apps::tomcatv::Tomcatv.run(&RunConfig::default());
    let (segments, _) = dpd::core::segmentation::segment_events(&run.addresses.values, 16);
    assert_eq!(segments.len(), 1);
    let seg = segments[0];
    let coverage = seg.len() as f64 / run.addresses.len() as f64;
    assert!(coverage > 0.95, "coverage {coverage}");
}
