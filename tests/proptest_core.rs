//! Property-based tests on the DPD core invariants (proptest).

use dpd::core::incremental::{EngineConfig, IncrementalEngine};
use dpd::core::metric::{direct_distance, EventMetric, L1Metric, Metric};
use dpd::core::pipeline::DpdBuilder;
use dpd::core::prediction::PeriodicPredictor;
use dpd::core::spectrum::Spectrum;
use dpd::trace::{io, EventTrace, SampledTrace};
use proptest::prelude::*;

proptest! {
    /// Soundness of equation (2): over a fully periodic stream, d(m) is
    /// zero exactly at multiples of the fundamental period (for delays the
    /// window can judge).
    #[test]
    fn event_metric_zero_iff_periodic(
        period in 1usize..12,
        reps in 6usize..20,
        seed in 0i64..1000,
    ) {
        let pattern: Vec<i64> = (0..period).map(|i| seed + i as i64).collect();
        let len = period * reps;
        let data: Vec<i64> = (0..len).map(|i| pattern[i % period]).collect();
        let n = 2 * period;
        for m in 1..=n.min(len.saturating_sub(n)) {
            if let Some(d) = direct_distance(&EventMetric, &data, n, m) {
                // Pattern values are distinct, so d(m) = 0 ⟺ period | m.
                if m % period == 0 {
                    prop_assert_eq!(d, 0.0, "m={}, period={}", m, period);
                } else {
                    prop_assert_eq!(d, 1.0, "m={}, period={}", m, period);
                }
            }
        }
    }

    /// The incremental engine computes exactly the same distances as the
    /// direct definition, for arbitrary event streams.
    #[test]
    fn incremental_equals_direct(
        data in proptest::collection::vec(0i64..8, 30..200),
        n in 4usize..24,
        m_max in 1usize..16,
    ) {
        let m_max = m_max.min(n);
        let cfg = EngineConfig { frame: n, m_max, resync_interval: 0 };
        let mut e = IncrementalEngine::new(EventMetric, cfg).unwrap();
        for (t, &s) in data.iter().enumerate() {
            e.push(s);
            for m in 1..=m_max {
                if let Some(direct) = direct_distance(&EventMetric, &data[..=t], n, m) {
                    prop_assert_eq!(e.distance(m), Some(direct), "t={}, m={}", t, m);
                }
            }
        }
    }

    /// L1 incremental sums stay within numeric tolerance of the direct
    /// computation even over long streams.
    #[test]
    fn incremental_l1_tolerance(
        data in proptest::collection::vec(-100.0f64..100.0, 50..250),
    ) {
        let cfg = EngineConfig { frame: 16, m_max: 8, resync_interval: 0 };
        let mut e = IncrementalEngine::new(L1Metric, cfg).unwrap();
        for (t, &s) in data.iter().enumerate() {
            e.push(s);
            if t + 1 == data.len() {
                for m in 1..=8 {
                    if let Some(direct) = direct_distance(&L1Metric, &data[..=t], 16, m) {
                        let inc = e.distance(m).unwrap();
                        prop_assert!((inc - direct).abs() < 1e-6, "m={}: {} vs {}", m, inc, direct);
                    }
                }
            }
        }
    }

    /// Streaming detection on an exactly periodic stream locks on the
    /// fundamental period (never a multiple) and marks are period-spaced.
    #[test]
    fn streaming_locks_fundamental(
        period in 2usize..10,
        reps in 30usize..60,
    ) {
        let pattern: Vec<i64> = (0..period).map(|i| 100 + i as i64).collect();
        let data: Vec<i64> = (0..period * reps).map(|i| pattern[i % period]).collect();
        let mut dpd = DpdBuilder::new().window(2 * period + 2).build_detector().unwrap();
        let mut marks = Vec::new();
        for &s in &data {
            let e = dpd.push(s);
            if let dpd::core::streaming::SegmentEvent::PeriodStart { period: p, position } = e {
                prop_assert_eq!(p, period);
                marks.push(position);
            }
        }
        prop_assert!(!marks.is_empty());
        for w in marks.windows(2) {
            prop_assert_eq!(w[1] - w[0], period as u64);
        }
    }

    /// The periodic predictor is perfect on exactly periodic streams.
    #[test]
    fn predictor_perfect_on_periodic(
        period in 1usize..16,
        reps in 4usize..20,
    ) {
        let data: Vec<i64> = (0..period * reps).map(|i| (i % period) as i64).collect();
        let mut p = PeriodicPredictor::new(period);
        for &s in &data {
            p.verify_and_observe(s);
        }
        if let Some(rate) = p.metrics().hit_rate() {
            prop_assert_eq!(rate, 1.0);
        }
    }

    /// fold_harmonics: every output delay divides no earlier output delay,
    /// and every input delay is a multiple of some output delay.
    #[test]
    fn fold_harmonics_properties(
        mut delays in proptest::collection::vec(1usize..200, 1..20),
    ) {
        delays.sort_unstable();
        delays.dedup();
        let folded = Spectrum::fold_harmonics(&delays);
        for (i, &a) in folded.iter().enumerate() {
            for &b in &folded[i + 1..] {
                prop_assert_ne!(b % a, 0, "harmonic {} of {} survived", b, a);
            }
        }
        for &d in &delays {
            prop_assert!(folded.iter().any(|&f| d % f == 0), "{} lost", d);
        }
    }

    /// Metric axioms: pair(a, a) = 0 and pair(a, b) >= 0.
    #[test]
    fn metric_axioms(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(Metric::<i64>::pair(&EventMetric, a, a), 0.0);
        prop_assert!(Metric::<i64>::pair(&EventMetric, a, b) >= 0.0);
        prop_assert_eq!(Metric::<i64>::pair(&L1Metric, a, a), 0.0);
        prop_assert!(Metric::<i64>::pair(&L1Metric, a, b) >= 0.0);
    }

    /// Trace file I/O round-trips arbitrary event traces.
    #[test]
    fn event_trace_io_roundtrip(
        values in proptest::collection::vec(any::<i64>(), 0..100),
    ) {
        let t = EventTrace::from_values("prop", values);
        let mut buf = Vec::new();
        io::write_events(&t, &mut buf).unwrap();
        let back = io::read_events(&buf[..]).unwrap();
        prop_assert_eq!(back, t);
    }

    /// Sampled trace I/O round-trips finite values.
    #[test]
    fn sampled_trace_io_roundtrip(
        values in proptest::collection::vec(-1e12f64..1e12, 0..100),
        period in 1u64..10_000_000,
    ) {
        let t = SampledTrace::from_values("prop", period, values);
        let mut buf = Vec::new();
        io::write_sampled(&t, &mut buf).unwrap();
        let back = io::read_sampled(&buf[..]).unwrap();
        prop_assert_eq!(back.sample_period_ns, t.sample_period_ns);
        prop_assert_eq!(back.values.len(), t.values.len());
        for (a, b) in back.values.iter().zip(&t.values) {
            prop_assert!((a - b).abs() <= f64::EPSILON * a.abs().max(1.0));
        }
    }

    /// A stream whose period exceeds the window never produces a lock
    /// (paper §3.1).
    #[test]
    fn no_lock_beyond_window(
        window in 4usize..16,
        extra in 1usize..20,
    ) {
        let period = window + extra;
        let data: Vec<i64> = (0..period * 30).map(|i| (i % period) as i64).collect();
        let mut dpd = DpdBuilder::new().window(window).build_detector().unwrap();
        for &s in &data {
            let e = dpd.push(s);
            prop_assert_eq!(e.as_return_value(), 0);
        }
    }

    /// RingWindow retains exactly the trailing `capacity` samples.
    #[test]
    fn ring_window_retains_tail(
        data in proptest::collection::vec(any::<i64>(), 1..200),
        cap in 1usize..32,
    ) {
        let mut w = dpd::core::window::RingWindow::new(cap);
        for &v in &data {
            w.push(v);
        }
        let keep = data.len().min(cap);
        let expected: Vec<i64> = data[data.len() - keep..].to_vec();
        prop_assert_eq!(w.to_vec(), expected);
        prop_assert_eq!(w.len(), keep);
        prop_assert_eq!(w.pushed(), data.len() as u64);
    }

    /// RingWindow::resize never loses the most recent samples that fit.
    #[test]
    fn ring_window_resize_preserves_newest(
        data in proptest::collection::vec(any::<i64>(), 1..100),
        cap_a in 1usize..24,
        cap_b in 1usize..24,
    ) {
        let mut w = dpd::core::window::RingWindow::new(cap_a);
        for &v in &data {
            w.push(v);
        }
        let before = w.to_vec();
        w.resize(cap_b);
        let keep = before.len().min(cap_b);
        prop_assert_eq!(w.to_vec(), before[before.len() - keep..].to_vec());
    }

    /// Segmentation invariant on arbitrary periodic-with-phase-changes
    /// streams: segments never overlap and appear in stream order.
    #[test]
    fn segments_never_overlap(
        p1 in 2usize..8,
        p2 in 2usize..8,
        reps1 in 10usize..30,
        reps2 in 10usize..30,
    ) {
        let mut data: Vec<i64> = (0..p1 * reps1).map(|i| (i % p1) as i64).collect();
        data.extend((0..p2 * reps2).map(|i| 100 + (i % p2) as i64));
        let (segments, _) = dpd::core::segmentation::segment_events(&data, 16);
        for w in segments.windows(2) {
            prop_assert!(w[0].end <= w[1].start, "overlap: {:?}", w);
        }
        for s in &segments {
            prop_assert!(s.start < s.end);
            // Untruncated segments span periods * period exactly; a lock
            // loss truncates at most one period's worth off the end.
            let len = s.end - s.start;
            prop_assert!(len <= s.periods * s.period as u64, "{:?}", s);
            prop_assert!(
                len > (s.periods - 1) * s.period as u64,
                "{:?}", s
            );
        }
    }
}
