//! Integration test: full reproduction of the paper's **Table 2**.
//!
//! Each of the five applications is executed on the virtual machine through
//! the DITools interposer; its loop-address stream is analysed by the
//! multi-scale DPD bank; stream lengths and detected periodicity sets must
//! match the paper exactly.

use dpd::apps::app::{App, RunConfig};
use dpd::core::pipeline::{DpdBuilder, DEFAULT_SCALES};

fn detect(app: &dyn App) -> (usize, Vec<usize>) {
    let run = app.run(&RunConfig::default());
    // Batch ingestion path; equivalence with per-sample push is proven by
    // the proptest suite and the per-sample replay in figures.rs.
    let mut bank = DpdBuilder::new()
        .scales(DEFAULT_SCALES)
        .build_multi_scale()
        .unwrap();
    bank.push_slice(&run.addresses.values);
    (run.addresses.len(), bank.detected_periods())
}

#[test]
fn tomcatv_row() {
    let (len, periods) = detect(&dpd::apps::tomcatv::Tomcatv);
    assert_eq!(len, 3750);
    assert_eq!(periods, vec![5]);
}

#[test]
fn swim_row() {
    let (len, periods) = detect(&dpd::apps::swim::Swim);
    assert_eq!(len, 5402);
    assert_eq!(periods, vec![6]);
}

#[test]
fn apsi_row() {
    let (len, periods) = detect(&dpd::apps::apsi::Apsi);
    assert_eq!(len, 5762);
    assert_eq!(periods, vec![6]);
}

#[test]
fn hydro2d_row() {
    let (len, periods) = detect(&dpd::apps::hydro2d::Hydro2d);
    assert_eq!(len, 53814);
    assert_eq!(periods, vec![1, 24, 269]);
}

#[test]
fn turb3d_row() {
    let (len, periods) = detect(&dpd::apps::turb3d::Turb3d);
    assert_eq!(len, 1580);
    assert_eq!(periods, vec![12, 142]);
}

#[test]
fn all_rows_against_declared_expectations() {
    for app in dpd::apps::spec_apps() {
        let (len, periods) = detect(app.as_ref());
        assert_eq!(len, app.expected_stream_len(), "{} length", app.name());
        assert_eq!(periods, app.expected_periods(), "{} periods", app.name());
    }
}

#[test]
fn nested_offline_analysis_agrees_with_streaming() {
    // The off-line NestedDetector must find the same period sets.
    for app in dpd::apps::spec_apps() {
        let run = app.run(&RunConfig::default());
        let nested = dpd::core::nested::NestedDetector::new().analyze(&run.addresses.values);
        assert_eq!(
            nested.periods,
            app.expected_periods(),
            "{} nested analysis",
            app.name()
        );
    }
}
