//! Eviction-edge coverage for [`StreamTable`]: watermark ties,
//! close-after-evict interactions, re-opening an evicted stream in the
//! middle of a forecast — forecast state must reset and every counter must
//! stay consistent — and the interaction of snapshots with eviction:
//! snapshot-then-evict must equal evict-then-snapshot, and restoring a
//! table whose stream closed mid-forecast must keep rollups monotonic.

use dpd::core::pipeline::DpdBuilder;
use dpd::core::shard::{MultiStreamEvent, StreamId};
use dpd::core::snapshot::{Restore, Snapshot};

fn periodic(period: u64, start: u64, len: usize) -> Vec<i64> {
    (0..len as u64)
        .map(|i| ((start + i) % period) as i64)
        .collect()
}

/// The eviction comparison is strict: a stream whose idle gap equals the
/// watermark *exactly* is still live; one more sample of gap evicts it.
#[test]
fn watermark_tie_is_not_an_eviction() {
    for extra in [0u64, 1] {
        let mut table = DpdBuilder::new()
            .window(8)
            .evict_after(50)
            .build_table()
            .unwrap();
        let mut out = Vec::new();
        table.ingest(0, StreamId(0), &periodic(3, 0, 24), &mut out);
        assert_eq!(table.locked_period(StreamId(0)), Some(3));
        // Stream 0's last sample sits at clock 23. A batch arriving at
        // seq such that seq - 23 == 50 (+ extra) probes the boundary.
        let seq = 23 + 50 + extra;
        table.ingest(seq, StreamId(0), &periodic(3, 24, 3), &mut out);
        if extra == 0 {
            assert_eq!(table.stats().evicted, 0, "tie must keep the stream");
            assert_eq!(
                table.locked_period(StreamId(0)),
                Some(3),
                "lock survives a gap of exactly the watermark"
            );
        } else {
            assert_eq!(table.stats().evicted, 1, "gap one past the watermark");
            assert_eq!(table.locked_period(StreamId(0)), None);
        }
    }
}

/// `sweep` uses the same strict comparison as lazy eviction.
#[test]
fn sweep_watermark_tie_is_not_an_eviction() {
    let mut table = DpdBuilder::new()
        .window(8)
        .evict_after(50)
        .build_table()
        .unwrap();
    let mut out = Vec::new();
    table.ingest(0, StreamId(0), &periodic(3, 0, 24), &mut out);
    assert_eq!(table.sweep(23 + 50), 0, "tie survives the sweep");
    assert_eq!(table.len(), 1);
    assert_eq!(table.sweep(23 + 51), 1, "one past the watermark is gone");
    assert!(table.is_empty());
    assert_eq!(table.stats().evicted, 1);
}

/// Closing a stream that a sweep already evicted is a plain
/// unknown-stream close: no flush, no double-counted eviction.
#[test]
fn close_after_sweep_evict_is_a_silent_noop() {
    let mut table = DpdBuilder::new()
        .window(8)
        .evict_after(16)
        .build_table()
        .unwrap();
    let mut out = Vec::new();
    table.ingest(0, StreamId(0), &periodic(3, 0, 24), &mut out);
    assert_eq!(table.sweep(200), 1);
    out.clear();
    assert!(!table.close(200, StreamId(0), &mut out));
    assert!(out.is_empty());
    let stats = table.stats();
    assert_eq!(stats.evicted, 1, "the sweep's eviction, counted once");
    assert_eq!(stats.closed, 0);
    // Whether the eviction happened by sweep or lazily inside close, the
    // observable event stream is identical (none) and the rollups agree.
    let mut lazy = DpdBuilder::new()
        .window(8)
        .evict_after(16)
        .build_table()
        .unwrap();
    let mut lazy_out = Vec::new();
    lazy.ingest(0, StreamId(0), &periodic(3, 0, 24), &mut lazy_out);
    lazy_out.clear();
    assert!(!lazy.close(200, StreamId(0), &mut lazy_out));
    assert!(lazy_out.is_empty());
    assert_eq!(lazy.stats().evicted, stats.evicted);
    assert_eq!(lazy.stats().closed, stats.closed);
}

/// A closed stream id can be re-opened: the close flushed the old state,
/// and the re-opened stream starts from scratch (fresh creation counter).
#[test]
fn reopen_after_close_starts_fresh() {
    let mut table = DpdBuilder::new()
        .window(8)
        .keyed()
        .forecast(1)
        .build_table()
        .unwrap();
    let mut out = Vec::new();
    table.ingest(0, StreamId(9), &periodic(4, 0, 32), &mut out);
    assert!(table.close(32, StreamId(9), &mut out));
    assert_eq!(table.stats().created, 1);
    out.clear();
    table.ingest(32, StreamId(9), &periodic(6, 0, 12), &mut out);
    assert_eq!(table.stats().created, 2);
    assert_eq!(table.locked_period(StreamId(9)), None, "fresh detector");
    let fs = table.forecast_stats(StreamId(9)).unwrap();
    assert_eq!(fs.checked, 0, "fresh forecaster after close + re-open");
}

/// Re-opening an evicted stream mid-forecast: the stream was locked and
/// actively forecasting when it went idle; on return its forecast state
/// (lock, confidence, pending predictions, per-stream statistics) must be
/// reset while the table-level rollups stay monotonic and consistent.
#[test]
fn reopen_of_evicted_stream_mid_forecast_resets_forecast_state() {
    let horizon = 4usize;
    let mut table = DpdBuilder::new()
        .window(8)
        .evict_after(30)
        .forecast(horizon)
        .build_table()
        .unwrap();
    let mut out = Vec::new();

    // Lock and forecast: stream 0 is primed with in-flight predictions
    // (horizon 4 means up to 4 outstanding at any time).
    table.ingest(0, StreamId(0), &periodic(3, 0, 40), &mut out);
    let before = table.forecast_stats(StreamId(0)).unwrap();
    assert!(before.checked > 0, "forecasting was live");
    assert!(before.issued > before.checked, "predictions in flight");
    assert!(table.forecast_confidence(StreamId(0)).unwrap() > 0.9);
    let table_before = table.stats();

    // 100 samples of other traffic put stream 0 far past the watermark.
    table.ingest(40, StreamId(1), &periodic(5, 0, 100), &mut out);

    // Stream 0 returns mid-forecast: its in-flight predictions must not
    // be scored against post-gap samples, its stats must restart, and it
    // must be able to re-lock and forecast again.
    table.ingest(140, StreamId(0), &periodic(3, 1, 2), &mut out);
    let after = table.forecast_stats(StreamId(0)).unwrap();
    assert_eq!(after, Default::default(), "stats restart from zero");
    assert_eq!(table.forecast_confidence(StreamId(0)), Some(0.0));
    assert_eq!(table.locked_period(StreamId(0)), None);
    assert!(table.forecast(StreamId(0), 1).is_none());

    let stats = table.stats();
    assert_eq!(stats.evicted, 1);
    assert_eq!(stats.created, 3, "streams 0, 1, and the re-creation");
    assert!(
        stats.forecast_checked >= table_before.forecast_checked,
        "table rollups are monotonic across evictions"
    );
    // The dropped in-flight predictions are simply gone — not scored:
    // checked grew only by stream 1's post-lock scoring.
    let s1 = table.forecast_stats(StreamId(1)).unwrap();
    assert_eq!(
        stats.forecast_checked,
        table_before.forecast_checked + s1.checked,
        "no stale stream-0 prediction was scored after the eviction"
    );

    // And the revived stream forecasts again after a fresh lock.
    table.ingest(142, StreamId(0), &periodic(3, 3, 30), &mut out);
    assert_eq!(table.locked_period(StreamId(0)), Some(3));
    let revived = table.forecast_stats(StreamId(0)).unwrap();
    assert!(revived.checked > 0);
    assert_eq!(revived.hit_rate(), Some(1.0));
    assert!(table.forecast(StreamId(0), horizon).is_some());
}

/// Event counters and emitted events agree across every lifecycle edge.
#[test]
fn event_counters_stay_consistent_across_evict_close_reopen() {
    let builder = DpdBuilder::new().window(8).evict_after(20).forecast(2);
    let mut table = builder.build_table().unwrap();
    let mut out = Vec::new();
    table.ingest(0, StreamId(3), &periodic(2, 0, 30), &mut out);
    table.ingest(30, StreamId(4), &periodic(3, 0, 60), &mut out); // 3 idles out
    table.ingest(90, StreamId(3), &periodic(2, 0, 30), &mut out); // re-created
    table.close(120, StreamId(3), &mut out);
    table.close(120, StreamId(3), &mut out); // double close: no-op
    table.close_all(120, &mut out);

    let stats = table.stats();
    assert_eq!(stats.events, out.len() as u64, "every event was counted");
    let closes = out
        .iter()
        .filter(|e| matches!(e, MultiStreamEvent::Closed { .. }))
        .count() as u64;
    assert_eq!(stats.closed, closes);
    // Stream 3 closes for real (fresh activity at clock 90..120); stream
    // 4 last sampled at clock 89, so its close at 120 finds it idle past
    // the watermark and evicts silently instead — the second eviction.
    assert_eq!(stats.closed, 1, "only stream 3 was live enough to flush");
    assert_eq!(stats.evicted, 2, "idle-out of 3, close-time evict of 4");
    assert_eq!(stats.created, 3);
    assert_eq!(stats.samples, 120);
    assert_eq!(stats.streams, 0);
}

// ---------------------------------------------------------------------
// Snapshot / eviction interactions. A checkpoint can land on either side
// of a sweep; both orders must converge on the same durable state.

/// Driving identical input into two tables and comparing events, stats
/// and final snapshot bytes — the differential harness for the tests
/// below.
fn drive_and_compare(a: &mut dpd::core::StreamTable, b: &mut dpd::core::StreamTable) {
    let mut ea = Vec::new();
    let mut eb = Vec::new();
    for round in 0u64..6 {
        for s in [0u64, 1, 7] {
            let chunk = periodic(3 + s, round * 11, 11);
            a.ingest(200 + round * 33, StreamId(s), &chunk, &mut ea);
            b.ingest(200 + round * 33, StreamId(s), &chunk, &mut eb);
        }
    }
    a.close_all(500, &mut ea);
    b.close_all(500, &mut eb);
    assert_eq!(ea, eb, "continued runs emit identical events");
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.snapshot(), b.snapshot(), "final states are bit-identical");
}

/// Snapshot-then-evict equals evict-then-snapshot: whether the idle
/// sweep runs before the checkpoint or after the restore, the surviving
/// state — streams, rollups, forecast statistics, and every future
/// event — is identical. (The rollup counters themselves live in the
/// snapshot, so the evicted count agrees too: the sweep happens exactly
/// once on each path, just on different sides of the serialization.)
#[test]
fn snapshot_then_evict_equals_evict_then_snapshot() {
    let builder = DpdBuilder::new().window(8).evict_after(30).forecast(2);
    let seed = |out: &mut Vec<MultiStreamEvent>| {
        let mut t = builder.build_table().unwrap();
        t.ingest(0, StreamId(0), &periodic(3, 0, 40), out); // will idle out
        t.ingest(40, StreamId(1), &periodic(5, 0, 40), out); // stays live
        t
    };
    let mut out = Vec::new();

    // Path A: checkpoint first, sweep after the restore.
    let table_a = seed(&mut out);
    let mut restored_a = dpd::core::StreamTable::restore(&table_a.snapshot()).unwrap();
    assert_eq!(restored_a.sweep(100), 1, "stream 0 idles out after restore");

    // Path B: sweep first, checkpoint the post-sweep state.
    let mut table_b = seed(&mut out);
    assert_eq!(table_b.sweep(100), 1, "stream 0 idles out before snapshot");
    let mut restored_b = dpd::core::StreamTable::restore(&table_b.snapshot()).unwrap();

    assert_eq!(restored_a.stats(), restored_b.stats());
    assert_eq!(restored_a.len(), restored_b.len());
    assert_eq!(
        restored_a.locked_period(StreamId(1)),
        restored_b.locked_period(StreamId(1))
    );
    drive_and_compare(&mut restored_a, &mut restored_b);
}

/// Restoring a table whose stream closed in the middle of an active
/// forecast: the close already scored what it could and flushed the
/// stream, so the restored table must carry the full rollups forward —
/// monotonic across the restore — and behave exactly like the original
/// table that never went through serialization.
#[test]
fn restore_after_close_mid_forecast_keeps_rollups_monotonic() {
    let builder = DpdBuilder::new().window(8).evict_after(200).forecast(4);
    let mut table = builder.build_table().unwrap();
    let mut out = Vec::new();

    // Lock and forecast, then close with predictions still in flight.
    table.ingest(0, StreamId(0), &periodic(3, 0, 40), &mut out);
    let live = table.forecast_stats(StreamId(0)).unwrap();
    assert!(live.issued > live.checked, "predictions in flight at close");
    assert!(table.close(40, StreamId(0), &mut out));
    let closed_stats = table.stats();
    assert!(closed_stats.forecast_checked > 0);
    assert_eq!(closed_stats.closed, 1);

    // The restore is lossless: same rollups, bit-identical re-snapshot.
    let mut restored = dpd::core::StreamTable::restore(&table.snapshot()).unwrap();
    assert_eq!(
        restored.stats(),
        closed_stats,
        "rollups survive the restore"
    );
    assert_eq!(restored.snapshot(), table.snapshot());

    // New traffic only ever grows the monotonic rollups, on both tables
    // identically — the closed stream's dropped in-flight predictions
    // are gone on both sides, never re-scored.
    drive_and_compare(&mut table, &mut restored);
    assert!(restored.stats().forecast_checked >= closed_stats.forecast_checked);
    assert!(restored.stats().closed >= closed_stats.closed);
}

// ---------------------------------------------------------------------
// Tier-transition properties (hot → cold → gone) for the slab store:
// random traffic with idle gaps under eviction + cold retention.

use dpd::core::{StreamTable, StreamTier};
use proptest::collection;
use proptest::prelude::*;

/// `(stream, idle-gap-before-batch, len)` triples from random words. Gaps
/// range over [0, 120): across the hot band, the cold band and beyond.
fn gapped_schedule(words: &[u64], streams: u64) -> Vec<(u64, u64, usize)> {
    words
        .iter()
        .map(|&w| {
            let stream = w % streams;
            let gap = (w >> 8) % 120;
            let len = ((w >> 24) % 30 + 1) as usize;
            (stream, gap, len)
        })
        .collect()
}

proptest! {
    /// Hot→cold→gone transitions keep every rollup monotonic and the tier
    /// invariants intact after every batch.
    #[test]
    fn tier_transitions_preserve_rollup_monotonicity(
        words in collection::vec(any::<u64>(), 1..40),
        horizon in 0usize..3,
        cold_retain in 1u64..80,
    ) {
        let mut b = DpdBuilder::new()
            .window(8)
            .evict_after(24)
            .cold_summary(cold_retain);
        if horizon > 0 {
            b = b.forecast(horizon);
        }
        let mut table = b.build_table().unwrap();
        let mut out = Vec::new();
        let mut seq = 0u64;
        let mut prev = table.stats();
        for (stream, gap, len) in gapped_schedule(&words, 4) {
            seq += gap;
            table.ingest(seq, StreamId(stream), &periodic(3 + stream, 0, len), &mut out);
            seq += len as u64;
            let st = table.stats();
            for (name, was, now) in [
                ("created", prev.created, st.created),
                ("samples", prev.samples, st.samples),
                ("events", prev.events, st.events),
                ("evicted", prev.evicted, st.evicted),
                ("closed", prev.closed, st.closed),
                ("demoted", prev.demoted, st.demoted),
                ("promoted", prev.promoted, st.promoted),
                ("forecast_checked", prev.forecast_checked, st.forecast_checked),
                ("forecast_hits", prev.forecast_hits, st.forecast_hits),
            ] {
                prop_assert!(now >= was, "{} went backwards: {} -> {}", name, was, now);
            }
            prop_assert!(st.cold <= st.streams);
            prop_assert!(st.promoted <= st.demoted, "promotions need demotions");
            prop_assert!(
                st.demoted <= st.cold + st.promoted + st.evicted + st.closed,
                "every demotion is cold, promoted, evicted or closed: {:?}", st
            );
            prop_assert_eq!(st.streams, table.len() as u64);
            prev = st;
        }
    }

    /// A cold stream re-promoted on new samples restores its
    /// summary-derived lifetime counters exactly — across the freeze and
    /// across the revival.
    #[test]
    fn cold_repromotion_restores_summary_counters_exactly(
        period in 2u64..7,
        len in 12usize..60,
        cold_gap in 1u64..100,
        horizon in 0usize..3,
    ) {
        let mut b = DpdBuilder::new().window(8).evict_after(24).cold_summary(100);
        if horizon > 0 {
            b = b.forecast(horizon);
        }
        let mut table = b.build_table().unwrap();
        let mut out = Vec::new();
        table.ingest(0, StreamId(0), &periodic(period, 0, len), &mut out);
        let before = table.summary(StreamId(0)).unwrap();
        let last = len as u64 - 1;
        // Sweep inside the cold band: 24 < gap <= 124.
        let clock = last + 25 + cold_gap;
        table.sweep(clock);
        let h = table.resolve(StreamId(0)).unwrap();
        prop_assert_eq!(table.tier_of(h), Some(StreamTier::Cold));
        let frozen = table.summary_of(h).unwrap();
        prop_assert_eq!(frozen.samples, before.samples);
        prop_assert_eq!(frozen.boundaries, before.boundaries);
        prop_assert_eq!(frozen.forecast_checked, before.forecast_checked);
        prop_assert_eq!(frozen.forecast_hits, before.forecast_hits);
        prop_assert_eq!(frozen.period, before.period);
        // Return with one sample, still inside the cold band.
        table.ingest(clock, StreamId(0), &[0], &mut out);
        prop_assert_eq!(
            table.tier_of(table.resolve(StreamId(0)).unwrap()),
            Some(StreamTier::Hot)
        );
        let after = table.summary(StreamId(0)).unwrap();
        prop_assert_eq!(after.samples, before.samples + 1);
        prop_assert_eq!(after.boundaries, before.boundaries);
        prop_assert_eq!(after.forecast_checked, before.forecast_checked);
        prop_assert_eq!(after.forecast_hits, before.forecast_hits);
        let st = table.stats();
        prop_assert_eq!(
            (st.demoted, st.promoted, st.evicted, st.created),
            (1, 1, 0, 1)
        );
    }

    /// Interleaving eager sweeps anywhere in a cold-tier schedule never
    /// changes the event stream, the rollups, or the durable snapshot.
    #[test]
    fn sweep_schedule_is_unobservable_with_cold_tier(
        words in collection::vec(any::<u64>(), 1..30),
        sweep_mask in any::<u32>(),
    ) {
        let builder = DpdBuilder::new()
            .window(8)
            .evict_after(24)
            .cold_summary(60)
            .forecast(1);
        let mut lazy = builder.build_table().unwrap();
        let mut eager = builder.build_table().unwrap();
        let (mut el, mut ee) = (Vec::new(), Vec::new());
        let mut seq = 0u64;
        for (i, (stream, gap, len)) in gapped_schedule(&words, 4).into_iter().enumerate() {
            seq += gap;
            let chunk = periodic(3 + stream, 0, len);
            lazy.ingest(seq, StreamId(stream), &chunk, &mut el);
            eager.ingest(seq, StreamId(stream), &chunk, &mut ee);
            seq += len as u64;
            if sweep_mask & (1 << (i % 32)) != 0 {
                eager.sweep(seq);
            }
        }
        // One final sweep on both sides so the resident tiers agree before
        // the byte-level comparison.
        lazy.sweep(seq);
        eager.sweep(seq);
        lazy.close_all(seq, &mut el);
        eager.close_all(seq, &mut ee);
        prop_assert_eq!(el, ee, "sweeps changed the event stream");
        prop_assert_eq!(lazy.stats(), eager.stats());
        prop_assert_eq!(lazy.snapshot(), eager.snapshot());
    }
}

// ---------------------------------------------------------------------
// Standing-query edges: evictions must exit memberships, stale handles
// must stay inert, and checkpoints taken mid-membership must restore the
// engine bit-identically.

use dpd::core::query::{QueryChange, QueryDelta, QueryId, QuerySpec};

fn drain_deltas(table: &mut StreamTable) -> Vec<QueryDelta> {
    let mut v = Vec::new();
    table.drain_query_deltas(&mut v);
    v
}

/// An eviction — lazy (gap observed on return) or eager (sweep) — exits
/// every membership the evicted incarnation held.
#[test]
fn eviction_exits_standing_query_memberships() {
    let specs = [QuerySpec::PeriodInRange { lo: 2, hi: 5 }];
    let mut table = DpdBuilder::new()
        .window(8)
        .evict_after(30)
        .standing_queries(&specs)
        .build_table()
        .unwrap();
    let mut out = Vec::new();
    table.ingest(0, StreamId(7), &periodic(3, 0, 24), &mut out);
    let deltas = drain_deltas(&mut table);
    assert_eq!(deltas.len(), 1);
    assert_eq!(
        (deltas[0].query, deltas[0].stream, deltas[0].change),
        (QueryId(0), StreamId(7), QueryChange::Enter)
    );
    // Eager path: the sweep that evicts stamps the exit at its own clock.
    assert_eq!(table.sweep(100), 1);
    let deltas = drain_deltas(&mut table);
    assert_eq!(deltas.len(), 1);
    assert_eq!(
        (deltas[0].seq, deltas[0].change),
        (100, QueryChange::Exit),
        "eviction must exit the membership at the sweep clock"
    );
    assert!(table
        .query_engine()
        .unwrap()
        .members(QueryId(0))
        .unwrap()
        .is_empty());

    // Lazy path: the stream returns past the watermark; the stale
    // incarnation exits before the fresh one re-enters.
    let mut table = DpdBuilder::new()
        .window(8)
        .evict_after(30)
        .standing_queries(&specs)
        .build_table()
        .unwrap();
    table.ingest(0, StreamId(7), &periodic(3, 0, 24), &mut out);
    drain_deltas(&mut table);
    table.ingest(200, StreamId(7), &periodic(3, 0, 24), &mut out);
    let deltas = drain_deltas(&mut table);
    assert_eq!(deltas[0].change, QueryChange::Exit, "stale incarnation");
    assert_eq!(deltas[0].seq, 200, "exit at the observing batch's clock");
    assert_eq!(deltas[1].change, QueryChange::Enter, "fresh incarnation");
    assert!(deltas[1].seq > 200, "re-lock happens after the return");
    let st = table.stats();
    assert_eq!((st.query_enters, st.query_exits), (2, 1));
}

/// A handle into an evicted incarnation is rejected without touching the
/// query engine: no deltas, no membership changes, no clock movement.
#[test]
fn stale_handle_ingest_is_inert_for_queries() {
    let specs = [QuerySpec::PeriodInRange { lo: 2, hi: 5 }];
    let mut table = DpdBuilder::new()
        .window(8)
        .evict_after(20)
        .standing_queries(&specs)
        .build_table()
        .unwrap();
    let mut out = Vec::new();
    table.ingest(0, StreamId(1), &periodic(3, 0, 24), &mut out);
    let stale = table.resolve(StreamId(1)).unwrap();
    assert_eq!(table.sweep(100), 1, "incarnation dies under the handle");
    drain_deltas(&mut table);
    let clock = table.query_engine().unwrap().clock();

    assert!(
        !table.ingest_handle(100, stale, &periodic(3, 0, 12), &mut out),
        "stale handle must be rejected"
    );
    assert!(
        drain_deltas(&mut table).is_empty(),
        "no deltas from a reject"
    );
    assert_eq!(table.query_engine().unwrap().clock(), clock);

    // Same rejection once the id is re-created: the handle's generation
    // is stale even though the id is live again.
    table.ingest(100, StreamId(1), &periodic(3, 0, 24), &mut out);
    let enters = drain_deltas(&mut table);
    assert_eq!(enters.len(), 1, "fresh incarnation re-enters from scratch");
    assert!(!table.ingest_handle(124, stale, &periodic(3, 24, 6), &mut out));
    assert!(drain_deltas(&mut table).is_empty());
    assert!(table
        .query_engine()
        .unwrap()
        .is_member(QueryId(0), StreamId(1)));
}

/// A checkpoint taken mid-membership — active memberships and a parked
/// lock-lost deadline in flight — restores bit-identically: re-snapshot
/// equals the original bytes, and the restored table's future delta
/// stream matches the uninterrupted run exactly.
#[test]
fn checkpoint_mid_membership_restores_bit_identically() {
    let specs = [
        QuerySpec::PeriodInRange { lo: 2, hi: 5 },
        QuerySpec::LockLostWithin { window: 40 },
    ];
    let builder = DpdBuilder::new()
        .window(8)
        .evict_after(120)
        .standing_queries(&specs);
    let mut table = builder.build_table().unwrap();
    let mut out = Vec::new();
    // Stream 0 locks (period member), then goes aperiodic: loss at some
    // seq L arms a lock-lost deadline at L + 40 that is still parked when
    // the checkpoint lands.
    table.ingest(0, StreamId(0), &periodic(3, 0, 24), &mut out);
    let noise: Vec<i64> = (0..10).map(|i| 1000 + i * 17).collect();
    table.ingest(24, StreamId(0), &noise, &mut out);
    table.ingest(34, StreamId(1), &periodic(4, 0, 20), &mut out);
    let prefix = drain_deltas(&mut table);
    assert!(
        prefix
            .iter()
            .any(|d| d.query == QueryId(1) && d.change == QueryChange::Enter),
        "lock-lost membership active at the checkpoint"
    );

    let bytes = table.snapshot();
    let mut restored = StreamTable::restore(&bytes).unwrap();
    assert_eq!(restored.snapshot(), bytes, "re-snapshot is bit-identical");
    assert_eq!(
        restored.query_engine().unwrap().members(QueryId(1)),
        table.query_engine().unwrap().members(QueryId(1))
    );

    // The suffix drives the parked deadline past expiry on both tables;
    // deltas, events and final states must be indistinguishable.
    let (mut eo, mut er) = (Vec::new(), Vec::new());
    for round in 0u64..6 {
        for s in [0u64, 1] {
            let chunk = periodic(3 + s, round * 7, 7);
            table.ingest(54 + round * 14, StreamId(s), &chunk, &mut eo);
            restored.ingest(54 + round * 14, StreamId(s), &chunk, &mut er);
        }
    }
    table.close_all(200, &mut eo);
    restored.close_all(200, &mut er);
    assert_eq!(eo, er, "suffix events diverged after restore");
    let (do_, dr) = (drain_deltas(&mut table), drain_deltas(&mut restored));
    assert_eq!(do_, dr, "suffix deltas diverged after restore");
    assert!(
        do_.iter()
            .any(|d| d.query == QueryId(1) && d.change == QueryChange::Exit),
        "the parked deadline fired in the suffix"
    );
    assert_eq!(table.stats(), restored.stats());
    assert_eq!(table.snapshot(), restored.snapshot());
}

/// A table holding all three tiers at once — a hot stream, a cold
/// summary, and a closed (gone) id — snapshot/restores losslessly: same
/// rollups, same tier membership, bit-identical re-snapshot, and
/// truncated images error instead of panicking.
#[test]
fn snapshot_roundtrips_a_three_tier_table() {
    let builder = DpdBuilder::new()
        .window(8)
        .evict_after(16)
        .cold_summary(200)
        .forecast(2);
    let mut table = builder.build_table().unwrap();
    let mut out = Vec::new();
    table.ingest(0, StreamId(0), &periodic(3, 0, 24), &mut out); // → cold
    table.ingest(24, StreamId(1), &periodic(4, 0, 24), &mut out); // → closed
    table.close(48, StreamId(1), &mut out);
    table.ingest(48, StreamId(2), &periodic(5, 0, 24), &mut out); // stays hot
    table.sweep(72); // stream 0: gap 49 past the watermark, inside cold band
    let st = table.stats();
    assert_eq!((st.streams, st.cold, st.closed), (2, 1, 1));

    let bytes = table.snapshot();
    let mut restored = StreamTable::restore(&bytes).unwrap();
    assert_eq!(restored.stats(), table.stats());
    assert_eq!(restored.snapshot(), bytes, "re-snapshot is bit-identical");
    let h = restored.resolve(StreamId(0)).unwrap();
    assert_eq!(restored.tier_of(h), Some(StreamTier::Cold));
    assert_eq!(restored.summary_of(h).unwrap().period, Some(3));
    let h2 = restored.resolve(StreamId(2)).unwrap();
    assert_eq!(restored.tier_of(h2), Some(StreamTier::Hot));

    for cut in 0..bytes.len() {
        assert!(
            StreamTable::restore(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes restored successfully"
        );
    }
    drive_and_compare(&mut table, &mut restored);
}
