//! Property tests: the delta-evaluated standing-query engine equals a
//! naive full-rescan oracle.
//!
//! The engine's central claim is *semi-naive evaluation*: it consumes
//! only the per-sample deltas (`PeriodStart`/`PeriodLost`, scored
//! forecasts, retirements) and maintains memberships incrementally,
//! never rescanning the fact base. The oracle here does the opposite —
//! after every wave it re-evaluates every query from scratch over
//! [`QueryEngine::tracked`] (the engine's fact base, which is plain
//! state, not derived membership) — and the two must agree exactly:
//!
//! * **Differential membership.** After every ingest/close wave, for
//!   every query, `members(q)` == the set of tracked streams the spec
//!   matches when re-evaluated naively (period ranges, loss recency,
//!   confidence thresholds, cross-stream period joins).
//! * **Delta soundness.** Folding the emitted `Enter`/`Exit` deltas
//!   reproduces the membership sets, and per `(query, stream)` pair the
//!   deltas strictly alternate starting with `Enter`, with
//!   non-decreasing sequence numbers.
//! * **Shard invariance.** For per-stream queries the merged delta log
//!   of the sharded service — any shard count — is a permutation of the
//!   inline reference's (joins are partition-local by design and are
//!   exercised in the inline property).
//!
//! Waves include eviction watermarks, explicit closes, and re-opens of
//! closed/evicted streams (a fresh incarnation must re-enter from
//! scratch).

use dpd::core::pipeline::DpdBuilder;
use dpd::core::query::{QueryChange, QueryDelta, QueryId, QuerySpec, TrackedStream};
use dpd::core::shard::StreamId;
use dpd::runtime::service::MultiStreamDpd;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// One decoded frontend operation (same shape as `proptest_multistream`).
#[derive(Debug, Clone)]
enum Op {
    Ingest {
        stream: u64,
        period: u64,
        start: u64,
        len: usize,
        aperiodic: bool,
    },
    Close {
        stream: u64,
    },
}

fn decode(word: u64, streams: u64) -> Op {
    let stream = word % streams;
    let kind = (word >> 8) % 8;
    if kind == 0 {
        Op::Close { stream }
    } else {
        Op::Ingest {
            stream,
            period: (word >> 16) % 9 + 1,
            start: (word >> 24) % 64,
            len: ((word >> 32) % 40) as usize,
            aperiodic: (word >> 44) & 0b11 == 0,
        }
    }
}

/// Decode a random query set (1..=4 specs) from one word. Every decoded
/// spec is valid by construction.
fn decode_specs(word: u64) -> Vec<QuerySpec> {
    let count = (word % 4 + 1) as usize;
    let mut specs = Vec::with_capacity(count);
    let mut w = word;
    for _ in 0..count {
        w = w.rotate_left(13).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let lo = (w >> 3) % 6 + 1;
        specs.push(match (w >> 1) % 4 {
            0 => QuerySpec::PeriodInRange {
                lo: lo as usize,
                hi: (lo + (w >> 7) % 6) as usize,
            },
            1 => QuerySpec::LockLostWithin {
                window: (w >> 5) % 60 + 1,
            },
            2 => QuerySpec::ConfidenceAtLeast {
                threshold: ((w >> 9) % 9 + 1) as f64 / 10.0,
            },
            _ => QuerySpec::PeriodJoin {
                tolerance: ((w >> 11) % 3) as usize,
            },
        });
    }
    specs
}

/// The full-rescan oracle: does `spec` match tracked stream `t` given
/// the complete fact base `all` at global clock `clock`? This is the
/// definition the engine's incremental evaluation must reproduce.
fn oracle_matches(spec: &QuerySpec, t: &TrackedStream, all: &[TrackedStream], clock: u64) -> bool {
    match *spec {
        QuerySpec::PeriodInRange { lo, hi } => t.period.is_some_and(|p| p >= lo && p <= hi),
        QuerySpec::LockLostWithin { window } => {
            // Enter at the loss, exit fires once `loss + window <= clock`.
            t.last_loss
                .is_some_and(|l| l.saturating_add(window) > clock)
        }
        QuerySpec::ConfidenceAtLeast { threshold } => t.confidence >= threshold,
        QuerySpec::PeriodJoin { tolerance } => t.period.is_some_and(|p| {
            all.iter().any(|o| {
                o.stream != t.stream && o.period.is_some_and(|q| p.abs_diff(q) <= tolerance)
            })
        }),
    }
}

/// Fold a delta log into per-query membership sets, asserting the
/// alternation invariant along the way.
fn fold_deltas(deltas: &[QueryDelta], membership: &mut BTreeMap<(u32, u64), bool>) {
    let mut last_seq = 0u64;
    for d in deltas {
        prop_assert!(d.seq >= last_seq, "delta seq went backwards: {d:?}");
        last_seq = d.seq;
        let key = (d.query.0, d.stream.0);
        let inside = membership.get(&key).copied().unwrap_or(false);
        match d.change {
            QueryChange::Enter => {
                prop_assert!(!inside, "double Enter for {d:?}");
                membership.insert(key, true);
            }
            QueryChange::Exit => {
                prop_assert!(inside, "Exit without Enter for {d:?}");
                membership.insert(key, false);
            }
        }
    }
}

/// Generate the samples of one ingest op.
fn samples_of(op: &Op, fresh: &mut i64) -> Vec<i64> {
    match op {
        Op::Ingest {
            stream,
            period,
            start,
            len,
            aperiodic,
        } => (0..*len as u64)
            .map(|k| {
                if *aperiodic {
                    *fresh += 1;
                    *fresh
                } else {
                    0x1000 + (*stream as i64) * 0x100 + ((start + k) % period) as i64
                }
            })
            .collect(),
        Op::Close { .. } => Vec::new(),
    }
}

proptest! {
    /// The tentpole differential property: incremental membership equals
    /// the full-rescan oracle after every wave, deltas fold back to the
    /// same sets, and Enter/Exit strictly alternate — under random
    /// traces, random query sets, eviction watermarks and closes.
    #[test]
    fn incremental_equals_full_rescan_oracle(
        words in proptest::collection::vec(any::<u64>(), 5..50),
        spec_word in any::<u64>(),
        streams in 1u64..8,
        evict in 0u64..120,
    ) {
        // evict < 10 means "no watermark" (the shim has no Option strategy).
        let specs = decode_specs(spec_word);
        let mut builder = DpdBuilder::new()
            .window(8)
            .forecast(1)
            .standing_queries(&specs);
        if evict >= 10 {
            builder = builder.evict_after(evict);
        }
        let mut table = builder.build_table().unwrap();
        let mut fresh = 0x7F00_0000i64;
        let mut seq = 0u64;
        let mut sink = Vec::new();
        let mut deltas = Vec::new();
        let mut membership: BTreeMap<(u32, u64), bool> = BTreeMap::new();

        for op in words.iter().map(|&w| decode(w, streams)) {
            match &op {
                Op::Ingest { stream, .. } => {
                    let samples = samples_of(&op, &mut fresh);
                    table.ingest(seq, StreamId(*stream), &samples, &mut sink);
                    seq += samples.len() as u64;
                }
                Op::Close { stream } => {
                    table.close(seq, StreamId(*stream), &mut sink);
                }
            }
            let round = {
                let mut v = Vec::new();
                table.drain_query_deltas(&mut v);
                v
            };
            fold_deltas(&round, &mut membership);
            deltas.extend(round);

            // Full rescan after the wave: re-evaluate every spec over the
            // engine's fact base and compare with the incremental sets.
            let engine = table.query_engine().expect("queries attached");
            let tracked = engine.tracked();
            let clock = engine.clock();
            for (i, spec) in specs.iter().enumerate() {
                let expect: Vec<StreamId> = tracked
                    .iter()
                    .filter(|t| oracle_matches(spec, t, &tracked, clock))
                    .map(|t| t.stream)
                    .collect();
                let got = engine.members(QueryId(i as u32)).expect("registered id");
                prop_assert_eq!(
                    got, expect,
                    "query#{} {:?} diverged from the oracle at clock {}",
                    i, spec, clock
                );
                // The folded delta log agrees with the incremental sets.
                for t in &tracked {
                    let folded = membership
                        .get(&(i as u32, t.stream.0))
                        .copied()
                        .unwrap_or(false);
                    prop_assert_eq!(
                        folded,
                        engine.is_member(QueryId(i as u32), t.stream),
                        "folded deltas disagree for query#{} {:?}",
                        i, t.stream
                    );
                }
            }
        }

        // Closing everything exits every remaining membership: the fold
        // of the complete log ends empty.
        table.close_all(seq, &mut sink);
        let mut tail = Vec::new();
        table.drain_query_deltas(&mut tail);
        fold_deltas(&tail, &mut membership);
        deltas.extend(tail);
        prop_assert!(
            membership.values().all(|&inside| !inside),
            "memberships survive close_all"
        );
        let enters = deltas.iter().filter(|d| d.change == QueryChange::Enter).count();
        prop_assert_eq!(enters * 2, deltas.len(), "unbalanced Enter/Exit log");
        let stats = table.stats();
        prop_assert_eq!(stats.query_enters as usize, enters);
        prop_assert_eq!(stats.query_exits as usize, enters);
    }

    /// Shard invariance: for per-stream queries the sharded service's
    /// merged delta log is a permutation of the inline reference's, for
    /// every shard count (streams are owned by exactly one shard, so
    /// per-stream delta order is preserved; cross-shard interleaving is
    /// canonicalized by sorting).
    #[test]
    fn sharded_delta_log_is_permutation_of_inline(
        words in proptest::collection::vec(any::<u64>(), 5..40),
        streams in 1u64..8,
        evict in 0u64..120,
    ) {
        let specs = [
            QuerySpec::PeriodInRange { lo: 2, hi: 5 },
            QuerySpec::LockLostWithin { window: 30 },
            QuerySpec::ConfidenceAtLeast { threshold: 0.5 },
        ];
        let run = |shards: usize| {
            let mut builder = DpdBuilder::new()
                .window(8)
                .forecast(1)
                .standing_queries(&specs)
                .shards(shards);
            if evict >= 20 {
                builder = builder.evict_after(evict);
            }
            let mut svc = MultiStreamDpd::from_builder(&builder).unwrap();
            let mut fresh = 0x7F00_0000i64;
            let mut deltas = Vec::new();
            for (i, op) in words.iter().map(|&w| decode(w, streams)).enumerate() {
                match &op {
                    Op::Ingest { stream, .. } => {
                        let samples = samples_of(&op, &mut fresh);
                        svc.ingest(&[(StreamId(*stream), &samples)]);
                    }
                    Op::Close { stream } => svc.close(StreamId(*stream)),
                }
                if i % 5 == 0 {
                    // Mid-run draining must never lose or duplicate.
                    deltas.extend(svc.drain_query_deltas());
                }
            }
            let (_, tail, _) = svc.finish_with_deltas();
            deltas.extend(tail);
            deltas.sort_by_key(|d| (d.seq, d.query.0, d.stream.0, d.change == QueryChange::Exit));
            deltas
        };
        let reference = run(0);
        for shards in [1usize, 2, 4] {
            let got = run(shards);
            prop_assert_eq!(&got, &reference, "shards={} diverged", shards);
        }
    }
}
