//! Property-based tests for the substrate and extension modules.

use dpd::core::intervals::{recommend, IntervalPolicy};
use dpd::core::periodogram::PeriodogramDetector;
use dpd::runtime::machine::{LoopSpec, Machine, MachineConfig};
use dpd::runtime::msg::{NetConfig, ProcessGroup};
use dpd::runtime::sched::{AllocationPolicy, Equipartition, PerformanceDriven, SpeedupCurve};
use dpd::trace::quantize;
use dpd::trace::SampledTrace;
use proptest::prelude::*;

proptest! {
    /// Machine cost model: parallel elapsed time never exceeds the serial
    /// time for loops with enough work, and speedup never exceeds p.
    #[test]
    fn machine_speedup_bounds(
        iterations in 64u64..4096,
        cost in 1_000u64..1_000_000,
        cpus in 2usize..16,
        serial_pct in 0u8..100,
    ) {
        let m = Machine::new(MachineConfig::default());
        let spec = LoopSpec {
            iterations,
            cost_per_iter_ns: cost,
            serial_fraction: serial_pct as f64 / 100.0,
        };
        let s = m.predict_speedup(&spec, cpus);
        prop_assert!(s <= cpus as f64 + 1e-9, "S = {} > p = {}", s, cpus);
        prop_assert!(s > 0.0);
    }

    /// Machine cost model is monotone in work: more iterations never take
    /// less time at the same CPU count.
    #[test]
    fn machine_monotone_in_work(
        base in 16u64..2048,
        extra in 1u64..2048,
        cpus in 1usize..16,
    ) {
        let m = Machine::new(MachineConfig::default());
        let spec_a = LoopSpec::parallel(base, 10_000);
        let spec_b = LoopSpec::parallel(base + extra, 10_000);
        prop_assert!(m.predict_loop_ns(&spec_b, cpus) >= m.predict_loop_ns(&spec_a, cpus));
    }

    /// Message substrate: a receive never completes before the send's
    /// injection, and transfer time grows with message size.
    #[test]
    fn msg_recv_after_send(
        bytes in 0u64..1_000_000,
        pre_work in 0u64..1_000_000,
    ) {
        let mut g = ProcessGroup::new(2, 4, NetConfig::default());
        g.machine(0).run_serial(pre_work);
        g.send(0, 1, 1, bytes);
        let send_t = g.machine_ref(0).now_ns();
        g.recv(1, 0, 1).unwrap();
        let recv_t = g.machine_ref(1).now_ns();
        prop_assert!(recv_t >= send_t, "recv at {} before send at {}", recv_t, send_t);
    }

    /// Allocation policies: the allocation never exceeds the machine and
    /// performance-driven never loses to equipartition in total speedup.
    #[test]
    fn policies_sound(
        fracs in proptest::collection::vec(0.0f64..0.95, 1..6),
        cpus in 1usize..32,
    ) {
        let apps: Vec<SpeedupCurve> = fracs
            .iter()
            .map(|&f| SpeedupCurve::amdahl(f, 32))
            .collect();
        for policy in [&Equipartition as &dyn AllocationPolicy, &PerformanceDriven] {
            let alloc = policy.allocate(&apps, cpus);
            prop_assert_eq!(alloc.len(), apps.len());
            prop_assert!(alloc.iter().sum::<usize>() <= cpus);
        }
        let eq = Equipartition.allocate(&apps, cpus);
        let pd = PerformanceDriven.allocate(&apps, cpus);
        let ts = |a: &[usize]| dpd::runtime::sched::total_speedup(&apps, a);
        prop_assert!(ts(&pd) >= ts(&eq) - 1e-9, "PD {:?} lost to EQ {:?}", pd, eq);
    }

    /// Interval recommendation: the result always satisfies the policy.
    #[test]
    fn interval_recommendation_within_bounds(
        period in 1u64..10_000,
        min in 1u64..10_000,
        span in 0u64..10_000,
    ) {
        let policy = IntervalPolicy::new(min, min + span);
        if let Some(r) = recommend(period, policy) {
            prop_assert_eq!(r.length, r.period * r.periods);
            prop_assert!(r.length >= policy.min_length);
            prop_assert!(r.length <= policy.max_length);
            prop_assert_eq!(r.period, period);
            prop_assert!(r.periods >= 1);
        }
    }

    /// Quantization: bin indices are always within range and plateaus never
    /// produce more change events than samples.
    #[test]
    fn quantization_sound(
        values in proptest::collection::vec(-1e6f64..1e6, 1..200),
        levels in 1usize..32,
    ) {
        let t = SampledTrace::from_values("p", 1_000_000, values);
        let q = quantize::quantize_levels(&t, levels);
        prop_assert_eq!(q.len(), t.len());
        for &b in &q {
            prop_assert!((0..levels as i64).contains(&b));
        }
        let changes = quantize::change_events(&t, levels);
        prop_assert!(changes.len() <= t.len());
        if !changes.is_empty() {
            prop_assert_eq!(changes[0].0, 0, "first sample always emits");
        }
    }

    /// Periodogram: for a pure sine with a bin-exact period, the estimate
    /// is exact.
    #[test]
    fn periodogram_exact_on_commensurate_sines(
        k in 1usize..16,
    ) {
        let n = 256usize;
        let period = n / k.next_power_of_two(); // divides n
        let data: Vec<f64> = (0..2 * n)
            .map(|i| (i as f64 * std::f64::consts::TAU / period as f64).sin())
            .collect();
        let det = PeriodogramDetector::new(n);
        let r = det.analyze(&data).unwrap();
        prop_assert_eq!(r.period, Some(period));
    }

    /// Workload simulation conservation: every job finishes exactly once
    /// and makespan equals the last completion.
    #[test]
    fn workload_sim_conservation(
        iters in proptest::collection::vec(1u64..200, 1..5),
    ) {
        use dpd::runtime::workload::{simulate, Job};
        let jobs: Vec<Job> = iters
            .iter()
            .enumerate()
            .map(|(i, &it)| Job {
                name: format!("j{i}"),
                iteration_ns: 1_000_000,
                iterations: it,
                curve: SpeedupCurve::amdahl(0.1, 16),
            })
            .collect();
        let out = simulate(&jobs, 16, &PerformanceDriven);
        prop_assert_eq!(out.completions.len(), jobs.len());
        let last = out.completions.last().unwrap().finish_ns;
        prop_assert!((out.makespan_ns - last).abs() < 1e-6);
        prop_assert!(out.mean_turnaround_ns <= out.makespan_ns + 1e-6);
    }
}
