//! Property tests for the DTB binary trace container.
//!
//! Four families of properties pin the format down:
//!
//! 1. **Round-trips** — `text -> DTB -> text` is bit-identical (the
//!    acceptance bar for `dpd convert`), and DTB encode/decode preserves
//!    every value including `i64` extremes and exotic `f64` bit patterns;
//! 2. **Framing invariance** — any block size and any interleaving of
//!    multi-stream pushes decode to the same per-stream value sequences
//!    (encoding state restarts at block boundaries, so splits are
//!    unobservable);
//! 3. **Corruption** — random single-byte flips and truncations are
//!    reported as typed errors, never panics, and flipped payloads never
//!    decode silently;
//! 4. **Replay equivalence** — multi-stream replay from a DTB container
//!    produces exactly the per-stream detector event sequences of the
//!    same corpus replayed from text files.

use dpd::core::pipeline::DpdBuilder;
use dpd::core::shard::{MultiStreamEvent, StreamId};
use dpd::runtime::service::MultiStreamDpd;
use dpd::trace::dtb::{self, Block, DtbError, DtbReader, DtbWriter};
use dpd::trace::{gen, io, EventTrace, SampledTrace};
use proptest::prelude::*;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// 1. Round-trips.

proptest! {
    #[test]
    fn text_dtb_text_bit_identical_events(
        values in collection::vec(-1_000_000i64..1_000_000, 0..500),
        name_word in 0u64..1000,
    ) {
        let trace = EventTrace::from_values(format!("t{name_word}"), values);
        let mut text1 = Vec::new();
        io::write_events(&trace, &mut text1).unwrap();

        // text -> DTB
        let parsed = io::read_events(&text1[..]).unwrap();
        let mut bin = Vec::new();
        dtb::write_events(&parsed, &mut bin).unwrap();

        // DTB -> text
        let back = dtb::read_events(&bin).unwrap();
        let mut text2 = Vec::new();
        io::write_events(&back, &mut text2).unwrap();

        prop_assert_eq!(text1, text2);
    }

    #[test]
    fn text_dtb_text_bit_identical_sampled(
        values in collection::vec(-1e9f64..1e9, 0..300),
        period in 1u64..10_000_000,
    ) {
        let trace = SampledTrace::from_values("cpu", period, values);
        let mut text1 = Vec::new();
        io::write_sampled(&trace, &mut text1).unwrap();

        // Normalize through one text parse first: the property is about
        // files the workspace writes, and `f64` Display -> parse is exact.
        let parsed = io::read_sampled(&text1[..]).unwrap();
        let mut bin = Vec::new();
        dtb::write_sampled(&parsed, &mut bin).unwrap();
        let back = dtb::read_sampled(&bin).unwrap();
        let mut text2 = Vec::new();
        io::write_sampled(&back, &mut text2).unwrap();

        prop_assert_eq!(text1, text2);
    }

    #[test]
    fn dtb_preserves_extreme_values(raw in collection::vec(any::<i64>(), 1..200)) {
        let trace = EventTrace::from_values("extreme", raw);
        let mut bin = Vec::new();
        dtb::write_events(&trace, &mut bin).unwrap();
        prop_assert_eq!(dtb::read_events(&bin).unwrap(), trace);
    }

    #[test]
    fn dtb_preserves_f64_bit_patterns(bits in collection::vec(any::<u64>(), 1..200)) {
        // Arbitrary bit patterns include NaNs with payloads, infinities,
        // subnormals and -0.0; the container must return the exact bits.
        let values: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let trace = SampledTrace::from_values("bits", 1, values);
        let mut bin = Vec::new();
        dtb::write_sampled(&trace, &mut bin).unwrap();
        let back = dtb::read_sampled(&bin).unwrap();
        let got: Vec<u64> = back.values.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got, bits);
    }
}

// ---------------------------------------------------------------------
// 2. Framing invariance under random block sizes and interleavings.

proptest! {
    #[test]
    fn any_block_size_decodes_identically(
        values in collection::vec(-5000i64..5000, 1..2000),
        block_len in 1usize..700,
    ) {
        let mut w = DtbWriter::with_block_len(Vec::new(), block_len).unwrap();
        w.declare_events(0, "s").unwrap();
        w.push_events(0, &values).unwrap();
        let bytes = w.finish().unwrap();
        let (events, _) = dtb::read_all(&bytes).unwrap();
        prop_assert_eq!(&events[0].values, &values);
    }

    #[test]
    fn interleaved_multi_stream_pushes_keep_per_stream_order(
        words in collection::vec(any::<u64>(), 1..120),
        streams in 1u64..6,
        block_len in 1usize..64,
    ) {
        // Decode each word into (stream, chunk of values).
        let mut expect: BTreeMap<u64, Vec<i64>> = BTreeMap::new();
        let mut w = DtbWriter::with_block_len(Vec::new(), block_len).unwrap();
        for s in 0..streams {
            w.declare_events(s, &format!("s{s}")).unwrap();
            expect.insert(s, Vec::new());
        }
        for (i, &word) in words.iter().enumerate() {
            let s = word % streams;
            let len = (word >> 8) % 17;
            let chunk: Vec<i64> = (0..len)
                .map(|k| ((word >> 16) as i64).wrapping_add(i as i64 * 31 + k as i64))
                .collect();
            w.push_events(s, &chunk).unwrap();
            expect.get_mut(&s).unwrap().extend_from_slice(&chunk);
        }
        let bytes = w.finish().unwrap();

        let mut got: BTreeMap<u64, Vec<i64>> = BTreeMap::new();
        let mut r = DtbReader::new(&bytes).unwrap();
        while let Some(block) = r.next_block() {
            match block.unwrap() {
                Block::Events { stream, values } => {
                    got.entry(stream).or_default().extend_from_slice(values)
                }
                Block::Decl { stream, .. } => {
                    got.entry(stream).or_default();
                }
                Block::Samples { .. } => unreachable!("event-only container"),
            }
        }
        prop_assert_eq!(got, expect);
    }
}

// ---------------------------------------------------------------------
// 3. Corruption: graceful typed errors, never panics, never silent lies.

/// Fully decode a container, returning per-stream values or the first error.
fn decode_all(bytes: &[u8]) -> Result<BTreeMap<u64, Vec<i64>>, DtbError> {
    let mut out: BTreeMap<u64, Vec<i64>> = BTreeMap::new();
    let mut r = DtbReader::new(bytes)?;
    while let Some(block) = r.next_block() {
        if let Block::Events { stream, values } = block? {
            out.entry(stream).or_default().extend_from_slice(values);
        }
    }
    Ok(out)
}

proptest! {
    #[test]
    fn truncation_is_graceful_and_prefix_consistent(
        values in collection::vec(0i64..100, 10..800),
        block_len in 1usize..200,
        cut_word in any::<u64>(),
    ) {
        let mut w = DtbWriter::with_block_len(Vec::new(), block_len).unwrap();
        w.declare_events(0, "s").unwrap();
        w.push_events(0, &values).unwrap();
        let bytes = w.finish().unwrap();
        let cut = (cut_word % bytes.len() as u64) as usize;

        match decode_all(&bytes[..cut]) {
            // Whatever decoded before the error must be a prefix of the
            // original values — truncation never fabricates data.
            Err(_) => {}
            Ok(map) => {
                let got = map.get(&0).cloned().unwrap_or_default();
                prop_assert!(got.len() <= values.len());
                prop_assert_eq!(&values[..got.len()], &got[..]);
            }
        }
    }

    #[test]
    fn single_byte_flip_never_decodes_silently(
        values in collection::vec(0i64..100, 10..400),
        block_len in 1usize..100,
        pos_word in any::<u64>(),
        mask_word in 1u32..256,
    ) {
        let mask = mask_word as u8;
        let mut w = DtbWriter::with_block_len(Vec::new(), block_len).unwrap();
        w.declare_events(0, "s").unwrap();
        w.push_events(0, &values).unwrap();
        let bytes = w.finish().unwrap();

        // Flip one byte anywhere past the header (byte 5 is the reserved
        // flags field, which readers deliberately ignore).
        let span = bytes.len() - dtb::HEADER_LEN;
        let pos = dtb::HEADER_LEN + (pos_word % span as u64) as usize;
        let mut bad = bytes.clone();
        bad[pos] ^= mask;

        // Must not panic; must not return altered data as if valid.
        prop_assert!(
            decode_all(&bad).is_err(),
            "flip {mask:#04x} at byte {pos} went undetected"
        );
    }
}

// ---------------------------------------------------------------------
// 3b. Format sniffing: `detect_format` must be total and honest on any
// byte prefix — truncated documents, garbage, empty input — and the
// `read_*_auto` dispatchers it feeds must fail typed, never panic and
// never misdetect one format as the other.

proptest! {
    #[test]
    fn detect_format_is_total_and_magic_exact(bytes in collection::vec(any::<u8>(), 0..64)) {
        use dpd::trace::io::TraceFormat;
        // Total: any bytes produce an answer without panicking, and the
        // answer is exactly the magic-prefix relation — garbage that
        // does not carry a magic must never detect as anything.
        let got = io::detect_format(&bytes);
        let expect = if bytes.starts_with(&dtb::MAGIC) {
            Some(TraceFormat::Dtb)
        } else if bytes.starts_with(b"# dpd-trace v1") {
            Some(TraceFormat::Text)
        } else {
            None
        };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn detect_format_on_truncated_docs_never_misdetects(
        values in collection::vec(-1000i64..1000, 0..50),
        cut_word in any::<u64>(),
        as_dtb in any::<bool>(),
    ) {
        use dpd::trace::io::TraceFormat;
        let trace = EventTrace::from_values("t", values);
        let mut doc = Vec::new();
        if as_dtb {
            dtb::write_events(&trace, &mut doc).unwrap();
        } else {
            io::write_events(&trace, &mut doc).unwrap();
        }
        let cut = (cut_word % (doc.len() as u64 + 1)) as usize;
        let head = &doc[..cut];

        // A truncated valid document either detects as its own format
        // (the magic survived the cut) or as nothing — never the other.
        let own = if as_dtb { TraceFormat::Dtb } else { TraceFormat::Text };
        match io::detect_format(head) {
            None => {}
            Some(f) => prop_assert_eq!(f, own, "prefix misdetected"),
        }

        // And the auto reader on the truncated bytes is total: a typed
        // error or a successful parse (text tails can stay well-formed),
        // never a panic.
        let _ = io::read_events_auto(head);
    }

    #[test]
    fn read_auto_on_garbage_fails_typed(bytes in collection::vec(any::<u8>(), 0..300)) {
        // Whatever the sniffer decides, both auto readers must return
        // `Result` on arbitrary bytes — the property is the absence of
        // panics across the dispatch and both parse paths.
        let _ = io::read_events_auto(&bytes[..]);
        let _ = io::read_sampled_auto(&bytes[..]);
    }
}

// ---------------------------------------------------------------------
// 4. Replay equivalence: DTB corpus == text corpus through the service.

/// Replay a set of event traces through a fresh service in round-robin
/// `chunk`-sample waves, exactly like `dpd multistream`.
fn replay(traces: &[EventTrace], shards: usize, chunk: usize) -> Vec<MultiStreamEvent> {
    let mut svc =
        MultiStreamDpd::from_builder(&DpdBuilder::new().window(16).shards(shards)).unwrap();
    let mut offset = 0;
    loop {
        let mut records: Vec<(StreamId, &[i64])> = Vec::new();
        for (s, t) in traces.iter().enumerate() {
            if offset < t.values.len() {
                let end = (offset + chunk).min(t.values.len());
                records.push((StreamId(s as u64), &t.values[offset..end]));
            }
        }
        if records.is_empty() {
            break;
        }
        svc.ingest(&records);
        offset += chunk;
    }
    svc.finish().0
}

fn by_stream(events: &[MultiStreamEvent]) -> BTreeMap<u64, Vec<MultiStreamEvent>> {
    let mut m: BTreeMap<u64, Vec<MultiStreamEvent>> = BTreeMap::new();
    for &e in events {
        m.entry(e.stream().0).or_default().push(e);
    }
    m
}

proptest! {
    #[test]
    fn multistream_replay_from_dtb_matches_text(
        streams in 2u64..8,
        chunk in 1usize..96,
        rounds in 1usize..6,
        shards in 0usize..3,
        block_len in 1usize..300,
    ) {
        let schedule = gen::interleaved_streams(streams, 64, rounds);

        // Text path: per-stream text docs, parsed back like `multistream`
        // does for a directory of .trace files.
        let mut text_traces = Vec::new();
        for s in 0..streams {
            let mut whole = EventTrace::new(format!("s{s}"));
            for (id, rec) in &schedule {
                if *id == s {
                    whole.extend(rec.iter().copied());
                }
            }
            let mut doc = Vec::new();
            io::write_events(&whole, &mut doc).unwrap();
            text_traces.push(io::read_events(&doc[..]).unwrap());
        }

        // DTB path: one container holding all streams, written in the
        // interleaved arrival order with an arbitrary block size.
        let mut w = DtbWriter::with_block_len(Vec::new(), block_len).unwrap();
        for s in 0..streams {
            w.declare_events(s, &format!("s{s}")).unwrap();
        }
        for (id, rec) in &schedule {
            w.push_events(*id, rec).unwrap();
        }
        let bytes = w.finish().unwrap();
        let (dtb_traces, _) = dtb::read_all(&bytes).unwrap();

        prop_assert_eq!(dtb_traces.len(), text_traces.len());
        for (d, t) in dtb_traces.iter().zip(&text_traces) {
            prop_assert_eq!(&d.values, &t.values);
        }

        let text_events = by_stream(&replay(&text_traces, shards, chunk));
        let dtb_events = by_stream(&replay(&dtb_traces, shards, chunk));
        prop_assert_eq!(text_events, dtb_events);
    }
}

// ---------------------------------------------------------------------
// Generator coverage: every `trace::gen` generator round-trips (the
// acceptance bar behind `dpd convert`'s bit-identical guarantee).

#[test]
fn every_generator_roundtrips_through_dtb() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(41);

    let event_corpora: Vec<(&str, Vec<i64>)> = vec![
        ("periodic", gen::periodic_events(&[1, 2, 3, 4, 5], 4321)),
        ("nested", gen::nested_events(5, 10, 11, 9).0),
        ("aperiodic", gen::aperiodic_events(2048)),
        ("random", gen::random_events(12, 3000, &mut rng)),
        (
            "dropped",
            gen::drop_events(&gen::periodic_events(&[7, 8, 9], 1000), 0.1, &mut rng),
        ),
        (
            "jittered",
            gen::insert_events(&gen::periodic_events(&[7, 8, 9], 1000), 50, &mut rng),
        ),
    ];
    for (name, values) in event_corpora {
        let t = EventTrace::from_values(name, values);
        let mut bin = Vec::new();
        dtb::write_events(&t, &mut bin).unwrap();
        assert_eq!(dtb::read_events(&bin).unwrap(), t, "{name}");
    }

    let shape = gen::cpu_burst_shape(44, 16.0);
    let sampled = SampledTrace::from_values(
        "ft-cpus",
        1_000_000,
        gen::noisy_magnitudes(&shape, 40, 0.25, &mut rng),
    );
    let mut bin = Vec::new();
    dtb::write_sampled(&sampled, &mut bin).unwrap();
    let back = dtb::read_sampled(&bin).unwrap();
    assert_eq!(back.name, sampled.name);
    assert_eq!(back.sample_period_ns, sampled.sample_period_ns);
    let got: Vec<u64> = back.values.iter().map(|v| v.to_bits()).collect();
    let expect: Vec<u64> = sampled.values.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, expect);

    // Interleaved multi-stream schedule through one container.
    let schedule = gen::interleaved_streams(7, 32, 3);
    let mut w = DtbWriter::with_block_len(Vec::new(), 64).unwrap();
    for s in 0..7u64 {
        w.declare_events(s, &format!("s{s}")).unwrap();
    }
    for (id, rec) in &schedule {
        w.push_events(*id, rec).unwrap();
    }
    let bytes = w.finish().unwrap();
    let (events, _) = dtb::read_all(&bytes).unwrap();
    for (s, trace) in events.iter().enumerate() {
        let mut expect = Vec::new();
        for (id, rec) in &schedule {
            if *id == s as u64 {
                expect.extend_from_slice(rec);
            }
        }
        assert_eq!(trace.values, expect, "stream {s}");
    }
}
