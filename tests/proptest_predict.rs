//! Differential oracle for the online forecasting subsystem.
//!
//! [`NaiveForecaster`] is a deliberately naive from-scratch reference
//! implementation of the forecasting contract documented in
//! `docs/PREDICTION.md`: it keeps the *entire* stream in a growing `Vec`,
//! re-derives "the last full period of samples" by slicing that history on
//! every call, and scans a plain list of outstanding predictions — no ring
//! buffers, no bounded state. The incremental `dpd::core::predict` path
//! must match it **bit-for-bit** (including the f64 confidence EWMA and
//! error accumulators) across random traces, horizons, warmup/steady
//! chunk straddles, and detector resyncs.

use dpd::core::pipeline::DpdBuilder;
use dpd::core::predict::ForecastStats;
use dpd::core::streaming::{SegmentEvent, StreamingConfig};
use proptest::prelude::*;

// The confidence constants of the forecasting contract (PREDICTION.md).
const MATCH_ALPHA: f64 = 0.1;
const BOUNDARY_ALPHA: f64 = 0.2;
const FRESH_LOCK_CONFIDENCE: f64 = 0.5;

/// From-scratch reference forecaster (see module docs).
struct NaiveForecaster {
    horizon: usize,
    /// Full stream history, never truncated.
    hist: Vec<i64>,
    /// `(period, confidence EWMA)` of the live lock.
    lock: Option<(usize, f64)>,
    /// Outstanding `(target position, predicted value)` pairs, unordered.
    pending: Vec<(u64, i64)>,
    stats: ForecastStats,
}

impl NaiveForecaster {
    fn new(horizon: usize) -> Self {
        NaiveForecaster {
            horizon,
            hist: Vec::new(),
            lock: None,
            pending: Vec::new(),
            stats: ForecastStats::default(),
        }
    }

    fn invalidate(&mut self) -> bool {
        let had_state = self.lock.is_some() || !self.pending.is_empty();
        if had_state {
            self.stats.invalidations += 1;
            self.stats.dropped += self.pending.len() as u64;
        }
        self.pending.clear();
        self.lock = None;
        had_state
    }

    /// The forecast value `k >= 1` ahead, recomputed from scratch: slice
    /// the last full period out of the complete history and extend it.
    fn forecast_value(&self, k: usize) -> Option<i64> {
        let (p, _) = self.lock?;
        if self.hist.len() < p || k == 0 {
            return None;
        }
        let last_period = &self.hist[self.hist.len() - p..];
        Some(last_period[(k - 1) % p])
    }

    fn forecast(&self, h: usize) -> Option<Vec<i64>> {
        if h == 0 || h > self.horizon || self.lock.is_none_or(|(p, _)| self.hist.len() < p) {
            return None;
        }
        (1..=h).map(|k| self.forecast_value(k)).collect()
    }

    fn confidence(&self) -> f64 {
        self.lock.map_or(0.0, |(_, c)| c)
    }

    fn observe(&mut self, sample: i64, event: SegmentEvent) {
        // 1. Lock transitions / phase-change invalidation.
        match event {
            SegmentEvent::PeriodLost { .. } => {
                self.invalidate();
            }
            SegmentEvent::PeriodStart { period, .. } => match self.lock {
                Some((p, ref mut ewma)) if p == period => {
                    *ewma += BOUNDARY_ALPHA * (1.0 - *ewma);
                }
                Some(_) => {
                    self.invalidate();
                    self.lock = Some((period, FRESH_LOCK_CONFIDENCE));
                }
                None => self.lock = Some((period, FRESH_LOCK_CONFIDENCE)),
            },
            SegmentEvent::None => {}
        }

        // 2. Score the standing prediction for this position.
        let pos = self.hist.len() as u64;
        if let Some(i) = self.pending.iter().position(|&(target, _)| target == pos) {
            let (_, predicted) = self.pending.remove(i);
            self.stats.checked += 1;
            self.stats.hits += (predicted == sample) as u64;
            let err = (predicted as f64 - sample as f64).abs();
            self.stats.abs_err_sum += err;
            if sample != 0 {
                self.stats.ape_sum += err / (sample as f64).abs();
                self.stats.ape_checked += 1;
            }
        }

        // 3. Match-metric trend: the sample vs one full period earlier.
        if let Some((p, ref mut ewma)) = self.lock {
            if self.hist.len() >= p {
                let prior = self.hist[self.hist.len() - p];
                let m = (prior == sample) as u64 as f64;
                *ewma += MATCH_ALPHA * (m - *ewma);
            }
        }

        // 4. Advance the stream.
        self.hist.push(sample);

        // 5. Issue the H-step-ahead prediction.
        if let Some(value) = self.forecast_value(self.horizon) {
            self.pending
                .push((self.hist.len() as u64 - 1 + self.horizon as u64, value));
            self.stats.issued += 1;
        }
    }
}

/// Build an event trace from raw words: a sequence of segments, each
/// either exactly periodic over a segment-private alphabet or aperiodic,
/// so locks, relocks, phase changes and searching stretches all occur.
fn trace_from_words(words: &[u64]) -> Vec<i64> {
    let mut out = Vec::new();
    let mut fresh = 0x7000_0000i64;
    for (seg, &w) in words.iter().enumerate() {
        let period = (w % 7 + 1) as usize;
        let len = ((w >> 8) % 90 + 5) as usize;
        let aperiodic = (w >> 16) % 5 == 0;
        for i in 0..len {
            if aperiodic {
                fresh += 1;
                out.push(fresh);
            } else {
                out.push(0x1000 * (seg as i64 + 1) + (i % period) as i64);
            }
        }
    }
    out
}

/// Assert every observable of the two paths matches bit-for-bit.
fn assert_stats_bit_identical(incremental: ForecastStats, naive: ForecastStats, ctx: &str) {
    assert_eq!(incremental.issued, naive.issued, "{ctx}: issued");
    assert_eq!(incremental.checked, naive.checked, "{ctx}: checked");
    assert_eq!(incremental.hits, naive.hits, "{ctx}: hits");
    assert_eq!(
        incremental.abs_err_sum.to_bits(),
        naive.abs_err_sum.to_bits(),
        "{ctx}: abs_err_sum"
    );
    assert_eq!(
        incremental.ape_sum.to_bits(),
        naive.ape_sum.to_bits(),
        "{ctx}: ape_sum"
    );
    assert_eq!(
        incremental.ape_checked, naive.ape_checked,
        "{ctx}: ape_checked"
    );
    assert_eq!(
        incremental.invalidations, naive.invalidations,
        "{ctx}: invalidations"
    );
    assert_eq!(incremental.dropped, naive.dropped, "{ctx}: dropped");
}

/// Drive both implementations over `data` in `chunk`-sized strides,
/// comparing forecasts and confidence at every chunk boundary and the
/// statistics at the end. `config` parameterizes the shared detector
/// (window, confirmation counts, resync interval).
fn run_differential(data: &[i64], config: StreamingConfig, horizon: usize, chunk: usize) {
    let mut incremental = DpdBuilder::new()
        .detector(config)
        .forecast(horizon)
        .build_forecasting()
        .expect("valid config");
    // The naive path drives its own detector instance: same config, same
    // samples => same event sequence.
    let mut detector = DpdBuilder::new()
        .detector(config)
        .build_detector()
        .expect("valid config");
    let mut naive = NaiveForecaster::new(horizon);

    let ctx = format!(
        "window={} horizon={horizon} chunk={chunk} resync={}",
        config.window, config.resync_interval
    );
    for (c, samples) in data.chunks(chunk.max(1)).enumerate() {
        for &s in samples {
            incremental.push(s);
            let event = detector.push(s);
            naive.observe(s, event);
        }
        // Chunk-boundary probes: confidence, lock and every horizon slice.
        assert_eq!(
            incremental.predictor().confidence().to_bits(),
            naive.confidence().to_bits(),
            "{ctx}: confidence after chunk {c}"
        );
        assert_eq!(
            incremental.predictor().period(),
            naive.lock.map(|(p, _)| p),
            "{ctx}: period after chunk {c}"
        );
        for h in 1..=horizon {
            let got = incremental.forecast(h).map(|f| f.predicted.to_vec());
            let expect = naive.forecast(h);
            assert_eq!(got, expect, "{ctx}: forecast({h}) after chunk {c}");
        }
    }
    assert_stats_bit_identical(incremental.predictor().stats(), naive.stats, &ctx);
}

#[test]
fn simple_periodic_and_phase_change_corpora() {
    let mut data: Vec<i64> = (0..60).map(|i| [1i64, 2, 3][i % 3]).collect();
    data.extend((0..80).map(|i| [10i64, 20, 30, 40, 50][i % 5]));
    for horizon in [1usize, 3, 8] {
        for chunk in [1usize, 7, 140] {
            let config = DpdBuilder::new().window(8).detector_config().unwrap();
            run_differential(&data, config, horizon, chunk);
        }
    }
}

#[test]
fn resync_interval_does_not_change_forecasts() {
    let data = trace_from_words(&[0x00012345, 0x00fe4321, 0x00aa0077, 0x00054321]);
    for resync in [0u64, 13, 64] {
        let config = DpdBuilder::new()
            .window(16)
            .resync_interval(resync)
            .detector_config()
            .unwrap();
        run_differential(&data, config, 4, 23);
    }
}

proptest! {
    /// Random segmented traces, random horizons, random chunk sizes
    /// straddling warmup and steady state, several windows.
    #[test]
    fn incremental_predict_matches_naive_reference(
        words in collection::vec(any::<u64>(), 1..8),
        horizon in 1usize..9,
        chunk in 1usize..50,
        window_pow in 2u32..7,
    ) {
        let data = trace_from_words(&words);
        let window = 1usize << window_pow; // 4..=64
        let config = DpdBuilder::new().window(window).detector_config().unwrap();
        run_differential(&data, config, horizon, chunk);
    }

    /// Confirmation/lose hysteresis and resync intervals forwarded to the
    /// engine must not affect the forecaster/naive agreement either.
    #[test]
    fn hysteresis_and_resync_match_naive_reference(
        words in collection::vec(any::<u64>(), 1..6),
        horizon in 1usize..5,
        confirm in 1usize..4,
        lose in 1usize..3,
        resync in 0u64..40,
    ) {
        let data = trace_from_words(&words);
        let config = DpdBuilder::new()
            .window(16)
            .confirm(confirm)
            .lose(lose)
            .resync_interval(resync)
            .detector_config()
            .unwrap();
        run_differential(&data, config, horizon, 11);
    }
}
