//! Public-API surface golden test.
//!
//! Snapshots the curated export list of `dpd_core` (via the `dpd` facade)
//! and the facade's top-level modules against
//! `tests/fixtures/api_surface.txt`, so accidental public-API breakage —
//! a removed type, a renamed module, a re-export that silently vanishes —
//! fails CI instead of shipping.
//!
//! Two layers of protection:
//!
//! 1. **Existence is checked by the compiler**: every listed path appears
//!    in a `use` item below, so removing or renaming the item breaks this
//!    test's build (no `cargo doc` machinery involved).
//! 2. **The list itself is goldened**: adding or removing an entry changes
//!    the snapshot, which must be re-blessed explicitly with
//!    `DPD_BLESS=1 cargo test --test api_surface` — making API-surface
//!    changes visible in review as a fixture diff.

/// Existence proof: each public item named in the snapshot, imported once.
/// A removal from the public API turns into a compile error right here.
#[allow(unused_imports)]
mod exists {
    // Deprecated compat shims are still part of the public surface until
    // they are dropped in a major bump.
    mod facade_modules {
        pub use dpd::{analyzer, apps, core, interpose, obs, runtime, trace};
    }
    mod core_modules {
        pub use dpd::core::{
            autotune, baseline, capi, confidence, detector, hierarchy, incremental, intervals,
            metric, minima, naive, nested, periodogram, pipeline, predict, prediction, query,
            segmentation, shard, snapshot, spectrum, streaming, window,
        };
    }
    mod core_top_level {
        pub use dpd::core::{
            BuildError, Detector, Dpd, DpdBuilder, DpdError, DpdEvent, EventMetric, EventSink,
            Forecast, ForecastStats, ForecastingDpd, FrameDetector, L1Metric, Metric,
            MultiScaleDpd, MultiStreamEvent, PeriodicPredictor, PeriodicityReport, PredictConfig,
            Predictor, Restore, Result, SegmentEvent, Snapshot, SnapshotError, Spectrum,
            StreamHandle, StreamId, StreamSummary, StreamTable, StreamTier, StreamingConfig,
            StreamingDpd, TableConfig,
        };
    }
    mod pipeline_items {
        pub use dpd::core::pipeline::{
            BuildError, Detector, DpdBuilder, DpdEvent, DpdPipeline, EventSink, KeyedDpd,
            ServiceSpec, DEFAULT_SCALES,
        };
    }
    mod naive_predictor {
        pub use dpd::core::naive::{PeriodicPredictor, PredictorMetrics};
    }
    mod shard_items {
        pub use dpd::core::shard::{
            shard_of, MultiStreamEvent, StreamHandle, StreamId, StreamSummary, StreamTable,
            StreamTier, TableConfig, TableStats, MAX_RESIDENT_STREAMS,
        };
    }
    mod snapshot_items {
        pub use dpd::core::snapshot::{
            Restore, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter,
        };
    }
    mod streaming_items {
        pub use dpd::core::streaming::{
            MultiScaleDpd, MultiScaleEvent, SegmentEvent, StreamStats, StreamingConfig,
            StreamingDpd,
        };
    }
    mod predict_items {
        pub use dpd::core::predict::{
            Forecast, ForecastStats, ForecastingDpd, Observation, PredictConfig, Predictor, Scored,
        };
    }
    mod query_items {
        pub use dpd::core::query::{
            parse_specs, ParseSpecError, QueryChange, QueryDelta, QueryEngine, QueryId, QuerySpec,
            TrackedStream, CONFIDENCE_ALPHA, MAX_QUERY_PERIOD,
        };
    }
    mod query_reexports {
        pub use dpd::core::{QueryChange, QueryDelta, QueryEngine, QueryId, QuerySpec};
    }
    mod service_items {
        pub use dpd::runtime::service::{
            CheckpointError, MultiStreamDpd, ServiceConfig, ServiceObs, ServiceSnapshot, ShardStats,
        };
    }
    mod obs_items {
        pub use dpd::obs::{
            bucket_of, bucket_upper_bound, log2_bucket, parse_exposition, scrape, Counter, Gauge,
            Histogram, MetricKind, MetricsServer, ParseError, Registry, Scrape, SelfTraceWriter,
            SelfTracer, HISTOGRAM_BUCKETS,
        };
    }
    mod net_items {
        pub use dpd::runtime::net::{
            DpdServer, DurableNet, NetConfig, NetError, NetStats, ServeReport, HANDSHAKE_MAGIC,
            PROTOCOL_VERSION,
        };
    }
    mod analyzer_items {
        pub use dpd::analyzer::{
            multistream::MultiStreamAnalyzer, ExecutionEstimator, RegionInfo, SelfAnalyzer,
        };
    }
}

/// The snapshot: one path per line, kept sorted. Existence of every entry
/// is enforced by the `exists` module above; membership is enforced by the
/// golden fixture.
const SURFACE: &[&str] = &[
    "dpd::analyzer",
    "dpd::analyzer::ExecutionEstimator",
    "dpd::analyzer::RegionInfo",
    "dpd::analyzer::SelfAnalyzer",
    "dpd::analyzer::multistream::MultiStreamAnalyzer",
    "dpd::apps",
    "dpd::core",
    "dpd::core::BuildError",
    "dpd::core::Detector",
    "dpd::core::Dpd",
    "dpd::core::DpdBuilder",
    "dpd::core::DpdError",
    "dpd::core::DpdEvent",
    "dpd::core::EventMetric",
    "dpd::core::EventSink",
    "dpd::core::Forecast",
    "dpd::core::ForecastStats",
    "dpd::core::ForecastingDpd",
    "dpd::core::FrameDetector",
    "dpd::core::L1Metric",
    "dpd::core::Metric",
    "dpd::core::MultiScaleDpd",
    "dpd::core::MultiStreamEvent",
    "dpd::core::PeriodicPredictor",
    "dpd::core::PeriodicityReport",
    "dpd::core::PredictConfig",
    "dpd::core::Predictor",
    "dpd::core::QueryChange",
    "dpd::core::QueryDelta",
    "dpd::core::QueryEngine",
    "dpd::core::QueryId",
    "dpd::core::QuerySpec",
    "dpd::core::Restore",
    "dpd::core::Result",
    "dpd::core::SegmentEvent",
    "dpd::core::Snapshot",
    "dpd::core::SnapshotError",
    "dpd::core::Spectrum",
    "dpd::core::StreamHandle",
    "dpd::core::StreamId",
    "dpd::core::StreamSummary",
    "dpd::core::StreamTable",
    "dpd::core::StreamTier",
    "dpd::core::StreamingConfig",
    "dpd::core::StreamingDpd",
    "dpd::core::TableConfig",
    "dpd::core::autotune",
    "dpd::core::baseline",
    "dpd::core::capi",
    "dpd::core::confidence",
    "dpd::core::detector",
    "dpd::core::hierarchy",
    "dpd::core::incremental",
    "dpd::core::intervals",
    "dpd::core::metric",
    "dpd::core::minima",
    "dpd::core::naive",
    "dpd::core::naive::PeriodicPredictor",
    "dpd::core::naive::PredictorMetrics",
    "dpd::core::nested",
    "dpd::core::periodogram",
    "dpd::core::pipeline",
    "dpd::core::pipeline::BuildError",
    "dpd::core::pipeline::DEFAULT_SCALES",
    "dpd::core::pipeline::Detector",
    "dpd::core::pipeline::DpdBuilder",
    "dpd::core::pipeline::DpdEvent",
    "dpd::core::pipeline::DpdPipeline",
    "dpd::core::pipeline::EventSink",
    "dpd::core::pipeline::KeyedDpd",
    "dpd::core::pipeline::ServiceSpec",
    "dpd::core::predict",
    "dpd::core::predict::Observation",
    "dpd::core::predict::Scored",
    "dpd::core::prediction",
    "dpd::core::query",
    "dpd::core::query::CONFIDENCE_ALPHA",
    "dpd::core::query::MAX_QUERY_PERIOD",
    "dpd::core::query::ParseSpecError",
    "dpd::core::query::QueryChange",
    "dpd::core::query::QueryDelta",
    "dpd::core::query::QueryEngine",
    "dpd::core::query::QueryId",
    "dpd::core::query::QuerySpec",
    "dpd::core::query::TrackedStream",
    "dpd::core::query::parse_specs",
    "dpd::core::segmentation",
    "dpd::core::shard",
    "dpd::core::shard::MAX_RESIDENT_STREAMS",
    "dpd::core::shard::TableStats",
    "dpd::core::shard::shard_of",
    "dpd::core::snapshot",
    "dpd::core::snapshot::Restore",
    "dpd::core::snapshot::Snapshot",
    "dpd::core::snapshot::SnapshotError",
    "dpd::core::snapshot::SnapshotReader",
    "dpd::core::snapshot::SnapshotWriter",
    "dpd::core::spectrum",
    "dpd::core::streaming",
    "dpd::core::streaming::MultiScaleEvent",
    "dpd::core::streaming::StreamStats",
    "dpd::core::window",
    "dpd::interpose",
    "dpd::obs",
    "dpd::obs::Counter",
    "dpd::obs::Gauge",
    "dpd::obs::HISTOGRAM_BUCKETS",
    "dpd::obs::Histogram",
    "dpd::obs::MetricKind",
    "dpd::obs::MetricsServer",
    "dpd::obs::ParseError",
    "dpd::obs::Registry",
    "dpd::obs::Scrape",
    "dpd::obs::SelfTraceWriter",
    "dpd::obs::SelfTracer",
    "dpd::obs::bucket_of",
    "dpd::obs::bucket_upper_bound",
    "dpd::obs::log2_bucket",
    "dpd::obs::parse_exposition",
    "dpd::obs::scrape",
    "dpd::runtime",
    "dpd::runtime::net::DpdServer",
    "dpd::runtime::net::DurableNet",
    "dpd::runtime::net::HANDSHAKE_MAGIC",
    "dpd::runtime::net::NetConfig",
    "dpd::runtime::net::NetError",
    "dpd::runtime::net::NetStats",
    "dpd::runtime::net::PROTOCOL_VERSION",
    "dpd::runtime::net::ServeReport",
    "dpd::runtime::service::CheckpointError",
    "dpd::runtime::service::MultiStreamDpd",
    "dpd::runtime::service::ServiceConfig",
    "dpd::runtime::service::ServiceObs",
    "dpd::runtime::service::ServiceSnapshot",
    "dpd::runtime::service::ShardStats",
    "dpd::trace",
];

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/api_surface.txt"
);

#[test]
fn public_surface_matches_golden_fixture() {
    let mut current: Vec<&str> = SURFACE.to_vec();
    let sorted = {
        let mut s = current.clone();
        s.sort_unstable();
        s
    };
    assert_eq!(current, sorted, "keep SURFACE sorted for stable diffs");
    current.dedup();
    assert_eq!(current.len(), SURFACE.len(), "duplicate SURFACE entries");

    let rendered = format!("{}\n", SURFACE.join("\n"));
    if std::env::var_os("DPD_BLESS").is_some() {
        std::fs::write(FIXTURE, &rendered).expect("write api_surface fixture");
        return;
    }
    let golden = std::fs::read_to_string(FIXTURE).unwrap_or_else(|e| {
        panic!("missing {FIXTURE} ({e}); run DPD_BLESS=1 cargo test --test api_surface")
    });
    assert_eq!(
        rendered, golden,
        "public API surface changed; review the diff and re-bless with \
         DPD_BLESS=1 cargo test --test api_surface"
    );
}
