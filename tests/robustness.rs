//! Integration test: failure injection and robustness.
//!
//! The paper's detector runs on live, imperfect streams. These tests verify
//! graceful behaviour under perturbation: spurious events, dropped events,
//! aperiodic prefixes, period changes, and window resizing mid-stream.

use dpd::core::pipeline::DpdBuilder;
use dpd::core::streaming::SegmentEvent;
use dpd::trace::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn relocks_after_spurious_event() {
    let mut dpd = DpdBuilder::new().window(12).build_detector().unwrap();
    let pattern = [1i64, 2, 3, 4];
    let mut locked_before = false;
    for i in 0..100usize {
        if dpd.push(pattern[i % 4]).as_return_value() != 0 {
            locked_before = true;
        }
    }
    assert!(locked_before);
    // One spurious event breaks the lock...
    dpd.push(0xDEAD);
    // ...but the detector re-locks once the window refills.
    let mut relocked = false;
    for i in 0..60usize {
        if let SegmentEvent::PeriodStart { period, .. } = dpd.push(pattern[i % 4]) {
            assert_eq!(period, 4);
            relocked = true;
        }
    }
    assert!(relocked, "must re-lock after a glitch");
}

#[test]
fn corruption_rate_degrades_detection_gracefully() {
    let mut rng = StdRng::seed_from_u64(42);
    let clean = gen::periodic_events(&[10, 20, 30, 40, 50], 2000);
    let mut boundaries_at = Vec::new();
    for &p in &[0.0, 0.02, 0.3] {
        let stream = gen::drop_events(&clean, p, &mut rng);
        let mut dpd = DpdBuilder::new().window(16).build_detector().unwrap();
        let mut boundaries = 0u64;
        for &s in &stream {
            if dpd.push(s).as_return_value() != 0 {
                boundaries += 1;
            }
        }
        boundaries_at.push(boundaries);
    }
    // Clean stream: maximal boundaries; light corruption: fewer but plenty;
    // heavy corruption: dramatically fewer.
    assert!(boundaries_at[0] > 350, "clean: {boundaries_at:?}");
    assert!(
        boundaries_at[1] > 50 && boundaries_at[1] < boundaries_at[0],
        "light: {boundaries_at:?}"
    );
    assert!(
        boundaries_at[2] < boundaries_at[1] / 2,
        "heavy: {boundaries_at:?}"
    );
}

#[test]
fn aperiodic_prefix_then_lock() {
    let mut stream = gen::aperiodic_events(500);
    stream.extend(gen::periodic_events(&[7, 8, 9], 300));
    let mut dpd = DpdBuilder::new().window(16).build_capi().unwrap();
    let mut p = 0i32;
    let mut first_detection = None;
    for (i, &s) in stream.iter().enumerate() {
        if dpd.dpd(s, &mut p) != 0 && first_detection.is_none() {
            first_detection = Some(i);
        }
    }
    let at = first_detection.expect("must eventually lock");
    assert!(at >= 500, "cannot lock inside the aperiodic prefix");
    assert_eq!(p, 3);
}

#[test]
fn jitter_insertion_reduces_but_does_not_prevent_detection() {
    let mut rng = StdRng::seed_from_u64(7);
    let clean = gen::periodic_events(&[1, 2, 3, 4, 5, 6], 3000);
    let jittered = gen::insert_events(&clean, 20, &mut rng);
    let mut dpd = DpdBuilder::new().window(16).build_detector().unwrap();
    for &s in &jittered {
        dpd.push(s);
    }
    let periods = dpd.stats().detected_periods();
    assert!(
        periods.contains(&6),
        "period 6 must still be found: {periods:?}"
    );
}

#[test]
fn window_shrink_mid_stream_recovers() {
    let mut dpd = DpdBuilder::new().window(1024).build_capi().unwrap();
    let mut p = 0i32;
    let pattern: Vec<i64> = (0..9).map(|i| 0x100 + i).collect();
    for i in 0..1100usize {
        dpd.dpd(pattern[i % 9], &mut p);
    }
    // Shrink drastically mid-stream; detection must resume.
    dpd.dpd_window_size(32);
    let mut hits = 0;
    for i in 0..200usize {
        hits += dpd.dpd(pattern[i % 9], &mut p);
    }
    assert!(hits > 0);
    assert_eq!(p, 9);
}

#[test]
fn random_small_alphabet_does_not_lock_spuriously_at_large_window() {
    let mut rng = StdRng::seed_from_u64(99);
    let stream = gen::random_events(6, 4000, &mut rng);
    let mut dpd = DpdBuilder::new().window(256).build_detector().unwrap();
    let mut starts = 0u64;
    for &s in &stream {
        if dpd.push(s).as_return_value() != 0 {
            starts += 1;
        }
    }
    // A window of 256 random samples over 6 symbols matching a shift
    // exactly has probability ~6^-256: no locks expected.
    assert_eq!(starts, 0, "spurious locks on random stream");
}

#[test]
fn period_change_detected_with_loss_event() {
    let mut stream = gen::periodic_events(&[1, 2, 3], 120);
    stream.extend(gen::periodic_events(&[9, 8, 7, 6, 5], 200));
    let mut dpd = DpdBuilder::new().window(12).build_detector().unwrap();
    let mut lost = false;
    for &s in &stream {
        if matches!(dpd.push(s), SegmentEvent::PeriodLost { period: 3, .. }) {
            lost = true;
        }
    }
    assert!(lost, "structure change must emit PeriodLost");
    let periods = dpd.stats().detected_periods();
    assert_eq!(periods, vec![3, 5]);
}
