//! Edge-case integration tests: degenerate windows, miss tolerance,
//! confidence tracking and cross-module corner conditions.

use dpd::core::confidence::ConfidenceTracker;
use dpd::core::minima::MinimaPolicy;
use dpd::core::pipeline::DpdBuilder;
use dpd::core::streaming::SegmentEvent;

#[test]
fn window_of_one_locks_on_constant_stream() {
    let mut dpd = DpdBuilder::new().window(1).build_detector().unwrap();
    let mut starts = 0u64;
    for _ in 0..20 {
        if dpd.push(5i64).as_return_value() != 0 {
            starts += 1;
        }
    }
    assert!(starts > 10, "period 1 on constant stream: {starts}");
}

#[test]
fn lose_tolerance_survives_single_boundary_anomaly() {
    // With lose = 2, one bad boundary must NOT drop the lock for magnitude
    // streams (event streams break on mid-period mismatches by design).
    let mut dpd = DpdBuilder::new()
        .window(16)
        .magnitudes()
        .lose(2)
        .build_magnitude_detector()
        .unwrap();
    let shape = [0.0f64, 4.0, 9.0, 4.0];
    // Establish the lock.
    for i in 0..200usize {
        dpd.push(shape[i % 4]);
    }
    assert_eq!(dpd.locked_period(), Some(4));
    // One glitched period, then clean again.
    for v in [0.0f64, 40.0, 40.0, 40.0] {
        dpd.push(v);
    }
    let mut lost = false;
    let mut restarts = 0;
    for i in 0..200usize {
        match dpd.push(shape[i % 4]) {
            SegmentEvent::PeriodLost { .. } => lost = true,
            SegmentEvent::PeriodStart { .. } => restarts += 1,
            SegmentEvent::None => {}
        }
    }
    // Either the glitch was ridden out (no loss) or the detector recovered.
    assert!(!lost || restarts > 0, "lock neither survived nor recovered");
    assert!(restarts > 10);
}

#[test]
fn m_max_smaller_than_window() {
    // Restricting the candidate range must hide larger periods.
    let mut dpd = DpdBuilder::new()
        .window(64)
        .m_max(4)
        .build_detector()
        .unwrap();
    for i in 0..400usize {
        let e = dpd.push([1i64, 2, 3, 4, 5, 6][i % 6]);
        assert_eq!(
            e.as_return_value(),
            0,
            "period 6 must be invisible with M=4"
        );
    }
    // Period 3 stream is visible.
    let mut found = false;
    for i in 0..400usize {
        if dpd.push([7i64, 8, 9][i % 3]).as_return_value() == 3 {
            found = true;
        }
    }
    assert!(found);
}

#[test]
fn confidence_tracker_responds_to_regime_change() {
    let mut t = ConfidenceTracker::new(5);
    for _ in 0..20 {
        t.confirm();
    }
    let high = t.confidence();
    for _ in 0..3 {
        t.miss();
    }
    let lower = t.confidence();
    assert!(lower < high);
    assert!(t.is_satisfying(10, 0.3), "still usable after brief misses");
    for _ in 0..20 {
        t.miss();
    }
    assert!(
        !t.is_satisfying(10, 0.3),
        "sustained misses must disqualify"
    );
}

#[test]
fn minima_policy_min_delay_zero_behaves_like_one() {
    // min_delay 0 must not panic or reject delay 1.
    let policy = MinimaPolicy {
        min_delay: 0,
        ..MinimaPolicy::exact()
    };
    let values = vec![0.0, 1.0, 1.0];
    let pairs = vec![8u32; 3];
    let spectrum = dpd::core::spectrum::Spectrum::from_parts(values, pairs, 8);
    let minima = policy.extract(&spectrum);
    assert_eq!(minima[0].delay, 1);
}

#[test]
fn stream_of_two_alternating_values() {
    let mut dpd = DpdBuilder::new().window(4).build_detector().unwrap();
    let mut periods = Vec::new();
    for i in 0..40usize {
        if let SegmentEvent::PeriodStart { period, .. } = dpd.push([10i64, 20][i % 2]) {
            periods.push(period);
        }
    }
    assert!(periods.iter().all(|&p| p == 2), "{periods:?}");
    assert!(!periods.is_empty());
}

#[test]
fn very_long_stream_stays_stable() {
    // 1M samples through a small window: no drift, no spurious losses.
    let mut dpd = DpdBuilder::new().window(16).build_detector().unwrap();
    for i in 0..1_000_000usize {
        dpd.push([1i64, 2, 3, 4, 5][i % 5]);
    }
    let st = dpd.stats();
    assert_eq!(st.detected_periods(), vec![5]);
    assert_eq!(st.losses, 0);
    assert_eq!(st.samples, 1_000_000);
    // Boundaries: one per period after warm-up.
    assert!(st.boundaries > 199_000, "{}", st.boundaries);
}

#[test]
fn interleaved_detectors_do_not_share_state() {
    let mut a = DpdBuilder::new().window(8).build_detector().unwrap();
    let mut b = DpdBuilder::new().window(8).build_detector().unwrap();
    for i in 0..100usize {
        a.push([1i64, 2, 3][i % 3]);
        b.push(i as i64); // aperiodic
    }
    assert_eq!(a.stats().detected_periods(), vec![3]);
    assert!(b.stats().detected_periods().is_empty());
}

#[test]
fn capi_handles_extreme_sample_values() {
    let mut dpd = DpdBuilder::new().window(8).build_capi().unwrap();
    let mut p = 0i32;
    let pattern = [i64::MIN, -1, 0, i64::MAX];
    let mut hits = 0;
    for i in 0..100usize {
        hits += dpd.dpd(pattern[i % 4], &mut p);
    }
    assert!(hits > 0);
    assert_eq!(p, 4);
}
