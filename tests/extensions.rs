//! Integration tests for the extension modules: hierarchical segmentation,
//! measurement intervals, quantization, dynamic serialization, the
//! autocorrelation baseline and the MPI-style FT variant.

use dpd::apps::app::{App, RunConfig};
use dpd::apps::ft::{ft_mpi_run, ft_run, PERIOD_MS};
use dpd::core::baseline::AutocorrDetector;
use dpd::core::detector::FrameDetector;
use dpd::core::hierarchy::analyze_hierarchy;
use dpd::core::intervals::{recommend, IntervalPlanner, IntervalPolicy};
use dpd::trace::quantize;

#[test]
fn hydro2d_hierarchy_has_three_levels() {
    let run = dpd::apps::hydro2d::Hydro2d.run(&RunConfig::default());
    let h = analyze_hierarchy(&run.addresses.values, &[8, 64, 512]).unwrap();
    assert_eq!(h.level_periods, vec![269, 24, 1]);
    // Outer segments contain inner ones.
    let outer = h.at_level(0)[0];
    let children = h.children_of(&outer);
    assert!(
        children.iter().any(|c| c.period == 24),
        "24-period segments inside the outer iteration"
    );
}

#[test]
fn turb3d_hierarchy_has_two_levels() {
    let run = dpd::apps::turb3d::Turb3d.run(&RunConfig::default());
    let h = analyze_hierarchy(&run.addresses.values, &[8, 64, 512]).unwrap();
    assert_eq!(h.level_periods, vec![142, 12]);
    assert_eq!(h.depth(), 2);
}

#[test]
fn measurement_interval_for_ft_period() {
    // Figure 4's m = 44 at 1 ms sampling: measuring over >= 100 ms means 3
    // whole periods (132 ms), well inside a 1 s budget.
    let policy = IntervalPolicy::new(100, 1_000);
    let r = recommend(PERIOD_MS, policy).unwrap();
    assert_eq!(r.periods, 3);
    assert_eq!(r.length, 132);
}

#[test]
fn interval_planner_follows_dpd_locks() {
    // Feed the planner the periods the multi-scale DPD reports on hydro2d.
    let run = dpd::apps::hydro2d::Hydro2d.run(&RunConfig::default());
    let mut bank = dpd::core::pipeline::DpdBuilder::new()
        .scales(dpd::core::pipeline::DEFAULT_SCALES)
        .build_multi_scale()
        .unwrap();
    let mut planner = IntervalPlanner::new(IntervalPolicy::new(100, 10_000));
    for &s in &run.addresses.values {
        for (_, e) in bank.push(s).events {
            if let dpd::core::streaming::SegmentEvent::PeriodStart { period, .. } = e {
                planner.on_period(period as u64);
            }
        }
    }
    // The last lock of the largest scale is 269 -> a single period suffices.
    let r = planner.current().expect("planner has a recommendation");
    assert_eq!(r.length % r.period, 0);
    assert!(r.length >= 100 && r.length <= 10_000);
    assert!(planner.revisions() >= 1);
}

#[test]
fn quantized_ft_trace_detects_44_with_event_metric() {
    // Bridge §2's two acquisition models: quantize the sampled CPU trace
    // into level events; the periodicity survives quantization.
    let run = ft_run(20);
    let stream = quantize::quantize_levels(&run.cpu_trace, 16);
    // Event metric on quantized samples: d(44) counts only jitter
    // mismatches. Use the nested detector's mismatch-fraction dips.
    let det = FrameDetector::magnitudes(200, 0.5);
    let as_mag: Vec<f64> = stream.iter().map(|&v| v as f64).collect();
    let report = det.analyze(&as_mag).unwrap();
    assert_eq!(report.period(), Some(PERIOD_MS as usize));
}

#[test]
fn change_events_compress_ft_trace() {
    let run = ft_run(20);
    let changes = quantize::change_events(&run.cpu_trace, 16);
    assert!(changes.len() < run.cpu_trace.len() / 2);
    assert!(changes.len() > 20, "plateaus compressed away entirely?");
}

#[test]
fn autocorrelation_agrees_on_clean_ft_but_may_pick_harmonics() {
    let run = ft_run(20);
    let report = AutocorrDetector::new(200)
        .analyze(&run.cpu_trace.values)
        .unwrap();
    let p = report.period.expect("autocorrelation finds a peak");
    assert_eq!(
        p % PERIOD_MS as usize,
        0,
        "autocorr period {p} is not a multiple of 44"
    );
}

#[test]
fn mpi_ft_matches_shared_memory_ft_periodicity() {
    let shared = ft_run(20);
    let mpi = ft_mpi_run(20, 4);
    let det = FrameDetector::magnitudes(200, 0.5);
    let p_shared = det.analyze(&shared.cpu_trace.values).unwrap().period();
    let p_mpi = det.analyze(&mpi.cpu_trace.values).unwrap().period();
    assert_eq!(p_shared, Some(44));
    assert_eq!(p_mpi, Some(44));
}

#[test]
fn serialization_policy_on_overhead_dominated_loop() {
    use dpd::analyzer::policy::{ExecutionDecision, SerializationPolicy};
    use dpd::analyzer::SelfAnalyzer;
    use dpd::runtime::machine::{LoopSpec, Machine, MachineConfig};

    // A tiny loop whose fork/join overheads exceed its parallel gain.
    let mut machine = Machine::new(MachineConfig {
        fork_overhead_ns: 100_000,
        join_overhead_ns: 100_000,
        ..MachineConfig::default()
    });
    let spec = LoopSpec::parallel(16, 2_000); // 32 µs of work
    let mut sa = SelfAnalyzer::new(8, 1);
    let addrs = [0xA0i64, 0xB0];
    for &(cpus, iters) in &[(1usize, 20usize), (16, 20)] {
        sa.set_cpus(cpus);
        for _ in 0..iters {
            for &a in &addrs {
                sa.on_loop_call(a, machine.now_ns());
                machine.run_loop(&spec, cpus);
            }
        }
    }
    let region = &sa.regions()[0];
    let s = region.speedup(1, 16).unwrap();
    assert!(s < 1.0, "parallel must lose here (S = {s})");
    assert_eq!(
        SerializationPolicy::default().decide(region, 1, 16),
        ExecutionDecision::Serialize
    );
}

#[test]
fn live_run_detected_by_dpd() {
    use dpd::apps::live::{live_jacobi_run, LiveConfig};
    let run = live_jacobi_run(&LiveConfig {
        threads: 2,
        grid: 32,
        iterations: 50,
        sample_period: std::time::Duration::from_micros(250),
    });
    let mut dpd = dpd::core::pipeline::DpdBuilder::new()
        .window(8)
        .build_detector()
        .unwrap();
    for &s in &run.addresses.values {
        dpd.push(s);
    }
    assert_eq!(dpd.stats().detected_periods(), vec![3]);
    assert!(run.residual.is_finite());
}
