//! Differential property tests: every **deprecated constructor path** and
//! its `DpdBuilder` replacement assemble bit-identical detector stacks.
//!
//! For random segmented traces (phase changes included) and random
//! configurations, each pair below must agree **byte for byte**: the full
//! event sequences (compared structurally — every payload is integral),
//! the running statistics, and the forecast `f64` accumulators (compared
//! via `to_bits`, so even the floating-point operation *order* must
//! match). This is the proof that the migration shims in the README table
//! are pure renames, not behavior changes.

// This test exists to pin the deprecated paths against the builder, so it
// intentionally calls them.
#![allow(deprecated)]

use dpd::core::capi::Dpd;
use dpd::core::pipeline::{Detector, DpdBuilder, DpdEvent};
use dpd::core::predict::{ForecastStats, ForecastingDpd};
use dpd::core::shard::{MultiStreamEvent, StreamId, StreamTable, TableConfig};
use dpd::core::streaming::{
    MultiScaleDpd, SegmentEvent, StreamStats, StreamingConfig, StreamingDpd,
};
use dpd::runtime::service::{MultiStreamDpd, ServiceConfig};
use proptest::collection;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Deterministic segmented event trace: a few phases, each periodic with
/// its own alphabet, driven from random words.
fn trace_from_words(words: &[u64]) -> Vec<i64> {
    let mut out = Vec::new();
    for (pi, &w) in words.iter().enumerate() {
        let period = (w % 7 + 1) as usize;
        let len = (w >> 8) % 120 + 30;
        let base = (pi as i64 + 1) * 1000;
        for i in 0..len as usize {
            out.push(base + (i % period) as i64);
        }
    }
    out
}

/// `ForecastStats` equality including bit-exact `f64` accumulators.
fn assert_forecast_stats_bit_identical(a: ForecastStats, b: ForecastStats, ctx: &str) {
    assert_eq!(a.issued, b.issued, "{ctx}: issued");
    assert_eq!(a.checked, b.checked, "{ctx}: checked");
    assert_eq!(a.hits, b.hits, "{ctx}: hits");
    assert_eq!(a.invalidations, b.invalidations, "{ctx}: invalidations");
    assert_eq!(a.dropped, b.dropped, "{ctx}: dropped");
    assert_eq!(a.ape_checked, b.ape_checked, "{ctx}: ape_checked");
    assert_eq!(
        a.abs_err_sum.to_bits(),
        b.abs_err_sum.to_bits(),
        "{ctx}: abs_err_sum bits"
    );
    assert_eq!(
        a.ape_sum.to_bits(),
        b.ape_sum.to_bits(),
        "{ctx}: ape_sum bits"
    );
}

fn assert_stream_stats_equal(a: &StreamStats, b: &StreamStats, ctx: &str) {
    assert_eq!(a, b, "{ctx}: detector stats");
}

/// Old `StreamingDpd::events` vs `DpdBuilder::build(sink)`: same events on
/// the unified stream, same stats, same lock.
fn check_streaming(data: &[i64], window: usize) {
    let mut old = StreamingDpd::events(StreamingConfig::with_window(window));
    let mut old_events = Vec::new();
    for &s in data {
        let e = old.push(s);
        if e != SegmentEvent::None {
            old_events.push((StreamId(0), DpdEvent::Segment(e)));
        }
    }

    let mut new = DpdBuilder::new().window(window).build(Vec::new()).unwrap();
    new.push_slice(data);
    assert_eq!(new.sink(), &old_events, "streaming window={window}");
    assert_stream_stats_equal(
        new.streaming().unwrap().stats(),
        old.stats(),
        &format!("streaming window={window}"),
    );
    assert_eq!(new.locked_period(), old.locked_period());
}

/// Old `MultiScaleDpd::new` vs `DpdBuilder::scales(..).build(sink)`.
fn check_multi_scale(data: &[i64], scales: &[usize]) {
    let mut old = MultiScaleDpd::new(scales).unwrap();
    let mut old_events = Vec::new();
    for &s in data {
        for (window, event) in old.push(s).events {
            old_events.push((StreamId(0), DpdEvent::Scale { window, event }));
        }
    }

    let mut new = DpdBuilder::new().scales(scales).build(Vec::new()).unwrap();
    new.push_slice(data);
    assert_eq!(new.sink(), &old_events, "scales={scales:?}");
    assert_eq!(new.detected_periods(), old.detected_periods());
}

/// Old `ForecastingDpd::events` vs the builder's forecasting pipeline:
/// segment/scored/invalidated events and the bit-exact forecast stats.
fn check_forecasting(data: &[i64], window: usize, horizon: usize) {
    let mut old = ForecastingDpd::events(StreamingConfig::with_window(window), horizon).unwrap();
    let mut old_events: Vec<(StreamId, DpdEvent)> = Vec::new();
    for &s in data {
        let (e, ob) = old.push(s);
        if e != SegmentEvent::None {
            old_events.push((StreamId(0), DpdEvent::Segment(e)));
        }
        if ob.invalidated {
            old_events.push((
                StreamId(0),
                DpdEvent::ForecastInvalidated {
                    dropped: ob.dropped,
                },
            ));
        }
        if let Some(sc) = ob.scored {
            old_events.push((
                StreamId(0),
                DpdEvent::ForecastScored {
                    predicted: sc.predicted,
                    actual: sc.actual,
                    hit: sc.hit,
                },
            ));
        }
        if let Some((position, value)) = ob.issued {
            assert_eq!(
                old.predictor().last_issued(),
                Some((position, value)),
                "issued observation disagrees with pending tail"
            );
            old_events.push((StreamId(0), DpdEvent::ForecastIssued { position, value }));
        }
    }

    let mut new = DpdBuilder::new()
        .window(window)
        .forecast(horizon)
        .build(Vec::new())
        .unwrap();
    new.push_slice(data);
    let ctx = format!("forecasting window={window} horizon={horizon}");
    assert_eq!(new.sink(), &old_events, "{ctx}");
    assert_forecast_stats_bit_identical(
        new.forecasting().unwrap().predictor().stats(),
        old.predictor().stats(),
        &ctx,
    );
    // The materialized forecast slices agree too.
    let old_fc = old
        .forecast(horizon)
        .map(|f| (f.period, f.predicted.to_vec(), f.confidence.to_bits()));
    let new_fc = new
        .forecast(horizon)
        .map(|f| (f.period, f.predicted.to_vec(), f.confidence.to_bits()));
    assert_eq!(new_fc, old_fc, "{ctx}: forecast slice");
}

/// Old `Dpd::with_window` (Table 1 shim) vs `build_capi`: identical return
/// values and period out-params, sample by sample.
fn check_capi(data: &[i64], window: usize) {
    let mut old = Dpd::with_window(window);
    let mut new = DpdBuilder::new().window(window).build_capi().unwrap();
    let (mut po, mut pn) = (0i32, 0i32);
    for &s in data {
        let ro = old.dpd(s, &mut po);
        let rn = new.dpd(s, &mut pn);
        assert_eq!((ro, po), (rn, pn), "capi window={window}");
    }
}

/// A batch schedule: `(stream, chunk)` pairs replayed in order.
type Schedule = Vec<(u64, Vec<i64>)>;

fn schedule_from_words(words: &[u64], streams: u64) -> Schedule {
    let mut out = Vec::new();
    for &w in words {
        let stream = w % streams;
        let period = (w >> 4) % 6 + 1;
        let len = ((w >> 16) % 40 + 1) as usize;
        let start = (w >> 32) % 1000;
        out.push((
            stream,
            (0..len as u64)
                .map(|i| ((start + i) % period) as i64)
                .collect(),
        ));
    }
    out
}

/// Old `StreamTable` + `TableConfig::with_*` vs `build_keyed`: identical
/// unified events and table rollups, including forecast counters.
fn check_keyed(schedule: &Schedule, window: usize, evict_after: u64, horizon: usize) {
    let config = if horizon > 0 {
        TableConfig::with_eviction(window, evict_after).forecasting(horizon)
    } else {
        TableConfig::with_eviction(window, evict_after)
    };
    let mut old = StreamTable::new(config);
    let mut old_raw = Vec::new();
    let mut seq = 0u64;
    for (stream, samples) in schedule {
        old.ingest(seq, StreamId(*stream), samples, &mut old_raw);
        seq += samples.len() as u64;
    }
    old.close_all(seq, &mut old_raw);
    let old_events: Vec<(StreamId, DpdEvent)> =
        old_raw.iter().map(DpdEvent::from_multi_stream).collect();

    let mut builder = DpdBuilder::new().window(window).keyed();
    if evict_after > 0 {
        builder = builder.evict_after(evict_after);
    }
    if horizon > 0 {
        builder = builder.forecast(horizon);
    }
    // sweep_every(0) keeps the lazy-eviction schedule of the raw loop
    // above (KeyedDpd's default paces sweeps; sweeps never change events,
    // but rollup eviction *counts* depend on the schedule).
    let mut new = builder.sweep_every(0).build_keyed(Vec::new()).unwrap();
    for (stream, samples) in schedule {
        new.ingest(StreamId(*stream), samples);
    }
    new.close_all();
    let ctx = format!("keyed window={window} evict={evict_after} horizon={horizon}");
    assert_eq!(new.sink(), &old_events, "{ctx}");
    assert_eq!(new.table().stats(), old.stats(), "{ctx}: rollups");
    // Per-stream forecast accumulators, bit for bit.
    for id in old.stream_ids() {
        match (old.forecast_stats(id), new.table().forecast_stats(id)) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_forecast_stats_bit_identical(a, b, &format!("{ctx} stream {id}"))
            }
            (a, b) => panic!("{ctx} stream {id}: forecast stats diverge: {a:?} vs {b:?}"),
        }
    }
}

/// New table-scale options (memory budget, cold summaries): the raw
/// `build_table` loop, the `build_keyed` pipeline and the deprecated
/// `forecasting()` reconstruction shim all agree — identical unified
/// events, rollups (including tier counters) and per-stream forecast
/// accumulators.
fn check_keyed_tiered(
    schedule: &Schedule,
    window: usize,
    evict_after: u64,
    cold_retain: u64,
    budget_streams: u64,
    horizon: usize,
) {
    let mut builder = DpdBuilder::new().window(window).keyed();
    if evict_after > 0 {
        builder = builder.evict_after(evict_after);
    }
    if horizon > 0 {
        builder = builder.forecast(horizon);
    }
    if budget_streams > 0 {
        let probe = builder.table_config().unwrap();
        builder = builder.memory_budget(
            probe.hot_stream_bytes() * budget_streams + probe.cold_stream_bytes() * 64,
        );
    }
    if cold_retain > 0 {
        builder = builder.cold_summary(cold_retain);
    }
    let ctx = format!(
        "tiered window={window} evict={evict_after} cold={cold_retain} \
         budget_streams={budget_streams} horizon={horizon}"
    );

    // The deprecated `forecasting()` shim must reconstruct the full config,
    // budget and cold retention included.
    let config = builder.table_config().unwrap();
    if horizon > 0 {
        let base = {
            let mut b = DpdBuilder::new().window(window).keyed();
            if evict_after > 0 {
                b = b.evict_after(evict_after);
            }
            b = b.memory_budget(config.memory_budget);
            if cold_retain > 0 {
                b = b.cold_summary(cold_retain);
            }
            b.table_config().unwrap()
        };
        assert_eq!(base.forecasting(horizon), config, "{ctx}: forecasting shim");
    }

    let mut raw_table = StreamTable::new(config);
    let mut raw_events = Vec::new();
    let mut seq = 0u64;
    for (stream, samples) in schedule {
        raw_table.ingest(seq, StreamId(*stream), samples, &mut raw_events);
        seq += samples.len() as u64;
    }
    raw_table.close_all(seq, &mut raw_events);
    let raw_unified: Vec<(StreamId, DpdEvent)> =
        raw_events.iter().map(DpdEvent::from_multi_stream).collect();

    let mut keyed = builder.sweep_every(0).build_keyed(Vec::new()).unwrap();
    for (stream, samples) in schedule {
        keyed.ingest(StreamId(*stream), samples);
    }
    keyed.close_all();
    assert_eq!(keyed.sink(), &raw_unified, "{ctx}");
    assert_eq!(keyed.table().stats(), raw_table.stats(), "{ctx}: rollups");
    let st = raw_table.stats();
    assert!(
        st.promoted <= st.demoted,
        "{ctx}: promotions without demotions ({st:?})"
    );
}

fn by_stream(events: &[MultiStreamEvent]) -> BTreeMap<u64, Vec<MultiStreamEvent>> {
    let mut m: BTreeMap<u64, Vec<MultiStreamEvent>> = BTreeMap::new();
    for &e in events {
        m.entry(e.stream().0).or_default().push(e);
    }
    m
}

/// Old `MultiStreamDpd::new(ServiceConfig::with_window(..))` vs
/// `MultiStreamDpd::from_builder`: identical per-stream event sequences
/// and identical totals, for inline and sharded modes.
fn check_service(schedule: &Schedule, shards: usize, window: usize) {
    let run = |mut svc: MultiStreamDpd| {
        for (stream, samples) in schedule {
            svc.ingest(&[(StreamId(*stream), samples.as_slice())]);
        }
        svc.finish()
    };
    let (old_events, old_snap) = run(MultiStreamDpd::new(ServiceConfig::with_window(
        shards, window,
    )));
    let (new_events, new_snap) = run(MultiStreamDpd::from_builder(
        &DpdBuilder::new().window(window).shards(shards),
    )
    .unwrap());
    let ctx = format!("service shards={shards} window={window}");
    assert_eq!(by_stream(&new_events), by_stream(&old_events), "{ctx}");
    assert_eq!(new_snap.total().samples, old_snap.total().samples, "{ctx}");
    assert_eq!(new_snap.total().events, old_snap.total().events, "{ctx}");
}

/// `MultiStreamDpd::drain_into` delivers exactly `drain()`'s events,
/// translated through the one unified vocabulary.
#[test]
fn service_drain_into_matches_drain() {
    let schedule = schedule_from_words(&[3, 99, 0x50_0007, 0xAB_CDEF, 42], 3);
    let run = |collect: bool| {
        let mut svc = MultiStreamDpd::from_builder(&DpdBuilder::new().window(8).shards(0)).unwrap();
        for (stream, samples) in &schedule {
            svc.ingest(&[(StreamId(*stream), samples.as_slice())]);
        }
        svc.flush();
        if collect {
            let mut sink: Vec<(StreamId, DpdEvent)> = Vec::new();
            svc.drain_into(&mut sink);
            sink
        } else {
            svc.drain()
                .iter()
                .map(DpdEvent::from_multi_stream)
                .collect()
        }
    };
    let a = run(true);
    let b = run(false);
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

/// A closure sink observes the same events a `Vec` sink collects.
#[test]
fn closure_sink_sees_vec_sink_events() {
    let data = trace_from_words(&[7, 0x30_0042, 19]);
    let mut collected = Vec::new();
    {
        let sink = |s: StreamId, e: &DpdEvent| collected.push((s, *e));
        let mut pipe = DpdBuilder::new().window(8).forecast(2).build(sink).unwrap();
        pipe.push_slice(&data);
    }
    let mut reference = DpdBuilder::new()
        .window(8)
        .forecast(2)
        .build(Vec::new())
        .unwrap();
    reference.push_slice(&data);
    assert_eq!(&collected, reference.sink());
    assert!(!collected.is_empty());
}

/// The `EventSink` impl for `()` discards without disturbing the stack.
#[test]
fn unit_sink_keeps_stack_behavior() {
    let data = trace_from_words(&[5, 0x20_0031]);
    let mut silent = DpdBuilder::new().window(8).build(()).unwrap();
    silent.push_slice(&data);
    let mut loud = DpdBuilder::new().window(8).build(Vec::new()).unwrap();
    loud.push_slice(&data);
    assert_eq!(silent.detected_periods(), loud.detected_periods());
    assert_eq!(silent.locked_period(), loud.locked_period());
}

proptest! {
    /// Plain streaming stack: old constructor vs builder, random traces
    /// and windows.
    #[test]
    fn streaming_builder_bit_identical(
        words in collection::vec(any::<u64>(), 1..6),
        window_pow in 0u32..7,
    ) {
        let data = trace_from_words(&words);
        check_streaming(&data, 1usize << window_pow);
    }

    /// Magnitude stack: old constructor vs builder — same type, so the
    /// whole event sequence and final spectrum must agree.
    #[test]
    fn magnitudes_builder_bit_identical(
        words in collection::vec(any::<u64>(), 1..5),
        window in 4usize..40,
    ) {
        let data: Vec<f64> = trace_from_words(&words)
            .iter()
            .map(|&v| (v % 97) as f64 * 0.5)
            .collect();
        let mut old = StreamingDpd::magnitudes(StreamingConfig::magnitudes(window));
        let mut new = DpdBuilder::new()
            .window(window)
            .magnitudes()
            .build_magnitude_detector()
            .unwrap();
        for &s in &data {
            prop_assert_eq!(old.push(s), new.push(s));
        }
        prop_assert_eq!(old.stats(), new.stats());
        let (os, ns) = (old.spectrum(), new.spectrum());
        for m in 1..=window {
            prop_assert_eq!(
                os.at(m).map(f64::to_bits),
                ns.at(m).map(f64::to_bits),
                "d({}) bits",
                m
            );
        }
    }

    /// Multi-scale stack: old bank vs builder pipeline.
    #[test]
    fn multi_scale_builder_bit_identical(
        words in collection::vec(any::<u64>(), 1..6),
        small in 2usize..12,
        large in 32usize..128,
    ) {
        let data = trace_from_words(&words);
        check_multi_scale(&data, &[small, large]);
    }

    /// Forecasting stack: old bundle vs builder pipeline, incl. bit-exact
    /// f64 accumulators and forecast slices.
    #[test]
    fn forecasting_builder_bit_identical(
        words in collection::vec(any::<u64>(), 1..6),
        window_pow in 2u32..7,
        horizon in 1usize..9,
    ) {
        let data = trace_from_words(&words);
        check_forecasting(&data, 1usize << window_pow, horizon);
    }

    /// Table 1 C-style interface: shim vs builder.
    #[test]
    fn capi_builder_bit_identical(
        words in collection::vec(any::<u64>(), 1..5),
        window in 2usize..64,
    ) {
        let data = trace_from_words(&words);
        check_capi(&data, window);
    }

    /// Keyed table: deprecated TableConfig constructors vs build_keyed,
    /// with eviction and per-stream forecasting in play.
    #[test]
    fn keyed_builder_bit_identical(
        words in collection::vec(any::<u64>(), 1..20),
        window in 2usize..24,
        evict_sel in 0u64..2,
        evict_raw in 20u64..200,
        horizon in 0usize..4,
    ) {
        let evict = if evict_sel == 0 { 0 } else { evict_raw };
        let schedule = schedule_from_words(&words, 5);
        check_keyed(&schedule, window, evict, horizon);
    }

    /// Table-scale options: memory budget and cold summaries behave
    /// identically through the raw table, the keyed pipeline and the
    /// deprecated `forecasting()` reconstruction shim.
    #[test]
    fn tiered_table_paths_bit_identical(
        words in collection::vec(any::<u64>(), 1..16),
        window in 2usize..24,
        evict_sel in 0u64..2,
        evict_raw in 20u64..200,
        cold_sel in 0u64..2,
        cold_raw in 10u64..300,
        budget_streams in 0u64..6,
        horizon in 0usize..3,
    ) {
        let evict = if evict_sel == 0 { 0 } else { evict_raw };
        let cold = if cold_sel == 0 { 0 } else { cold_raw };
        // Cold retention needs a demotion source; budget alone suffices.
        let budget_streams = if cold > 0 && evict == 0 { budget_streams.max(2) } else { budget_streams };
        let schedule = schedule_from_words(&words, 5);
        check_keyed_tiered(&schedule, window, evict, cold, budget_streams, horizon);
    }

    /// Sharded service: deprecated ServiceConfig constructors vs
    /// from_builder, inline and threaded.
    #[test]
    fn service_builder_bit_identical(
        words in collection::vec(any::<u64>(), 1..12),
        shards in 0usize..4,
        window in 4usize..32,
    ) {
        let schedule = schedule_from_words(&words, 6);
        check_service(&schedule, shards, window);
    }
}
