//! Property tests for the observability plane (`dpd::obs`).
//!
//! Three contracts under test:
//!
//! 1. **Histogram bucket invariants** — every recorded value lands in
//!    exactly the log2 bucket `bucket_of` names, the bucket population
//!    always sums to the count, and the bucket bounds tile the u64 range
//!    without gaps or overlaps.
//! 2. **Exposition round-trip** — `parse_exposition(registry.render())`
//!    recovers exactly `registry.samples()`, for arbitrary mixes of
//!    counters, gauges and histograms (labeled and not).
//! 3. **Scrape-equals-drain differential** — reading the registry over
//!    the live HTTP endpoint (`dpd::obs::scrape`) yields the very same
//!    samples as draining it in-process; the wire adds nothing and
//!    loses nothing. The same differential is run for the self-tracer:
//!    the DTB file its sampler thread writes carries exactly the values
//!    that were recorded, in order, per shard.

use dpd::obs::{
    bucket_of, bucket_upper_bound, parse_exposition, scrape, MetricsServer, Registry, SelfTracer,
    HISTOGRAM_BUCKETS,
};
use dpd::trace::dtb;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

proptest! {
    /// Invariant 1: bucket placement and tiling.
    #[test]
    fn histogram_bucket_invariants(
        values in collection::vec(0u64..(1u64 << 40), 0..200),
    ) {
        let reg = Registry::new();
        let h = reg.histogram("prop_ns", "bucket invariants");
        let mut expect = vec![0u64; HISTOGRAM_BUCKETS];
        for &v in &values {
            h.record(v);
            let b = bucket_of(v);
            prop_assert!(b < HISTOGRAM_BUCKETS, "bucket index out of range");
            // The value fits under its bucket's bound...
            prop_assert!(v <= bucket_upper_bound(b));
            // ...and does not fit under the previous bucket's bound.
            if b > 0 {
                prop_assert!(v > bucket_upper_bound(b - 1));
            }
            expect[b] += 1;
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        let buckets = h.buckets();
        prop_assert_eq!(&buckets[..], &expect[..]);
        prop_assert_eq!(buckets.iter().sum::<u64>(), h.count());
        // Bounds are strictly increasing: the buckets tile the range.
        for b in 1..HISTOGRAM_BUCKETS - 1 {
            prop_assert!(bucket_upper_bound(b - 1) < bucket_upper_bound(b));
        }
        prop_assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    /// Invariant 2: the text page parses back to exactly the samples.
    #[test]
    fn exposition_round_trips(
        counters in collection::vec(0u64..(1u64 << 32), 1..6),
        gauge in 0u64..100_000,
        hist in collection::vec(0u64..(1u64 << 20), 0..50),
    ) {
        let reg = Registry::new();
        for (i, &c) in counters.iter().enumerate() {
            reg.counter(&format!("prop_c_total{{shard=\"{i}\"}}"), "labeled counter")
                .add(c);
        }
        reg.gauge("prop_level", "a gauge").set(gauge);
        let h = reg.histogram("prop_lat_ns", "a histogram");
        for &v in &hist {
            h.record(v);
        }
        let parsed = parse_exposition(&reg.render()).unwrap();
        let expect: BTreeMap<String, f64> = reg.samples().into_iter().collect();
        prop_assert_eq!(parsed.values, expect);
        }

    /// Invariant 3a: one scrape over the wire == one in-process drain.
    #[test]
    fn scrape_equals_drain(
        counters in collection::vec(0u64..(1u64 << 32), 1..6),
        hist in collection::vec(0u64..(1u64 << 24), 1..40),
    ) {
        let reg = Registry::new();
        for (i, &c) in counters.iter().enumerate() {
            reg.counter(&format!("wire_c_total{{shard=\"{i}\"}}"), "labeled counter")
                .add(c);
        }
        let h = reg.histogram("wire_lat_ns", "a histogram");
        for &v in &hist {
            h.record(v);
        }
        let server = MetricsServer::start(reg.clone(), "127.0.0.1:0").unwrap();
        let page = scrape(server.local_addr()).unwrap();
        server.shutdown();
        let over_wire = parse_exposition(&page).unwrap();
        let in_process: BTreeMap<String, f64> = reg.samples().into_iter().collect();
        prop_assert_eq!(over_wire.values, in_process);
    }

    /// Invariant 3b: the self-trace DTB capture carries exactly the
    /// recorded per-shard values, in record order.
    #[test]
    fn self_trace_round_trips(
        shards in 1usize..4,
        values in collection::vec(-5_000i64..5_000, 1..300),
    ) {
        let tracer = SelfTracer::new(shards);
        let dir = std::env::temp_dir().join(format!(
            "dpd-proptest-obs-{}-{shards}-{}",
            std::process::id(),
            values.len()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("self.dtb");
        let writer = tracer.start_writer(&path, Duration::from_millis(5)).unwrap();
        let mut expect: Vec<Vec<i64>> = vec![Vec::new(); shards];
        for (i, &v) in values.iter().enumerate() {
            let shard = i % shards;
            tracer.record_value(shard, v);
            expect[shard].push(v);
        }
        writer.finish();
        let data = std::fs::read(&path).unwrap();
        let (events, sampled) = dtb::read_all(&data).unwrap();
        prop_assert!(sampled.is_empty());
        prop_assert_eq!(events.len(), shards);
        for (k, t) in events.iter().enumerate() {
            prop_assert_eq!(t.name.as_str(), format!("ingest-loop/shard-{k}").as_str());
            prop_assert_eq!(&t.values, &expect[k]);
        }
        prop_assert_eq!(tracer.recorded(), values.len() as u64);
        prop_assert_eq!(tracer.dropped(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
