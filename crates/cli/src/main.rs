//! `dpd` — command-line front end to the Dynamic Periodicity Detector.
//!
//! ```text
//! dpd generate --kind periodic --period 6 --len 5000 --out trace.txt
//! dpd generate --kind nested --format dtb --out trace.dtb
//! dpd apps --app tomcatv --out tomcatv.trace
//! dpd convert trace.txt --out trace.dtb
//! dpd analyze trace.txt [--scales 8,64,512]
//! dpd spectrum trace.txt [--window 128]
//! dpd segment trace.txt [--window 64]
//! dpd multistream traces/ [--shards 4]
//! dpd predict trace.txt [--window 64] [--horizon 1]
//! dpd checkpoint traces/ --pile run.pile [--every 8]
//! dpd resume traces/ --pile run.pile [--every 8]
//! ```
//!
//! Trace files are the text format or DTB binary containers; every
//! reader auto-detects the format by magic (see `docs/FORMAT.md`).
//! `checkpoint`/`resume` run the durable ingest loop: write-ahead
//! logging to a crash-safe pile plus periodic whole-service
//! checkpoints (see `docs/FORMAT.md` §9).

use std::process::ExitCode;

use dpd_cli::cmd;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cmd::dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dpd: {e}");
            eprintln!();
            eprintln!("{}", cmd::USAGE);
            ExitCode::FAILURE
        }
    }
}
