//! `dpd` — command-line front end to the Dynamic Periodicity Detector.
//!
//! ```text
//! dpd generate --kind periodic --period 6 --len 5000 --out trace.txt
//! dpd generate --kind nested --out trace.txt
//! dpd apps --app tomcatv --out tomcatv.trace
//! dpd analyze trace.txt [--scales 8,64,512]
//! dpd spectrum trace.txt [--window 128]
//! dpd segment trace.txt [--window 64]
//! ```

use std::process::ExitCode;

mod cmd;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cmd::dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dpd: {e}");
            eprintln!();
            eprintln!("{}", cmd::USAGE);
            ExitCode::FAILURE
        }
    }
}
