//! Library surface of the `dpd` command-line front end.
//!
//! The binary in `main.rs` is a thin wrapper around [`cmd::dispatch`];
//! exposing the command layer as a library lets integration tests (the
//! golden-file CLI regression suite at `tests/golden_cli.rs`) execute
//! commands in-process and assert their exact stdout.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cmd;
pub mod netcmd;
