//! Network commands: `dpd serve` and `dpd loadgen`.
//!
//! `serve` is the DTB-over-TCP ingestion front end: it binds a socket,
//! hands every accepted connection to [`par_runtime::net::DpdServer`]
//! (incremental frame reassembly, bounded buffers, slow-client shedding,
//! optional checkpoint-on-exit durability) and — once the accept limit
//! is reached and every connection has drained — prints the same kind of
//! deterministic summary the offline `multistream` command does.
//!
//! `loadgen` is the matching client simulator: it replays a DTB corpus
//! over N concurrent connections, partitioning the corpus's event
//! streams across them, with configurable pacing, fragmentation (down
//! to one-byte writes) and abrupt disconnects, and reports sustained
//! throughput plus ingest-latency percentiles measured off the server's
//! acknowledgement stream.

use crate::cmd::Flags;
use dpd_core::pipeline::DpdBuilder;
use dpd_obs::{MetricsServer, Registry, SelfTracer};
use dpd_trace::dtb::{self, Block, DtbDecoder, DtbWriter};
use dpd_trace::EventTrace;
use par_runtime::net::{DpdServer, DurableNet, NetConfig, HANDSHAKE_MAGIC, PROTOCOL_VERSION};
use par_runtime::service::ServiceObs;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// `dpd serve --help` text (golden-file tested).
pub const SERVE_USAGE: &str = "usage: dpd serve [flags]

Serve the multi-stream detector over TCP. Clients speak the DTB
container format as the wire protocol (docs/FORMAT.md \u{a7}10): the server
sends a 6-byte handshake on accept, the client streams DTB bytes, and
the server acknowledges ingested samples with 8-byte cumulative counts.

  --listen ADDR        bind address (default 127.0.0.1:0)
  --port-file FILE     write the bound address to FILE once listening
  --accept N           stop accepting after N connections, then drain
                       and exit (default 0: serve until killed)
  --window W           detector window (default 64)
  --shards S           worker shards; 0 = inline deterministic (default 0)
  --evict-after N      close streams idle for N global samples (default off)
  --query FILE         attach standing queries from a spec file, one per
                       line (docs/QUERIES.md); the summary then reports
                       enter/exit delta counts
  --max-conns N        shed connections beyond N open (default 4096)
  --max-frame BYTES    reject frames larger than BYTES (default 1048576)
  --stall-ms T         shed a connection stalled mid-frame for T ms
                       (default 5000)
  --checkpoint FILE    durable mode: checkpoint detector state to FILE
  --checkpoint-every N durable mode: checkpoint every N samples
                       (default 0: only at clean closes and on exit)
  --resume             resume from --checkpoint FILE when it exists
  --metrics ADDR       expose live metrics: serve `GET /metrics`
                       (Prometheus text format) on ADDR; scrape it with
                       `dpd stats` (docs/OBSERVABILITY.md)
  --metrics-port-file FILE  write the bound metrics address to FILE
                       once listening (requires --metrics)
  --self-trace FILE    record per-shard ingest-loop timings to FILE as
                       a DTB event trace while serving; point
                       `dpd analyze FILE` at the server's own pulse
  --self-trace-every-ms N  self-trace sampler drain interval
                       (default 100)
  --timing show|none   wall-clock figures in the summary (default show)
";

/// `dpd loadgen --help` text.
pub const LOADGEN_USAGE: &str = "usage: dpd loadgen CORPUS [flags]

Replay a DTB corpus against `dpd serve` over N concurrent connections.
Event streams are partitioned round-robin across connections, so the
united replay covers every stream exactly once.

  --connect ADDR       server address
  --port-file FILE     read the server address from FILE (poll until
                       it appears; the serve-side --port-file)
  --conns N            concurrent connections (default 1)
  --chunk N            samples per re-encoded DTB frame (default 256)
  --fragment MODE      write sizing: whole | bytes:N | random
                       (default whole; random = 1..=4096-byte writes)
  --seed S             deterministic seed for random fragmentation
                       (default 1)
  --pace-ms T          sleep T ms between writes (default 0)
  --abort-after-bytes B  drop each connection abruptly after B bytes
  --timing show|none   throughput/latency figures (default show)
";

/// `dpd stats --help` text (golden-file tested).
pub const STATS_USAGE: &str = "usage: dpd stats [ADDR] [flags]

Scrape a `dpd serve --metrics` endpoint once and print every series as
a sorted `name value` line — a deterministic, diff-friendly rendering
of the Prometheus text page (docs/OBSERVABILITY.md). ADDR is the
`--metrics` address; omit it and pass --port-file to read the address
a server published with --metrics-port-file.

  --port-file FILE     read ADDR from FILE (poll until it appears)
  --filter PREFIX      only print series whose name starts with PREFIX
  --raw                print the exposition page verbatim instead
                       (HELP/TYPE comments and all)
  --watch SEC          keep scraping every SEC seconds; scrapes are
                       separated by `---` lines
  --count N            stop after N scrapes (default 1; with --watch
                       the default is 5)
";

/// Parse `--timing show|none`.
fn parse_timing(flags: &Flags) -> Result<bool, String> {
    match flags.get("timing").unwrap_or("show") {
        "show" => Ok(true),
        "none" => Ok(false),
        other => Err(format!("unknown --timing {other:?} (show|none)")),
    }
}

/// Atomically publish a bound address to a port file: pollers (loadgen,
/// `dpd stats --port-file`) must never read a half-written address.
fn publish_port_file(pf: &str, addr: &std::net::SocketAddr) -> Result<(), String> {
    let tmp = format!("{pf}.tmp");
    std::fs::write(&tmp, format!("{addr}\n")).map_err(|e| format!("write {tmp}: {e}"))?;
    std::fs::rename(&tmp, pf).map_err(|e| format!("publish {pf}: {e}"))
}

// ---------------------------------------------------------------------------
// dpd serve

/// `dpd serve`: run the DTB-over-TCP ingestion server (see
/// [`SERVE_USAGE`]). With `--accept N` the command is self-terminating:
/// it stops accepting after N connections, waits for every accepted one
/// to finish, then shuts down and prints a deterministic summary.
pub fn serve(flags: &Flags) -> Result<String, String> {
    if flags.has("help") {
        return Ok(SERVE_USAGE.to_string());
    }
    let listen = flags.get("listen").unwrap_or("127.0.0.1:0");
    let accept = flags.get_usize("accept", 0)? as u64;
    let window = flags.get_usize("window", 64)?;
    let shards = flags.get_usize("shards", 0)?;
    let evict_after = flags.get_usize("evict-after", 0)? as u64;
    let timing = parse_timing(flags)?;

    let mut builder = DpdBuilder::new().window(window).shards(shards);
    if evict_after > 0 {
        builder = builder.evict_after(evict_after);
    }
    let queries = match flags.get("query") {
        Some(spec_path) => {
            let text =
                std::fs::read_to_string(spec_path).map_err(|e| format!("read {spec_path}: {e}"))?;
            let specs =
                dpd_core::query::parse_specs(&text).map_err(|e| format!("{spec_path}: {e}"))?;
            builder = builder.standing_queries(&specs);
            specs.len()
        }
        None => 0,
    };
    let mut cfg = NetConfig {
        max_conns: flags.get_usize("max-conns", 4096)?,
        max_frame: flags.get_usize("max-frame", dtb::DEFAULT_MAX_FRAME)?,
        stall_ms: flags.get_usize("stall-ms", 5_000)? as u64,
        accept_limit: accept,
        ..NetConfig::default()
    };
    if let Some(path) = flags.get("checkpoint") {
        cfg.durable = Some(DurableNet {
            path: path.into(),
            every_samples: flags.get_usize("checkpoint-every", 0)? as u64,
            resume: flags.has("resume"),
        });
    } else if flags.has("resume") {
        return Err("--resume requires --checkpoint FILE".into());
    }
    let durable = cfg.durable.is_some();
    let metrics_addr = flags.get("metrics");
    if flags.get("metrics-port-file").is_some() && metrics_addr.is_none() {
        return Err("--metrics-port-file requires --metrics ADDR".into());
    }
    let self_trace = flags.get("self-trace");
    let self_trace_every = flags.get_usize("self-trace-every-ms", 100)?.max(1) as u64;

    // Observability wiring: the service's per-shard rollups and the
    // server's dpd_net_* counters register into one registry, which the
    // optional --metrics endpoint serves live; the optional self-tracer
    // records every ingest-loop timing for the sampler thread to write
    // out as a DTB trace the detector itself can analyze.
    let registry = Registry::new();
    let tracer = self_trace.map(|_| SelfTracer::new(shards.max(1)));
    let obs = ServiceObs {
        registry: registry.clone(),
        self_tracer: tracer.clone(),
    };

    let server = DpdServer::start_observed(&builder, cfg, listen, obs)
        .map_err(|e| format!("serve {listen}: {e}"))?;
    let addr = server.local_addr();
    if let Some(pf) = flags.get("port-file") {
        publish_port_file(pf, &addr)?;
    }
    let metrics = match metrics_addr {
        Some(maddr) => {
            let m = MetricsServer::start(registry.clone(), maddr)
                .map_err(|e| format!("metrics {maddr}: {e}"))?;
            if let Some(pf) = flags.get("metrics-port-file") {
                publish_port_file(pf, &m.local_addr())?;
            }
            Some(m)
        }
        None => None,
    };
    let trace_writer = match (&tracer, self_trace) {
        (Some(t), Some(path)) => Some(
            t.start_writer(path, Duration::from_millis(self_trace_every))
                .map_err(|e| format!("self-trace {path}: {e}"))?,
        ),
        _ => None,
    };

    let start = Instant::now();
    // Self-terminating with an accept limit; otherwise serve until the
    // process is killed (the durable checkpoint cadence is the crash
    // story, exercised by the fault-injection tests).
    while !server.drained() {
        std::thread::sleep(Duration::from_millis(5));
    }
    let report = server
        .shutdown()
        .map_err(|e| format!("serve shutdown: {e}"))?;
    let elapsed = start.elapsed();

    let mut out = String::new();
    if let Some(m) = report.resumed_from {
        writeln!(
            out,
            "resumed from checkpoint #{} at samples {}",
            m.ordinal, m.samples
        )
        .unwrap();
    }
    let s = report.stats;
    writeln!(
        out,
        "served {} connection(s): {} clean, {} protocol error(s), {} shed, {} disconnected",
        s.accepted,
        s.clean_closes,
        s.protocol_errors,
        s.shed_capacity + s.shed_stalled + s.shed_slow,
        s.disconnected
    )
    .unwrap();
    if timing {
        writeln!(
            out,
            "ingested {} samples in {} frames ({} bytes) in {:.1} ms ({:.2} Msamples/s)",
            s.samples,
            s.frames,
            s.bytes,
            elapsed.as_secs_f64() * 1e3,
            s.samples as f64 / elapsed.as_secs_f64().max(1e-9) / 1e6,
        )
        .unwrap();
    } else {
        writeln!(out, "ingested {} samples in {} frames", s.samples, s.frames).unwrap();
    }
    if s.samples_skipped > 0 {
        writeln!(
            out,
            "note: skipped {} sampled value(s) (serve ingests event streams only)",
            s.samples_skipped
        )
        .unwrap();
    }
    if durable {
        writeln!(out, "checkpoints {}", s.checkpoints).unwrap();
    }
    // Observability epilogue: these lines appear only when the flags
    // were given, so flag-less summaries stay byte-identical.
    if let Some(m) = metrics {
        writeln!(out, "metrics: served {} scrape(s)", m.scrapes()).unwrap();
        m.shutdown();
    }
    if let Some(w) = trace_writer {
        let path = w.path().display().to_string();
        // Final drain + DTB finalize before we report the file.
        w.finish();
        writeln!(out, "self-trace: wrote {path}").unwrap();
    }
    // Event lines sorted by stream id: the sort is stable, so the
    // per-stream order the service guarantees is preserved and the
    // output is deterministic for any connection interleaving.
    let mut events = report.events;
    events.sort_by_key(|e| e.stream().0);
    for e in &events {
        writeln!(out, "  {e:?}").unwrap();
    }
    let t = report.snapshot.total();
    writeln!(
        out,
        "shards: {} | events {} | evicted {} | closed {}",
        report.snapshot.shards.len(),
        t.events,
        t.evicted,
        t.closed
    )
    .unwrap();
    // Only when queries are registered, so query-less summaries stay
    // byte-identical to earlier releases.
    if queries > 0 {
        writeln!(
            out,
            "queries: {queries} | enters {} | exits {}",
            t.query_enters, t.query_exits
        )
        .unwrap();
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// dpd stats

/// Poll `path` until it holds a non-empty line (a serve-side port
/// file's atomic publish), returning that line.
fn poll_port_file(path: &str) -> Result<String, String> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            let addr = text.trim();
            if !addr.is_empty() {
                return Ok(addr.to_string());
            }
        }
        if Instant::now() >= deadline {
            return Err(format!("port file {path} did not appear"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// `dpd stats [ADDR]`: scrape a `serve --metrics` endpoint and print
/// its series as sorted `name value` lines (see [`STATS_USAGE`]).
pub fn stats(flags: &Flags) -> Result<String, String> {
    if flags.has("help") {
        return Ok(STATS_USAGE.to_string());
    }
    let addr = match flags.positional.first() {
        Some(a) => a.clone(),
        None => match flags.get("port-file") {
            Some(pf) => poll_port_file(pf)?,
            None => return Err("stats expects ADDR or --port-file FILE".into()),
        },
    };
    let watch_secs = flags.get_usize("watch", 0)? as u64;
    let count = flags
        .get_usize("count", if watch_secs > 0 { 5 } else { 1 })?
        .max(1);
    let raw = flags.has("raw");
    let filter = flags.get("filter").unwrap_or("");

    let mut out = String::new();
    for i in 0..count {
        if i > 0 {
            std::thread::sleep(Duration::from_secs(watch_secs));
            writeln!(out, "---").unwrap();
        }
        let page = dpd_obs::scrape(&addr).map_err(|e| format!("scrape {addr}: {e}"))?;
        if raw {
            out.push_str(&page);
            continue;
        }
        let scrape = dpd_obs::parse_exposition(&page).map_err(|e| format!("{addr}: {e}"))?;
        // BTreeMap iteration: already sorted, so the rendering is
        // deterministic for a fixed registry state.
        for (series, value) in &scrape.values {
            if series.starts_with(filter) {
                writeln!(out, "{series} {value}").unwrap();
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// dpd loadgen

/// Client write-size policy.
#[derive(Debug, Clone, Copy)]
enum Fragment {
    /// One `write` per connection payload.
    Whole,
    /// Fixed-size writes.
    Bytes(usize),
    /// Seeded random write sizes in `1..=4096`.
    Random,
}

fn parse_fragment(s: &str) -> Result<Fragment, String> {
    match s {
        "whole" => Ok(Fragment::Whole),
        "random" => Ok(Fragment::Random),
        other => match other.strip_prefix("bytes:").map(str::parse) {
            Some(Ok(n)) if n > 0 => Ok(Fragment::Bytes(n)),
            _ => Err(format!(
                "unknown --fragment {other:?} (whole|bytes:N|random)"
            )),
        },
    }
}

/// splitmix64: the deterministic per-connection fragmentation RNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Resolve the server address from `--connect` or `--port-file`.
fn resolve_addr(flags: &Flags) -> Result<String, String> {
    if let Some(addr) = flags.get("connect") {
        return Ok(addr.to_string());
    }
    let pf = flags
        .get("port-file")
        .ok_or("loadgen requires --connect ADDR or --port-file FILE")?;
    poll_port_file(pf)
}

/// One connection's replay payload: the DTB bytes, the frame boundaries
/// as `(byte_end, cumulative_samples)` pairs, and the sample total.
struct ConnPayload {
    bytes: Vec<u8>,
    bounds: Vec<(usize, u64)>,
    samples: u64,
}

/// Re-encode a connection's share of the corpus as a standalone DTB
/// stream: declarations first, then round-robin frames of `chunk`
/// samples — the arrival pattern of many applications tracing at once.
fn encode_conn(streams: &[(u64, &EventTrace)], chunk: usize) -> Result<ConnPayload, String> {
    let mut w = DtbWriter::with_block_len(Vec::new(), chunk).map_err(|e| e.to_string())?;
    for (id, t) in streams {
        w.declare_events(*id, &t.name).map_err(|e| e.to_string())?;
    }
    let mut offset = 0;
    loop {
        let mut any = false;
        for (id, t) in streams {
            if offset < t.values.len() {
                let end = (offset + chunk).min(t.values.len());
                w.push_events(*id, &t.values[offset..end])
                    .map_err(|e| e.to_string())?;
                any = true;
            }
        }
        if !any {
            break;
        }
        offset += chunk;
    }
    let bytes = w.finish().map_err(|e| e.to_string())?;

    // Recover the frame boundaries from the encoded bytes themselves (the
    // writer may coalesce pushes into blocks): after each decoded events
    // frame, `position()` is the exact byte the server needs to have seen
    // to acknowledge `cum` samples.
    let mut dec = DtbDecoder::new();
    dec.feed(&bytes);
    let mut bounds = Vec::new();
    let mut cum = 0u64;
    loop {
        match dec
            .next_block()
            .map_err(|e| format!("re-encoded corpus: {e}"))?
        {
            None => break,
            Some(Block::Events { values, .. }) => {
                cum += values.len() as u64;
                bounds.push((dec.position(), cum));
            }
            Some(_) => {}
        }
    }
    Ok(ConnPayload {
        bytes,
        bounds,
        samples: cum,
    })
}

/// What one connection worker reports back.
#[derive(Debug, Default)]
struct ConnOutcome {
    sent_samples: u64,
    acked: u64,
    aborted: bool,
    error: Option<String>,
    /// Ingest latency samples: ack arrival minus frame-send completion.
    latencies: Vec<Duration>,
}

/// Tuning of one loadgen connection.
#[derive(Debug, Clone, Copy)]
struct ConnPlan {
    fragment: Fragment,
    seed: u64,
    pace_ms: u64,
    abort_after_bytes: u64,
}

fn connect_with_retry(addr: &str) -> Result<TcpStream, String> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!("connect {addr}: {e}"));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Drive one connection: handshake, fragmented writes, ack accounting.
fn run_conn(addr: &str, payload: &ConnPayload, plan: ConnPlan) -> ConnOutcome {
    let mut out = ConnOutcome::default();
    let mut sock = match connect_with_retry(addr) {
        Ok(s) => s,
        Err(e) => {
            out.error = Some(e);
            return out;
        }
    };
    sock.set_nodelay(true).ok();

    // Handshake: 4-byte magic, version, flags.
    let mut hello = [0u8; 6];
    if let Err(e) = sock.read_exact(&mut hello) {
        out.error = Some(format!("handshake read: {e}"));
        return out;
    }
    if hello[..4] != HANDSHAKE_MAGIC || hello[4] != PROTOCOL_VERSION {
        out.error = Some(format!("unexpected handshake {hello:?}"));
        return out;
    }

    // Ack reader: 8-byte little-endian cumulative sample counts, stamped
    // on arrival for the latency percentiles. Runs until the server
    // closes its side (after the final ack, or on a shed).
    let acks: std::sync::Arc<Mutex<Vec<(u64, Instant)>>> = Default::default();
    let reader = {
        let mut sock = match sock.try_clone() {
            Ok(s) => s,
            Err(e) => {
                out.error = Some(format!("clone socket: {e}"));
                return out;
            }
        };
        let acks = acks.clone();
        std::thread::spawn(move || {
            let mut buf = [0u8; 8];
            while sock.read_exact(&mut buf).is_ok() {
                let v = u64::from_le_bytes(buf);
                acks.lock().unwrap().push((v, Instant::now()));
            }
        })
    };

    // Fragmented writes, recording when each frame finished sending.
    let mut rng = plan.seed;
    let mut send_times: Vec<Option<Instant>> = vec![None; payload.bounds.len()];
    let mut next_bound = 0;
    let mut written = 0usize;
    while written < payload.bytes.len() {
        let rem = payload.bytes.len() - written;
        let mut n = match plan.fragment {
            Fragment::Whole => rem,
            Fragment::Bytes(n) => n.min(rem),
            Fragment::Random => ((splitmix64(&mut rng) % 4096 + 1) as usize).min(rem),
        };
        if plan.abort_after_bytes > 0 {
            // Never overshoot the abort point: the disconnect must land
            // at exactly B bytes, whatever the fragmentation mode.
            n = n.min(
                (plan.abort_after_bytes as usize)
                    .saturating_sub(written)
                    .max(1),
            );
        }
        if let Err(e) = sock.write_all(&payload.bytes[written..written + n]) {
            out.error = Some(format!("write: {e}"));
            break;
        }
        written += n;
        let now = Instant::now();
        while next_bound < payload.bounds.len() && payload.bounds[next_bound].0 <= written {
            send_times[next_bound] = Some(now);
            next_bound += 1;
        }
        if plan.abort_after_bytes > 0 && written as u64 >= plan.abort_after_bytes {
            out.aborted = true;
            break;
        }
        if plan.pace_ms > 0 {
            std::thread::sleep(Duration::from_millis(plan.pace_ms));
        }
    }
    out.sent_samples = payload.bounds[..next_bound]
        .last()
        .map(|&(_, c)| c)
        .unwrap_or(0);

    if out.aborted {
        // Abrupt disconnect: tear down both directions mid-frame.
        sock.shutdown(Shutdown::Both).ok();
    } else {
        // Clean close: half-close the write side and drain the remaining
        // acks until the server closes (it sends the final ack first).
        sock.shutdown(Shutdown::Write).ok();
    }
    drop(sock);
    reader.join().ok();

    let acks = std::mem::take(&mut *acks.lock().unwrap());
    out.acked = acks.iter().map(|&(v, _)| v).max().unwrap_or(0);
    // Match each fully-sent frame to the first ack covering it.
    let mut ai = 0;
    for (i, &(_, cum)) in payload.bounds.iter().enumerate() {
        let Some(sent) = send_times[i] else { break };
        while ai < acks.len() && acks[ai].0 < cum {
            ai += 1;
        }
        if ai == acks.len() {
            break;
        }
        out.latencies
            .push(acks[ai].1.saturating_duration_since(sent));
    }
    out
}

/// A percentile over unsorted latency samples, in milliseconds.
fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)].as_secs_f64() * 1e3
}

/// `dpd loadgen CORPUS`: replay a DTB corpus against a running server
/// (see [`LOADGEN_USAGE`]).
pub fn loadgen(flags: &Flags) -> Result<String, String> {
    if flags.has("help") {
        return Ok(LOADGEN_USAGE.to_string());
    }
    let corpus = flags
        .positional
        .first()
        .ok_or("loadgen expects a DTB corpus file")?;
    let conns = flags.get_usize("conns", 1)?.max(1);
    let chunk = flags.get_usize("chunk", 256)?.max(1);
    let fragment = parse_fragment(flags.get("fragment").unwrap_or("whole"))?;
    let seed = flags.get_usize("seed", 1)? as u64;
    let pace_ms = flags.get_usize("pace-ms", 0)? as u64;
    let abort_after_bytes = flags.get_usize("abort-after-bytes", 0)? as u64;
    let timing = parse_timing(flags)?;
    let addr = resolve_addr(flags)?;

    let bytes = std::fs::read(corpus).map_err(|e| format!("read {corpus}: {e}"))?;
    let (events, sampled) =
        crate::cmd::read_dtb_streams(&bytes).map_err(|e| format!("{corpus}: {e}"))?;
    if events.is_empty() {
        return Err(format!("{corpus}: container holds no event stream"));
    }

    // Round-robin partition: connection i replays streams i, i+N, ...
    // Disjoint per-stream coverage is what makes the server-side output
    // deterministic for any interleaving of the connections.
    let payloads: Vec<ConnPayload> = (0..conns)
        .map(|c| {
            let share: Vec<(u64, &EventTrace)> = events
                .iter()
                .enumerate()
                .filter(|(i, _)| i % conns == c)
                .map(|(_, (id, t))| (*id, t))
                .collect();
            encode_conn(&share, chunk)
        })
        .collect::<Result<_, _>>()?;
    let total: u64 = payloads.iter().map(|p| p.samples).sum();

    let start = Instant::now();
    let outcomes: Vec<ConnOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = payloads
            .iter()
            .enumerate()
            .map(|(c, payload)| {
                let addr = addr.as_str();
                let plan = ConnPlan {
                    fragment,
                    seed: seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    pace_ms,
                    abort_after_bytes,
                };
                scope.spawn(move || run_conn(addr, payload, plan))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();

    let sent: u64 = outcomes.iter().map(|o| o.sent_samples).sum();
    let acked: u64 = outcomes.iter().map(|o| o.acked).sum();
    let aborted = outcomes.iter().filter(|o| o.aborted).count();
    let errors: Vec<&String> = outcomes.iter().filter_map(|o| o.error.as_ref()).collect();

    let mut out = String::new();
    writeln!(
        out,
        "loadgen: {conns} connection(s), {} event stream(s), {total} samples",
        events.len()
    )
    .unwrap();
    if !sampled.is_empty() {
        writeln!(
            out,
            "note: skipped {} sampled stream(s) (loadgen replays event streams only)",
            sampled.len()
        )
        .unwrap();
    }
    writeln!(
        out,
        "sent {sent} samples, acked {acked}; {aborted} aborted, {} error(s)",
        errors.len()
    )
    .unwrap();
    for e in errors.iter().take(5) {
        writeln!(out, "  error: {e}").unwrap();
    }
    if timing {
        let mut lat: Vec<Duration> = outcomes.iter().flat_map(|o| o.latencies.clone()).collect();
        lat.sort();
        writeln!(
            out,
            "sustained {:.2} Msamples/s; ingest latency p50 {:.2} ms, p99 {:.2} ms",
            acked as f64 / elapsed.as_secs_f64().max(1e-9) / 1e6,
            percentile_ms(&lat, 0.50),
            percentile_ms(&lat, 0.99),
        )
        .unwrap();
    }
    Ok(out)
}

/// Shared loopback smoke used by unit and golden tests: serve an
/// `--accept`-bounded server on an ephemeral port in a background
/// thread, run loadgen against it, and return `(serve_out, loadgen_out)`.
#[doc(hidden)]
pub fn loopback_smoke(serve_args: &[String], loadgen_args: &[String]) -> (String, String) {
    let serve_args = serve_args.to_vec();
    let server = std::thread::spawn(move || crate::cmd::dispatch(&serve_args));
    let gen_out = crate::cmd::dispatch(loadgen_args).unwrap_or_else(|e| panic!("loadgen: {e}"));
    let serve_out = server
        .join()
        .unwrap()
        .unwrap_or_else(|e| panic!("serve: {e}"));
    (serve_out, gen_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::dispatch;
    use std::path::Path;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dpd-netcmd-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A corpus of three periodic streams in one DTB container.
    fn write_corpus(path: &Path) {
        let mut w = DtbWriter::new(std::fs::File::create(path).unwrap()).unwrap();
        for (id, period) in [(0u64, 3usize), (1, 5), (2, 7)] {
            let values: Vec<i64> = (0..600).map(|i| 0x2000 + (i % period) as i64).collect();
            w.declare_events(id, &format!("s{id}")).unwrap();
            w.push_events(id, &values).unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn fragment_parses_and_rejects() {
        assert!(matches!(parse_fragment("whole"), Ok(Fragment::Whole)));
        assert!(matches!(parse_fragment("bytes:7"), Ok(Fragment::Bytes(7))));
        assert!(matches!(parse_fragment("random"), Ok(Fragment::Random)));
        assert!(parse_fragment("bytes:0").is_err());
        assert!(parse_fragment("shards").is_err());
    }

    #[test]
    fn serve_help_is_text() {
        let out = dispatch(&argv("serve --help")).unwrap();
        assert!(out.starts_with("usage: dpd serve"), "{out}");
        let out = dispatch(&argv("loadgen --help")).unwrap();
        assert!(out.starts_with("usage: dpd loadgen"), "{out}");
        let out = dispatch(&argv("stats --help")).unwrap();
        assert!(out.starts_with("usage: dpd stats"), "{out}");
    }

    #[test]
    fn serve_rejects_resume_without_checkpoint() {
        assert!(dispatch(&argv("serve --resume")).is_err());
    }

    #[test]
    fn serve_rejects_metrics_port_file_without_metrics() {
        assert!(dispatch(&argv("serve --metrics-port-file /tmp/x")).is_err());
    }

    #[test]
    fn stats_requires_an_address() {
        assert!(dispatch(&argv("stats")).is_err());
    }

    /// End-to-end observability loopback: serve with a live metrics
    /// endpoint and a self-trace, scrape mid-run with `dpd stats` while
    /// a holder connection keeps the server from draining, then point
    /// `dpd analyze` at the server's own ingest-loop trace.
    #[test]
    fn loopback_metrics_scrape_and_self_trace() {
        let dir = scratch("obs");
        let corpus = dir.join("corpus.dtb");
        write_corpus(&corpus);
        let pf = dir.join("port");
        let mpf = dir.join("metrics-port");
        let st = dir.join("self.dtb");
        let serve_args = argv(&format!(
            "serve --accept 3 --window 16 --port-file {} --metrics 127.0.0.1:0 \
             --metrics-port-file {} --self-trace {} --self-trace-every-ms 10 --timing none",
            pf.display(),
            mpf.display(),
            st.display()
        ));
        let server = std::thread::spawn(move || dispatch(&serve_args));

        // Holder: an accepted connection that stays open (and idle) so
        // the server is still live after loadgen's two conns finish.
        let addr = poll_port_file(pf.to_str().unwrap()).unwrap();
        let mut holder = connect_with_retry(&addr).unwrap();
        let mut hello = [0u8; 6];
        holder.read_exact(&mut hello).unwrap();

        let gen_out = dispatch(&argv(&format!(
            "loadgen {} --conns 2 --port-file {} --timing none",
            corpus.display(),
            pf.display()
        )))
        .unwrap();
        assert!(
            gen_out.contains("sent 1800 samples, acked 1800"),
            "{gen_out}"
        );

        // Scrape mid-run until both loadgen connections show as closed.
        let maddr = poll_port_file(mpf.to_str().unwrap()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        let scraped = loop {
            let out = dispatch(&argv(&format!("stats {maddr}"))).unwrap();
            if out.contains("dpd_net_clean_closes_total 2")
                && out.contains("dpd_net_connections_open 1")
            {
                break out;
            }
            assert!(Instant::now() < deadline, "server never settled:\n{out}");
            std::thread::sleep(Duration::from_millis(10));
        };
        assert!(scraped.contains("dpd_net_samples_total 1800"), "{scraped}");
        assert!(
            scraped.contains("dpd_shard_samples_total{shard=\"0\"} 1800"),
            "{scraped}"
        );
        // --filter narrows, --raw returns the exposition page itself.
        let net_only = dispatch(&argv(&format!("stats {maddr} --filter dpd_net_"))).unwrap();
        assert!(
            net_only.lines().all(|l| l.starts_with("dpd_net_")),
            "{net_only}"
        );
        let raw = dispatch(&argv(&format!("stats {maddr} --raw"))).unwrap();
        assert!(
            raw.contains("# TYPE dpd_net_samples_total counter"),
            "{raw}"
        );

        drop(holder);
        let serve_out = server.join().unwrap().unwrap();
        assert!(
            serve_out.contains("served 3 connection(s): 3 clean"),
            "{serve_out}"
        );
        assert!(serve_out.contains("metrics: served"), "{serve_out}");
        assert!(
            serve_out.contains(&format!("self-trace: wrote {}", st.display())),
            "{serve_out}"
        );

        // The self-trace is a well-formed DTB capture of the server's
        // own ingest loops, readable by the ordinary analyze pipeline.
        let analyzed = dispatch(&argv(&format!("analyze {}", st.display()))).unwrap();
        assert!(analyzed.contains("ingest-loop/shard-0"), "{analyzed}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Differential acceptance check: a self-trace carrying a periodic
    /// ingest pattern is detected by `dpd analyze` at the right period —
    /// the detector pointed at its own pulse.
    #[test]
    fn self_trace_capture_detects_injected_period() {
        let dir = scratch("selftrace");
        let file = dir.join("self.dtb");
        let tracer = SelfTracer::new(1);
        let writer = tracer
            .start_writer(&file, Duration::from_millis(5))
            .unwrap();
        // A period-5 duty cycle in log2-bucket space, e.g. four cheap
        // batches then one expensive flush, repeated.
        let pattern = [10i64, 10, 14, 10, 18];
        for i in 0..600 {
            tracer.record_value(0, pattern[i % pattern.len()]);
        }
        writer.finish();
        let out = dispatch(&argv(&format!("analyze {}", file.display()))).unwrap();
        assert!(out.contains("detected periodicities: [5]"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Loopback smoke across every fragmentation mode: the serve-side
    /// summary is byte-identical regardless of how the client fragments
    /// its writes, and matches the corpus totals.
    #[test]
    fn loopback_serve_output_is_fragmentation_invariant() {
        let dir = scratch("frag");
        let corpus = dir.join("corpus.dtb");
        write_corpus(&corpus);
        let mut serve_outs = Vec::new();
        for fragment in ["whole", "bytes:1", "random"] {
            let pf = dir.join(format!("port-{}", fragment.replace(':', "-")));
            let (s, g) = loopback_smoke(
                &argv(&format!(
                    "serve --accept 2 --window 16 --port-file {} --timing none",
                    pf.display()
                )),
                &argv(&format!(
                    "loadgen {} --conns 2 --fragment {fragment} --port-file {} --timing none",
                    corpus.display(),
                    pf.display()
                )),
            );
            assert!(g.contains("sent 1800 samples, acked 1800"), "{g}");
            assert!(
                s.contains("served 2 connection(s): 2 clean, 0 protocol error(s)"),
                "{s}"
            );
            assert!(s.contains("ingested 1800 samples"), "{s}");
            serve_outs.push(s);
        }
        assert_eq!(serve_outs[0], serve_outs[1], "bytes:1 changed the summary");
        assert_eq!(serve_outs[0], serve_outs[2], "random changed the summary");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// An aborted client is a protocol error on its connection only; the
    /// other connections' streams are unaffected.
    #[test]
    fn loopback_abort_sheds_one_connection() {
        let dir = scratch("abort");
        let corpus = dir.join("corpus.dtb");
        write_corpus(&corpus);
        let pf = dir.join("port");
        // Two loadgen runs against one server: a healthy 2-conn replay
        // plus one aborted connection (3 accepted total).
        let serve_args = argv(&format!(
            "serve --accept 3 --window 16 --port-file {} --timing none",
            pf.display()
        ));
        let server = std::thread::spawn(move || dispatch(&serve_args));
        let bad = dispatch(&argv(&format!(
            "loadgen {} --conns 1 --abort-after-bytes 40 --port-file {} --timing none",
            corpus.display(),
            pf.display()
        )))
        .unwrap();
        assert!(bad.contains("1 aborted"), "{bad}");
        let good = dispatch(&argv(&format!(
            "loadgen {} --conns 2 --port-file {} --timing none",
            corpus.display(),
            pf.display()
        )))
        .unwrap();
        assert!(good.contains("sent 1800 samples, acked 1800"), "{good}");
        let s = server.join().unwrap().unwrap();
        assert!(s.contains("served 3 connection(s): 2 clean"), "{s}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
