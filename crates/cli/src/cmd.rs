//! Command parsing and execution.
//!
//! Hand-rolled flag parsing (no CLI dependency): every command takes
//! `--flag value` pairs plus at most one positional trace-file path.

use dpd_core::detector::FrameDetector;
use dpd_core::segmentation::segment_events;
use dpd_core::shard::{MultiStreamEvent, StreamId};
use dpd_core::streaming::MultiScaleDpd;
use dpd_trace::{gen, io, EventTrace};
use par_runtime::service::{MultiStreamDpd, ServiceConfig};
use spec_apps::app::RunConfig;
use std::fmt::Write as _;

/// Usage text shown on errors.
pub const USAGE: &str = "usage:
  dpd generate --kind periodic|nested|aperiodic [--period P] [--len N] --out FILE
  dpd apps --app tomcatv|swim|apsi|hydro2d|turb3d --out FILE
  dpd analyze FILE [--scales 8,64,512]
  dpd spectrum FILE [--window 128]
  dpd segment FILE [--window 64]
  dpd multistream DIR [--shards 4] [--window 64] [--chunk 256]";

/// A parsed flag set: positional args + `--key value` pairs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Flags {
    /// Positional arguments, in order.
    pub positional: Vec<String>,
    /// `--key value` pairs, last occurrence wins.
    pub options: Vec<(String, String)>,
}

impl Flags {
    /// Parse a raw argument list.
    pub fn parse(args: &[String]) -> Result<Flags, String> {
        let mut flags = Flags::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("missing value for --{key}"))?;
                flags.options.push((key.to_string(), value.clone()));
            } else {
                flags.positional.push(a.clone());
            }
        }
        Ok(flags)
    }

    /// Last value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parsed numeric flag with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got {v:?}")),
        }
    }
}

/// Execute a command line, returning its stdout text.
pub fn dispatch(args: &[String]) -> Result<String, String> {
    let (cmd, rest) = args.split_first().ok_or("no command given")?;
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "generate" => generate(&flags),
        "apps" => apps(&flags),
        "analyze" => analyze(&flags),
        "spectrum" => spectrum(&flags),
        "segment" => segment(&flags),
        "multistream" => multistream(&flags),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn load_events(flags: &Flags) -> Result<EventTrace, String> {
    let path = flags
        .positional
        .first()
        .ok_or("expected a trace file argument")?;
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    io::read_events(file).map_err(|e| e.to_string())
}

fn generate(flags: &Flags) -> Result<String, String> {
    let kind = flags.get("kind").unwrap_or("periodic");
    let len = flags.get_usize("len", 5000)?;
    let period = flags.get_usize("period", 6)?;
    let out = flags.get("out").ok_or("generate requires --out FILE")?;
    let values = match kind {
        "periodic" => {
            if period == 0 {
                return Err("--period must be positive".into());
            }
            let pattern: Vec<i64> = (0..period).map(|i| 0x1000 + i as i64).collect();
            gen::periodic_events(&pattern, len)
        }
        "nested" => gen::nested_events(5, 10, 11, len.div_ceil(115).max(1)).0,
        "aperiodic" => gen::aperiodic_events(len),
        other => return Err(format!("unknown --kind {other:?}")),
    };
    let trace = EventTrace::from_values(kind, values);
    let file = std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    io::write_events(&trace, file).map_err(|e| e.to_string())?;
    Ok(format!("wrote {} events to {out}\n", trace.len()))
}

fn apps(flags: &Flags) -> Result<String, String> {
    let name = flags.get("app").ok_or("apps requires --app NAME")?;
    let out = flags.get("out").ok_or("apps requires --out FILE")?;
    let app = spec_apps::spec_apps()
        .into_iter()
        .find(|a| a.name() == name)
        .ok_or_else(|| format!("unknown app {name:?}"))?;
    let run = app.run(&RunConfig::default());
    let file = std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    io::write_events(&run.addresses, file).map_err(|e| e.to_string())?;
    Ok(format!(
        "ran {name}: {} loop-call events written to {out}\n",
        run.addresses.len()
    ))
}

fn analyze(flags: &Flags) -> Result<String, String> {
    let trace = load_events(flags)?;
    let scales: Vec<usize> = match flags.get("scales") {
        None => vec![8, 64, 512],
        Some(s) => s
            .split(',')
            .map(|p| p.trim().parse().map_err(|_| format!("bad scale {p:?}")))
            .collect::<Result<_, _>>()?,
    };
    let mut bank = MultiScaleDpd::new(&scales).map_err(|e| format!("invalid scales: {e}"))?;
    bank.push_slice(&trace.values);
    let mut out = String::new();
    writeln!(out, "trace {:?}: {} events", trace.name, trace.len()).unwrap();
    writeln!(out, "detected periodicities: {:?}", bank.detected_periods()).unwrap();
    for dpd in bank.scales() {
        let st = dpd.stats();
        writeln!(
            out,
            "  window {:4}: periods {:?}, {} boundaries, {} losses",
            dpd.window(),
            st.detected_periods(),
            st.boundaries,
            st.losses
        )
        .unwrap();
    }
    Ok(out)
}

fn spectrum(flags: &Flags) -> Result<String, String> {
    let trace = load_events(flags)?;
    let window = flags.get_usize("window", 128)?;
    let det = FrameDetector::events(window);
    let report = det
        .analyze(&trace.values)
        .map_err(|e| format!("analysis failed: {e}"))?;
    let mut out = String::new();
    writeln!(out, "d(m) over the trailing {window}-sample frame:").unwrap();
    out.push_str(&report.spectrum.ascii_chart(50));
    writeln!(out, "zeros (exact periods): {:?}", report.spectrum.zeros()).unwrap();
    writeln!(out, "fundamental: {:?}", report.period()).unwrap();
    Ok(out)
}

fn segment(flags: &Flags) -> Result<String, String> {
    let trace = load_events(flags)?;
    let window = flags.get_usize("window", 64)?;
    let (segments, marks) = segment_events(&trace.values, window);
    let mut out = String::new();
    writeln!(
        out,
        "{} segments, {} period-start marks (window {window}):",
        segments.len(),
        marks.len()
    )
    .unwrap();
    for s in &segments {
        writeln!(
            out,
            "  [{:>8}, {:>8})  period {:>5}  {:>6} periods",
            s.start, s.end, s.period, s.periods
        )
        .unwrap();
    }
    Ok(out)
}

fn multistream(flags: &Flags) -> Result<String, String> {
    let dir = flags
        .positional
        .first()
        .ok_or("multistream expects a directory of trace files")?;
    let shards = flags.get_usize("shards", 4)?;
    let window = flags.get_usize("window", 64)?;
    let chunk = flags.get_usize("chunk", 256)?.max(1);

    // One stream per trace file, in name order so stream ids are stable.
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read dir {dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no trace files in {dir}"));
    }
    let mut traces = Vec::with_capacity(paths.len());
    for p in &paths {
        let file = std::fs::File::open(p).map_err(|e| format!("open {}: {e}", p.display()))?;
        let trace = io::read_events(file).map_err(|e| format!("{}: {e}", p.display()))?;
        traces.push(trace);
    }

    // Replay all traces concurrently: round-robin chunks until exhausted,
    // the arrival pattern of many applications tracing at once.
    let mut svc = MultiStreamDpd::new(ServiceConfig::with_window(shards, window));
    let total: usize = traces.iter().map(|t| t.len()).sum();
    let start = std::time::Instant::now();
    let mut offset = 0;
    loop {
        let mut records: Vec<(StreamId, &[i64])> = Vec::new();
        for (s, t) in traces.iter().enumerate() {
            if offset < t.values.len() {
                let end = (offset + chunk).min(t.values.len());
                records.push((StreamId(s as u64), &t.values[offset..end]));
            }
        }
        if records.is_empty() {
            break;
        }
        svc.ingest(&records);
        offset += chunk;
    }
    let (events, snapshot) = svc.finish();
    let elapsed = start.elapsed();

    let mut out = String::new();
    let mode = if shards == 0 {
        "inline".to_string()
    } else {
        format!("{shards} shard(s)")
    };
    writeln!(
        out,
        "replayed {} streams ({} samples) over {mode} in {:.1} ms ({:.2} Msamples/s)",
        traces.len(),
        total,
        elapsed.as_secs_f64() * 1e3,
        total as f64 / elapsed.as_secs_f64().max(1e-9) / 1e6,
    )
    .unwrap();
    for e in &events {
        if let MultiStreamEvent::Closed {
            stream,
            samples,
            period,
        } = e
        {
            let name = &traces[stream.0 as usize].name;
            match period {
                Some(p) => writeln!(
                    out,
                    "  {name:<24} {samples:>8} samples  period {p} at close"
                )
                .unwrap(),
                None => {
                    writeln!(out, "  {name:<24} {samples:>8} samples  no lock at close").unwrap()
                }
            }
        }
    }
    let t = snapshot.total();
    writeln!(
        out,
        "shards: {} | events {} | evicted {} | closed {}",
        snapshot.shards.len(),
        t.events,
        t.evicted,
        t.closed
    )
    .unwrap();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn flags_parse_positional_and_options() {
        let f = Flags::parse(&argv("file.txt --window 64 --kind nested")).unwrap();
        assert_eq!(f.positional, vec!["file.txt"]);
        assert_eq!(f.get("window"), Some("64"));
        assert_eq!(f.get("kind"), Some("nested"));
        assert_eq!(f.get("missing"), None);
    }

    #[test]
    fn flags_last_occurrence_wins() {
        let f = Flags::parse(&argv("--window 8 --window 16")).unwrap();
        assert_eq!(f.get_usize("window", 0).unwrap(), 16);
    }

    #[test]
    fn flags_missing_value_errors() {
        assert!(Flags::parse(&argv("--window")).is_err());
    }

    #[test]
    fn flags_bad_number_errors() {
        let f = Flags::parse(&argv("--window abc")).unwrap();
        assert!(f.get_usize("window", 0).is_err());
    }

    #[test]
    fn dispatch_unknown_command() {
        assert!(dispatch(&argv("frobnicate")).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn generate_analyze_roundtrip() {
        let dir = std::env::temp_dir().join("dpd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("periodic.trace");
        let path_s = path.to_str().unwrap().to_string();

        let out = dispatch(&argv(&format!(
            "generate --kind periodic --period 7 --len 2000 --out {path_s}"
        )))
        .unwrap();
        assert!(out.contains("2000 events"));

        let out = dispatch(&argv(&format!("analyze {path_s}"))).unwrap();
        assert!(out.contains("detected periodicities: [7]"), "{out}");

        let out = dispatch(&argv(&format!("spectrum {path_s} --window 32"))).unwrap();
        assert!(out.contains("fundamental: Some(7)"), "{out}");

        let out = dispatch(&argv(&format!("segment {path_s} --window 16"))).unwrap();
        assert!(out.contains("period     7"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn generate_nested_analyzes_as_nested() {
        let dir = std::env::temp_dir().join("dpd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nested.trace");
        let path_s = path.to_str().unwrap().to_string();
        dispatch(&argv(&format!(
            "generate --kind nested --len 4000 --out {path_s}"
        )))
        .unwrap();
        let out = dispatch(&argv(&format!("analyze {path_s} --scales 8,64,512"))).unwrap();
        // nested_events(5, 10, 11, _): outer period 115, inner 10.
        assert!(out.contains("[10, 115]"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn generate_requires_out() {
        assert!(dispatch(&argv("generate --kind periodic")).is_err());
    }

    #[test]
    fn analyze_missing_file_errors() {
        assert!(dispatch(&argv("analyze /nonexistent/path.trace")).is_err());
    }

    #[test]
    fn multistream_replays_directory() {
        let dir = std::env::temp_dir().join("dpd-cli-multistream-test");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, period) in [("a", 3usize), ("b", 5), ("c", 7)] {
            let path = dir.join(format!("{name}.trace"));
            dispatch(&argv(&format!(
                "generate --kind periodic --period {period} --len 3000 --out {}",
                path.to_str().unwrap()
            )))
            .unwrap();
        }
        for shards in [0usize, 3] {
            let out = dispatch(&argv(&format!(
                "multistream {} --shards {shards} --window 16 --chunk 128",
                dir.to_str().unwrap()
            )))
            .unwrap();
            assert!(out.contains("replayed 3 streams (9000 samples)"), "{out}");
            assert!(out.contains("period 3 at close"), "{out}");
            assert!(out.contains("period 5 at close"), "{out}");
            assert!(out.contains("period 7 at close"), "{out}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multistream_empty_dir_errors() {
        let dir = std::env::temp_dir().join("dpd-cli-multistream-empty");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(dispatch(&argv(&format!("multistream {}", dir.to_str().unwrap()))).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn apps_unknown_name_errors() {
        assert!(dispatch(&argv("apps --app nosuch --out /tmp/x.trace")).is_err());
    }

    #[test]
    fn zero_period_rejected() {
        assert!(dispatch(&argv("generate --kind periodic --period 0 --out /tmp/x")).is_err());
    }
}
