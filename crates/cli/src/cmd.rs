//! Command parsing and execution.
//!
//! Hand-rolled flag parsing (no CLI dependency): every command takes
//! `--flag value` pairs plus at most one positional trace-file path.

use dpd_core::detector::FrameDetector;
use dpd_core::pipeline::DpdBuilder;
use dpd_core::segmentation::segment_events;
use dpd_core::shard::{MultiStreamEvent, StreamId};
use dpd_trace::io::TraceFormat;
use dpd_trace::pile::{EpochMarker, PileFrame, PileWriter};
use dpd_trace::{dtb, gen, io, EventTrace, SampledTrace};
use par_runtime::service::MultiStreamDpd;
use spec_apps::app::RunConfig;
use std::fmt::Write as _;

/// Usage text shown on errors.
pub const USAGE: &str = "usage:
  dpd generate --kind periodic|nested|aperiodic|phases [--period P] [--len N] [--format text|dtb] [--streams N] --out FILE
  dpd apps --app tomcatv|swim|apsi|hydro2d|turb3d [--format text|dtb] --out FILE
  dpd convert FILE --out FILE [--to text|dtb]
  dpd analyze FILE [--scales 8,64,512]
  dpd spectrum FILE [--window 128]
  dpd segment FILE [--window 64]
  dpd multistream DIR [--shards 4] [--window 64] [--chunk 256] [--timing show|none]
                  [--evict-after N] [--memory-budget BYTES] [--cold-retain N]
  dpd predict FILE [--window 64] [--horizon 1]
  dpd query FILE --spec FILE [--window 64] [--chunk 256] [--horizon 0]
            [--evict-after N]
  dpd checkpoint DIR --pile FILE [--snap FILE] [--window 64] [--shards 0] [--chunk 256]
                 [--every 8] [--forecast H] [--throttle-ms T]
                 [--evict-after N] [--memory-budget BYTES] [--cold-retain N]
  dpd resume DIR --pile FILE [--snap FILE] [same flags as checkpoint]
  dpd serve [--listen ADDR] [--port-file FILE] [--accept N] [--metrics ADDR]
            [--self-trace FILE] (see serve --help)
  dpd loadgen CORPUS (--connect ADDR | --port-file FILE) [--conns N]
              [--fragment whole|bytes:N|random] (see loadgen --help)
  dpd stats [ADDR] [--port-file FILE] [--filter PREFIX] [--watch SEC]
            (see stats --help)

Trace files are text or DTB binary containers; every reader auto-detects
the format by magic, and a multistream DIR may mix both (a single .dtb
file can carry many streams). `predict` replays every event stream of
FILE through the online forecaster and reports per-stream hit rate and
MAPE at the given horizon (see docs/PREDICTION.md). `checkpoint` is the
durable ingest pipeline: every wave of records is appended to the
crash-safe pile log and fsynced *before* it is ingested, and the full
detector state is checkpointed to the snap file every K waves; after a
crash, `resume` restores the snap, replays the logged-but-uncovered
waves from the pile, and continues — emitting exactly the events an
uninterrupted run would have (see docs/FORMAT.md \u{a7}9).";

/// A parsed flag set: positional args + `--key value` pairs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Flags {
    /// Positional arguments, in order.
    pub positional: Vec<String>,
    /// `--key value` pairs, last occurrence wins.
    pub options: Vec<(String, String)>,
}

/// Flags that take no value (`--help`, `--resume`, `--raw`): presence
/// is the signal, tested with [`Flags::has`].
const BOOL_FLAGS: &[&str] = &["help", "resume", "raw"];

impl Flags {
    /// Parse a raw argument list.
    pub fn parse(args: &[String]) -> Result<Flags, String> {
        let mut flags = Flags::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if BOOL_FLAGS.contains(&key) {
                    flags.options.push((key.to_string(), String::new()));
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("missing value for --{key}"))?;
                flags.options.push((key.to_string(), value.clone()));
            } else {
                flags.positional.push(a.clone());
            }
        }
        Ok(flags)
    }

    /// Whether `--key` was given at all (valueless boolean flags).
    pub fn has(&self, key: &str) -> bool {
        self.options.iter().any(|(k, _)| k == key)
    }

    /// Last value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parsed numeric flag with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got {v:?}")),
        }
    }
}

/// Execute a command line, returning its stdout text.
pub fn dispatch(args: &[String]) -> Result<String, String> {
    let (cmd, rest) = args.split_first().ok_or("no command given")?;
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "generate" => generate(&flags),
        "apps" => apps(&flags),
        "convert" => convert(&flags),
        "analyze" => analyze(&flags),
        "spectrum" => spectrum(&flags),
        "segment" => segment(&flags),
        "multistream" => multistream(&flags),
        "predict" => predict(&flags),
        "query" => query_cmd(&flags),
        "checkpoint" => checkpoint_cmd(&flags),
        "resume" => resume_cmd(&flags),
        "serve" => crate::netcmd::serve(&flags),
        "loadgen" => crate::netcmd::loadgen(&flags),
        "stats" => crate::netcmd::stats(&flags),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn load_events(flags: &Flags) -> Result<EventTrace, String> {
    let path = flags
        .positional
        .first()
        .ok_or("expected a trace file argument")?;
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    io::read_events_auto(file).map_err(|e| format!("{path}: {e}"))
}

/// Parse `--format` / `--to` into a [`TraceFormat`].
fn parse_format(value: &str) -> Result<TraceFormat, String> {
    match value {
        "text" => Ok(TraceFormat::Text),
        "dtb" => Ok(TraceFormat::Dtb),
        other => Err(format!("unknown trace format {other:?} (text|dtb)")),
    }
}

/// Write an event trace to `path` in the requested format.
fn write_events_as(trace: &EventTrace, path: &str, format: TraceFormat) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    let file = std::io::BufWriter::new(file);
    match format {
        TraceFormat::Text => io::write_events(trace, file).map_err(|e| e.to_string()),
        TraceFormat::Dtb => dtb::write_events(trace, file).map_err(|e| e.to_string()),
    }
}

fn generate(flags: &Flags) -> Result<String, String> {
    let kind = flags.get("kind").unwrap_or("periodic");
    let len = flags.get_usize("len", 5000)?;
    let period = flags.get_usize("period", 6)?;
    let out = flags.get("out").ok_or("generate requires --out FILE")?;
    let streams = flags.get_usize("streams", 1)?;
    if streams > 1 {
        // Multi-stream corpus: one DTB container holding `streams`
        // interleaved periodic event streams (periods vary per stream, see
        // `gen::interleaved_stream_period`). This is the corpus shape
        // `dpd loadgen` partitions across connections, so CI smoke scripts
        // can build a many-connection workload with the CLI alone.
        if parse_format(flags.get("format").unwrap_or("dtb"))? != TraceFormat::Dtb {
            return Err(
                "--streams N > 1 requires --format dtb (one container, many streams)".into(),
            );
        }
        let chunk = 64usize.min(len.max(1));
        let schedule = gen::interleaved_streams(streams as u64, chunk, len.div_ceil(chunk).max(1));
        let file = std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?;
        let mut w =
            dtb::DtbWriter::new(std::io::BufWriter::new(file)).map_err(|e| e.to_string())?;
        for s in 0..streams as u64 {
            w.declare_events(s, &format!("s{s}"))
                .map_err(|e| e.to_string())?;
        }
        let mut total = 0usize;
        for (id, rec) in &schedule {
            w.push_events(*id, rec).map_err(|e| e.to_string())?;
            total += rec.len();
        }
        w.finish().map_err(|e| e.to_string())?;
        return Ok(format!(
            "wrote {streams} event streams ({total} samples) to {out}\n"
        ));
    }
    let values = match kind {
        "periodic" => {
            if period == 0 {
                return Err("--period must be positive".into());
            }
            let pattern: Vec<i64> = (0..period).map(|i| 0x1000 + i as i64).collect();
            gen::periodic_events(&pattern, len)
        }
        "nested" => gen::nested_events(5, 10, 11, len.div_ceil(115).max(1)).0,
        "aperiodic" => gen::aperiodic_events(len),
        "phases" => {
            // Three segments with structurally disjoint alphabets: period
            // P, then 2P+1, then P+1 — an injected-phase-change corpus for
            // evaluating forecast invalidation (docs/PREDICTION.md).
            if period == 0 {
                return Err("--period must be positive".into());
            }
            let third = (len / 3).max(1);
            gen::phase_change_events(&[
                (period, third),
                (2 * period + 1, third),
                (period + 1, len.saturating_sub(2 * third)),
            ])
        }
        other => return Err(format!("unknown --kind {other:?}")),
    };
    let trace = EventTrace::from_values(kind, values);
    let format = parse_format(flags.get("format").unwrap_or("text"))?;
    write_events_as(&trace, out, format)?;
    Ok(format!("wrote {} events to {out}\n", trace.len()))
}

fn apps(flags: &Flags) -> Result<String, String> {
    let name = flags.get("app").ok_or("apps requires --app NAME")?;
    let out = flags.get("out").ok_or("apps requires --out FILE")?;
    let format = parse_format(flags.get("format").unwrap_or("text"))?;
    let app = spec_apps::spec_apps()
        .into_iter()
        .find(|a| a.name() == name)
        .ok_or_else(|| format!("unknown app {name:?}"))?;
    let run = app.run(&RunConfig::default());
    write_events_as(&run.addresses, out, format)?;
    Ok(format!(
        "ran {name}: {} loop-call events written to {out}\n",
        run.addresses.len()
    ))
}

/// Streams of a DTB container with their original ids, one list per kind.
type DtbStreams = (Vec<(u64, EventTrace)>, Vec<(u64, SampledTrace)>);

/// Decode every stream of a DTB container, keeping original stream ids
/// (declaration order preserved).
pub(crate) fn read_dtb_streams(bytes: &[u8]) -> Result<DtbStreams, dtb::DtbError> {
    let mut reader = dtb::DtbReader::new(bytes)?;
    let mut events: Vec<(u64, EventTrace)> = Vec::new();
    let mut sampled: Vec<(u64, SampledTrace)> = Vec::new();
    while let Some(block) = reader.next_block() {
        match block? {
            dtb::Block::Decl { stream, meta } => match meta.kind {
                dtb::StreamKind::Events => {
                    if !events.iter().any(|(id, _)| *id == stream) {
                        events.push((stream, EventTrace::new(meta.name.clone())));
                    }
                }
                dtb::StreamKind::Sampled => {
                    if !sampled.iter().any(|(id, _)| *id == stream) {
                        sampled.push((
                            stream,
                            SampledTrace::new(meta.name.clone(), meta.sample_period_ns),
                        ));
                    }
                }
            },
            dtb::Block::Events { stream, values } => {
                let (_, t) = events
                    .iter_mut()
                    .find(|(id, _)| *id == stream)
                    .expect("decl enforced by the reader");
                t.values.extend_from_slice(values);
            }
            dtb::Block::Samples { stream, values } => {
                let (_, t) = sampled
                    .iter_mut()
                    .find(|(id, _)| *id == stream)
                    .expect("decl enforced by the reader");
                t.values.extend_from_slice(values);
            }
        }
    }
    Ok((events, sampled))
}

/// `dpd convert IN --out OUT [--to text|dtb]`: transcode a trace file
/// between the text format and the DTB binary container. The input format
/// is auto-detected; `--to` defaults to the *other* format. DTB stream ids
/// are preserved on DTB output (text input becomes stream 0). A
/// multi-stream DTB container converts to text only when it holds exactly
/// one stream (the text format is single-stream by construction).
fn convert(flags: &Flags) -> Result<String, String> {
    let path = flags
        .positional
        .first()
        .ok_or("convert expects an input trace file")?;
    let out = flags.get("out").ok_or("convert requires --out FILE")?;
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    let from = io::detect_format(&bytes)
        .ok_or_else(|| format!("{path}: neither a text trace nor a DTB container"))?;
    let to = match flags.get("to") {
        Some(v) => parse_format(v)?,
        None => match from {
            TraceFormat::Text => TraceFormat::Dtb,
            TraceFormat::Dtb => TraceFormat::Text,
        },
    };

    // Decode every stream the input holds, keeping stream ids.
    let (events, sampled): DtbStreams = match from {
        TraceFormat::Dtb => read_dtb_streams(&bytes).map_err(|e| format!("{path}: {e}"))?,
        TraceFormat::Text => match io::read_events(&bytes[..]) {
            Ok(t) => (vec![(0, t)], Vec::new()),
            Err(io::TraceIoError::WrongKind { .. }) => {
                let s = io::read_sampled(&bytes[..]).map_err(|e| format!("{path}: {e}"))?;
                (Vec::new(), vec![(0, s)])
            }
            Err(e) => return Err(format!("{path}: {e}")),
        },
    };
    let values: usize = events.iter().map(|(_, t)| t.len()).sum::<usize>()
        + sampled.iter().map(|(_, t)| t.len()).sum::<usize>();

    let file = std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    let file = std::io::BufWriter::new(file);
    match to {
        TraceFormat::Dtb => {
            let mut w = dtb::DtbWriter::new(file).map_err(|e| e.to_string())?;
            for (id, t) in &events {
                w.declare_events(*id, &t.name).map_err(|e| e.to_string())?;
                w.push_events(*id, &t.values).map_err(|e| e.to_string())?;
            }
            for (id, t) in &sampled {
                w.declare_sampled(*id, &t.name, t.sample_period_ns)
                    .map_err(|e| e.to_string())?;
                w.push_samples(*id, &t.values).map_err(|e| e.to_string())?;
            }
            w.finish().map_err(|e| e.to_string())?;
        }
        TraceFormat::Text => match (events.as_slice(), sampled.as_slice()) {
            ([(_, t)], []) => io::write_events(t, file).map_err(|e| e.to_string())?,
            ([], [(_, s)]) => io::write_sampled(s, file).map_err(|e| e.to_string())?,
            _ => {
                return Err(format!(
                    "{path} holds {} event + {} sampled streams; the text format \
                     is single-stream — convert streams individually",
                    events.len(),
                    sampled.len()
                ))
            }
        },
    }
    let (from_s, to_s) = (fmt_name(from), fmt_name(to));
    Ok(format!(
        "converted {} stream(s), {values} values: {from_s} -> {to_s}, wrote {out}\n",
        events.len() + sampled.len()
    ))
}

fn fmt_name(f: TraceFormat) -> &'static str {
    match f {
        TraceFormat::Text => "text",
        TraceFormat::Dtb => "dtb",
    }
}

fn analyze(flags: &Flags) -> Result<String, String> {
    let trace = load_events(flags)?;
    let scales: Vec<usize> = match flags.get("scales") {
        None => vec![8, 64, 512],
        Some(s) => s
            .split(',')
            .map(|p| p.trim().parse().map_err(|_| format!("bad scale {p:?}")))
            .collect::<Result<_, _>>()?,
    };
    let mut bank = DpdBuilder::new()
        .scales(&scales)
        .build_multi_scale()
        .map_err(|e| format!("invalid scales: {e}"))?;
    bank.push_slice(&trace.values);
    let mut out = String::new();
    writeln!(out, "trace {:?}: {} events", trace.name, trace.len()).unwrap();
    writeln!(out, "detected periodicities: {:?}", bank.detected_periods()).unwrap();
    for dpd in bank.scales() {
        let st = dpd.stats();
        writeln!(
            out,
            "  window {:4}: periods {:?}, {} boundaries, {} losses",
            dpd.window(),
            st.detected_periods(),
            st.boundaries,
            st.losses
        )
        .unwrap();
    }
    Ok(out)
}

fn spectrum(flags: &Flags) -> Result<String, String> {
    let trace = load_events(flags)?;
    let window = flags.get_usize("window", 128)?;
    let det = FrameDetector::events(window);
    let report = det
        .analyze(&trace.values)
        .map_err(|e| format!("analysis failed: {e}"))?;
    let mut out = String::new();
    writeln!(out, "d(m) over the trailing {window}-sample frame:").unwrap();
    out.push_str(&report.spectrum.ascii_chart(50));
    writeln!(out, "zeros (exact periods): {:?}", report.spectrum.zeros()).unwrap();
    writeln!(out, "fundamental: {:?}", report.period()).unwrap();
    Ok(out)
}

fn segment(flags: &Flags) -> Result<String, String> {
    let trace = load_events(flags)?;
    let window = flags.get_usize("window", 64)?;
    let (segments, marks) = segment_events(&trace.values, window);
    let mut out = String::new();
    writeln!(
        out,
        "{} segments, {} period-start marks (window {window}):",
        segments.len(),
        marks.len()
    )
    .unwrap();
    for s in &segments {
        writeln!(
            out,
            "  [{:>8}, {:>8})  period {:>5}  {:>6} periods",
            s.start, s.end, s.period, s.periods
        )
        .unwrap();
    }
    Ok(out)
}

/// Load every event stream of a directory of trace files.
///
/// One stream per text file, in name order so stream ids are stable; a
/// DTB container expands into its event streams in declaration order.
/// Sampled streams are not replayable by the event-ingesting commands,
/// so they are counted and reported, not silently dropped. Returns the
/// traces plus the skipped sampled-stream count.
fn load_dir_traces(dir: &str) -> Result<(Vec<EventTrace>, usize), String> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read dir {dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no trace files in {dir}"));
    }
    let mut traces = Vec::with_capacity(paths.len());
    let mut skipped_sampled = 0usize;
    for p in &paths {
        let bytes = std::fs::read(p).map_err(|e| format!("read {}: {e}", p.display()))?;
        match io::detect_format(&bytes) {
            Some(TraceFormat::Dtb) => {
                let (events, sampled) =
                    dtb::read_all(&bytes).map_err(|e| format!("{}: {e}", p.display()))?;
                if events.is_empty() {
                    return Err(format!("{}: container holds no event stream", p.display()));
                }
                skipped_sampled += sampled.len();
                traces.extend(events);
            }
            _ => {
                let trace =
                    io::read_events(&bytes[..]).map_err(|e| format!("{}: {e}", p.display()))?;
                traces.push(trace);
            }
        }
    }
    Ok((traces, skipped_sampled))
}

fn multistream(flags: &Flags) -> Result<String, String> {
    let dir = flags
        .positional
        .first()
        .ok_or("multistream expects a directory of trace files")?;
    let shards = flags.get_usize("shards", 4)?;
    let window = flags.get_usize("window", 64)?;
    let chunk = flags.get_usize("chunk", 256)?.max(1);
    // Table-scale options (defaults off, keeping golden output stable):
    // a per-shard accounted-byte budget and a cold-summary retention
    // window (global samples past the eviction watermark).
    let memory_budget = flags.get_usize("memory-budget", 0)? as u64;
    let cold_retain = flags.get_usize("cold-retain", 0)? as u64;
    let evict_after = flags.get_usize("evict-after", 0)? as u64;
    // `--timing none` suppresses the wall-clock figures so the output is
    // byte-stable (golden-file tests, diffable logs).
    let timing = match flags.get("timing").unwrap_or("show") {
        "show" => true,
        "none" => false,
        other => return Err(format!("unknown --timing {other:?} (show|none)")),
    };

    let (traces, skipped_sampled) = load_dir_traces(dir)?;

    // Replay all traces concurrently: round-robin chunks until exhausted,
    // the arrival pattern of many applications tracing at once.
    let mut builder = DpdBuilder::new().window(window).shards(shards);
    if evict_after > 0 {
        builder = builder.evict_after(evict_after);
    }
    if memory_budget > 0 {
        builder = builder.memory_budget(memory_budget);
    }
    if cold_retain > 0 {
        builder = builder.cold_summary(cold_retain);
    }
    let mut svc = MultiStreamDpd::from_builder(&builder)
        .map_err(|e| format!("invalid multistream configuration: {e}"))?;
    let total: usize = traces.iter().map(|t| t.len()).sum();
    let start = std::time::Instant::now();
    let mut offset = 0;
    loop {
        let mut records: Vec<(StreamId, &[i64])> = Vec::new();
        for (s, t) in traces.iter().enumerate() {
            if offset < t.values.len() {
                let end = (offset + chunk).min(t.values.len());
                records.push((StreamId(s as u64), &t.values[offset..end]));
            }
        }
        if records.is_empty() {
            break;
        }
        svc.ingest(&records);
        offset += chunk;
    }
    let (events, snapshot) = svc.finish();
    let elapsed = start.elapsed();

    let mut out = String::new();
    let mode = if shards == 0 {
        "inline".to_string()
    } else {
        format!("{shards} shard(s)")
    };
    if timing {
        writeln!(
            out,
            "replayed {} streams ({} samples) over {mode} in {:.1} ms ({:.2} Msamples/s)",
            traces.len(),
            total,
            elapsed.as_secs_f64() * 1e3,
            total as f64 / elapsed.as_secs_f64().max(1e-9) / 1e6,
        )
        .unwrap();
    } else {
        writeln!(
            out,
            "replayed {} streams ({} samples) over {mode}",
            traces.len(),
            total,
        )
        .unwrap();
    }
    if skipped_sampled > 0 {
        writeln!(
            out,
            "note: skipped {skipped_sampled} sampled stream(s) in .dtb containers \
             (multistream replays event streams only)"
        )
        .unwrap();
    }
    for e in &events {
        if let MultiStreamEvent::Closed {
            stream,
            samples,
            period,
        } = e
        {
            let name = &traces[stream.0 as usize].name;
            match period {
                Some(p) => writeln!(
                    out,
                    "  {name:<24} {samples:>8} samples  period {p} at close"
                )
                .unwrap(),
                None => {
                    writeln!(out, "  {name:<24} {samples:>8} samples  no lock at close").unwrap()
                }
            }
        }
    }
    let t = snapshot.total();
    writeln!(
        out,
        "shards: {} | events {} | evicted {} | closed {}",
        snapshot.shards.len(),
        t.events,
        t.evicted,
        t.closed
    )
    .unwrap();
    // Tier traffic only exists (and is only printed) when the new
    // table-scale options are in play, so default output stays stable.
    if memory_budget > 0 || cold_retain > 0 {
        writeln!(
            out,
            "tiers: cold {} | demoted {} | promoted {}",
            t.cold, t.demoted, t.promoted
        )
        .unwrap();
    }
    Ok(out)
}

/// Format an optional rate as a fixed-width percentage, `n/a` when absent.
fn fmt_pct(rate: Option<f64>) -> String {
    match rate {
        Some(r) => format!("{:.1}%", r * 100.0),
        None => "n/a".to_string(),
    }
}

/// `dpd predict FILE [--window W] [--horizon H]`: replay every event
/// stream of the trace through [`ForecastingDpd`], scoring the H-step-ahead
/// forecast at each sample, and report per-stream accuracy. Output is
/// deliberately deterministic (stable stream order, no wall-clock figures)
/// so it can be golden-file tested.
fn predict(flags: &Flags) -> Result<String, String> {
    let path = flags
        .positional
        .first()
        .ok_or("predict expects a trace file argument")?;
    let window = flags.get_usize("window", 64)?;
    let horizon = flags.get_usize("horizon", 1)?;
    if horizon == 0 {
        return Err("--horizon must be positive".into());
    }
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    // Every event stream of the file, in stable order: declaration order
    // for DTB containers, the single stream of a text trace otherwise.
    // Sampled streams are not replayable here (the forecaster extends
    // event values), so they are counted and reported, not dropped
    // silently — same policy as `multistream`.
    let mut skipped_sampled = 0usize;
    let streams: Vec<EventTrace> = match io::detect_format(&bytes) {
        Some(TraceFormat::Dtb) => {
            let (events, sampled) = read_dtb_streams(&bytes).map_err(|e| format!("{path}: {e}"))?;
            if events.is_empty() {
                return Err(format!("{path}: container holds no event stream"));
            }
            skipped_sampled = sampled.len();
            events.into_iter().map(|(_, t)| t).collect()
        }
        _ => vec![io::read_events(&bytes[..]).map_err(|e| format!("{path}: {e}"))?],
    };

    let mut out = String::new();
    writeln!(
        out,
        "forecast replay: horizon {horizon}, window {window}, {} stream(s)",
        streams.len()
    )
    .unwrap();
    if skipped_sampled > 0 {
        writeln!(
            out,
            "note: skipped {skipped_sampled} sampled stream(s) \
             (predict replays event streams only)"
        )
        .unwrap();
    }
    let mut checked_total = 0u64;
    let mut hits_total = 0u64;
    for trace in &streams {
        let mut f = DpdBuilder::new()
            .window(window)
            .forecast(horizon)
            .build_forecasting()
            .map_err(|e| format!("invalid predict configuration: {e}"))?;
        for &s in &trace.values {
            f.push(s);
        }
        let stats = f.predictor().stats();
        checked_total += stats.checked;
        hits_total += stats.hits;
        let period = match f.predictor().period() {
            Some(p) => format!("period {p}"),
            None => "no lock".to_string(),
        };
        writeln!(
            out,
            "  {:<24} {:>8} samples  checked {:>6}  hit-rate {:>6}  MAPE {:>6}  invalidated {}  {} at end",
            trace.name,
            trace.len(),
            stats.checked,
            fmt_pct(stats.hit_rate()),
            fmt_pct(stats.mape()),
            stats.invalidations,
            period,
        )
        .unwrap();
    }
    let total_rate = (checked_total > 0).then(|| hits_total as f64 / checked_total as f64);
    writeln!(
        out,
        "total: checked {checked_total}  hit-rate {}",
        fmt_pct(total_rate)
    )
    .unwrap();
    Ok(out)
}

/// `dpd query FILE --spec FILE`: replay every event stream of the trace
/// through the deterministic inline service with the spec file's standing
/// queries attached, and print the full delta log. One query per spec
/// line — `period-in LO HI`, `lock-lost-within N`, `confidence-at-least
/// T`, `period-join TOL` — with `#` comments (see docs/QUERIES.md).
/// Output is deliberately deterministic (inline mode, stable stream
/// order, no wall-clock figures) so it can be golden-file tested.
fn query_cmd(flags: &Flags) -> Result<String, String> {
    let path = flags
        .positional
        .first()
        .ok_or("query expects a trace file argument")?;
    let spec_path = flags.get("spec").ok_or("query requires --spec FILE")?;
    let window = flags.get_usize("window", 64)?;
    let chunk = flags.get_usize("chunk", 256)?.max(1);
    let horizon = flags.get_usize("horizon", 0)?;
    let evict_after = flags.get_usize("evict-after", 0)? as u64;

    let spec_text =
        std::fs::read_to_string(spec_path).map_err(|e| format!("read {spec_path}: {e}"))?;
    let specs =
        dpd_core::query::parse_specs(&spec_text).map_err(|e| format!("{spec_path}: {e}"))?;
    if specs.is_empty() {
        return Err(format!("{spec_path}: spec file declares no queries"));
    }

    // Same corpus policy as `predict`: every event stream of a DTB
    // container in declaration order, or the single stream of a text
    // trace; sampled streams are reported, not silently dropped.
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut skipped_sampled = 0usize;
    let streams: Vec<EventTrace> = match io::detect_format(&bytes) {
        Some(TraceFormat::Dtb) => {
            let (events, sampled) = read_dtb_streams(&bytes).map_err(|e| format!("{path}: {e}"))?;
            if events.is_empty() {
                return Err(format!("{path}: container holds no event stream"));
            }
            skipped_sampled = sampled.len();
            events.into_iter().map(|(_, t)| t).collect()
        }
        _ => vec![io::read_events(&bytes[..]).map_err(|e| format!("{path}: {e}"))?],
    };

    let mut builder = DpdBuilder::new()
        .window(window)
        .standing_queries(&specs)
        .shards(0);
    if horizon > 0 {
        builder = builder.forecast(horizon);
    }
    if evict_after > 0 {
        builder = builder.evict_after(evict_after);
    }
    let mut svc = MultiStreamDpd::from_builder(&builder)
        .map_err(|e| format!("invalid query configuration: {e}"))?;

    let mut out = String::new();
    let total: usize = streams.iter().map(|t| t.len()).sum();
    writeln!(
        out,
        "standing queries: {} quer{} over {} stream(s) ({} samples), window {window}",
        specs.len(),
        if specs.len() == 1 { "y" } else { "ies" },
        streams.len(),
        total,
    )
    .unwrap();
    if skipped_sampled > 0 {
        writeln!(
            out,
            "note: skipped {skipped_sampled} sampled stream(s) \
             (query replays event streams only)"
        )
        .unwrap();
    }
    for (i, spec) in specs.iter().enumerate() {
        writeln!(out, "  query#{i} {spec}").unwrap();
    }
    for (s, t) in streams.iter().enumerate() {
        writeln!(out, "  stream#{s} = {} ({} samples)", t.name, t.len()).unwrap();
    }

    // Round-robin replay, `chunk` samples per stream per wave — the same
    // arrival pattern as `multistream`.
    let mut offset = 0;
    loop {
        let mut records: Vec<(StreamId, &[i64])> = Vec::new();
        for (s, t) in streams.iter().enumerate() {
            if offset < t.values.len() {
                let end = (offset + chunk).min(t.values.len());
                records.push((StreamId(s as u64), &t.values[offset..end]));
            }
        }
        if records.is_empty() {
            break;
        }
        svc.ingest(&records);
        offset += chunk;
    }

    // Replay deltas first: memberships at end-of-replay fold out of them
    // (Enter/Exit strictly alternate per (query, stream) pair), then the
    // close wave exits whatever is still resident.
    let replay = svc.drain_query_deltas();
    let mut members: Vec<Vec<u64>> = vec![Vec::new(); specs.len()];
    for d in &replay {
        let m = &mut members[d.query.0 as usize];
        match d.change {
            dpd_core::query::QueryChange::Enter => m.push(d.stream.0),
            dpd_core::query::QueryChange::Exit => m.retain(|&s| s != d.stream.0),
        }
    }
    writeln!(out, "delta log:").unwrap();
    for d in &replay {
        writeln!(out, "{d}").unwrap();
    }
    writeln!(out, "members at end of replay:").unwrap();
    for (i, m) in members.iter_mut().enumerate() {
        m.sort_unstable();
        let list = if m.is_empty() {
            "(none)".to_string()
        } else {
            m.iter()
                .map(|s| format!("stream#{s}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        writeln!(out, "  query#{i}: {list}").unwrap();
    }
    let (_events, tail, snapshot) = svc.finish_with_deltas();
    writeln!(out, "close wave:").unwrap();
    for d in &tail {
        writeln!(out, "{d}").unwrap();
    }
    let t = snapshot.total();
    writeln!(
        out,
        "deltas: {} | enters {} | exits {}",
        t.query_enters + t.query_exits,
        t.query_enters,
        t.query_exits
    )
    .unwrap();
    Ok(out)
}

// ---------------------------------------------------------------------------
// Durable ingest: `dpd checkpoint` / `dpd resume`.

/// Flags shared by `checkpoint` and `resume`.
struct DurableOpts {
    dir: String,
    pile: String,
    snap: String,
    window: usize,
    shards: usize,
    chunk: usize,
    every: usize,
    horizon: usize,
    memory_budget: u64,
    cold_retain: u64,
    evict_after: u64,
    throttle_ms: u64,
}

impl DurableOpts {
    fn parse(cmd: &str, flags: &Flags) -> Result<DurableOpts, String> {
        let dir = flags
            .positional
            .first()
            .ok_or_else(|| format!("{cmd} expects a directory of trace files"))?
            .clone();
        let pile = flags
            .get("pile")
            .ok_or_else(|| format!("{cmd} requires --pile FILE"))?
            .to_string();
        let snap = flags
            .get("snap")
            .map(str::to_string)
            .unwrap_or_else(|| format!("{pile}.snap"));
        Ok(DurableOpts {
            dir,
            pile,
            snap,
            window: flags.get_usize("window", 64)?,
            shards: flags.get_usize("shards", 0)?,
            chunk: flags.get_usize("chunk", 256)?.max(1),
            every: flags.get_usize("every", 8)?.max(1),
            horizon: flags.get_usize("forecast", 0)?,
            memory_budget: flags.get_usize("memory-budget", 0)? as u64,
            cold_retain: flags.get_usize("cold-retain", 0)? as u64,
            evict_after: flags.get_usize("evict-after", 0)? as u64,
            throttle_ms: flags.get_usize("throttle-ms", 0)? as u64,
        })
    }

    /// The service builder both commands construct — `resume` validates
    /// the snap file against exactly this configuration (including the
    /// table-scale budget/tier options, which are part of the v2 snapshot
    /// body).
    fn builder(&self) -> DpdBuilder {
        let mut b = DpdBuilder::new().window(self.window).shards(self.shards);
        if self.horizon > 0 {
            b = b.forecast(self.horizon);
        }
        if self.evict_after > 0 {
            b = b.evict_after(self.evict_after);
        }
        if self.memory_budget > 0 {
            b = b.memory_budget(self.memory_budget);
        }
        if self.cold_retain > 0 {
            b = b.cold_summary(self.cold_retain);
        }
        b
    }
}

/// Print a drained event batch, sorted by stream id (stable, so the
/// per-stream order the service guarantees is preserved): with a flush
/// before every drain this makes the output deterministic for any shard
/// count, which is what lets a resumed run be diffed against an
/// uninterrupted one.
fn print_events(out: &mut String, mut events: Vec<MultiStreamEvent>) {
    events.sort_by_key(|e| e.stream().0);
    for e in &events {
        writeln!(out, "  {e:?}").unwrap();
    }
}

/// The round-robin records of one wave, in pile-frame form.
fn wave_records(traces: &[EventTrace], wave: usize, chunk: usize) -> Vec<(u64, Vec<i64>)> {
    let offset = wave * chunk;
    let mut records = Vec::new();
    for (s, t) in traces.iter().enumerate() {
        if offset < t.values.len() {
            let end = (offset + chunk).min(t.values.len());
            records.push((s as u64, t.values[offset..end].to_vec()));
        }
    }
    records
}

/// Checkpoint the service to the snap file and append the epoch marker to
/// the pile (in that order: the snap is the authority; the epoch is the
/// pile-side statement that earlier frames are covered).
fn take_checkpoint(
    out: &mut String,
    svc: &mut MultiStreamDpd,
    pile: &mut PileWriter<std::fs::File>,
    snap: &str,
    marker: EpochMarker,
) -> Result<(), String> {
    let pending = svc
        .checkpoint(snap, marker)
        .map_err(|e| format!("checkpoint {snap}: {e}"))?;
    print_events(out, pending);
    pile.epoch(marker)
        .and_then(|()| pile.sync())
        .map_err(|e| format!("pile epoch: {e}"))?;
    writeln!(
        out,
        "checkpoint #{} wave {} samples {}",
        marker.ordinal, marker.wave, marker.samples
    )
    .unwrap();
    Ok(())
}

/// Ingest one wave (already durably logged), print its events, and
/// checkpoint on the every-K boundary. The cadence depends only on the
/// absolute wave index, so a resumed run checkpoints at exactly the same
/// points as an uninterrupted one.
fn apply_wave(
    out: &mut String,
    svc: &mut MultiStreamDpd,
    pile: &mut PileWriter<std::fs::File>,
    opts: &DurableOpts,
    wave: usize,
    records: &[(u64, Vec<i64>)],
) -> Result<(), String> {
    let recs: Vec<(StreamId, &[i64])> = records
        .iter()
        .map(|(s, v)| (StreamId(*s), v.as_slice()))
        .collect();
    svc.ingest(&recs);
    svc.flush();
    print_events(out, svc.drain());
    if (wave + 1).is_multiple_of(opts.every) {
        let marker = EpochMarker {
            wave: wave as u64 + 1,
            samples: svc.samples_ingested(),
            ordinal: ((wave + 1) / opts.every) as u64,
        };
        take_checkpoint(out, svc, pile, &opts.snap, marker)?;
    }
    Ok(())
}

/// Drive waves from the source directory, write-ahead: each wave is
/// appended to the pile and fsynced *before* it is ingested, so a crash
/// at any point loses no acknowledged work. Returns the wave count.
fn run_waves(
    out: &mut String,
    svc: &mut MultiStreamDpd,
    pile: &mut PileWriter<std::fs::File>,
    opts: &DurableOpts,
    traces: &[EventTrace],
    start_wave: usize,
) -> Result<usize, String> {
    let mut wave = start_wave;
    loop {
        let records = wave_records(traces, wave, opts.chunk);
        if records.is_empty() {
            return Ok(wave);
        }
        pile.events(wave as u64, &records)
            .and_then(|()| pile.sync())
            .map_err(|e| format!("pile append: {e}"))?;
        apply_wave(out, svc, pile, opts, wave, &records)?;
        if opts.throttle_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(opts.throttle_ms));
        }
        wave += 1;
    }
}

/// Final checkpoint (when the last wave was not on a boundary), close
/// every stream, and summarize.
fn finish_run(
    out: &mut String,
    mut svc: MultiStreamDpd,
    pile: &mut PileWriter<std::fs::File>,
    opts: &DurableOpts,
    waves: usize,
) -> Result<(), String> {
    if !waves.is_multiple_of(opts.every) {
        let marker = EpochMarker {
            wave: waves as u64,
            samples: svc.samples_ingested(),
            ordinal: (waves / opts.every) as u64 + 1,
        };
        take_checkpoint(out, &mut svc, pile, &opts.snap, marker)?;
    }
    let (events, snap) = svc.finish();
    print_events(out, events);
    let t = snap.total();
    writeln!(
        out,
        "done: {} samples, {} events, {} closed",
        t.samples, t.events, t.closed
    )
    .unwrap();
    Ok(())
}

/// `dpd checkpoint DIR --pile FILE [--snap FILE] ...`: the durable ingest
/// pipeline. Refuses a pile that already holds frames — that is a crashed
/// run, and continuing it is `dpd resume`'s job.
fn checkpoint_cmd(flags: &Flags) -> Result<String, String> {
    let opts = DurableOpts::parse("checkpoint", flags)?;
    let (traces, _) = load_dir_traces(&opts.dir)?;
    let mut svc = MultiStreamDpd::from_builder(&opts.builder())
        .map_err(|e| format!("invalid checkpoint configuration: {e}"))?;
    let (mut pile, rec) =
        PileWriter::open(&opts.pile).map_err(|e| format!("open pile {}: {e}", opts.pile))?;
    if !rec.frames.is_empty() {
        return Err(format!(
            "pile {} already holds {} frame(s); continue it with `dpd resume`",
            opts.pile,
            rec.frames.len()
        ));
    }
    let mut out = String::new();
    writeln!(
        out,
        "ingesting {} streams in waves of {} (checkpoint every {} waves)",
        traces.len(),
        opts.chunk,
        opts.every
    )
    .unwrap();
    let waves = run_waves(&mut out, &mut svc, &mut pile, &opts, &traces, 0)?;
    finish_run(&mut out, svc, &mut pile, &opts, waves)?;
    Ok(out)
}

/// `dpd resume DIR --pile FILE [--snap FILE] ...`: crash recovery. Opens
/// the pile (truncating any torn tail), restores the service from the
/// snap file, replays the logged waves the checkpoint does not cover, and
/// continues ingesting from the source directory. The emitted event
/// stream is bit-identical to the suffix an uninterrupted `dpd
/// checkpoint` run would have produced from the same point.
fn resume_cmd(flags: &Flags) -> Result<String, String> {
    let opts = DurableOpts::parse("resume", flags)?;
    let (traces, _) = load_dir_traces(&opts.dir)?;
    let (mut pile, rec) =
        PileWriter::open(&opts.pile).map_err(|e| format!("open pile {}: {e}", opts.pile))?;
    let (mut svc, marker) = MultiStreamDpd::resume(&opts.builder(), &opts.snap)
        .map_err(|e| format!("resume {}: {e}", opts.snap))?;
    let mut out = String::new();
    writeln!(
        out,
        "resumed from checkpoint #{} at wave {}, samples {}",
        marker.ordinal, marker.wave, marker.samples
    )
    .unwrap();
    // Replay the write-ahead frames the checkpoint does not cover: logged
    // (durable) waves whose effects were lost with the crashed process.
    let mut next_wave = marker.wave as usize;
    type LoggedWave = (u64, Vec<(u64, Vec<i64>)>);
    let replay: Vec<LoggedWave> = rec
        .frames
        .into_iter()
        .filter_map(|f| match f {
            PileFrame::Events { wave, records } if wave >= marker.wave => Some((wave, records)),
            _ => None,
        })
        .collect();
    for (wave, records) in replay {
        apply_wave(
            &mut out,
            &mut svc,
            &mut pile,
            &opts,
            wave as usize,
            &records,
        )?;
        next_wave = wave as usize + 1;
    }
    let waves = run_waves(&mut out, &mut svc, &mut pile, &opts, &traces, next_wave)?;
    finish_run(&mut out, svc, &mut pile, &opts, waves)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn flags_parse_positional_and_options() {
        let f = Flags::parse(&argv("file.txt --window 64 --kind nested")).unwrap();
        assert_eq!(f.positional, vec!["file.txt"]);
        assert_eq!(f.get("window"), Some("64"));
        assert_eq!(f.get("kind"), Some("nested"));
        assert_eq!(f.get("missing"), None);
    }

    #[test]
    fn flags_last_occurrence_wins() {
        let f = Flags::parse(&argv("--window 8 --window 16")).unwrap();
        assert_eq!(f.get_usize("window", 0).unwrap(), 16);
    }

    #[test]
    fn flags_missing_value_errors() {
        assert!(Flags::parse(&argv("--window")).is_err());
    }

    #[test]
    fn flags_bad_number_errors() {
        let f = Flags::parse(&argv("--window abc")).unwrap();
        assert!(f.get_usize("window", 0).is_err());
    }

    #[test]
    fn dispatch_unknown_command() {
        assert!(dispatch(&argv("frobnicate")).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn generate_analyze_roundtrip() {
        let dir = std::env::temp_dir().join("dpd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("periodic.trace");
        let path_s = path.to_str().unwrap().to_string();

        let out = dispatch(&argv(&format!(
            "generate --kind periodic --period 7 --len 2000 --out {path_s}"
        )))
        .unwrap();
        assert!(out.contains("2000 events"));

        let out = dispatch(&argv(&format!("analyze {path_s}"))).unwrap();
        assert!(out.contains("detected periodicities: [7]"), "{out}");

        let out = dispatch(&argv(&format!("spectrum {path_s} --window 32"))).unwrap();
        assert!(out.contains("fundamental: Some(7)"), "{out}");

        let out = dispatch(&argv(&format!("segment {path_s} --window 16"))).unwrap();
        assert!(out.contains("period     7"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn generate_nested_analyzes_as_nested() {
        let dir = std::env::temp_dir().join("dpd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nested.trace");
        let path_s = path.to_str().unwrap().to_string();
        dispatch(&argv(&format!(
            "generate --kind nested --len 4000 --out {path_s}"
        )))
        .unwrap();
        let out = dispatch(&argv(&format!("analyze {path_s} --scales 8,64,512"))).unwrap();
        // nested_events(5, 10, 11, _): outer period 115, inner 10.
        assert!(out.contains("[10, 115]"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn generate_requires_out() {
        assert!(dispatch(&argv("generate --kind periodic")).is_err());
    }

    #[test]
    fn analyze_missing_file_errors() {
        assert!(dispatch(&argv("analyze /nonexistent/path.trace")).is_err());
    }

    #[test]
    fn multistream_replays_directory() {
        let dir = std::env::temp_dir().join("dpd-cli-multistream-test");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, period) in [("a", 3usize), ("b", 5), ("c", 7)] {
            let path = dir.join(format!("{name}.trace"));
            dispatch(&argv(&format!(
                "generate --kind periodic --period {period} --len 3000 --out {}",
                path.to_str().unwrap()
            )))
            .unwrap();
        }
        for shards in [0usize, 3] {
            let out = dispatch(&argv(&format!(
                "multistream {} --shards {shards} --window 16 --chunk 128",
                dir.to_str().unwrap()
            )))
            .unwrap();
            assert!(out.contains("replayed 3 streams (9000 samples)"), "{out}");
            assert!(out.contains("period 3 at close"), "{out}");
            assert!(out.contains("period 5 at close"), "{out}");
            assert!(out.contains("period 7 at close"), "{out}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn convert_roundtrips_text_dtb_text_bit_identically() {
        let dir = std::env::temp_dir().join("dpd-cli-convert-test");
        std::fs::create_dir_all(&dir).unwrap();
        for kind in ["periodic", "nested", "aperiodic"] {
            let text1 = dir.join(format!("{kind}.trace"));
            let bin = dir.join(format!("{kind}.dtb"));
            let text2 = dir.join(format!("{kind}.back.trace"));
            let (t1, b, t2) = (
                text1.to_str().unwrap().to_string(),
                bin.to_str().unwrap().to_string(),
                text2.to_str().unwrap().to_string(),
            );
            dispatch(&argv(&format!(
                "generate --kind {kind} --len 3000 --out {t1}"
            )))
            .unwrap();
            let out = dispatch(&argv(&format!("convert {t1} --out {b}"))).unwrap();
            assert!(out.contains("text -> dtb"), "{out}");
            let out = dispatch(&argv(&format!("convert {b} --out {t2}"))).unwrap();
            assert!(out.contains("dtb -> text"), "{out}");
            assert_eq!(
                std::fs::read(&text1).unwrap(),
                std::fs::read(&text2).unwrap(),
                "{kind}: text -> dtb -> text not bit-identical"
            );
            // The binary file is the smaller artifact on periodic streams.
            if kind == "periodic" {
                assert!(
                    std::fs::metadata(&bin).unwrap().len()
                        < std::fs::metadata(&text1).unwrap().len()
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_dtb_analyzes_like_text() {
        let dir = std::env::temp_dir().join("dpd-cli-dtb-analyze-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.dtb");
        let p = path.to_str().unwrap().to_string();
        dispatch(&argv(&format!(
            "generate --kind periodic --period 7 --len 2000 --format dtb --out {p}"
        )))
        .unwrap();
        let out = dispatch(&argv(&format!("analyze {p}"))).unwrap();
        assert!(out.contains("detected periodicities: [7]"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multistream_replays_dtb_container() {
        use dpd_trace::dtb::DtbWriter;
        let dir = std::env::temp_dir().join("dpd-cli-multistream-dtb-test");
        std::fs::create_dir_all(&dir).unwrap();
        // One container holding all three streams (vs three text files).
        let file = std::fs::File::create(dir.join("all.dtb")).unwrap();
        let mut w = DtbWriter::new(file).unwrap();
        for (id, (name, period)) in [("a", 3usize), ("b", 5), ("c", 7)].iter().enumerate() {
            let pattern: Vec<i64> = (0..*period).map(|i| 0x1000 + i as i64).collect();
            w.declare_events(id as u64, name).unwrap();
            w.push_events(id as u64, &gen::periodic_events(&pattern, 3000))
                .unwrap();
        }
        w.finish().unwrap();
        for shards in [0usize, 3] {
            let out = dispatch(&argv(&format!(
                "multistream {} --shards {shards} --window 16 --chunk 128",
                dir.to_str().unwrap()
            )))
            .unwrap();
            assert!(out.contains("replayed 3 streams (9000 samples)"), "{out}");
            for period in [3, 5, 7] {
                assert!(out.contains(&format!("period {period} at close")), "{out}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn convert_dtb_to_dtb_preserves_stream_ids() {
        use dpd_trace::dtb::{DtbReader, DtbWriter};
        let dir = std::env::temp_dir().join("dpd-cli-convert-ids");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("src.dtb");
        let dst = dir.join("dst.dtb");
        let mut w = DtbWriter::new(std::fs::File::create(&src).unwrap()).unwrap();
        for id in [17u64, 42] {
            w.declare_events(id, &format!("s{id}")).unwrap();
            w.push_events(id, &[1, 2, 3]).unwrap();
        }
        w.finish().unwrap();
        dispatch(&argv(&format!(
            "convert {} --to dtb --out {}",
            src.to_str().unwrap(),
            dst.to_str().unwrap()
        )))
        .unwrap();
        let bytes = std::fs::read(&dst).unwrap();
        let mut r = DtbReader::new(&bytes).unwrap();
        while r.next_block().is_some() {}
        assert_eq!(r.stream_ids(), vec![17, 42], "stream ids renumbered");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multistream_reports_skipped_sampled_streams() {
        use dpd_trace::dtb::DtbWriter;
        let dir = std::env::temp_dir().join("dpd-cli-multistream-sampled");
        std::fs::create_dir_all(&dir).unwrap();
        let mut w = DtbWriter::new(std::fs::File::create(dir.join("mix.dtb")).unwrap()).unwrap();
        w.declare_events(0, "e").unwrap();
        w.push_events(0, &gen::periodic_events(&[1, 2, 3], 600))
            .unwrap();
        w.declare_sampled(1, "cpu", 1_000_000).unwrap();
        w.push_samples(1, &[1.0, 2.0, 4.0]).unwrap();
        w.finish().unwrap();
        let out = dispatch(&argv(&format!(
            "multistream {} --shards 0 --window 8",
            dir.to_str().unwrap()
        )))
        .unwrap();
        assert!(out.contains("replayed 1 streams (600 samples)"), "{out}");
        assert!(out.contains("skipped 1 sampled stream(s)"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn convert_rejects_unknown_format() {
        let dir = std::env::temp_dir().join("dpd-cli-convert-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk");
        std::fs::write(&path, b"not a trace at all").unwrap();
        let err = dispatch(&argv(&format!(
            "convert {} --out /tmp/x.dtb",
            path.to_str().unwrap()
        )))
        .unwrap_err();
        assert!(
            err.contains("neither a text trace nor a DTB container"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multistream_empty_dir_errors() {
        let dir = std::env::temp_dir().join("dpd-cli-multistream-empty");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(dispatch(&argv(&format!("multistream {}", dir.to_str().unwrap()))).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn predict_periodic_corpus_hits_after_warmup() {
        let dir = std::env::temp_dir().join("dpd-cli-predict-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.trace");
        let p = path.to_str().unwrap().to_string();
        dispatch(&argv(&format!(
            "generate --kind periodic --period 6 --len 4000 --out {p}"
        )))
        .unwrap();
        let out = dispatch(&argv(&format!("predict {p} --window 16 --horizon 1"))).unwrap();
        assert!(out.contains("hit-rate 100.0%"), "{out}");
        assert!(out.contains("invalidated 0"), "{out}");
        assert!(out.contains("period 6 at end"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn predict_phase_changes_invalidate_without_stale_scoring() {
        let dir = std::env::temp_dir().join("dpd-cli-predict-phases");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("phases.trace");
        let p = path.to_str().unwrap().to_string();
        dispatch(&argv(&format!(
            "generate --kind phases --period 4 --len 6000 --out {p}"
        )))
        .unwrap();
        for horizon in [1usize, 4] {
            let out = dispatch(&argv(&format!(
                "predict {p} --window 32 --horizon {horizon}"
            )))
            .unwrap();
            // Phase changes must invalidate standing forecasts...
            assert!(!out.contains("invalidated 0"), "h={horizon}: {out}");
            // ...and with stale predictions dropped unscored, every scored
            // one on this exactly periodic corpus is a hit.
            assert!(out.contains("hit-rate 100.0%"), "h={horizon}: {out}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn predict_dtb_container_reports_every_stream() {
        use dpd_trace::dtb::DtbWriter;
        let dir = std::env::temp_dir().join("dpd-cli-predict-dtb");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("all.dtb");
        let mut w = DtbWriter::new(std::fs::File::create(&path).unwrap()).unwrap();
        for (id, (name, period)) in [("a", 3usize), ("b", 5)].iter().enumerate() {
            let pattern: Vec<i64> = (0..*period).map(|i| 0x1000 + i as i64).collect();
            w.declare_events(id as u64, name).unwrap();
            w.push_events(id as u64, &gen::periodic_events(&pattern, 2000))
                .unwrap();
        }
        w.finish().unwrap();
        let out = dispatch(&argv(&format!(
            "predict {} --window 16 --horizon 2",
            path.to_str().unwrap()
        )))
        .unwrap();
        assert!(out.contains("2 stream(s)"), "{out}");
        assert!(out.contains("period 3 at end"), "{out}");
        assert!(out.contains("period 5 at end"), "{out}");
        assert!(out.contains("total: checked"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn predict_reports_skipped_sampled_streams() {
        use dpd_trace::dtb::DtbWriter;
        let dir = std::env::temp_dir().join("dpd-cli-predict-sampled");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mix.dtb");
        let mut w = DtbWriter::new(std::fs::File::create(&path).unwrap()).unwrap();
        w.declare_events(0, "e").unwrap();
        w.push_events(0, &gen::periodic_events(&[1, 2, 3], 600))
            .unwrap();
        w.declare_sampled(1, "cpu", 1_000_000).unwrap();
        w.push_samples(1, &[1.0, 2.0, 4.0]).unwrap();
        w.finish().unwrap();
        let out = dispatch(&argv(&format!(
            "predict {} --window 8",
            path.to_str().unwrap()
        )))
        .unwrap();
        assert!(out.contains("1 stream(s)"), "{out}");
        assert!(out.contains("skipped 1 sampled stream(s)"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn predict_rejects_bad_flags() {
        assert!(dispatch(&argv("predict /nonexistent.trace")).is_err());
        let dir = std::env::temp_dir().join("dpd-cli-predict-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.trace");
        let p = path.to_str().unwrap().to_string();
        dispatch(&argv(&format!(
            "generate --kind periodic --period 3 --len 300 --out {p}"
        )))
        .unwrap();
        assert!(dispatch(&argv(&format!("predict {p} --horizon 0"))).is_err());
        assert!(dispatch(&argv(&format!("predict {p} --window 0"))).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multistream_timing_none_is_deterministic() {
        let dir = std::env::temp_dir().join("dpd-cli-multistream-timing");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.trace");
        dispatch(&argv(&format!(
            "generate --kind periodic --period 3 --len 900 --out {}",
            path.to_str().unwrap()
        )))
        .unwrap();
        let cmd = format!(
            "multistream {} --shards 0 --window 16 --timing none",
            dir.to_str().unwrap()
        );
        let a = dispatch(&argv(&cmd)).unwrap();
        let b = dispatch(&argv(&cmd)).unwrap();
        assert_eq!(a, b, "byte-stable output expected");
        assert!(
            a.contains("replayed 1 streams (900 samples) over inline\n"),
            "{a}"
        );
        assert!(!a.contains("Msamples/s"), "{a}");
        assert!(dispatch(&argv(&format!(
            "multistream {} --timing sometimes",
            dir.to_str().unwrap()
        )))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_phases_analyzes_all_periods() {
        let dir = std::env::temp_dir().join("dpd-cli-phases-gen");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("phases.trace");
        let p = path.to_str().unwrap().to_string();
        let out = dispatch(&argv(&format!(
            "generate --kind phases --period 3 --len 3000 --out {p}"
        )))
        .unwrap();
        assert!(out.contains("3000 events"), "{out}");
        let out = dispatch(&argv(&format!("analyze {p} --scales 16"))).unwrap();
        // Segments carry periods 3, 7 and 4.
        assert!(
            out.contains('3') && out.contains('7') && out.contains('4'),
            "{out}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn apps_unknown_name_errors() {
        assert!(dispatch(&argv("apps --app nosuch --out /tmp/x.trace")).is_err());
    }

    /// Fresh directory of periodic source traces for durable-ingest tests.
    fn durable_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dpd-cli-durable-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("src")).unwrap();
        for (name, period) in [("a", 3usize), ("b", 5), ("c", 7)] {
            dispatch(&argv(&format!(
                "generate --kind periodic --period {period} --len 2000 --out {}",
                dir.join("src")
                    .join(format!("{name}.trace"))
                    .to_str()
                    .unwrap()
            )))
            .unwrap();
        }
        dir
    }

    #[test]
    fn checkpoint_writes_pile_and_snap_then_resume_continues() {
        let dir = durable_dir("roundtrip");
        let src = dir.join("src").to_str().unwrap().to_string();
        let pile = dir.join("events.pile").to_str().unwrap().to_string();
        let out = dispatch(&argv(&format!(
            "checkpoint {src} --pile {pile} --window 16 --chunk 128 --every 4"
        )))
        .unwrap();
        assert!(out.contains("checkpoint #1 wave 4"), "{out}");
        assert!(out.contains("done: 6000 samples"), "{out}");
        assert!(std::path::Path::new(&format!("{pile}.snap")).exists());

        // A completed run resumes cleanly: nothing to replay, totals match.
        let resumed = dispatch(&argv(&format!(
            "resume {src} --pile {pile} --window 16 --chunk 128 --every 4"
        )))
        .unwrap();
        assert!(
            resumed.contains("resumed from checkpoint #4 at wave 16"),
            "{resumed}"
        );
        assert!(resumed.contains("done: 6000 samples"), "{resumed}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Resuming from a mid-run checkpoint replays the logged waves and
    /// emits exactly the oracle's post-checkpoint output suffix.
    #[test]
    fn resume_suffix_matches_uninterrupted_run() {
        let dir = durable_dir("suffix");
        let src = dir.join("src").to_str().unwrap().to_string();

        // Oracle: one uninterrupted run.
        let oracle_pile = dir.join("oracle.pile").to_str().unwrap().to_string();
        let oracle = dispatch(&argv(&format!(
            "checkpoint {src} --pile {oracle_pile} --window 16 --chunk 128 --every 4"
        )))
        .unwrap();

        // "Crashed" run: same ingest, but stop after checkpoint #2 by
        // rebuilding its on-disk state — log all 8 waves (write-ahead),
        // but snapshot only through wave 8. The extra logged waves model
        // work durably logged but lost with the crashed process.
        let pile = dir.join("crashed.pile").to_str().unwrap().to_string();
        {
            use dpd_core::pipeline::DpdBuilder;
            let (traces, _) = load_dir_traces(&src).unwrap();
            let opts_builder = DpdBuilder::new().window(16).shards(0);
            let mut svc = MultiStreamDpd::from_builder(&opts_builder).unwrap();
            let (mut p, _) = PileWriter::open(&pile).unwrap();
            for wave in 0..10usize {
                let records = wave_records(&traces, wave, 128);
                p.events(wave as u64, &records).unwrap();
                p.sync().unwrap();
                if wave < 8 {
                    let recs: Vec<(StreamId, &[i64])> = records
                        .iter()
                        .map(|(s, v)| (StreamId(*s), v.as_slice()))
                        .collect();
                    svc.ingest(&recs);
                    svc.drain();
                }
                if wave == 3 || wave == 7 {
                    let marker = EpochMarker {
                        wave: wave as u64 + 1,
                        samples: svc.samples_ingested(),
                        ordinal: (wave as u64 + 1) / 4,
                    };
                    svc.checkpoint(format!("{pile}.snap"), marker).unwrap();
                    p.epoch(marker).unwrap();
                    p.sync().unwrap();
                }
            }
        }

        let resumed = dispatch(&argv(&format!(
            "resume {src} --pile {pile} --window 16 --chunk 128 --every 4"
        )))
        .unwrap();
        let header = "resumed from checkpoint #2 at wave 8, samples 3072\n";
        assert!(resumed.starts_with(header), "{resumed}");
        let suffix = &resumed[header.len()..];
        let anchor = "checkpoint #2 wave 8 samples 3072\n";
        let pos = oracle.find(anchor).expect("oracle took checkpoint #2") + anchor.len();
        assert_eq!(
            &oracle[pos..],
            suffix,
            "resumed output diverges from the uninterrupted run"
        );
        // Both runs end on bit-identical final snapshots.
        assert_eq!(
            std::fs::read(format!("{oracle_pile}.snap")).unwrap(),
            std::fs::read(format!("{pile}.snap")).unwrap(),
            "final snap files differ"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_refuses_used_pile_and_resume_needs_snap() {
        let dir = durable_dir("guards");
        let src = dir.join("src").to_str().unwrap().to_string();
        let pile = dir.join("events.pile").to_str().unwrap().to_string();
        dispatch(&argv(&format!(
            "checkpoint {src} --pile {pile} --window 16 --chunk 128"
        )))
        .unwrap();
        let err = dispatch(&argv(&format!(
            "checkpoint {src} --pile {pile} --window 16 --chunk 128"
        )))
        .unwrap_err();
        assert!(err.contains("dpd resume"), "{err}");

        let fresh = dir.join("fresh.pile").to_str().unwrap().to_string();
        let err = dispatch(&argv(&format!("resume {src} --pile {fresh}"))).unwrap_err();
        assert!(err.contains("resume"), "{err}");

        // A mismatched builder is rejected, not silently accepted.
        let err = dispatch(&argv(&format!(
            "resume {src} --pile {pile} --window 32 --chunk 128 --every 4"
        )))
        .unwrap_err();
        assert!(err.contains("does not match"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_period_rejected() {
        assert!(dispatch(&argv("generate --kind periodic --period 0 --out /tmp/x")).is_err());
    }
}
