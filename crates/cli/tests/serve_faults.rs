//! Fault injection for `dpd serve`.
//!
//! Two layers:
//!
//! * **In-process** — a [`DpdServer`] under hostile clients: a stall
//!   mid-frame, an abrupt disconnect mid-frame and an oversized frame
//!   must each shed/close *only* the offending connection; a healthy
//!   connection sharing the server is unaffected, byte for byte.
//! * **Subprocess** — the crash harness extended over TCP: a
//!   `dpd serve --checkpoint` process is `SIGKILL`ed mid-stream after a
//!   durable checkpoint, a second process `--resume`s, the client
//!   resends everything past the last durable cut, and the final
//!   detector state is *bit-identical* to an uninterrupted serve of the
//!   same corpus (checkpoint files compared byte for byte).

use dpd_core::pipeline::DpdBuilder;
use dpd_trace::dtb::{self, Block, DtbReader, DtbWriter};
use dpd_trace::pile::EpochMarker;
use par_runtime::net::{DpdServer, NetConfig, HANDSHAKE_MAGIC, PROTOCOL_VERSION};
use par_runtime::service::MultiStreamDpd;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Fresh scratch directory.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dpd-serve-faults-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small multi-stream corpus as DTB bytes: `streams` periodic event
/// streams of `len` samples each, interleaved in 64-sample frames.
fn corpus(streams: usize, len: usize) -> Vec<u8> {
    let mut w = DtbWriter::with_block_len(Vec::new(), 64).unwrap();
    for s in 0..streams {
        w.declare_events(s as u64, &format!("s{s}")).unwrap();
    }
    let mut offset = 0;
    while offset < len {
        let end = (offset + 64).min(len);
        for s in 0..streams {
            let period = 3 + 2 * s;
            let vals: Vec<i64> = (offset..end)
                .map(|i| 0x3000 + (s as i64) * 0x100 + (i % period) as i64)
                .collect();
            w.push_events(s as u64, &vals).unwrap();
        }
        offset = end;
    }
    w.finish().unwrap()
}

fn read_handshake(sock: &mut TcpStream) {
    let mut hello = [0u8; 6];
    sock.read_exact(&mut hello).expect("handshake");
    assert_eq!(&hello[..4], &HANDSHAKE_MAGIC);
    assert_eq!(hello[4], PROTOCOL_VERSION);
}

/// Send `bytes` whole, half-close, and drain acks to the final value.
fn send_clean(addr: SocketAddr, bytes: &[u8]) -> u64 {
    let mut sock = TcpStream::connect(addr).unwrap();
    read_handshake(&mut sock);
    sock.write_all(bytes).unwrap();
    sock.shutdown(Shutdown::Write).unwrap();
    let mut last = 0;
    let mut buf = [0u8; 8];
    while sock.read_exact(&mut buf).is_ok() {
        last = u64::from_le_bytes(buf);
    }
    last
}

/// Poll server stats until `pred` holds or a deadline passes.
fn wait_for(server: &DpdServer, what: &str, pred: impl Fn(&par_runtime::net::NetStats) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if pred(&server.stats()) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {:?}",
            server.stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A connection stalled mid-frame is shed on the stall clock; a healthy
/// connection on the same server is completely unaffected.
#[test]
fn stall_mid_frame_sheds_only_that_connection() {
    let builder = DpdBuilder::new().window(16).shards(0);
    let cfg = NetConfig {
        stall_ms: 150,
        poll_ms: 5,
        ..NetConfig::default()
    };
    let server = DpdServer::start(&builder, cfg, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Staller: the full corpus minus its last byte — forever mid-frame.
    let bytes = corpus(1, 400);
    let mut staller = TcpStream::connect(addr).unwrap();
    read_handshake(&mut staller);
    staller.write_all(&bytes[..bytes.len() - 1]).unwrap();

    // Healthy conn replays a disjoint corpus to completion meanwhile.
    let healthy = corpus(2, 600);
    let acked = send_clean(addr, &healthy);
    assert_eq!(acked, 1200, "healthy connection short-acked");

    wait_for(&server, "stall shed", |s| s.shed_stalled == 1);
    drop(staller);
    let report = server.shutdown().unwrap();
    assert_eq!(report.stats.shed_stalled, 1);
    assert_eq!(report.stats.clean_closes, 1);
    // The healthy connection's streams closed with their full counts.
    let closed: Vec<u64> = report
        .events
        .iter()
        .filter_map(|e| match e {
            dpd_core::shard::MultiStreamEvent::Closed { samples, .. } => Some(*samples),
            _ => None,
        })
        .collect();
    assert!(
        closed.contains(&600),
        "healthy streams truncated: {closed:?}"
    );
}

/// An abrupt disconnect mid-frame closes that connection with a typed
/// protocol error; parallel connections never notice.
#[test]
fn abrupt_disconnect_mid_frame_is_isolated() {
    let builder = DpdBuilder::new().window(16).shards(0);
    let server = DpdServer::start(&builder, NetConfig::default(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let bytes = corpus(1, 400);
    {
        let mut sock = TcpStream::connect(addr).unwrap();
        read_handshake(&mut sock);
        sock.write_all(&bytes[..bytes.len() / 2]).unwrap();
        sock.shutdown(Shutdown::Both).unwrap();
        // Dropped mid-frame: EOF inside an unfinished frame.
    }
    wait_for(&server, "protocol close", |s| s.protocol_errors == 1);

    let healthy = corpus(2, 600);
    let acked = send_clean(addr, &healthy);
    assert_eq!(acked, 1200);

    let report = server.shutdown().unwrap();
    assert_eq!(report.stats.protocol_errors, 1);
    assert_eq!(report.stats.clean_closes, 1);
}

/// A frame whose declared body exceeds the per-connection buffer budget
/// is rejected before it is buffered — the overflow cannot take the
/// server down, and other connections keep streaming.
#[test]
fn oversized_frame_is_rejected_not_buffered() {
    let builder = DpdBuilder::new().window(16).shards(0);
    let cfg = NetConfig {
        max_frame: 4096,
        ..NetConfig::default()
    };
    let server = DpdServer::start(&builder, cfg, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Handcraft: a valid header, then a frame declaring a 1 MiB body.
    let mut evil = Vec::new();
    evil.extend_from_slice(&dtb::MAGIC);
    evil.push(dtb::VERSION);
    evil.push(0);
    evil.push(0x02); // events frame
    let mut len = 1u64 << 20;
    while len >= 0x80 {
        evil.push((len as u8 & 0x7f) | 0x80);
        len >>= 7;
    }
    evil.push(len as u8);
    {
        let mut sock = TcpStream::connect(addr).unwrap();
        read_handshake(&mut sock);
        sock.write_all(&evil).unwrap();
        // The server must reject on the declared length alone — without
        // waiting for (or buffering) a megabyte that never arrives.
        wait_for(&server, "oversize reject", |s| s.protocol_errors == 1);
    }

    let healthy = corpus(1, 400);
    let acked = send_clean(addr, &healthy);
    assert_eq!(acked, 400);

    let report = server.shutdown().unwrap();
    assert_eq!(report.stats.protocol_errors, 1);
    assert_eq!(report.stats.clean_closes, 1);
}

// ---------------------------------------------------------------------
// Subprocess crash harness: SIGKILL + --resume over TCP.

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_dpd")
}

/// Poll a `--port-file` until the serve subprocess publishes its address.
fn wait_port(path: &Path) -> SocketAddr {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(addr) = text.trim().parse() {
                return addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "no port file at {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Decode a DTB corpus into its flattened frame sequence:
/// `(stream, values)` per events frame, in container order.
fn frames_of(bytes: &[u8]) -> Vec<(u64, Vec<i64>)> {
    let mut frames = Vec::new();
    let mut r = DtbReader::new(bytes).unwrap();
    while let Some(block) = r.next_block() {
        if let Block::Events { stream, values } = block.unwrap() {
            frames.push((stream, values.to_vec()));
        }
    }
    frames
}

/// Re-encode the corpus suffix past the first `skip` samples (in
/// flattened frame order) as a fresh standalone container.
fn encode_suffix(bytes: &[u8], skip: u64) -> Vec<u8> {
    let frames = frames_of(bytes);
    let streams: std::collections::BTreeSet<u64> = frames.iter().map(|&(s, _)| s).collect();
    let mut w = DtbWriter::with_block_len(Vec::new(), 64).unwrap();
    for &s in &streams {
        w.declare_events(s, &format!("s{s}")).unwrap();
    }
    let mut remaining = skip;
    for (s, values) in frames {
        let n = values.len() as u64;
        if remaining >= n {
            remaining -= n;
            continue;
        }
        w.push_events(s, &values[remaining as usize..]).unwrap();
        remaining = 0;
    }
    w.finish().unwrap()
}

/// Group a serve stdout's event lines by the stream id they mention.
fn event_lines(out: &str) -> BTreeMap<String, Vec<String>> {
    let mut m: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for line in out.lines().filter(|l| l.starts_with("  ")) {
        let Some(rest) = line.split("StreamId(").nth(1) else {
            continue;
        };
        let id = rest.split(')').next().unwrap().to_string();
        m.entry(id).or_default().push(line.to_string());
    }
    m
}

#[cfg(unix)]
#[test]
fn sigkill_then_resume_serve_is_bit_identical() {
    use std::process::{Command, Stdio};

    let dir = scratch("kill9");
    let bytes = corpus(3, 2000);
    let total = 6000u64;
    let builder = DpdBuilder::new().window(16).shards(0);

    let serve_args = |ck: &Path, port: &Path, resume: bool| {
        let mut args = vec![
            "serve".to_string(),
            "--accept".into(),
            "1".into(),
            "--window".into(),
            "16".into(),
            "--shards".into(),
            "0".into(),
            "--checkpoint".into(),
            ck.display().to_string(),
            "--checkpoint-every".into(),
            "512".into(),
            "--port-file".into(),
            port.display().to_string(),
            "--timing".into(),
            "none".into(),
        ];
        if resume {
            args.push("--resume".into());
        }
        args
    };

    // 1. Oracle: one uninterrupted serve of the whole corpus.
    let oracle_ck = dir.join("oracle.ck");
    let oracle_port = dir.join("oracle.port");
    let oracle_child = Command::new(bin())
        .args(serve_args(&oracle_ck, &oracle_port, false))
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let acked = send_clean(wait_port(&oracle_port), &bytes);
    assert_eq!(acked, total, "oracle run short-acked");
    let oracle_out = oracle_child.wait_with_output().unwrap();
    assert!(oracle_out.status.success());
    let oracle_stdout = String::from_utf8(oracle_out.stdout).unwrap();

    // 2. Crash: serve the same corpus slowly, SIGKILL after the first
    //    durable checkpoint hits the disk.
    let crash_ck = dir.join("crash.ck");
    let crash_port = dir.join("crash.port");
    let mut child = Command::new(bin())
        .args(serve_args(&crash_ck, &crash_port, false))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_port(&crash_port);
    let writer = {
        let bytes = bytes.clone();
        std::thread::spawn(move || {
            let Ok(mut sock) = TcpStream::connect(addr) else {
                return;
            };
            let mut hello = [0u8; 6];
            if sock.read_exact(&mut hello).is_err() {
                return;
            }
            for chunk in bytes.chunks(256) {
                if sock.write_all(chunk).is_err() {
                    return; // the server died under us — expected
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    while !crash_ck.exists() {
        assert!(Instant::now() < deadline, "no checkpoint before deadline");
        if let Ok(Some(status)) = child.try_wait() {
            panic!("serve finished before it could be killed: {status}");
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().unwrap();
    assert!(!child.wait().unwrap().success(), "child was killed");
    writer.join().unwrap();

    // 3. The durable cut: everything up to `marker.samples` survived the
    //    kill; everything after it must be resent.
    let (_svc, marker) = MultiStreamDpd::resume(&builder, &crash_ck).unwrap();
    assert!(
        marker.samples > 0 && marker.samples < total,
        "kill landed at {marker:?}"
    );
    let suffix = encode_suffix(&bytes, marker.samples);

    // 4. Resume serve and replay the suffix.
    let resume_port = dir.join("resume.port");
    let resume_child = Command::new(bin())
        .args(serve_args(&crash_ck, &resume_port, true))
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let acked = send_clean(wait_port(&resume_port), &suffix);
    assert_eq!(acked, total - marker.samples, "resume run short-acked");
    let resume_out = resume_child.wait_with_output().unwrap();
    assert!(
        resume_out.status.success(),
        "{}",
        String::from_utf8_lossy(&resume_out.stderr)
    );
    let resume_stdout = String::from_utf8(resume_out.stdout).unwrap();
    assert!(
        resume_stdout.starts_with(&format!(
            "resumed from checkpoint #{} at samples {}",
            marker.ordinal, marker.samples
        )),
        "{resume_stdout}"
    );

    // 5a. Event equivalence: per stream, the resumed run's event lines
    //     are exactly a suffix of the oracle's.
    let oracle_events = event_lines(&oracle_stdout);
    for (stream, lines) in event_lines(&resume_stdout) {
        let full = &oracle_events[&stream];
        assert!(
            lines.len() <= full.len(),
            "stream {stream}: more events than oracle"
        );
        assert_eq!(
            &full[full.len() - lines.len()..],
            &lines[..],
            "stream {stream}: resumed events are not the oracle suffix"
        );
    }

    // 5b. Bit-identical final state: both exit checkpoints, restored and
    //     re-checkpointed under one common marker, produce byte-equal
    //     files (the snapshot serializes every f64 via to_bits, so file
    //     equality is bit-exactness of all float statistics).
    let (mut a, am) = MultiStreamDpd::resume(&builder, &oracle_ck).unwrap();
    let (mut b, bm) = MultiStreamDpd::resume(&builder, &crash_ck).unwrap();
    assert_eq!(am.samples, total);
    assert_eq!(bm.samples, total);
    let m = EpochMarker {
        wave: 1,
        samples: total,
        ordinal: 1,
    };
    a.checkpoint(dir.join("a.norm"), m).unwrap();
    b.checkpoint(dir.join("b.norm"), m).unwrap();
    assert_eq!(
        std::fs::read(dir.join("a.norm")).unwrap(),
        std::fs::read(dir.join("b.norm")).unwrap(),
        "final detector states differ bit-for-bit"
    );

    std::fs::remove_dir_all(&dir).ok();
}
