//! End-to-end crash/recovery harness for the durable ingest pipeline.
//!
//! The scenario the durability subsystem exists for, exercised with real
//! processes and a real `SIGKILL`:
//!
//! 1. **Oracle** — `dpd checkpoint` runs to completion over a corpus of
//!    periodic streams; its stdout is the ground-truth event log.
//! 2. **Crash** — the same command runs throttled in a child process and
//!    is killed with `SIGKILL` mid-stream, after at least one checkpoint
//!    hit the disk. Nothing of the child survives except its files: the
//!    write-ahead pile (possibly with a torn tail) and the last snap.
//! 3. **Resume** — `dpd resume` restores the snap, replays the logged
//!    waves the checkpoint does not cover, and finishes the corpus.
//!
//! Acceptance: the resumed run's output after its header is *byte
//! identical* to the oracle's output after the matching `checkpoint #k`
//! line (per-stream event sequences, forecast rollups and the final
//! summary all included), and both runs end on bit-identical snap files
//! (`f64` state compared via its serialized `to_bits` form).

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_dpd")
}

fn run(args: &[&str]) -> String {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("spawn dpd binary");
    assert!(
        out.status.success(),
        "dpd {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("dpd output is utf-8")
}

/// Fresh scratch directory with a `src/` corpus of three periodic streams.
fn corpus(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dpd-crash-harness-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("src")).unwrap();
    for (name, period) in [("a", 3usize), ("b", 5), ("c", 7)] {
        run(&[
            "generate",
            "--kind",
            "periodic",
            "--period",
            &period.to_string(),
            "--len",
            "3000",
            "--out",
            dir.join("src")
                .join(format!("{name}.trace"))
                .to_str()
                .unwrap(),
        ]);
    }
    dir
}

/// The shared ingest flags: inline mode (the deterministic reference),
/// forecasting on so predictor state rides through the checkpoint too.
fn ingest_args(src: &Path, pile: &Path) -> Vec<String> {
    [
        "checkpoint",
        src.to_str().unwrap(),
        "--pile",
        pile.to_str().unwrap(),
        "--shards",
        "0",
        "--window",
        "16",
        "--chunk",
        "64",
        "--every",
        "8",
        "--forecast",
        "2",
    ]
    .map(String::from)
    .to_vec()
}

#[test]
fn kill_nine_mid_stream_then_resume_is_bit_identical() {
    let dir = corpus("kill9");
    let src = dir.join("src");

    // 1. Oracle: uninterrupted run.
    let oracle_pile = dir.join("oracle.pile");
    let oracle_args = ingest_args(&src, &oracle_pile);
    let oracle = run(&oracle_args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(oracle.contains("checkpoint #1 wave 8"), "{oracle}");
    assert!(oracle.contains("done: 9000 samples"), "{oracle}");

    // 2. Crash: same ingest, throttled so the kill lands mid-stream.
    let crash_pile = dir.join("crash.pile");
    let crash_snap = dir.join("crash.pile.snap");
    let mut crash_args = ingest_args(&src, &crash_pile);
    crash_args.extend(["--throttle-ms".into(), "25".into()]);
    let mut child = Command::new(bin())
        .args(&crash_args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn throttled ingest");
    // Kill as soon as the first checkpoint is durably on disk. 47 waves
    // at 25 ms each leave ~1 s of runway after checkpoint #1 (wave 8).
    let deadline = Instant::now() + Duration::from_secs(30);
    while !crash_snap.exists() {
        assert!(
            Instant::now() < deadline,
            "no checkpoint appeared before the deadline"
        );
        if let Ok(Some(status)) = child.try_wait() {
            panic!("ingest finished before it could be killed: {status}");
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL the ingest");
    let status = child.wait().unwrap();
    assert!(!status.success(), "child was killed, not finished");

    // 3. Resume from whatever the crash left behind.
    let mut resume_args = ingest_args(&src, &crash_pile);
    resume_args[0] = "resume".into();
    let resumed = run(&resume_args.iter().map(String::as_str).collect::<Vec<_>>());

    // The header names the checkpoint the run restarted from; the oracle
    // printed the very same line when it took that checkpoint.
    let header = resumed.lines().next().expect("resume printed a header");
    let rest = &resumed[header.len() + 1..];
    let tail = header
        .strip_prefix("resumed from checkpoint #")
        .unwrap_or_else(|| panic!("unexpected resume header: {header}"));
    let (ordinal, tail) = tail.split_once(" at wave ").unwrap();
    let (wave, samples) = tail.split_once(", samples ").unwrap();
    let anchor = format!("checkpoint #{ordinal} wave {wave} samples {samples}\n");
    let pos = oracle
        .find(&anchor)
        .unwrap_or_else(|| panic!("oracle never took {anchor:?}"))
        + anchor.len();

    // Byte-identical event suffix: same per-stream events in the same
    // order, same later checkpoint lines, same close flushes and summary.
    assert_eq!(
        &oracle[pos..],
        rest,
        "resumed run diverges from the uninterrupted oracle"
    );

    // And the final durable states agree bit-for-bit: the snapshot
    // encoding serializes every f64 via to_bits, so file equality is
    // bit-exactness of all float statistics too.
    assert_eq!(
        std::fs::read(dir.join("oracle.pile.snap")).unwrap(),
        std::fs::read(&crash_snap).unwrap(),
        "final snap files differ"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// Crash-safety of the checkpoint file itself: a torn snap write must
/// never eclipse the previous good checkpoint. The atomic write goes to
/// `<snap>.tmp` first, so a stray torn temp file next to a good snap is
/// exactly the post-crash disk state — resume must ignore it.
#[test]
fn torn_snap_tmp_does_not_break_resume() {
    let dir = corpus("torn");
    let src = dir.join("src");
    let pile = dir.join("events.pile");
    let args = ingest_args(&src, &pile);
    run(&args.iter().map(String::as_str).collect::<Vec<_>>());

    let snap = dir.join("events.pile.snap");
    let good = std::fs::read(&snap).unwrap();
    // A torn in-flight replacement: half the bytes, at the tmp path.
    std::fs::write(snap.with_extension("snap.tmp"), &good[..good.len() / 2]).unwrap();

    let mut resume_args = args.clone();
    resume_args[0] = "resume".into();
    let resumed = run(&resume_args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(resumed.contains("done: 9000 samples"), "{resumed}");

    std::fs::remove_dir_all(&dir).ok();
}
