//! Golden-file CLI regression tests.
//!
//! Small committed fixtures (`tests/fixtures/traces/` at the workspace
//! root: one text trace, one multi-stream DTB container) are replayed
//! through `dpd multistream`, `dpd convert` and `dpd predict`, and the
//! *exact* stdout is compared against committed golden files
//! (`tests/fixtures/golden/`). Every command under test is deterministic:
//! stable stream ordering, inline (shards 0) replay, `--timing none`.
//!
//! To regenerate fixtures and goldens after an intentional output change:
//!
//! ```text
//! DPD_BLESS=1 cargo test -p dpd-cli --test golden_cli
//! ```
//!
//! then commit the updated files (and review the diff — that diff *is*
//! the user-visible behavior change).

use dpd_cli::cmd::dispatch;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

fn fixtures_dir() -> PathBuf {
    workspace_root().join("tests/fixtures")
}

fn bless() -> bool {
    std::env::var("DPD_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

/// Create the committed trace fixtures (bless mode only).
fn write_trace_fixtures(traces: &Path) {
    std::fs::create_dir_all(traces).unwrap();
    // Text fixture: the injected-phase-change corpus (periods 3, 7, 4
    // over disjoint alphabets) — exercises locks, invalidation, relocks.
    dispatch(&argv(&format!(
        "generate --kind phases --period 3 --len 600 --out {}",
        traces.join("single.trace").display()
    )))
    .unwrap();
    // DTB fixture: one container holding three periodic streams.
    let file = std::fs::File::create(traces.join("streams.dtb")).unwrap();
    let mut w = dpd_trace::dtb::DtbWriter::new(file).unwrap();
    for (id, (name, period)) in [("alpha", 3usize), ("beta", 5), ("gamma", 7)]
        .iter()
        .enumerate()
    {
        let values: Vec<i64> = (0..400).map(|i| 0x2000 + (i % period) as i64).collect();
        w.declare_events(id as u64, name).unwrap();
        w.push_events(id as u64, &values).unwrap();
    }
    w.finish().unwrap();
    // Standing-query spec fixture: one of each spec kind, exercising the
    // full text grammar including comments and blank lines. Lives beside
    // the traces dir, not inside it — `multistream DIR` replays every
    // file under DIR as a trace.
    std::fs::write(
        traces.parent().unwrap().join("queries.spec"),
        "# committed standing-query fixture (docs/QUERIES.md grammar)\n\
         period-in 3 5\n\
         lock-lost-within 64\n\
         \n\
         confidence-at-least 0.5\n\
         period-join 2\n",
    )
    .unwrap();
}

/// Run one command and compare (or bless) its stdout against a golden.
fn check_golden(name: &str, cmd: &str) {
    let out = dispatch(&argv(cmd)).unwrap_or_else(|e| panic!("{cmd}: {e}"));
    check_golden_text(name, &out);
}

/// Compare (or bless) already-captured stdout against a golden.
fn check_golden_text(name: &str, out: &str) {
    let golden = fixtures_dir().join("golden").join(name);
    if bless() {
        std::fs::create_dir_all(golden.parent().unwrap()).unwrap();
        std::fs::write(&golden, out).unwrap();
        return;
    }
    let expect = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\n(run DPD_BLESS=1 cargo test -p dpd-cli --test golden_cli)",
            golden.display()
        )
    });
    assert_eq!(
        out, expect,
        "stdout behind golden {name} changed; if intentional, re-bless and commit"
    );
}

#[test]
fn golden_cli_outputs_are_stable() {
    let traces = fixtures_dir().join("traces");
    if bless() {
        write_trace_fixtures(&traces);
    }
    let single = traces.join("single.trace");
    let dtb = traces.join("streams.dtb");
    assert!(
        single.is_file() && dtb.is_file(),
        "trace fixtures missing (run DPD_BLESS=1 cargo test -p dpd-cli --test golden_cli)"
    );

    // Scratch outputs for convert. The --out path appears verbatim in the
    // command's stdout, so it must be byte-identical on every machine: a
    // fixed path *relative to the test cwd* (cargo runs integration tests
    // from the package root, crates/cli).
    let scratch = PathBuf::from("../../target/golden-scratch");
    std::fs::create_dir_all(&scratch).unwrap();

    // multistream: inline (deterministic event order), no wall-clock.
    check_golden(
        "multistream.txt",
        &format!(
            "multistream {} --shards 0 --window 16 --chunk 64 --timing none",
            traces.display()
        ),
    );

    // convert: text -> DTB and DTB -> DTB (id-preserving transcode).
    check_golden(
        "convert_text_to_dtb.txt",
        &format!(
            "convert {} --to dtb --out {}",
            single.display(),
            scratch.join("single.dtb").display()
        ),
    );
    check_golden(
        "convert_dtb_to_dtb.txt",
        &format!(
            "convert {} --to dtb --out {}",
            dtb.display(),
            scratch.join("streams.copy.dtb").display()
        ),
    );

    // predict: horizon-1 and horizon-4 replays of both fixture shapes.
    check_golden(
        "predict_single_h1.txt",
        &format!("predict {} --window 16 --horizon 1", single.display()),
    );
    check_golden(
        "predict_single_h4.txt",
        &format!("predict {} --window 16 --horizon 4", single.display()),
    );
    check_golden(
        "predict_dtb_h1.txt",
        &format!("predict {} --window 16 --horizon 1", dtb.display()),
    );

    // query: the standing-query delta log over both fixture shapes. The
    // replay is inline and single-threaded, so the delta log — every
    // Enter/Exit with its sequence stamp — is deterministic and
    // golden-able byte-for-byte.
    let spec = fixtures_dir().join("queries.spec");
    assert!(
        spec.is_file(),
        "queries.spec fixture missing (run DPD_BLESS=1 cargo test -p dpd-cli --test golden_cli)"
    );
    check_golden(
        "query_dtb.txt",
        &format!(
            "query {} --spec {} --window 16 --chunk 64 --horizon 1",
            dtb.display(),
            spec.display()
        ),
    );
    check_golden(
        "query_single_evict.txt",
        &format!(
            "query {} --spec {} --window 16 --horizon 1 --evict-after 200",
            single.display(),
            spec.display()
        ),
    );

    // The transcodes themselves must be byte-stable too: converting the
    // committed DTB container again reproduces it bit-for-bit.
    if !bless() {
        let copy = std::fs::read(scratch.join("streams.copy.dtb")).unwrap();
        let original = std::fs::read(&dtb).unwrap();
        assert_eq!(copy, original, "DTB -> DTB transcode is not canonical");
    }
}

/// The wire path is golden-tested too: `serve --help`, plus a loopback
/// serve + loadgen smoke over the committed DTB fixture. Both sides run
/// with `--timing none`, the loadgen partitions streams deterministically
/// and the server sorts its event lines by stream id, so both stdouts
/// are byte-stable for any connection interleaving.
#[test]
fn golden_serve_outputs_are_stable() {
    check_golden("serve_help.txt", "serve --help");

    let dtb = fixtures_dir().join("traces").join("streams.dtb");
    assert!(
        dtb.is_file(),
        "trace fixtures missing (run DPD_BLESS=1 cargo test -p dpd-cli --test golden_cli)"
    );
    let scratch = PathBuf::from("../../target/golden-scratch");
    std::fs::create_dir_all(&scratch).unwrap();
    let port_file = scratch.join("serve_smoke.port");
    std::fs::remove_file(&port_file).ok();

    let (serve_out, loadgen_out) = dpd_cli::netcmd::loopback_smoke(
        &argv(&format!(
            "serve --accept 2 --window 16 --port-file {} --timing none",
            port_file.display()
        )),
        &argv(&format!(
            "loadgen {} --conns 2 --chunk 64 --fragment bytes:997 --port-file {} --timing none",
            dtb.display(),
            port_file.display()
        )),
    );
    check_golden_text("serve_smoke_serve.txt", &serve_out);
    check_golden_text("serve_smoke_loadgen.txt", &loadgen_out);
}

/// The observability plane is golden-tested end to end: `stats --help`,
/// plus a live `dpd stats` scrape of a serving `--metrics` endpoint.
/// Every `dpd_net_*` and `dpd_shard_*` series is deterministic once the
/// server settles (replay totals, frame shapes and detection counts
/// depend only on the committed fixture), so the scrape rendering is
/// byte-stable; only the ingest-timing histogram is wall-clock-shaped
/// and is excluded by the family filters.
#[test]
fn golden_stats_scrape_is_stable() {
    check_golden("stats_help.txt", "stats --help");

    let dtb = fixtures_dir().join("traces").join("streams.dtb");
    assert!(
        dtb.is_file(),
        "trace fixtures missing (run DPD_BLESS=1 cargo test -p dpd-cli --test golden_cli)"
    );
    let scratch = PathBuf::from("../../target/golden-scratch");
    std::fs::create_dir_all(&scratch).unwrap();
    let port_file = scratch.join("stats_smoke.port");
    let metrics_port_file = scratch.join("stats_smoke.metrics-port");
    std::fs::remove_file(&port_file).ok();
    std::fs::remove_file(&metrics_port_file).ok();

    let serve_args = argv(&format!(
        "serve --accept 3 --window 16 --port-file {} --metrics 127.0.0.1:0 \
         --metrics-port-file {} --timing none",
        port_file.display(),
        metrics_port_file.display()
    ));
    let server = std::thread::spawn(move || dispatch(&serve_args));

    // A holder connection keeps the server from draining while we
    // scrape; it is accepted first so the settled counters are fixed.
    let addr = {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                let addr = text.trim().to_string();
                if !addr.is_empty() {
                    break addr;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "serve port file never appeared"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    };
    let holder = std::net::TcpStream::connect(&addr).unwrap();
    {
        use std::io::Read as _;
        let mut hello = [0u8; 6];
        (&holder).read_exact(&mut hello).unwrap();
    }
    let loadgen_out = dispatch(&argv(&format!(
        "loadgen {} --conns 2 --chunk 64 --port-file {} --timing none",
        dtb.display(),
        port_file.display()
    )))
    .unwrap();
    assert!(loadgen_out.contains("acked 1200"), "{loadgen_out}");

    // Wait for the server to settle (both loadgen closes fully counted),
    // then take the goldens through the real `dpd stats` scraper.
    let maddr = std::fs::read_to_string(&metrics_port_file)
        .unwrap()
        .trim()
        .to_string();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let out = dispatch(&argv(&format!("stats {maddr}"))).unwrap();
        if out.contains("dpd_net_clean_closes_total 2")
            && out.contains("dpd_net_connections_open 1")
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never settled:\n{out}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let net = dispatch(&argv(&format!("stats {maddr} --filter dpd_net_"))).unwrap();
    check_golden_text("stats_scrape_net.txt", &net);
    let shard = dispatch(&argv(&format!("stats {maddr} --filter dpd_shard_"))).unwrap();
    check_golden_text("stats_scrape_shard.txt", &shard);

    drop(holder);
    let serve_out = server.join().unwrap().unwrap();
    assert!(
        serve_out.contains("served 3 connection(s): 3 clean"),
        "{serve_out}"
    );
}

/// The convert stdout golden embeds absolute scratch paths only under
/// `target/`; make sure the goldens themselves never leak a temp dir.
#[test]
fn goldens_contain_no_volatile_paths() {
    if bless() {
        return;
    }
    let golden_dir = fixtures_dir().join("golden");
    for entry in std::fs::read_dir(&golden_dir).unwrap() {
        let path = entry.unwrap().path();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            !text.contains("/tmp/"),
            "{}: golden references a temp path",
            path.display()
        );
    }
}
