//! The interposition dispatcher.
//!
//! [`Interposer`] is the safe stand-in for DITools' dynamic-linkage
//! rewriting: callers invoke their encapsulated loop functions *through* it
//! ([`Interposer::intercept`]); the interposer fires every attached
//! [`CallObserver`] with the function's address before (and after) the body
//! runs — the `(1) DI_event → (2) DPD → (3) SelfAnalyzer` chain of the
//! paper's Figure 6 hangs off these hooks.

use crate::hook::CallObserver;
use crate::registry::{FnAddr, Registry};

/// Dispatches intercepted calls to observers and then to the real callee.
///
/// # Examples
/// ```
/// use ditools::dispatch::Interposer;
/// use ditools::hook::RecordingObserver;
/// use ditools::registry::Registry;
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let mut ip = Interposer::new(Registry::new());
/// let recorder = Rc::new(RefCell::new(RecordingObserver::new()));
/// ip.attach(Box::new(Rc::clone(&recorder)));
///
/// let loop_fn = ip.register("omp_parallel_do_1");
/// let result = ip.intercept(loop_fn, 0, || 40 + 2); // runs the "loop"
/// assert_eq!(result, 42);
/// assert_eq!(recorder.borrow().address_stream(), vec![loop_fn.raw()]);
/// ```
pub struct Interposer {
    registry: Registry,
    observers: Vec<Box<dyn CallObserver>>,
    intercepted: u64,
}

impl Interposer {
    /// Interposer over an existing registry.
    pub fn new(registry: Registry) -> Self {
        Interposer {
            registry,
            observers: Vec::new(),
            intercepted: 0,
        }
    }

    /// Register a function in the underlying registry.
    pub fn register(&mut self, name: impl Into<String>) -> FnAddr {
        self.registry.register(name)
    }

    /// Attach an observer; observers fire in attachment order.
    pub fn attach(&mut self, observer: Box<dyn CallObserver>) {
        self.observers.push(observer);
    }

    /// The wrapped registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Total calls intercepted so far.
    pub fn intercepted(&self) -> u64 {
        self.intercepted
    }

    /// Intercept a call to `addr` at time `t_ns`: fire pre-call hooks, run
    /// `body`, fire post-call hooks, and return the body's value.
    pub fn intercept<R>(&mut self, addr: FnAddr, t_ns: u64, body: impl FnOnce() -> R) -> R {
        self.intercepted += 1;
        for obs in &mut self.observers {
            obs.on_call(addr, t_ns);
        }
        let result = body();
        for obs in &mut self.observers {
            obs.on_return(addr, t_ns);
        }
        result
    }

    /// Intercept a call where the body also needs to report its completion
    /// time (e.g. after advancing a virtual clock): `body` returns
    /// `(value, end_t_ns)` and the post-call hooks fire with `end_t_ns`.
    pub fn intercept_timed<R>(
        &mut self,
        addr: FnAddr,
        t_ns: u64,
        body: impl FnOnce() -> (R, u64),
    ) -> R {
        self.intercepted += 1;
        for obs in &mut self.observers {
            obs.on_call(addr, t_ns);
        }
        let (result, end_ns) = body();
        for obs in &mut self.observers {
            obs.on_return(addr, end_ns);
        }
        result
    }

    /// Detach all observers, returning them (used to read results out of
    /// recording observers at the end of a run).
    pub fn take_observers(&mut self) -> Vec<Box<dyn CallObserver>> {
        std::mem::take(&mut self.observers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::RecordingObserver;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Observer that shares its log through an Rc so tests can inspect it
    /// while the interposer owns the box.
    struct SharedRecorder(Rc<RefCell<Vec<(i64, u64, bool)>>>);
    impl CallObserver for SharedRecorder {
        fn on_call(&mut self, addr: FnAddr, t: u64) {
            self.0.borrow_mut().push((addr.raw(), t, true));
        }
        fn on_return(&mut self, addr: FnAddr, t: u64) {
            self.0.borrow_mut().push((addr.raw(), t, false));
        }
    }

    #[test]
    fn intercept_fires_hooks_and_runs_body() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut ip = Interposer::new(Registry::new());
        let f = ip.register("loop_a");
        ip.attach(Box::new(SharedRecorder(Rc::clone(&log))));
        let out = ip.intercept(f, 42, || 99);
        assert_eq!(out, 99);
        let log = log.borrow();
        assert_eq!(*log, vec![(f.raw(), 42, true), (f.raw(), 42, false)]);
        assert_eq!(ip.intercepted(), 1);
    }

    #[test]
    fn observers_fire_in_order() {
        struct Tagger(Rc<RefCell<Vec<u8>>>, u8);
        impl CallObserver for Tagger {
            fn on_call(&mut self, _: FnAddr, _: u64) {
                self.0.borrow_mut().push(self.1);
            }
        }
        let tags = Rc::new(RefCell::new(Vec::new()));
        let mut ip = Interposer::new(Registry::new());
        let f = ip.register("f");
        ip.attach(Box::new(Tagger(Rc::clone(&tags), 1)));
        ip.attach(Box::new(Tagger(Rc::clone(&tags), 2)));
        ip.intercept(f, 0, || ());
        assert_eq!(*tags.borrow(), vec![1, 2]);
    }

    #[test]
    fn timed_intercept_reports_end_time() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut ip = Interposer::new(Registry::new());
        let f = ip.register("loop_a");
        ip.attach(Box::new(SharedRecorder(Rc::clone(&log))));
        let v = ip.intercept_timed(f, 100, || ("done", 250u64));
        assert_eq!(v, "done");
        let log = log.borrow();
        assert_eq!(*log, vec![(f.raw(), 100, true), (f.raw(), 250, false)]);
    }

    #[test]
    fn take_observers_returns_recorders() {
        let mut ip = Interposer::new(Registry::new());
        let f = ip.register("f");
        ip.attach(Box::new(RecordingObserver::new()));
        ip.intercept(f, 1, || ());
        ip.intercept(f, 2, || ());
        let obs = ip.take_observers();
        assert_eq!(obs.len(), 1);
        // After taking, intercepts proceed without hooks.
        ip.intercept(f, 3, || ());
        assert_eq!(ip.intercepted(), 3);
    }

    #[test]
    fn body_value_passthrough_with_no_observers() {
        let mut ip = Interposer::new(Registry::new());
        let f = ip.register("f");
        assert_eq!(ip.intercept(f, 0, || vec![1, 2, 3]).len(), 3);
    }
}
