//! Event hooks fired by the interposition layer.
//!
//! The paper's Figure 6 shows `DI_event(., address, .)` running *before* the
//! intercepted call proceeds; inside it the DPD is consulted and, on a
//! period start, the SelfAnalyzer is invoked. [`CallObserver`] is that hook
//! point; any number of observers can be attached to an
//! [`crate::dispatch::Interposer`].

use crate::registry::FnAddr;

/// Observer invoked on every intercepted call, before the callee runs.
pub trait CallObserver {
    /// `addr` identifies the intercepted function; `t_ns` is the timestamp
    /// supplied by the runtime driving the interposer (virtual or wall).
    fn on_call(&mut self, addr: FnAddr, t_ns: u64);

    /// Invoked after the callee returns, with the same timestamp source.
    /// Default: ignore (the paper's pipeline only needs pre-call events).
    fn on_return(&mut self, addr: FnAddr, t_ns: u64) {
        let _ = (addr, t_ns);
    }
}

/// Shared observers: a `Rc<RefCell<T>>` observes through interior
/// mutability, letting the caller keep a handle to query the observer while
/// the interposer owns a clone (the SelfAnalyzer integration uses this).
impl<T: CallObserver> CallObserver for std::rc::Rc<std::cell::RefCell<T>> {
    fn on_call(&mut self, addr: FnAddr, t_ns: u64) {
        self.borrow_mut().on_call(addr, t_ns);
    }

    fn on_return(&mut self, addr: FnAddr, t_ns: u64) {
        self.borrow_mut().on_return(addr, t_ns);
    }
}

/// Thread-safe shared observers for multi-threaded runtimes.
impl<T: CallObserver> CallObserver for std::sync::Arc<std::sync::Mutex<T>> {
    fn on_call(&mut self, addr: FnAddr, t_ns: u64) {
        self.lock()
            .expect("observer mutex poisoned")
            .on_call(addr, t_ns);
    }

    fn on_return(&mut self, addr: FnAddr, t_ns: u64) {
        self.lock()
            .expect("observer mutex poisoned")
            .on_return(addr, t_ns);
    }
}

/// An observer that records the intercepted address stream — the exact data
/// series the paper passes to the DPD (§5.1) and plots in Figure 7.
#[derive(Debug, Clone, Default)]
pub struct RecordingObserver {
    calls: Vec<(i64, u64)>,
    returns: Vec<(i64, u64)>,
}

impl RecordingObserver {
    /// New, empty recorder.
    pub fn new() -> Self {
        RecordingObserver::default()
    }

    /// The address stream of intercepted calls, in order.
    pub fn address_stream(&self) -> Vec<i64> {
        self.calls.iter().map(|&(a, _)| a).collect()
    }

    /// `(address, t_ns)` for every intercepted call.
    pub fn calls(&self) -> &[(i64, u64)] {
        &self.calls
    }

    /// `(address, t_ns)` for every observed return.
    pub fn returns(&self) -> &[(i64, u64)] {
        &self.returns
    }
}

impl CallObserver for RecordingObserver {
    fn on_call(&mut self, addr: FnAddr, t_ns: u64) {
        self.calls.push((addr.raw(), t_ns));
    }

    fn on_return(&mut self, addr: FnAddr, t_ns: u64) {
        self.returns.push((addr.raw(), t_ns));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_captures_calls_and_returns() {
        let mut r = RecordingObserver::new();
        r.on_call(FnAddr(0x10), 100);
        r.on_return(FnAddr(0x10), 150);
        r.on_call(FnAddr(0x20), 200);
        assert_eq!(r.address_stream(), vec![0x10, 0x20]);
        assert_eq!(r.calls(), &[(0x10, 100), (0x20, 200)]);
        assert_eq!(r.returns(), &[(0x10, 150)]);
    }

    #[test]
    fn default_on_return_is_noop() {
        struct OnlyCalls(usize);
        impl CallObserver for OnlyCalls {
            fn on_call(&mut self, _: FnAddr, _: u64) {
                self.0 += 1;
            }
        }
        let mut o = OnlyCalls(0);
        o.on_call(FnAddr(1), 0);
        o.on_return(FnAddr(1), 0);
        assert_eq!(o.0, 1);
    }
}
