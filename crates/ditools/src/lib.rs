//! # ditools — dynamic interposition substrate
//!
//! The paper applies the DPD to applications *without source code* by using
//! DITools \[Serra2000\] to intercept "the calls to encapsulated parallel
//! loops" (§5.1): each parallel loop is identified by the address of the
//! compiler-generated function that encapsulates it, and the interposition
//! layer fires a `DI_event` before the call proceeds (Fig. 6).
//!
//! The original DITools rewrites ELF dynamic-linkage tables. This crate
//! provides the same *observable* behaviour safely: loop functions register
//! with the [`registry::Registry`] and are invoked through the
//! [`dispatch::Interposer`], which fires [`hook::CallObserver`] callbacks
//! with the function's stable [`registry::FnAddr`] before running the body —
//! producing exactly the address stream the paper feeds to the DPD.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod dispatch;
pub mod hook;
pub mod registry;

pub use dispatch::Interposer;
pub use hook::{CallObserver, RecordingObserver};
pub use registry::{FnAddr, Registry};
