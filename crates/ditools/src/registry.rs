//! Registry of interposable functions.
//!
//! Assigns each registered function a stable, realistic-looking code address
//! (64-byte aligned, ascending from a text-segment-like base) that serves as
//! its identity in the event stream — "each parallel loop is identified by
//! the address of the function that encapsulates it" (paper §5.1).

/// The address identifying an encapsulated parallel-loop function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FnAddr(pub i64);

impl FnAddr {
    /// The raw address value — what gets passed to `DPD(long sample, ...)`.
    #[inline]
    pub fn raw(&self) -> i64 {
        self.0
    }
}

impl std::fmt::Display for FnAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Base of the synthetic text segment.
const TEXT_BASE: i64 = 0x0040_0000;
/// Spacing between consecutive functions (cache-line aligned like real code).
const FN_STRIDE: i64 = 0x40;

/// Maps function names to stable synthetic addresses.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    names: Vec<String>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a function, returning its address. Registering the same name
    /// again returns the existing address (like a PLT: one slot per symbol).
    pub fn register(&mut self, name: impl Into<String>) -> FnAddr {
        let name = name.into();
        if let Some(idx) = self.names.iter().position(|n| *n == name) {
            return FnAddr(TEXT_BASE + idx as i64 * FN_STRIDE);
        }
        self.names.push(name);
        FnAddr(TEXT_BASE + (self.names.len() as i64 - 1) * FN_STRIDE)
    }

    /// Look up the name behind an address.
    pub fn name_of(&self, addr: FnAddr) -> Option<&str> {
        let off = addr.0 - TEXT_BASE;
        if off < 0 || off % FN_STRIDE != 0 {
            return None;
        }
        self.names
            .get((off / FN_STRIDE) as usize)
            .map(|s| s.as_str())
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All registered addresses, registration order.
    pub fn addresses(&self) -> Vec<FnAddr> {
        (0..self.names.len())
            .map(|i| FnAddr(TEXT_BASE + i as i64 * FN_STRIDE))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_are_stable_and_distinct() {
        let mut r = Registry::new();
        let a = r.register("loop_1");
        let b = r.register("loop_2");
        assert_ne!(a, b);
        assert_eq!(r.register("loop_1"), a, "re-registration is idempotent");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn addresses_look_like_code() {
        let mut r = Registry::new();
        let a = r.register("f");
        assert!(a.raw() >= TEXT_BASE);
        assert_eq!(a.raw() % FN_STRIDE, 0);
    }

    #[test]
    fn name_lookup() {
        let mut r = Registry::new();
        let a = r.register("omp_parallel_do_1");
        assert_eq!(r.name_of(a), Some("omp_parallel_do_1"));
        assert_eq!(r.name_of(FnAddr(0x1)), None);
        assert_eq!(r.name_of(FnAddr(TEXT_BASE + 999 * FN_STRIDE)), None);
    }

    #[test]
    fn addresses_listing_matches_registration_order() {
        let mut r = Registry::new();
        let a = r.register("a");
        let b = r.register("b");
        assert_eq!(r.addresses(), vec![a, b]);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", FnAddr(0x400040)), "0x400040");
    }

    #[test]
    fn empty_registry() {
        let r = Registry::new();
        assert!(r.is_empty());
        assert!(r.addresses().is_empty());
    }
}
