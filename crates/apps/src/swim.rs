//! swim (SPECfp95 102): shallow-water equation solver.
//!
//! The reference input runs 900 time steps; each step executes six parallel
//! regions (the CALC1/CALC2/CALC3 stencil trio plus three periodic-boundary
//! and smoothing sweeps), preceded by two initialization loops. Table 2:
//! data stream length 5402 (= 2 + 900 x 6), periodicity **6**.

use crate::app::{App, AppStructure, LoopCall};

/// The swim workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Swim;

/// Main-loop iterations in the (ref) input.
pub const ITERATIONS: usize = 900;

impl App for Swim {
    fn name(&self) -> &'static str {
        "swim"
    }

    fn expected_periods(&self) -> Vec<usize> {
        vec![6]
    }

    fn expected_stream_len(&self) -> usize {
        5402
    }

    fn structure(&self) -> AppStructure {
        // 135.17 s sequential over 5402 calls ≈ 25 ms per call (Table 3).
        AppStructure {
            name: "swim",
            prologue: vec![
                LoopCall::new("swim_inital_grid", 512, 48_900),
                LoopCall::new("swim_inital_vel", 512, 48_900),
            ],
            iteration: vec![
                LoopCall::with_serial("swim_calc1", 512, 48_900, 0.01),
                LoopCall::with_serial("swim_calc2", 512, 48_900, 0.01),
                LoopCall::with_serial("swim_calc3", 512, 48_900, 0.03),
                LoopCall::with_serial("swim_bound_uv", 512, 48_900, 0.05),
                LoopCall::with_serial("swim_bound_pz", 512, 48_900, 0.05),
                LoopCall::with_serial("swim_smooth", 512, 48_900, 0.02),
            ],
            iterations: ITERATIONS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::RunConfig;

    #[test]
    fn stream_length_matches_table2() {
        assert_eq!(Swim.structure().stream_len(), 5402);
    }

    #[test]
    fn address_stream_is_period_6_after_prologue() {
        let run = Swim.run(&RunConfig::default());
        assert_eq!(run.addresses.len(), 5402);
        assert!(run.addresses.tail_is_periodic(6, 5000));
        // 6 iteration loops + 2 prologue loops
        assert_eq!(run.addresses.alphabet().len(), 8);
    }

    #[test]
    fn sequential_time_near_paper() {
        let run = Swim.run(&RunConfig {
            cpus: 1,
            ..RunConfig::default()
        });
        let secs = run.elapsed_ns as f64 / 1e9;
        assert!((secs - 135.17).abs() < 5.0, "sequential time {secs}s");
    }
}
