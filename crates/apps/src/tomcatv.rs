//! tomcatv (SPECfp95 101): vectorized mesh generation.
//!
//! The reference input runs 750 time steps; each step executes five parallel
//! regions (residual computation, two tridiagonal solves along mesh lines,
//! and two mesh-update sweeps). Table 2: data stream length 3750,
//! periodicity **5** — the only application with no prologue loops.

use crate::app::{App, AppStructure, LoopCall};

/// The tomcatv workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tomcatv;

/// Main-loop iterations in the (ref) input.
pub const ITERATIONS: usize = 750;

impl App for Tomcatv {
    fn name(&self) -> &'static str {
        "tomcatv"
    }

    fn expected_periods(&self) -> Vec<usize> {
        vec![5]
    }

    fn expected_stream_len(&self) -> usize {
        3750
    }

    fn structure(&self) -> AppStructure {
        // Per-call work tuned so the sequential execution time lands near
        // the paper's Table 3 ApExTime for tomcatv (136.33 s over 3750
        // calls ≈ 36.4 ms per loop call).
        AppStructure {
            name: "tomcatv",
            prologue: vec![],
            iteration: vec![
                LoopCall::with_serial("tomcatv_residual", 256, 142_000, 0.02),
                LoopCall::with_serial("tomcatv_tridiag_x", 256, 142_000, 0.08),
                LoopCall::with_serial("tomcatv_tridiag_y", 256, 142_000, 0.08),
                LoopCall::with_serial("tomcatv_update_rx", 256, 142_000, 0.02),
                LoopCall::with_serial("tomcatv_update_ry", 256, 142_000, 0.02),
            ],
            iterations: ITERATIONS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::RunConfig;

    #[test]
    fn stream_length_matches_table2() {
        assert_eq!(Tomcatv.structure().stream_len(), 3750);
        assert_eq!(Tomcatv.expected_stream_len(), 3750);
    }

    #[test]
    fn address_stream_is_period_5() {
        let run = Tomcatv.run(&RunConfig::default());
        assert_eq!(run.addresses.len(), 3750);
        assert!(run.addresses.tail_is_periodic(5, 3000));
        assert_eq!(run.addresses.alphabet().len(), 5);
    }

    #[test]
    fn sequential_time_near_paper() {
        let run = Tomcatv.run(&RunConfig {
            cpus: 1,
            ..RunConfig::default()
        });
        let secs = run.elapsed_ns as f64 / 1e9;
        assert!((secs - 136.33).abs() < 5.0, "sequential time {secs}s");
    }
}
