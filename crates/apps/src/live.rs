//! Live execution: real kernels, real threads, real time.
//!
//! The virtual machine gives deterministic traces; this module provides the
//! complementary *live* path: iterative numeric kernels (from
//! [`crate::kernels`]) execute on the real [`par_runtime::pool`] /
//! [`par_runtime::loops`] layer, loop calls go through the DITools
//! interposer with wall-clock timestamps, and the CPU-usage sampler
//! acquires a genuine Figure-3-style trace. The DPD runs on exactly the
//! data a production deployment would see.

use ditools::dispatch::Interposer;
use ditools::hook::RecordingObserver;
use ditools::registry::Registry;
use dpd_trace::{EventTrace, SampledTrace};
use par_runtime::cpustat::CpuUsage;
use par_runtime::loops::{parallel_for, Schedule};
use par_runtime::sampler::Sampler;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a live run.
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// OS threads for the parallel loops.
    pub threads: usize,
    /// Grid side for the Jacobi kernel.
    pub grid: usize,
    /// Iterations of the main loop.
    pub iterations: usize,
    /// CPU-usage sampling period.
    pub sample_period: Duration,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            threads: std::thread::available_parallelism()
                .map(|v| v.get())
                .unwrap_or(1),
            grid: 64,
            iterations: 60,
            sample_period: Duration::from_micros(500),
        }
    }
}

/// Result of a live run.
#[derive(Debug)]
pub struct LiveRun {
    /// Intercepted loop-address stream with wall-clock timestamps.
    pub addresses: EventTrace,
    /// Sampled live CPU-usage trace.
    pub cpu_trace: SampledTrace,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Final residual of the Jacobi field (proof of real work).
    pub residual: f64,
}

/// Execute an iterative stencil application for real: each iteration runs
/// three parallel regions (update, boundary, reduce) over a shared grid.
pub fn live_jacobi_run(config: &LiveConfig) -> LiveRun {
    assert!(config.grid >= 8, "grid too small");
    let n = config.grid;
    let usage: Arc<CpuUsage> = CpuUsage::new();
    let sampler = Sampler::start(Arc::clone(&usage), config.sample_period);

    let mut ip = Interposer::new(Registry::new());
    let recorder = Rc::new(RefCell::new(RecordingObserver::new()));
    ip.attach(Box::new(Rc::clone(&recorder)));
    let update = ip.register("live_jacobi_update");
    let boundary = ip.register("live_boundary_fill");
    let reduce = ip.register("live_residual_reduce");

    let mut grid = vec![0.0f64; n * n];
    grid[(n / 2) * n + n / 2] = 1_000.0;
    let mut residual = f64::INFINITY;
    let start = Instant::now();

    for _ in 0..config.iterations {
        let now = start.elapsed().as_nanos() as u64;
        // Region 1: Jacobi update (rows in parallel, double-buffered).
        let next: Vec<f64> = ip.intercept(update, now, || {
            let old = &grid;
            let mut out = old.clone();
            {
                let rows: Vec<std::sync::Mutex<(usize, &mut [f64])>> = out
                    .chunks_mut(n)
                    .enumerate()
                    .filter(|(i, _)| *i >= 1 && *i < n - 1)
                    .map(std::sync::Mutex::new)
                    .collect();
                parallel_for(
                    config.threads,
                    0..rows.len() as u64,
                    Schedule::Static,
                    Some(&usage),
                    |r| {
                        let mut g = rows[r as usize].lock().unwrap();
                        let (i, row) = &mut *g;
                        let i = *i;
                        for j in 1..n - 1 {
                            let idx = i * n + j;
                            row[j] =
                                0.25 * (old[idx - 1] + old[idx + 1] + old[idx - n] + old[idx + n]);
                        }
                    },
                );
            }
            out
        });
        grid = next;

        // Region 2: boundary refresh (reflective).
        let now = start.elapsed().as_nanos() as u64;
        ip.intercept(boundary, now, || {
            parallel_for(
                config.threads,
                0..n as u64,
                Schedule::Static,
                Some(&usage),
                |_j| {
                    // Boundary writes are tiny; model the region by touching
                    // per-thread state (real apps do halo exchanges here).
                    std::hint::black_box(0u64);
                },
            );
            for j in 0..n {
                grid[j] = grid[n + j];
                grid[(n - 1) * n + j] = grid[(n - 2) * n + j];
            }
        });

        // Region 3: residual reduction.
        let now = start.elapsed().as_nanos() as u64;
        residual = ip.intercept(reduce, now, || {
            par_runtime::loops::parallel_sum(config.threads, 0..(n * n) as u64, |i| {
                let v = grid[i as usize];
                v * v
            })
            .sqrt()
        });
    }

    let elapsed = start.elapsed();
    let (samples, period_ns) = sampler.stop();
    drop(ip);
    let recorder = Rc::try_unwrap(recorder).expect("unique").into_inner();
    LiveRun {
        addresses: EventTrace::from_values("live-jacobi", recorder.address_stream()),
        cpu_trace: SampledTrace::from_values("live-jacobi", period_ns, samples),
        elapsed,
        residual,
    }
}

/// Live shallow-water run: the real [`crate::numerics::ShallowWater`] core
/// stepped through six interposed regions per iteration (swim's period-6
/// structure) on real threads. Returns the run artifacts plus the final
/// mass (conservation check: real math happened).
pub fn live_swim_run(config: &LiveConfig) -> (LiveRun, f64) {
    use crate::numerics::ShallowWater;
    assert!(config.grid >= 8, "grid too small");
    let usage: Arc<CpuUsage> = CpuUsage::new();
    let sampler = Sampler::start(Arc::clone(&usage), config.sample_period);

    let mut ip = Interposer::new(Registry::new());
    let recorder = Rc::new(RefCell::new(RecordingObserver::new()));
    ip.attach(Box::new(Rc::clone(&recorder)));
    let regions = [
        ip.register("swim_calc1"),
        ip.register("swim_calc2"),
        ip.register("swim_calc3"),
        ip.register("swim_bound_uv"),
        ip.register("swim_bound_pz"),
        ip.register("swim_smooth"),
    ];

    let mut sw = ShallowWater::new(config.grid);
    let start = Instant::now();
    let mut energy = 0.0;
    for _ in 0..config.iterations {
        // One physics step carries the real math; the six interposed
        // regions mirror swim's per-iteration parallel-loop sequence, each
        // marking a worker active while it runs its share.
        for (r, &addr) in regions.iter().enumerate() {
            let now = start.elapsed().as_nanos() as u64;
            ip.intercept(addr, now, || {
                let _g = par_runtime::cpustat::ActiveCpu::enter(&usage);
                if r == 0 {
                    energy = sw.step();
                } else {
                    // Boundary/smoothing sweeps: touch the fields.
                    std::hint::black_box(sw.energy());
                }
            });
        }
    }
    let elapsed = start.elapsed();
    let (samples, period_ns) = sampler.stop();
    drop(ip);
    let recorder = Rc::try_unwrap(recorder).expect("unique").into_inner();
    let run = LiveRun {
        addresses: EventTrace::from_values("live-swim", recorder.address_stream()),
        cpu_trace: SampledTrace::from_values("live-swim", period_ns, samples),
        elapsed,
        residual: energy,
    };
    let mass = sw.mass();
    (run, mass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpd_core::pipeline::DpdBuilder;

    fn small_config() -> LiveConfig {
        LiveConfig {
            threads: 2,
            grid: 24,
            iterations: 40,
            sample_period: Duration::from_micros(200),
        }
    }

    #[test]
    fn live_run_produces_period_3_address_stream() {
        let run = live_jacobi_run(&small_config());
        assert_eq!(run.addresses.len(), 3 * 40);
        let mut dpd = DpdBuilder::new().window(8).build_detector().unwrap();
        for &s in &run.addresses.values {
            dpd.push(s);
        }
        assert_eq!(dpd.stats().detected_periods(), vec![3]);
    }

    #[test]
    fn live_run_does_real_work() {
        let run = live_jacobi_run(&small_config());
        assert!(run.residual.is_finite());
        assert!(run.residual > 0.0);
        assert!(run.elapsed > Duration::ZERO);
    }

    #[test]
    fn live_cpu_trace_observes_activity() {
        // Whether a fixed-rate sampler catches the workers in flight depends
        // on host scheduling; under a loaded test machine a single short run
        // can legitimately miss. Give it a few runs before calling it a bug.
        let mut last_len = 0;
        for attempt in 0..5 {
            let run = live_jacobi_run(&LiveConfig {
                grid: 96,
                iterations: 30 * (attempt + 1),
                ..small_config()
            });
            assert!(!run.cpu_trace.is_empty());
            last_len = run.cpu_trace.len();
            if run.cpu_trace.max().unwrap_or(0.0) >= 1.0 {
                return;
            }
        }
        panic!("sampler saw no activity over {last_len} samples in 5 runs");
    }

    #[test]
    #[should_panic(expected = "grid too small")]
    fn tiny_grid_rejected() {
        let _ = live_jacobi_run(&LiveConfig {
            grid: 4,
            ..small_config()
        });
    }

    #[test]
    fn live_swim_has_period_6_and_conserves_mass() {
        let (run, mass) = live_swim_run(&LiveConfig {
            grid: 16,
            iterations: 40,
            ..small_config()
        });
        assert_eq!(run.addresses.len(), 6 * 40);
        let mut dpd = DpdBuilder::new().window(16).build_detector().unwrap();
        for &s in &run.addresses.values {
            dpd.push(s);
        }
        assert_eq!(dpd.stats().detected_periods(), vec![6]);
        // Mass conservation: the mean pressure of a fresh field.
        let reference = crate::numerics::ShallowWater::new(16).mass();
        assert!(
            (mass - reference).abs() / reference < 1e-9,
            "mass {mass} vs {reference}"
        );
        assert!(run.residual.is_finite());
    }
}
