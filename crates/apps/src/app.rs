//! Application model and shared execution driver.
//!
//! Each paper application is described declaratively: a prologue of loop
//! calls (initialization), an iteration pattern (the body of the main
//! sequential loop, paper Fig. 5), and an iteration count. The [`Driver`]
//! executes that structure on the virtual machine *through the DITools
//! interposer*, so the produced address stream is exactly what the paper's
//! instrumentation observes.

use ditools::dispatch::Interposer;
use ditools::hook::RecordingObserver;
use ditools::registry::Registry;
use dpd_trace::{EventTrace, SampledTrace};
use par_runtime::machine::{LoopSpec, Machine, MachineConfig};
use selfanalyzer::SelfAnalyzer;
use std::cell::RefCell;
use std::rc::Rc;

/// One call to an encapsulated parallel loop.
#[derive(Debug, Clone, Copy)]
pub struct LoopCall {
    /// Symbol name of the encapsulated function (Fig. 5's
    /// `omp_parallel_do_N`). Identity in the address stream.
    pub name: &'static str,
    /// The work the loop performs, for the machine's cost model.
    pub spec: LoopSpec,
}

impl LoopCall {
    /// Convenience constructor.
    pub fn new(name: &'static str, iterations: u64, cost_per_iter_ns: u64) -> Self {
        LoopCall {
            name,
            spec: LoopSpec::parallel(iterations, cost_per_iter_ns),
        }
    }

    /// Loop with an inherent serial fraction.
    pub fn with_serial(
        name: &'static str,
        iterations: u64,
        cost_per_iter_ns: u64,
        serial_fraction: f64,
    ) -> Self {
        LoopCall {
            name,
            spec: LoopSpec {
                iterations,
                cost_per_iter_ns,
                serial_fraction,
            },
        }
    }
}

/// Declarative structure of an iterative application.
#[derive(Debug, Clone)]
pub struct AppStructure {
    /// Application name.
    pub name: &'static str,
    /// Loop calls executed once at startup.
    pub prologue: Vec<LoopCall>,
    /// Loop calls executed per iteration of the main sequential loop.
    pub iteration: Vec<LoopCall>,
    /// Number of main-loop iterations.
    pub iterations: usize,
}

impl AppStructure {
    /// Total loop-call events the structure will emit
    /// (the Table 2 "Data stream length").
    pub fn stream_len(&self) -> usize {
        self.prologue.len() + self.iteration.len() * self.iterations
    }
}

/// Run parameters.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// CPUs allocated to the application.
    pub cpus: usize,
    /// Virtual machine parameters.
    pub machine: MachineConfig,
    /// Attach a SelfAnalyzer (DPD window 512) to the interposition chain.
    pub with_analyzer: bool,
    /// Sampling period for the CPU-usage trace (1 ms in the paper).
    pub sample_period_ns: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            cpus: 16,
            machine: MachineConfig::default(),
            with_analyzer: false,
            sample_period_ns: 1_000_000,
        }
    }
}

/// Everything a run produced.
#[derive(Debug)]
pub struct AppRun {
    /// Application name.
    pub name: String,
    /// Intercepted loop-address stream (the DPD's equation-2 input).
    pub addresses: EventTrace,
    /// Sampled CPU-usage trace (the DPD's equation-1 input).
    pub cpu_trace: SampledTrace,
    /// Total virtual execution time.
    pub elapsed_ns: u64,
    /// The SelfAnalyzer state, when one was attached.
    pub analyzer: Option<SelfAnalyzer>,
}

/// An evaluation application.
pub trait App {
    /// Application name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// The periodicities Table 2 reports for this application.
    fn expected_periods(&self) -> Vec<usize>;

    /// The Table 2 data-stream length.
    fn expected_stream_len(&self) -> usize;

    /// The application's loop structure.
    fn structure(&self) -> AppStructure;

    /// Execute on a fresh virtual machine.
    fn run(&self, config: &RunConfig) -> AppRun {
        Driver::execute(&self.structure(), config)
    }
}

/// Shared execution engine.
pub struct Driver;

impl Driver {
    /// Execute `structure` under `config`: every loop call goes through the
    /// DITools interposer; the machine advances virtual time per the cost
    /// model; observers record the address stream and (optionally) drive the
    /// SelfAnalyzer.
    pub fn execute(structure: &AppStructure, config: &RunConfig) -> AppRun {
        let mut machine = Machine::new(config.machine);
        let mut interposer = Interposer::new(Registry::new());

        let recorder = Rc::new(RefCell::new(RecordingObserver::new()));
        interposer.attach(Box::new(Rc::clone(&recorder)));
        let analyzer = if config.with_analyzer {
            let sa = Rc::new(RefCell::new(SelfAnalyzer::new(512, config.cpus)));
            interposer.attach(Box::new(Rc::clone(&sa)));
            Some(sa)
        } else {
            None
        };

        let run_call = |ip: &mut Interposer, machine: &mut Machine, call: &LoopCall| {
            let addr = ip.register(call.name);
            let now = machine.now_ns();
            ip.intercept_timed(addr, now, || {
                let span = machine.run_loop(&call.spec, config.cpus);
                ((), span.end_ns)
            });
        };

        for call in &structure.prologue {
            run_call(&mut interposer, &mut machine, call);
        }
        for _ in 0..structure.iterations {
            for call in &structure.iteration {
                run_call(&mut interposer, &mut machine, call);
            }
        }

        let elapsed_ns = machine.now_ns();
        let cpu_trace = SampledTrace::from_values(
            structure.name,
            config.sample_period_ns,
            machine.sample_cpu_trace(config.sample_period_ns),
        );
        // Tear the observer chain down to recover the recorder/analyzer.
        drop(interposer);
        let recorder = Rc::try_unwrap(recorder)
            .expect("interposer dropped; recorder unique")
            .into_inner();
        let addresses = EventTrace::from_values(structure.name, recorder.address_stream());
        let analyzer = analyzer.map(|sa| {
            Rc::try_unwrap(sa)
                .expect("interposer dropped; analyzer unique")
                .into_inner()
        });

        AppRun {
            name: structure.name.to_string(),
            addresses,
            cpu_trace,
            elapsed_ns,
            analyzer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_structure() -> AppStructure {
        AppStructure {
            name: "tiny",
            prologue: vec![LoopCall::new("init", 64, 1_000)],
            iteration: vec![
                LoopCall::new("loop_a", 256, 1_000),
                LoopCall::new("loop_b", 256, 1_000),
                LoopCall::new("loop_c", 256, 1_000),
            ],
            iterations: 50,
        }
    }

    #[test]
    fn stream_len_accounting() {
        let s = tiny_structure();
        assert_eq!(s.stream_len(), 1 + 3 * 50);
    }

    #[test]
    fn driver_emits_expected_address_stream() {
        let run = Driver::execute(&tiny_structure(), &RunConfig::default());
        assert_eq!(run.addresses.len(), 151);
        // Period-3 after the prologue: values repeat with period 3.
        assert!(run.addresses.tail_is_periodic(3, 100));
        // Three distinct loop addresses plus the prologue one.
        assert_eq!(run.addresses.alphabet().len(), 4);
    }

    #[test]
    fn driver_advances_virtual_time() {
        let run = Driver::execute(&tiny_structure(), &RunConfig::default());
        assert!(run.elapsed_ns > 0);
        assert!(!run.cpu_trace.is_empty());
        assert!(run.cpu_trace.max().unwrap() >= 1.0);
    }

    #[test]
    fn fewer_cpus_take_longer() {
        let s = tiny_structure();
        let t16 = Driver::execute(&s, &RunConfig::default()).elapsed_ns;
        let t1 = Driver::execute(
            &s,
            &RunConfig {
                cpus: 1,
                ..RunConfig::default()
            },
        )
        .elapsed_ns;
        assert!(t1 > t16, "t1={t1} t16={t16}");
    }

    #[test]
    fn analyzer_attaches_and_discovers_region() {
        let run = Driver::execute(
            &tiny_structure(),
            &RunConfig {
                with_analyzer: true,
                ..RunConfig::default()
            },
        );
        let sa = run.analyzer.expect("analyzer requested");
        // DPD window 512 exceeds this short stream? 151 events < 512+3;
        // shrink expectations: region discovery needs enough events, so use
        // the events count only.
        assert_eq!(sa.events(), 151);
    }
}
