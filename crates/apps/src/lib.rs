//! # spec-apps — the paper's evaluation workloads
//!
//! The paper evaluates the DPD on five hand-parallelized SPECfp95
//! applications (§6.1) plus the NAS FT benchmark (§3.2). We do not ship the
//! SPEC sources; instead each application is re-created as a synthetic
//! workload with real (small) numeric kernels and — crucially — the **exact
//! iterative loop-call structure** the paper reports in Table 2:
//!
//! | app      | stream length | periodicities |
//! |----------|---------------|---------------|
//! | apsi     | 5762          | 6             |
//! | hydro2d  | 53814         | 1, 24, 269    |
//! | swim     | 5402          | 6             |
//! | tomcatv  | 3750          | 5             |
//! | turb3d   | 1580          | 12, 142       |
//!
//! The DPD never observes the applications' arithmetic — only the order and
//! identity of their parallel-loop invocations (equation 2) or their sampled
//! CPU usage (equation 1) — so reproducing the loop structure reproduces the
//! detector's exact input distribution. Applications run on the virtual-time
//! [`par_runtime::Machine`] through the [`ditools`] interposition layer,
//! optionally with the [`selfanalyzer`] attached (paper Fig. 6).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod app;
pub mod apsi;
pub mod ft;
pub mod hydro2d;
pub mod kernels;
pub mod live;
pub mod numerics;
pub mod swim;
pub mod tomcatv;
pub mod turb3d;

pub use app::{App, AppRun, RunConfig};

/// All five SPECfp95-shaped applications, Table 2 order.
pub fn spec_apps() -> Vec<Box<dyn App>> {
    vec![
        Box::new(apsi::Apsi),
        Box::new(hydro2d::Hydro2d),
        Box::new(swim::Swim),
        Box::new(tomcatv::Tomcatv),
        Box::new(turb3d::Turb3d),
    ]
}
