//! Mini numerical cores of tomcatv and swim.
//!
//! Scaled-down but *algorithmically faithful* versions of the two simplest
//! SPECfp95 codes in the paper's evaluation, so the workloads' loop
//! structure corresponds to real math: tomcatv generates a boundary-fitted
//! mesh by relaxing coordinate fields with line-wise tridiagonal solves
//! (5 parallel regions per iteration — the paper's period 5), and swim
//! integrates the shallow-water equations on a staggered grid (the
//! CALC1/CALC2/CALC3 trio plus smoothing — period 6 with boundary sweeps).

use crate::kernels::tridiag_solve;

/// Mini-tomcatv: boundary-fitted 2-D mesh generation by relaxation.
#[derive(Debug, Clone)]
pub struct TomcatvMesh {
    n: usize,
    x: Vec<f64>,
    y: Vec<f64>,
    /// Relaxation factor.
    pub omega: f64,
}

impl TomcatvMesh {
    /// Initialize an `n x n` mesh: unit square with a perturbed interior
    /// (the solver's job is to smooth it back to a regular mesh).
    pub fn new(n: usize) -> Self {
        assert!(n >= 4, "mesh too small");
        let mut x = vec![0.0; n * n];
        let mut y = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let (u, v) = (j as f64 / (n - 1) as f64, i as f64 / (n - 1) as f64);
                // Interior perturbation, boundary exact.
                let interior = (i > 0 && i < n - 1 && j > 0 && j < n - 1) as u8 as f64;
                let bump = 0.05 * interior * ((i * 7 + j * 13) % 5) as f64 / 5.0;
                x[i * n + j] = u + bump;
                y[i * n + j] = v - bump;
            }
        }
        TomcatvMesh {
            n,
            x,
            y,
            omega: 0.8,
        }
    }

    /// Grid side.
    pub fn n(&self) -> usize {
        self.n
    }

    /// One solver iteration = the five parallel regions of the paper's
    /// period-5 structure. Returns the residual (max coordinate correction).
    pub fn step(&mut self) -> f64 {
        let n = self.n;
        // Region 1: residuals rx, ry (Laplacian of the coordinate fields).
        let mut rx = vec![0.0; n * n];
        let mut ry = vec![0.0; n * n];
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let k = i * n + j;
                rx[k] =
                    self.x[k - 1] + self.x[k + 1] + self.x[k - n] + self.x[k + n] - 4.0 * self.x[k];
                ry[k] =
                    self.y[k - 1] + self.y[k + 1] + self.y[k - n] + self.y[k + n] - 4.0 * self.y[k];
            }
        }
        // Regions 2+3: tridiagonal solves along each interior line
        // (implicit smoothing in the j-direction for x and for y).
        let a = vec![-1.0; n - 2];
        let b = vec![4.0; n - 2];
        let c = vec![-1.0; n - 2];
        let solve_lines = |field: &mut [f64], rhs: &[f64]| {
            for i in 1..n - 1 {
                let mut d: Vec<f64> = (1..n - 1).map(|j| rhs[i * n + j]).collect();
                tridiag_solve(&a, &b, &c, &mut d);
                for (j, dv) in d.iter().enumerate() {
                    field[i * n + (j + 1)] = *dv;
                }
            }
        };
        let mut dx = vec![0.0; n * n];
        let mut dy = vec![0.0; n * n];
        solve_lines(&mut dx, &rx);
        solve_lines(&mut dy, &ry);
        // Regions 4+5: coordinate updates with relaxation.
        let mut max_corr = 0.0f64;
        for k in 0..n * n {
            let cx = self.omega * dx[k];
            let cy = self.omega * dy[k];
            self.x[k] += cx;
            self.y[k] += cy;
            max_corr = max_corr.max(cx.abs()).max(cy.abs());
        }
        max_corr
    }

    /// Mesh quality: maximum deviation of interior spacing from uniform.
    pub fn distortion(&self) -> f64 {
        let n = self.n;
        let h = 1.0 / (n - 1) as f64;
        let mut worst = 0.0f64;
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let k = i * n + j;
                let du = self.x[k + 1] - self.x[k];
                let dv = self.y[k + n] - self.y[k];
                worst = worst.max((du - h).abs()).max((dv - h).abs());
            }
        }
        worst
    }
}

/// Mini-swim: shallow-water equations on a staggered grid with periodic
/// boundaries (U, V velocities; P pressure; Z vorticity, H enthalpy-like
/// field folded into P here for the scaled-down core).
#[derive(Debug, Clone)]
pub struct ShallowWater {
    n: usize,
    u: Vec<f64>,
    v: Vec<f64>,
    p: Vec<f64>,
    /// Time step.
    pub dt: f64,
    /// Grid spacing.
    pub dx: f64,
}

impl ShallowWater {
    /// Initialize an `n x n` field with a smooth pressure hill.
    pub fn new(n: usize) -> Self {
        assert!(n >= 4, "grid too small");
        let mut p = vec![50_000.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let (si, sj) = (
                    (i as f64 / n as f64 * std::f64::consts::TAU).sin(),
                    (j as f64 / n as f64 * std::f64::consts::TAU).sin(),
                );
                p[i * n + j] += 1_000.0 * si * sj;
            }
        }
        ShallowWater {
            n,
            u: vec![0.0; n * n],
            v: vec![0.0; n * n],
            p,
            dt: 0.01,
            dx: 1.0,
        }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        (i % self.n) * self.n + (j % self.n)
    }

    /// One time step = swim's six-region structure: CALC1 (gradients drive
    /// velocities), CALC2 (divergence drives pressure), CALC3 (time
    /// smoothing), plus the periodic-boundary/filter sweeps folded in.
    /// Returns total fluid energy (kinetic + potential surrogate).
    pub fn step(&mut self) -> f64 {
        let n = self.n;
        let c = self.dt / (2.0 * self.dx);
        // CALC1: accelerate velocities from pressure gradients.
        let mut un = self.u.clone();
        let mut vn = self.v.clone();
        for i in 0..n {
            for j in 0..n {
                let gx = self.p[self.idx(i, j + 1)] - self.p[self.idx(i, j + n - 1)];
                let gy = self.p[self.idx(i + 1, j)] - self.p[self.idx(i + n - 1, j)];
                un[i * n + j] = self.u[i * n + j] - c * gx;
                vn[i * n + j] = self.v[i * n + j] - c * gy;
            }
        }
        // CALC2: update pressure from velocity divergence.
        let mut pn = self.p.clone();
        for i in 0..n {
            for j in 0..n {
                let div = un[self.idx(i, j + 1)] - un[self.idx(i, j + n - 1)]
                    + vn[self.idx(i + 1, j)]
                    - vn[self.idx(i + n - 1, j)];
                pn[i * n + j] = self.p[i * n + j] - 100.0 * c * div;
            }
        }
        // CALC3: Robert-Asselin-style smoothing toward the new state.
        let alpha = 0.05;
        for k in 0..n * n {
            self.u[k] = un[k] + alpha * (un[k] - self.u[k]);
            self.v[k] = vn[k] + alpha * (vn[k] - self.v[k]);
            self.p[k] = pn[k] + alpha * (pn[k] - self.p[k]);
        }
        self.energy()
    }

    /// Total energy surrogate: kinetic + pressure variance.
    pub fn energy(&self) -> f64 {
        let n2 = (self.n * self.n) as f64;
        let mean_p = self.p.iter().sum::<f64>() / n2;
        let kin: f64 = self
            .u
            .iter()
            .zip(&self.v)
            .map(|(&u, &v)| 0.5 * (u * u + v * v))
            .sum();
        let pot: f64 = self.p.iter().map(|&p| (p - mean_p) * (p - mean_p)).sum();
        kin + pot / 1_000.0
    }

    /// Mass surrogate: mean pressure (conserved by the centered scheme).
    pub fn mass(&self) -> f64 {
        self.p.iter().sum::<f64>() / (self.n * self.n) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tomcatv_mesh_relaxes_toward_uniform() {
        let mut mesh = TomcatvMesh::new(24);
        let d0 = mesh.distortion();
        assert!(d0 > 0.01, "initial mesh must be perturbed: {d0}");
        let mut residual = f64::INFINITY;
        for _ in 0..60 {
            residual = mesh.step();
        }
        assert!(residual.is_finite());
        let d1 = mesh.distortion();
        assert!(d1 < d0, "distortion must shrink: {d1} !< {d0}");
    }

    #[test]
    fn tomcatv_residual_decreases() {
        let mut mesh = TomcatvMesh::new(16);
        let r1 = mesh.step();
        let mut r_last = r1;
        for _ in 0..30 {
            r_last = mesh.step();
        }
        assert!(r_last < r1, "residual must decrease: {r_last} !< {r1}");
    }

    #[test]
    #[should_panic(expected = "mesh too small")]
    fn tomcatv_tiny_mesh_rejected() {
        let _ = TomcatvMesh::new(2);
    }

    #[test]
    fn swim_conserves_mass() {
        let mut sw = ShallowWater::new(32);
        let m0 = sw.mass();
        for _ in 0..100 {
            sw.step();
        }
        let m1 = sw.mass();
        assert!((m1 - m0).abs() / m0 < 1e-9, "mass drift: {m0} -> {m1}");
    }

    #[test]
    fn swim_stays_bounded() {
        let mut sw = ShallowWater::new(32);
        let e0 = sw.energy();
        let mut e = e0;
        for _ in 0..200 {
            e = sw.step();
            assert!(e.is_finite(), "energy blew up");
        }
        // Asselin filter dissipates: no unbounded growth.
        assert!(e < e0 * 10.0, "energy grew {e0} -> {e}");
    }

    #[test]
    fn swim_develops_motion_from_pressure_hill() {
        let mut sw = ShallowWater::new(16);
        let kin0: f64 = sw.u.iter().map(|u| u * u).sum();
        assert_eq!(kin0, 0.0);
        sw.step();
        let kin1: f64 = sw.u.iter().map(|u| u * u).sum();
        assert!(kin1 > 0.0, "pressure gradient must accelerate the fluid");
    }

    #[test]
    #[should_panic(expected = "grid too small")]
    fn swim_tiny_grid_rejected() {
        let _ = ShallowWater::new(3);
    }
}
