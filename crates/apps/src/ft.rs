//! NAS FT: 3-D FFT PDE solver (MPI/OpenMP), the paper's Figure 3/4 workload.
//!
//! "The trace is from the FT application of the NAS benchmarks. ... The
//! sampling frequency of the CPU usage is set to 1 ms. It can be observed
//! ... that during the execution of the application the parallelism is
//! opened and closed a few times. Up to 16 CPUs are used ... By visual
//! inspection a periodic pattern in the CPU usage can be observed. Also ...
//! the pattern of CPU use is not exactly the same during the execution."
//! The DPD finds the periodicity at **m = 44** samples (Figure 4).
//!
//! [`ft_run`] reproduces that trace: each solver iteration spans exactly
//! 44 virtual milliseconds and opens/closes parallelism four times (the
//! three 1-D FFT passes and the spectral evolve step), with deterministic
//! per-iteration jitter in the phase boundaries so consecutive periods are
//! similar but not identical.

use ditools::dispatch::Interposer;
use ditools::hook::RecordingObserver;
use ditools::registry::Registry;
use dpd_trace::{EventTrace, SampledTrace};
use par_runtime::machine::{Machine, MachineConfig};
use std::cell::RefCell;
use std::rc::Rc;

/// Iteration period in milliseconds (the Figure 4 ground truth).
pub const PERIOD_MS: u64 = 44;

const MS: u64 = 1_000_000;

/// Output of an FT run.
#[derive(Debug)]
pub struct FtRun {
    /// CPU-usage trace sampled at 1 ms (Figure 3).
    pub cpu_trace: SampledTrace,
    /// Intercepted loop-address stream.
    pub addresses: EventTrace,
    /// Total virtual execution time.
    pub elapsed_ns: u64,
}

/// Execute `iterations` FT solver iterations on a 16-CPU virtual machine.
///
/// Each iteration: transpose setup (serial) → FFT-x on 16 CPUs → FFT-y on
/// 12 CPUs → FFT-z on 16 CPUs → evolve on 8 CPUs → checksum (serial), with
/// ±1 ms deterministic jitter on the internal phase boundaries and padding
/// so every iteration spans exactly [`PERIOD_MS`] milliseconds.
pub fn ft_run(iterations: usize) -> FtRun {
    let mut machine = Machine::new(MachineConfig {
        cpus: 16,
        ..MachineConfig::default()
    });
    let mut ip = Interposer::new(Registry::new());
    let recorder = Rc::new(RefCell::new(RecordingObserver::new()));
    ip.attach(Box::new(Rc::clone(&recorder)));

    let fft_x = ip.register("ft_fft_x");
    let fft_y = ip.register("ft_fft_y");
    let fft_z = ip.register("ft_fft_z");
    let evolve = ip.register("ft_evolve");

    for it in 0..iterations {
        let start = machine.now_ns();
        // Deterministic but aperiodic jitter in -1..=+1 ms (Knuth hash of
        // the iteration index): the pattern repeats but "is not exactly the
        // same" (paper §3.2), and the jitter itself must not introduce a
        // periodicity of its own.
        let j = (((it as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) % 3) as i64 - 1;
        let jit = |base_ms: i64| ((base_ms + j).max(1)) as u64 * MS;

        machine.run_serial(jit(4)); // transpose / copy-in
        let now = machine.now_ns();
        ip.intercept_timed(fft_x, now, || {
            let s = machine.run_phase(16, jit(8));
            ((), s.end_ns)
        });
        machine.run_serial(MS);
        let now = machine.now_ns();
        ip.intercept_timed(fft_y, now, || {
            let s = machine.run_phase(12, jit(7));
            ((), s.end_ns)
        });
        machine.run_serial(MS);
        let now = machine.now_ns();
        ip.intercept_timed(fft_z, now, || {
            let s = machine.run_phase(16, jit(9));
            ((), s.end_ns)
        });
        machine.run_serial(MS);
        let now = machine.now_ns();
        ip.intercept_timed(evolve, now, || {
            let s = machine.run_phase(8, jit(5));
            ((), s.end_ns)
        });
        // Checksum + pad to exactly PERIOD_MS.
        let target = start + PERIOD_MS * MS;
        let now = machine.now_ns();
        debug_assert!(now < target, "iteration overran its period");
        machine.run_serial(target - now);
    }

    let elapsed_ns = machine.now_ns();
    let cpu_trace = SampledTrace::from_values("ft", MS, machine.sample_cpu_trace(MS));
    drop(ip);
    let recorder = Rc::try_unwrap(recorder).expect("unique").into_inner();
    FtRun {
        cpu_trace,
        addresses: EventTrace::from_values("ft", recorder.address_stream()),
        elapsed_ns,
    }
}

/// Distributed FT: the paper's actual deployment shape — "MPI/OpenMp. Each
/// process has a number of threads and messages are interchanged between
/// the MPI processes" (§3.2). `processes` virtual processes of
/// `16 / processes` CPUs each run the per-iteration FFT phases locally and
/// exchange the distributed transpose via all-to-all; the returned trace is
/// the *application-wide* instantaneous CPU count (sum over processes),
/// still periodic at [`PERIOD_MS`].
pub fn ft_mpi_run(iterations: usize, processes: usize) -> FtRun {
    use par_runtime::msg::{NetConfig, ProcessGroup};
    assert!(
        processes > 0 && 16 % processes == 0,
        "processes must divide 16"
    );
    let cpus_each = 16 / processes;
    let mut group = ProcessGroup::new(processes, cpus_each, NetConfig::default());
    let mut addresses = Vec::new();

    for it in 0..iterations {
        let j = (((it as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) % 3) as i64 - 1;
        let jit = |base_ms: i64| ((base_ms + j).max(1)) as u64 * MS;
        let start = (0..processes)
            .map(|r| group.machine_ref(r).now_ns())
            .max()
            .unwrap();
        // Local compute phases on every process (OpenMP level).
        for r in 0..processes {
            let m = group.machine(r);
            m.run_serial(jit(4));
            m.run_phase(cpus_each, jit(8)); // local FFT-x
            m.run_serial(MS);
            m.run_phase(cpus_each.max(1), jit(7)); // local FFT-y
        }
        addresses.push(0x7F00);
        // Distributed transpose: all-to-all (MPI level) — serial dip.
        group.alltoall(64 * 1024);
        addresses.push(0x7F01);
        for r in 0..processes {
            let m = group.machine(r);
            m.run_phase(cpus_each, jit(9)); // local FFT-z
            m.run_serial(MS);
            m.run_phase((cpus_each / 2).max(1), jit(5)); // evolve
        }
        addresses.push(0x7F02);
        // Pad every process to the common iteration boundary.
        let target = start + PERIOD_MS * MS;
        for r in 0..processes {
            let m = group.machine(r);
            let now = m.now_ns();
            assert!(
                now < target,
                "iteration overran its period ({now} >= {target})"
            );
            m.run_serial(target - now);
        }
    }

    // Application-wide CPU count: sum of the per-process step functions.
    let per_proc: Vec<Vec<f64>> = (0..processes)
        .map(|r| group.machine_ref(r).timeline().sample(MS))
        .collect();
    let len = per_proc.iter().map(|v| v.len()).min().unwrap_or(0);
    let combined: Vec<f64> = (0..len)
        .map(|i| per_proc.iter().map(|v| v[i]).sum())
        .collect();
    let elapsed_ns = (0..processes)
        .map(|r| group.machine_ref(r).now_ns())
        .max()
        .unwrap();

    FtRun {
        cpu_trace: SampledTrace::from_values("ft-mpi", MS, combined),
        addresses: EventTrace::from_values("ft-mpi", addresses),
        elapsed_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpd_core::detector::FrameDetector;

    #[test]
    fn iterations_span_exactly_44ms() {
        let run = ft_run(10);
        assert_eq!(run.elapsed_ns, 10 * PERIOD_MS * MS);
    }

    #[test]
    fn cpu_trace_opens_and_closes_parallelism() {
        let run = ft_run(8);
        let max = run.cpu_trace.max().unwrap();
        assert_eq!(max, 16.0, "up to 16 CPUs in parallel");
        // Parallelism closes between phases: plenty of 1-CPU samples.
        let ones = run.cpu_trace.values.iter().filter(|&&v| v == 1.0).count();
        assert!(ones > 20, "only {ones} serial samples");
    }

    #[test]
    fn pattern_is_not_exactly_identical() {
        let run = ft_run(6);
        let v = &run.cpu_trace.values;
        let p = PERIOD_MS as usize;
        // The stream must NOT be exactly 44-periodic: the jitter makes some
        // sample differ from its counterpart one period earlier.
        let diffs = (p..v.len()).filter(|&i| v[i] != v[i - p]).count();
        assert!(diffs > 0, "periods must not be exactly identical");
    }

    #[test]
    fn dpd_finds_period_44_like_figure4() {
        let run = ft_run(20);
        let det = FrameDetector::magnitudes(200, 0.5);
        let report = det.analyze(&run.cpu_trace.values).unwrap();
        assert_eq!(
            report.period(),
            Some(PERIOD_MS as usize),
            "minima: {:?}",
            report.minima
        );
    }

    #[test]
    fn address_stream_has_period_4() {
        let run = ft_run(12);
        assert_eq!(run.addresses.len(), 48);
        assert!(run.addresses.tail_is_periodic(4, 40));
    }

    #[test]
    fn mpi_variant_spans_periods_and_peaks_at_16() {
        let run = ft_mpi_run(12, 4);
        assert_eq!(run.elapsed_ns, 12 * PERIOD_MS * MS);
        // Sum over 4 processes x 4 CPUs: peak application parallelism 16.
        assert_eq!(run.cpu_trace.max().unwrap(), 16.0);
        // Communication dips: the whole app drops to `processes` CPUs
        // (one polling CPU per process) during the all-to-all.
        let min = run
            .cpu_trace
            .values
            .iter()
            .copied()
            .fold(f64::MAX, f64::min);
        assert!(min <= 4.0, "no communication dip visible (min {min})");
    }

    #[test]
    fn mpi_variant_still_periodic_at_44() {
        let run = ft_mpi_run(20, 4);
        let det = FrameDetector::magnitudes(200, 0.5);
        let report = det.analyze(&run.cpu_trace.values).unwrap();
        assert_eq!(report.period(), Some(PERIOD_MS as usize));
    }

    #[test]
    #[should_panic(expected = "divide 16")]
    fn mpi_processes_must_divide_machine() {
        let _ = ft_mpi_run(2, 5);
    }
}
