//! Real numeric kernels behind the synthetic applications.
//!
//! The DPD observes loop-call *structure*, not arithmetic — but a credible
//! workload should do real work. Each application's loop calls are costed by
//! these kernels (calibrated per-iteration costs feed the machine's model),
//! and the example binaries can execute them for real on the thread pool.
//! The kernels are scaled-down versions of what the SPECfp95 codes compute:
//! mesh generation (tomcatv), shallow-water stencils (swim), mesoscale
//! transport (apsi), hydrodynamical relaxation (hydro2d) and FFTs
//! (turb3d / NAS FT).

use par_runtime::loops::{parallel_for, Schedule};
use std::sync::atomic::{AtomicU64, Ordering};

/// 5-point Jacobi relaxation sweep over an `n x n` grid; returns the
/// residual L2 norm. The archetypal swim/hydro2d update.
pub fn jacobi_sweep(grid: &mut [f64], n: usize) -> f64 {
    assert_eq!(grid.len(), n * n, "grid must be n*n");
    if n < 3 {
        return 0.0;
    }
    let old = grid.to_vec();
    let mut residual = 0.0;
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            let idx = i * n + j;
            let new = 0.25 * (old[idx - 1] + old[idx + 1] + old[idx - n] + old[idx + n]);
            residual += (new - old[idx]) * (new - old[idx]);
            grid[idx] = new;
        }
    }
    residual.sqrt()
}

/// Parallel Jacobi sweep on `threads` OS threads (same result as the
/// sequential version up to floating-point associativity of the residual).
pub fn jacobi_sweep_parallel(grid: &mut [f64], n: usize, threads: usize) -> f64 {
    assert_eq!(grid.len(), n * n, "grid must be n*n");
    if n < 3 {
        return 0.0;
    }
    let old = grid.to_vec();
    // Each interior row is independent given `old`; distribute rows.
    let residual_bits = AtomicU64::new(0f64.to_bits());
    {
        let rows: Vec<(usize, &mut [f64])> = grid
            .chunks_mut(n)
            .enumerate()
            .filter(|(i, _)| *i >= 1 && *i < n - 1)
            .collect();
        // Move row slices into a structure indexable by the loop body.
        let rows: Vec<std::sync::Mutex<(usize, &mut [f64])>> =
            rows.into_iter().map(std::sync::Mutex::new).collect();
        parallel_for(threads, 0..rows.len() as u64, Schedule::Static, None, |r| {
            let mut guard = rows[r as usize].lock().unwrap();
            let (i, row) = &mut *guard;
            let i = *i;
            let mut local = 0.0;
            for j in 1..n - 1 {
                let idx = i * n + j;
                let new = 0.25 * (old[idx - 1] + old[idx + 1] + old[idx - n] + old[idx + n]);
                local += (new - old[idx]) * (new - old[idx]);
                row[j] = new;
            }
            // Atomic f64 accumulation via CAS on bits.
            let mut cur = residual_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + local).to_bits();
                match residual_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(c) => cur = c,
                }
            }
        });
    }
    f64::from_bits(residual_bits.load(Ordering::Relaxed)).sqrt()
}

/// Thomas algorithm: solve a tridiagonal system in place. The tomcatv mesh
/// generator solves such systems along mesh lines every iteration.
///
/// `a` sub-, `b` main- and `c` super-diagonal; `d` right-hand side, receives
/// the solution. All must have equal length `>= 1`.
pub fn tridiag_solve(a: &[f64], b: &[f64], c: &[f64], d: &mut [f64]) {
    let n = d.len();
    assert!(
        a.len() == n && b.len() == n && c.len() == n,
        "length mismatch"
    );
    if n == 0 {
        return;
    }
    let mut cp = vec![0.0; n];
    let mut dp = vec![0.0; n];
    cp[0] = c[0] / b[0];
    dp[0] = d[0] / b[0];
    for i in 1..n {
        let m = b[i] - a[i] * cp[i - 1];
        cp[i] = c[i] / m;
        dp[i] = (d[i] - a[i] * dp[i - 1]) / m;
    }
    d[n - 1] = dp[n - 1];
    for i in (0..n - 1).rev() {
        d[i] = dp[i] - cp[i] * d[i + 1];
    }
}

/// Iterative radix-2 FFT (in-place, complex interleaved re/im).
/// Drives turb3d's spectral steps and the NAS FT workload.
///
/// # Panics
/// Panics when the number of complex points is not a power of two.
pub fn fft_inplace(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im length mismatch");
    assert!(n.is_power_of_two(), "FFT size must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cur_r, mut cur_i) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let even = i + k;
                let odd = i + k + len / 2;
                let tr = re[odd] * cur_r - im[odd] * cur_i;
                let ti = re[odd] * cur_i + im[odd] * cur_r;
                re[odd] = re[even] - tr;
                im[odd] = im[even] - ti;
                re[even] += tr;
                im[even] += ti;
                let nr = cur_r * wr - cur_i * wi;
                cur_i = cur_r * wi + cur_i * wr;
                cur_r = nr;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Inverse FFT via conjugation (unscaled forward core, then 1/n scaling).
pub fn ifft_inplace(re: &mut [f64], im: &mut [f64]) {
    let n = re.len() as f64;
    for v in im.iter_mut() {
        *v = -*v;
    }
    fft_inplace(re, im);
    for i in 0..re.len() {
        re[i] /= n;
        im[i] = -im[i] / n;
    }
}

/// Dense mat-vec `y = A x` used as the apsi transport surrogate.
pub fn matvec(a: &[f64], x: &[f64], y: &mut [f64]) {
    let n = x.len();
    assert_eq!(a.len(), n * n, "matrix must be n*n");
    assert_eq!(y.len(), n, "output length mismatch");
    for i in 0..n {
        let row = &a[i * n..(i + 1) * n];
        y[i] = row.iter().zip(x).map(|(&aij, &xj)| aij * xj).sum();
    }
}

/// Calibrate a kernel: mean wall-clock nanoseconds per call over `reps`
/// executions of `f`. Feeds realistic per-iteration costs into the virtual
/// machine's loop specs.
pub fn calibrate_ns<F: FnMut()>(reps: u32, mut f: F) -> u64 {
    assert!(reps > 0, "need at least one repetition");
    let start = std::time::Instant::now();
    for _ in 0..reps {
        f();
    }
    (start.elapsed().as_nanos() / reps as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_with_hot_center(n: usize) -> Vec<f64> {
        let mut g = vec![0.0; n * n];
        g[(n / 2) * n + n / 2] = 100.0;
        g
    }

    #[test]
    fn jacobi_diffuses_and_residual_decreases() {
        let n = 16;
        let mut g = grid_with_hot_center(n);
        let r1 = jacobi_sweep(&mut g, n);
        let r2 = jacobi_sweep(&mut g, n);
        assert!(r1 > 0.0);
        assert!(r2 < r1, "residual must decrease: {r2} !< {r1}");
        assert!(g.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn jacobi_parallel_matches_sequential() {
        let n = 24;
        let mut g1 = grid_with_hot_center(n);
        let mut g2 = g1.clone();
        let r_seq = jacobi_sweep(&mut g1, n);
        let r_par = jacobi_sweep_parallel(&mut g2, n, 4);
        for (a, b) in g1.iter().zip(&g2) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((r_seq - r_par).abs() < 1e-9);
    }

    #[test]
    fn jacobi_degenerate_grid() {
        let mut g = vec![1.0; 4];
        assert_eq!(jacobi_sweep(&mut g, 2), 0.0);
    }

    #[test]
    fn tridiag_solves_identity() {
        let n = 8;
        let a = vec![0.0; n];
        let b = vec![1.0; n];
        let c = vec![0.0; n];
        let mut d: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let expect = d.clone();
        tridiag_solve(&a, &b, &c, &mut d);
        for (x, e) in d.iter().zip(&expect) {
            assert!((x - e).abs() < 1e-12);
        }
    }

    #[test]
    fn tridiag_solves_laplacian_system() {
        // -1 2 -1 system with known solution x = [1..n]: verify A x = d.
        let n = 10;
        let a = vec![-1.0; n];
        let b = vec![2.0; n];
        let c = vec![-1.0; n];
        let x_true: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        // Build d = A * x_true.
        let mut d = vec![0.0; n];
        for i in 0..n {
            let left = if i > 0 { -x_true[i - 1] } else { 0.0 };
            let right = if i + 1 < n { -x_true[i + 1] } else { 0.0 };
            d[i] = left + 2.0 * x_true[i] + right;
        }
        tridiag_solve(&a, &b, &c, &mut d);
        for (x, e) in d.iter().zip(&x_true) {
            assert!((x - e).abs() < 1e-9, "{x} vs {e}");
        }
    }

    #[test]
    fn fft_roundtrip_recovers_signal() {
        let n = 64;
        let sig: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.3).sin() + 0.5 * (i as f64 * 1.1).cos())
            .collect();
        let mut re = sig.clone();
        let mut im = vec![0.0; n];
        fft_inplace(&mut re, &mut im);
        ifft_inplace(&mut re, &mut im);
        for (a, b) in re.iter().zip(&sig) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert!(im.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let n = 16;
        let mut re = vec![0.0; n];
        let mut im = vec![0.0; n];
        re[0] = 1.0;
        fft_inplace(&mut re, &mut im);
        for i in 0..n {
            assert!((re[i] - 1.0).abs() < 1e-12);
            assert!(im[i].abs() < 1e-12);
        }
    }

    #[test]
    fn fft_parseval_energy_conserved() {
        let n = 128;
        let sig: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let time_energy: f64 = sig.iter().map(|v| v * v).sum();
        let mut re = sig;
        let mut im = vec![0.0; n];
        fft_inplace(&mut re, &mut im);
        let freq_energy: f64 =
            re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut re = vec![0.0; 12];
        let mut im = vec![0.0; 12];
        fft_inplace(&mut re, &mut im);
    }

    #[test]
    fn matvec_identity() {
        let n = 4;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut y = vec![0.0; n];
        matvec(&a, &x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn calibrate_returns_positive() {
        let ns = calibrate_ns(10, || {
            let mut g = vec![0.0f64; 64];
            g[0] = 1.0;
            let _ = jacobi_sweep(&mut g, 8);
        });
        assert!(ns > 0);
    }
}
