//! turb3d (SPECfp95 125): homogeneous isotropic turbulence (spectral).
//!
//! Nested structure, coarser than hydro2d's. Table 2: data stream length
//! 1580, periodicities **12** and **142**. We reproduce it as:
//!
//! * each main-loop iteration issues 10 setup/transform regions, then **11
//!   planes** of a 12-loop FFT pipeline → outer period
//!   `10 + 11 * 12 = 142`;
//! * 18 initialization loops + 11 iterations → `18 + 11 * 142 = 1580`.

use crate::app::{App, AppStructure, LoopCall};
use par_runtime::machine::LoopSpec;

/// The turb3d workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Turb3d;

/// Main-loop iterations in the (ref) input.
pub const ITERATIONS: usize = 11;

const PLANE_LOOPS: [&str; 12] = [
    "turb_fft_fwd_x",
    "turb_fft_fwd_y",
    "turb_fft_fwd_z",
    "turb_nonlinear_u",
    "turb_nonlinear_v",
    "turb_nonlinear_w",
    "turb_project",
    "turb_viscous",
    "turb_fft_inv_x",
    "turb_fft_inv_y",
    "turb_fft_inv_z",
    "turb_rescale",
];

const SETUP_LOOPS: [&str; 10] = [
    "turb_courant",
    "turb_wavenumbers",
    "turb_dealiasing",
    "turb_copy_u",
    "turb_copy_v",
    "turb_copy_w",
    "turb_spectrum",
    "turb_forcing",
    "turb_energy",
    "turb_timestep",
];

const INIT_LOOPS: [&str; 18] = [
    "turb_init_grid",
    "turb_init_modes",
    "turb_init_u",
    "turb_init_v",
    "turb_init_w",
    "turb_init_phase1",
    "turb_init_phase2",
    "turb_init_phase3",
    "turb_init_spectrum",
    "turb_init_normalize",
    "turb_init_fft_plan_x",
    "turb_init_fft_plan_y",
    "turb_init_fft_plan_z",
    "turb_init_check",
    "turb_init_stats",
    "turb_init_io",
    "turb_init_forcing",
    "turb_init_seed",
];

/// Per-call loop spec: 266.44 s sequential over 1580 calls ≈ 168.6 ms per
/// call (Table 3 ApExTime) — turb3d's FFT regions are by far the heaviest
/// of the five applications.
fn spec() -> LoopSpec {
    LoopSpec {
        iterations: 64,
        cost_per_iter_ns: 2_635_000,
        serial_fraction: 0.05,
    }
}

impl App for Turb3d {
    fn name(&self) -> &'static str {
        "turb3d"
    }

    fn expected_periods(&self) -> Vec<usize> {
        vec![12, 142]
    }

    fn expected_stream_len(&self) -> usize {
        1580
    }

    fn structure(&self) -> AppStructure {
        let mk = |name: &'static str| LoopCall { name, spec: spec() };
        let prologue: Vec<LoopCall> = INIT_LOOPS.iter().map(|&n| mk(n)).collect();
        let mut iteration: Vec<LoopCall> = SETUP_LOOPS.iter().map(|&n| mk(n)).collect();
        for _plane in 0..11 {
            iteration.extend(PLANE_LOOPS.iter().map(|&n| mk(n)));
        }
        debug_assert_eq!(iteration.len(), 142);
        AppStructure {
            name: "turb3d",
            prologue,
            iteration,
            iterations: ITERATIONS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::RunConfig;

    #[test]
    fn stream_length_matches_table2() {
        assert_eq!(Turb3d.structure().stream_len(), 1580);
    }

    #[test]
    fn iteration_pattern_is_142_calls() {
        assert_eq!(Turb3d.structure().iteration.len(), 142);
    }

    #[test]
    fn address_stream_has_nested_structure() {
        let run = Turb3d.run(&RunConfig::default());
        assert_eq!(run.addresses.len(), 1580);
        assert!(run.addresses.tail_is_periodic(142, 1000));
        // No period-1 runs in turb3d (unlike hydro2d).
        assert_eq!(run.addresses.longest_run(), 1);
    }

    #[test]
    fn sequential_time_near_paper() {
        let run = Turb3d.run(&RunConfig {
            cpus: 1,
            ..RunConfig::default()
        });
        let secs = run.elapsed_ns as f64 / 1e9;
        assert!((secs - 266.44).abs() < 8.0, "sequential time {secs}s");
    }
}
