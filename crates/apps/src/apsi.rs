//! apsi (SPECfp95 141): mesoscale hydrodynamic pollutant transport.
//!
//! The reference input advances 960 time steps; each step executes six
//! parallel regions (wind-field update, two advection sweeps, diffusion,
//! deposition and a statistics reduction), after two setup loops. Table 2:
//! data stream length 5762 (= 2 + 960 x 6), periodicity **6**.

use crate::app::{App, AppStructure, LoopCall};

/// The apsi workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Apsi;

/// Main-loop iterations in the (ref) input.
pub const ITERATIONS: usize = 960;

impl App for Apsi {
    fn name(&self) -> &'static str {
        "apsi"
    }

    fn expected_periods(&self) -> Vec<usize> {
        vec![6]
    }

    fn expected_stream_len(&self) -> usize {
        5762
    }

    fn structure(&self) -> AppStructure {
        // 95.9 s sequential over 5762 calls ≈ 16.6 ms per call (Table 3).
        AppStructure {
            name: "apsi",
            prologue: vec![
                LoopCall::new("apsi_setup_terrain", 128, 130_000),
                LoopCall::new("apsi_setup_fields", 128, 130_000),
            ],
            iteration: vec![
                LoopCall::with_serial("apsi_wind_field", 128, 130_000, 0.04),
                LoopCall::with_serial("apsi_advec_x", 128, 130_000, 0.02),
                LoopCall::with_serial("apsi_advec_y", 128, 130_000, 0.02),
                LoopCall::with_serial("apsi_diffusion", 128, 130_000, 0.03),
                LoopCall::with_serial("apsi_deposition", 128, 130_000, 0.06),
                LoopCall::with_serial("apsi_statistics", 128, 130_000, 0.10),
            ],
            iterations: ITERATIONS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::RunConfig;

    #[test]
    fn stream_length_matches_table2() {
        assert_eq!(Apsi.structure().stream_len(), 5762);
    }

    #[test]
    fn address_stream_is_period_6() {
        let run = Apsi.run(&RunConfig::default());
        assert_eq!(run.addresses.len(), 5762);
        assert!(run.addresses.tail_is_periodic(6, 5500));
    }

    #[test]
    fn sequential_time_near_paper() {
        let run = Apsi.run(&RunConfig {
            cpus: 1,
            ..RunConfig::default()
        });
        let secs = run.elapsed_ns as f64 / 1e9;
        assert!((secs - 95.9).abs() < 5.0, "sequential time {secs}s");
    }
}
