//! hydro2d (SPECfp95 104): Navier-Stokes galactic-jet hydrodynamics.
//!
//! The most deeply nested application of the evaluation. Table 2 reports
//! data stream length 53814 and **three** periodicities — 1, 24 and 269 —
//! and Figure 7 shows "a large iterative pattern within which smaller
//! iterative patterns appear". We reproduce that structure:
//!
//! * each main-loop iteration issues 5 boundary/setup regions followed by
//!   **11 sweeps** of a 24-loop solver pattern → outer period
//!   `5 + 11 * 24 = 269`;
//! * inside each solver sweep, a relaxation smoother region is invoked **10
//!   times in a row** (the period-1 run the DPD picks up with a small
//!   window), followed by 14 distinct flux/update regions → inner period 24
//!   with an embedded period-1 segment;
//! * 14 initialization loops + 200 iterations
//!   → `14 + 200 * 269 = 53814` loop-call events.

use crate::app::{App, AppStructure, LoopCall};
use par_runtime::machine::LoopSpec;

/// The hydro2d workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hydro2d;

/// Main-loop iterations in the (ref) input.
pub const ITERATIONS: usize = 200;

/// Names of the 14 distinct flux/update regions inside one solver sweep.
const SWEEP_LOOPS: [&str; 14] = [
    "hydro_flux_x",
    "hydro_flux_y",
    "hydro_godunov_x",
    "hydro_godunov_y",
    "hydro_slope_x",
    "hydro_slope_y",
    "hydro_trace_x",
    "hydro_trace_y",
    "hydro_qleftright",
    "hydro_riemann",
    "hydro_cmpflx",
    "hydro_update_rho",
    "hydro_update_mom",
    "hydro_update_ene",
];

/// Names of the 5 per-iteration boundary/setup regions.
const BOUNDARY_LOOPS: [&str; 5] = [
    "hydro_courant",
    "hydro_bound_lo",
    "hydro_bound_hi",
    "hydro_make_slices",
    "hydro_constoprim",
];

/// Names of the 14 initialization loops (prologue).
const INIT_LOOPS: [&str; 14] = [
    "hydro_init_grid",
    "hydro_init_rho",
    "hydro_init_mom",
    "hydro_init_ene",
    "hydro_init_bc",
    "hydro_init_eos",
    "hydro_init_slices",
    "hydro_init_work1",
    "hydro_init_work2",
    "hydro_init_work3",
    "hydro_init_stats",
    "hydro_init_dt",
    "hydro_init_io",
    "hydro_init_check",
];

/// Per-call loop spec: 183.92 s sequential over 53814 calls ≈ 3.42 ms
/// per call (Table 3 ApExTime).
fn spec() -> LoopSpec {
    LoopSpec {
        iterations: 128,
        cost_per_iter_ns: 26_700,
        serial_fraction: 0.03,
    }
}

impl App for Hydro2d {
    fn name(&self) -> &'static str {
        "hydro2d"
    }

    fn expected_periods(&self) -> Vec<usize> {
        vec![1, 24, 269]
    }

    fn expected_stream_len(&self) -> usize {
        53814
    }

    fn structure(&self) -> AppStructure {
        let mk = |name: &'static str| LoopCall { name, spec: spec() };
        let prologue: Vec<LoopCall> = INIT_LOOPS.iter().map(|&n| mk(n)).collect();
        let mut iteration: Vec<LoopCall> = BOUNDARY_LOOPS.iter().map(|&n| mk(n)).collect();
        for _sweep in 0..11 {
            // The smoother region is called 10 times in a row (period-1 run).
            for _ in 0..10 {
                iteration.push(mk("hydro_smooth"));
            }
            iteration.extend(SWEEP_LOOPS.iter().map(|&n| mk(n)));
        }
        debug_assert_eq!(iteration.len(), 269);
        AppStructure {
            name: "hydro2d",
            prologue,
            iteration,
            iterations: ITERATIONS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::RunConfig;

    #[test]
    fn stream_length_matches_table2() {
        assert_eq!(Hydro2d.structure().stream_len(), 53814);
    }

    #[test]
    fn iteration_pattern_is_269_calls() {
        assert_eq!(Hydro2d.structure().iteration.len(), 269);
    }

    #[test]
    fn address_stream_has_nested_structure() {
        let run = Hydro2d.run(&RunConfig::default());
        assert_eq!(run.addresses.len(), 53814);
        // Outer period 269 holds on the tail.
        assert!(run.addresses.tail_is_periodic(269, 40_000));
        // The period-1 smoother run exists.
        assert_eq!(run.addresses.longest_run(), 10);
    }

    #[test]
    fn sequential_time_near_paper() {
        let run = Hydro2d.run(&RunConfig {
            cpus: 1,
            ..RunConfig::default()
        });
        let secs = run.elapsed_ns as f64 / 1e9;
        assert!((secs - 183.92).abs() < 6.0, "sequential time {secs}s");
    }
}
