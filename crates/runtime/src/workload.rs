//! Multiprogrammed-workload simulation.
//!
//! The paper's §5.1 claim — performance-driven allocation "providing a
//! great benefit" \[Corbalan2000\] — is about a *multiprogrammed* machine:
//! several iterative applications sharing the CPUs. This module simulates
//! that: each job is an iterative application with a speedup profile; a
//! policy partitions the machine; jobs advance in virtual time under their
//! allocation, re-partitioned whenever a job finishes. The figure of merit
//! is makespan / mean turnaround — turning the curve arithmetic of
//! [`crate::sched`] into an actual schedule.

use crate::sched::{AllocationPolicy, SpeedupCurve};

/// One iterative job.
#[derive(Debug, Clone)]
pub struct Job {
    /// Job name (reports).
    pub name: String,
    /// Time of one main-loop iteration on 1 CPU, nanoseconds.
    pub iteration_ns: u64,
    /// Total iterations to run.
    pub iterations: u64,
    /// Measured/predicted speedup profile.
    pub curve: SpeedupCurve,
}

impl Job {
    /// Remaining single-CPU work.
    fn total_work_ns(&self) -> f64 {
        self.iteration_ns as f64 * self.iterations as f64
    }
}

/// Completion record for one job.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Job name.
    pub name: String,
    /// Virtual completion time (ns).
    pub finish_ns: f64,
    /// CPUs the job held when it finished.
    pub final_cpus: usize,
}

/// Result of simulating a workload under one policy.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Per-job completions, in finish order.
    pub completions: Vec<Completion>,
    /// Time the last job finished.
    pub makespan_ns: f64,
    /// Mean turnaround (all jobs start at t = 0).
    pub mean_turnaround_ns: f64,
}

/// Simulate `jobs` sharing `total_cpus` under `policy`.
///
/// Event-driven: between job completions, every running job progresses at
/// rate `curve.at(alloc)` relative to its single-CPU rate. On each
/// completion the machine is re-partitioned among the survivors.
pub fn simulate(jobs: &[Job], total_cpus: usize, policy: &dyn AllocationPolicy) -> ScheduleOutcome {
    assert!(total_cpus > 0, "need at least one CPU");
    let mut remaining: Vec<(usize, f64)> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| (i, j.total_work_ns()))
        .collect();
    let mut now = 0.0f64;
    let mut completions = Vec::new();

    while !remaining.is_empty() {
        let curves: Vec<SpeedupCurve> = remaining
            .iter()
            .map(|&(i, _)| jobs[i].curve.clone())
            .collect();
        let alloc = policy.allocate(&curves, total_cpus);
        debug_assert_eq!(alloc.len(), remaining.len());
        // Progress rate per job: speedup at its allocation (work-ns per ns).
        let rates: Vec<f64> = remaining
            .iter()
            .zip(&alloc)
            .map(|(&(i, _), &cpus)| {
                if cpus == 0 {
                    0.0
                } else {
                    jobs[i].curve.at(cpus).max(1e-9)
                }
            })
            .collect();
        // Next completion: min over jobs of remaining_work / rate.
        let (next_idx, dt) = remaining
            .iter()
            .enumerate()
            .filter(|(k, _)| rates[*k] > 0.0)
            .map(|(k, &(_, work))| (k, work / rates[k]))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("at least one job must be runnable");
        now += dt;
        // Advance everyone.
        for (k, entry) in remaining.iter_mut().enumerate() {
            entry.1 -= rates[k] * dt;
        }
        let (job_idx, _) = remaining.remove(next_idx);
        completions.push(Completion {
            name: jobs[job_idx].name.clone(),
            finish_ns: now,
            final_cpus: alloc[next_idx],
        });
    }

    let makespan_ns = now;
    let mean_turnaround_ns =
        completions.iter().map(|c| c.finish_ns).sum::<f64>() / completions.len().max(1) as f64;
    ScheduleOutcome {
        completions,
        makespan_ns,
        mean_turnaround_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Equipartition, PerformanceDriven};

    fn job(name: &str, iter_ms: u64, iters: u64, curve: SpeedupCurve) -> Job {
        Job {
            name: name.into(),
            iteration_ns: iter_ms * 1_000_000,
            iterations: iters,
            curve,
        }
    }

    #[test]
    fn single_job_gets_whole_machine() {
        let jobs = vec![job("solo", 10, 100, SpeedupCurve::linear(16))];
        let out = simulate(&jobs, 16, &Equipartition);
        // 1000 ms of work at speedup 16 -> 62.5 ms.
        assert!(
            (out.makespan_ns - 62.5e6).abs() < 1e3,
            "{}",
            out.makespan_ns
        );
        assert_eq!(out.completions[0].final_cpus, 16);
    }

    #[test]
    fn completion_frees_cpus_for_survivors() {
        // Short job + long job, both linear: after the short one finishes
        // the long one should accelerate, beating a static half-machine run.
        let jobs = vec![
            job("short", 10, 10, SpeedupCurve::linear(16)),
            job("long", 10, 100, SpeedupCurve::linear(16)),
        ];
        let out = simulate(&jobs, 16, &Equipartition);
        assert_eq!(out.completions[0].name, "short");
        // Static half machine for the long job: 1000 ms / 8 = 125 ms.
        assert!(
            out.makespan_ns < 125.0e6,
            "survivor must speed up: {} ns",
            out.makespan_ns
        );
    }

    #[test]
    fn performance_driven_beats_equipartition_on_mixed_workload() {
        let jobs = vec![
            job("scalable", 10, 200, SpeedupCurve::amdahl(0.02, 16)),
            job("saturating", 10, 200, SpeedupCurve::amdahl(0.5, 16)),
            job("serial-ish", 10, 200, SpeedupCurve::amdahl(0.8, 16)),
        ];
        let eq = simulate(&jobs, 16, &Equipartition);
        let pd = simulate(&jobs, 16, &PerformanceDriven);
        assert!(
            pd.mean_turnaround_ns <= eq.mean_turnaround_ns * 1.001,
            "PD turnaround {} vs EQ {}",
            pd.mean_turnaround_ns,
            eq.mean_turnaround_ns
        );
        assert!(
            pd.makespan_ns <= eq.makespan_ns * 1.05,
            "PD makespan {} vs EQ {}",
            pd.makespan_ns,
            eq.makespan_ns
        );
    }

    #[test]
    fn all_jobs_complete_exactly_once() {
        let jobs: Vec<Job> = (0..5)
            .map(|i| {
                job(
                    &format!("j{i}"),
                    5 + i,
                    50 + 10 * i,
                    SpeedupCurve::amdahl(0.1 * i as f64, 16),
                )
            })
            .collect();
        let out = simulate(&jobs, 16, &PerformanceDriven);
        assert_eq!(out.completions.len(), 5);
        let mut names: Vec<&str> = out.completions.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["j0", "j1", "j2", "j3", "j4"]);
        // Finish times are non-decreasing.
        for w in out.completions.windows(2) {
            assert!(w[1].finish_ns >= w[0].finish_ns);
        }
    }

    #[test]
    fn more_cpus_never_hurt_makespan() {
        let jobs = vec![
            job("a", 10, 100, SpeedupCurve::amdahl(0.1, 32)),
            job("b", 10, 100, SpeedupCurve::amdahl(0.2, 32)),
        ];
        let m8 = simulate(&jobs, 8, &PerformanceDriven).makespan_ns;
        let m16 = simulate(&jobs, 16, &PerformanceDriven).makespan_ns;
        let m32 = simulate(&jobs, 32, &PerformanceDriven).makespan_ns;
        assert!(m16 <= m8 * 1.001);
        assert!(m32 <= m16 * 1.001);
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpus_rejected() {
        let _ = simulate(&[], 0, &Equipartition);
    }
}
