//! Sense-reversing barrier.
//!
//! Parallel regions in OpenMP-style runtimes end with a barrier: all workers
//! must arrive before any proceeds. A sense-reversing barrier is reusable
//! across consecutive regions without reinitialization — the classic HPC
//! construction (one shared count + a phase "sense" flag each thread
//! compares against its local sense).

use parking_lot::{Condvar, Mutex};

struct Inner {
    count: usize,
    sense: bool,
}

/// A reusable barrier for a fixed party of threads.
pub struct SenseBarrier {
    parties: usize,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl SenseBarrier {
    /// Barrier for `parties` threads.
    ///
    /// # Panics
    /// Panics when `parties == 0`.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        SenseBarrier {
            parties,
            inner: Mutex::new(Inner {
                count: 0,
                sense: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of threads that must arrive per phase.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Arrive and wait for the rest of the party. Returns `true` for exactly
    /// one thread per phase (the "serial thread", last to arrive).
    pub fn wait(&self) -> bool {
        let mut g = self.inner.lock();
        let my_sense = !g.sense;
        g.count += 1;
        if g.count == self.parties {
            // Last arrival flips the sense and releases the phase.
            g.count = 0;
            g.sense = my_sense;
            self.cv.notify_all();
            true
        } else {
            while g.sense != my_sense {
                self.cv.wait(&mut g);
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_party_never_blocks() {
        let b = SenseBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn releases_all_parties() {
        let parties = 4;
        let b = Arc::new(SenseBarrier::new(parties));
        let after = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..parties {
            let b = Arc::clone(&b);
            let after = Arc::clone(&after);
            handles.push(std::thread::spawn(move || {
                b.wait();
                after.fetch_add(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(after.load(Ordering::SeqCst), parties);
    }

    #[test]
    fn exactly_one_serial_thread_per_phase() {
        let parties = 3;
        let phases = 20;
        let b = Arc::new(SenseBarrier::new(parties));
        let serial = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..parties {
            let b = Arc::clone(&b);
            let serial = Arc::clone(&serial);
            handles.push(std::thread::spawn(move || {
                for _ in 0..phases {
                    if b.wait() {
                        serial.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(serial.load(Ordering::SeqCst), phases);
    }

    #[test]
    fn reusable_across_phases_orders_work() {
        // Each thread increments a phase-local cell; the barrier guarantees
        // no thread races ahead a full phase.
        let parties = 4;
        let phases = 10;
        let b = Arc::new(SenseBarrier::new(parties));
        let cells: Arc<Vec<AtomicUsize>> =
            Arc::new((0..phases).map(|_| AtomicUsize::new(0)).collect());
        let mut handles = Vec::new();
        for _ in 0..parties {
            let b = Arc::clone(&b);
            let cells = Arc::clone(&cells);
            handles.push(std::thread::spawn(move || {
                for (i, cell) in cells.iter().enumerate() {
                    cell.fetch_add(1, Ordering::SeqCst);
                    b.wait();
                    // After the barrier every party has contributed.
                    assert_eq!(cell.load(Ordering::SeqCst), parties, "phase {i}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_panics() {
        let _ = SenseBarrier::new(0);
    }
}
