//! Discrete-event virtual-time multiprocessor.
//!
//! Stand-in for the paper's 16-CPU SGI Origin 2000 running the NANOS
//! runtime. The machine executes *loop specifications* (iteration count,
//! per-iteration cost, inherent serial fraction) on a configurable number of
//! CPUs in virtual time, charging fork/join overheads and a memory-
//! contention penalty per extra CPU. It records the active-CPU step function
//! that, sampled at 1 ms, reproduces the paper's Figure 3 trace, and its
//! elapsed times drive the SelfAnalyzer speedup computations — all fully
//! deterministic and independent of the host.

use crate::cpustat::CpuTimeline;
use crate::vclock::VirtualClock;

/// Machine parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Number of CPUs installed (the Origin system in the paper ran up to
    /// 16 CPUs in parallel).
    pub cpus: usize,
    /// Cost of opening a parallel region (thread wake-up), charged once per
    /// parallel loop when more than one CPU participates.
    pub fork_overhead_ns: u64,
    /// Cost of the closing barrier, charged symmetrically.
    pub join_overhead_ns: u64,
    /// Memory/interconnect contention: fractional slowdown of parallel work
    /// per extra participating CPU (`0.02` = 2% per CPU beyond the first).
    pub contention: f64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cpus: 16,
            fork_overhead_ns: 8_000,
            join_overhead_ns: 6_000,
            contention: 0.015,
        }
    }
}

/// A loop to execute: the unit of work the paper's applications issue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopSpec {
    /// Number of loop iterations.
    pub iterations: u64,
    /// Cost of one iteration in nanoseconds.
    pub cost_per_iter_ns: u64,
    /// Fraction of the loop's work that cannot be parallelized (executed on
    /// one CPU before the parallel part opens). In `[0, 1]`.
    pub serial_fraction: f64,
}

impl LoopSpec {
    /// A fully parallel loop.
    pub fn parallel(iterations: u64, cost_per_iter_ns: u64) -> Self {
        LoopSpec {
            iterations,
            cost_per_iter_ns,
            serial_fraction: 0.0,
        }
    }

    /// Total work in CPU-nanoseconds.
    pub fn total_work_ns(&self) -> u64 {
        self.iterations.saturating_mul(self.cost_per_iter_ns)
    }
}

/// A closed interval of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualSpan {
    /// Start of the span (virtual ns).
    pub start_ns: u64,
    /// End of the span (virtual ns).
    pub end_ns: u64,
}

impl VirtualSpan {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// The virtual multiprocessor.
///
/// # Examples
/// ```
/// use par_runtime::machine::{LoopSpec, Machine, MachineConfig};
///
/// let mut m = Machine::new(MachineConfig::default()); // 16 CPUs
/// let loop_spec = LoopSpec::parallel(1_600, 100_000);  // 160 ms of work
/// let t1 = m.predict_loop_ns(&loop_spec, 1);
/// let t16 = m.predict_loop_ns(&loop_spec, 16);
/// assert!(t16 < t1);
/// let span = m.run_loop(&loop_spec, 16); // advances virtual time
/// assert_eq!(span.duration_ns(), t16);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    clock: VirtualClock,
    timeline: CpuTimeline,
}

impl Machine {
    /// Boot a machine; one CPU (the master thread) is active from t = 0.
    pub fn new(config: MachineConfig) -> Self {
        assert!(config.cpus > 0, "machine needs at least one CPU");
        assert!(
            (0.0..1.0).contains(&config.contention) || config.contention == 0.0,
            "contention must be a small fraction"
        );
        let mut timeline = CpuTimeline::new();
        timeline.set(0, 1);
        Machine {
            config,
            clock: VirtualClock::new(),
            timeline,
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> MachineConfig {
        self.config
    }

    /// Current virtual time.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// The recorded active-CPU step function.
    pub fn timeline(&self) -> &CpuTimeline {
        &self.timeline
    }

    /// Execute purely serial work on the master CPU.
    pub fn run_serial(&mut self, work_ns: u64) -> VirtualSpan {
        let start = self.clock.now_ns();
        self.timeline.set(start, 1);
        self.clock.advance(work_ns);
        VirtualSpan {
            start_ns: start,
            end_ns: self.clock.now_ns(),
        }
    }

    /// Predicted elapsed time for `spec` on `cpus` CPUs (pure query; no
    /// virtual time advances). This is the machine's cost model:
    ///
    /// ```text
    /// T(p) = fork + serial + parallel_work / p * (1 + contention * (p-1)) + join
    /// ```
    ///
    /// with fork/join charged only when `p > 1`, and the parallel part
    /// rounded up to whole chunks of iterations (a loop of 10 iterations on
    /// 16 CPUs is bounded by one iteration's cost, not 10/16 of it).
    pub fn predict_loop_ns(&self, spec: &LoopSpec, cpus: usize) -> u64 {
        let p = cpus.clamp(1, self.config.cpus) as u64;
        let total = spec.total_work_ns();
        let serial = (total as f64 * spec.serial_fraction) as u64;
        let parallel_work = total - serial;
        if p == 1 {
            return total;
        }
        // Chunked division: ceil(iterations / p) iterations per CPU.
        let par_iters = spec.iterations - (spec.iterations as f64 * spec.serial_fraction) as u64;
        let chunk_iters = par_iters.div_ceil(p);
        let ideal = chunk_iters.saturating_mul(spec.cost_per_iter_ns);
        let slowdown = 1.0 + self.config.contention * (p - 1) as f64;
        let par_elapsed = (ideal as f64 * slowdown) as u64;
        let _ = parallel_work;
        self.config.fork_overhead_ns + serial + par_elapsed + self.config.join_overhead_ns
    }

    /// Execute `spec` on `cpus` CPUs, advancing virtual time and recording
    /// the CPU-usage transitions (fork ramp, parallel plateau, join).
    pub fn run_loop(&mut self, spec: &LoopSpec, cpus: usize) -> VirtualSpan {
        let p = cpus.clamp(1, self.config.cpus) as u64;
        let start = self.clock.now_ns();
        if p == 1 {
            return self.run_serial(spec.total_work_ns());
        }
        let total = spec.total_work_ns();
        let serial = (total as f64 * spec.serial_fraction) as u64;
        // Fork: master alone while waking the team.
        self.timeline.set(self.clock.now_ns(), 1);
        self.clock.advance(self.config.fork_overhead_ns);
        if serial > 0 {
            self.clock.advance(serial);
        }
        // Parallel plateau.
        let par_iters = spec.iterations - (spec.iterations as f64 * spec.serial_fraction) as u64;
        let chunk_iters = par_iters.div_ceil(p);
        let ideal = chunk_iters.saturating_mul(spec.cost_per_iter_ns);
        let slowdown = 1.0 + self.config.contention * (p - 1) as f64;
        let par_elapsed = (ideal as f64 * slowdown) as u64;
        self.timeline.set(self.clock.now_ns(), p as u32);
        self.clock.advance(par_elapsed);
        // Join barrier: team winds down to the master.
        self.clock.advance(self.config.join_overhead_ns);
        self.timeline.set(self.clock.now_ns(), 1);
        VirtualSpan {
            start_ns: start,
            end_ns: self.clock.now_ns(),
        }
    }

    /// Execute an explicitly shaped parallel phase: `cpus` CPUs active for
    /// exactly `duration_ns`. Used when synthesising traces whose *shape* is
    /// the specification (e.g. the NAS FT CPU-usage pattern of Fig. 3)
    /// rather than derived from a loop cost model.
    pub fn run_phase(&mut self, cpus: usize, duration_ns: u64) -> VirtualSpan {
        let p = cpus.clamp(1, self.config.cpus) as u32;
        let start = self.clock.now_ns();
        self.timeline.set(start, p);
        self.clock.advance(duration_ns);
        self.timeline.set(self.clock.now_ns(), 1);
        VirtualSpan {
            start_ns: start,
            end_ns: self.clock.now_ns(),
        }
    }

    /// Let the machine sit idle (master polling) for `ns`.
    pub fn idle(&mut self, ns: u64) -> VirtualSpan {
        let start = self.clock.now_ns();
        self.timeline.set(start, 1);
        self.clock.advance(ns);
        VirtualSpan {
            start_ns: start,
            end_ns: self.clock.now_ns(),
        }
    }

    /// Sample the recorded timeline at `period_ns` (1 ms in the paper).
    pub fn sample_cpu_trace(&self, period_ns: u64) -> Vec<f64> {
        self.timeline.sample(period_ns)
    }

    /// Speedup predicted by the cost model: `T(1) / T(p)`.
    pub fn predict_speedup(&self, spec: &LoopSpec, cpus: usize) -> f64 {
        let t1 = self.predict_loop_ns(spec, 1) as f64;
        let tp = self.predict_loop_ns(spec, cpus) as f64;
        if tp == 0.0 {
            1.0
        } else {
            t1 / tp
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(MachineConfig::default())
    }

    #[test]
    fn serial_work_advances_clock() {
        let mut m = machine();
        let span = m.run_serial(1_000);
        assert_eq!(span.duration_ns(), 1_000);
        assert_eq!(m.now_ns(), 1_000);
    }

    #[test]
    fn single_cpu_loop_has_no_overhead() {
        let mut m = machine();
        let spec = LoopSpec::parallel(100, 1_000);
        let span = m.run_loop(&spec, 1);
        assert_eq!(span.duration_ns(), 100_000);
    }

    #[test]
    fn parallel_loop_speeds_up() {
        let m = machine();
        let spec = LoopSpec::parallel(1_600, 100_000); // 160 ms of work
        let t1 = m.predict_loop_ns(&spec, 1);
        let t4 = m.predict_loop_ns(&spec, 4);
        let t16 = m.predict_loop_ns(&spec, 16);
        assert!(t4 < t1, "{t4} !< {t1}");
        assert!(t16 < t4, "{t16} !< {t4}");
        let s16 = m.predict_speedup(&spec, 16);
        assert!(s16 > 8.0, "speedup {s16} too low");
        assert!(s16 <= 16.0, "speedup {s16} super-linear");
    }

    #[test]
    fn speedup_saturates_with_serial_fraction() {
        let m = machine();
        let spec = LoopSpec {
            iterations: 1_600,
            cost_per_iter_ns: 100_000,
            serial_fraction: 0.2,
        };
        let s16 = m.predict_speedup(&spec, 16);
        // Amdahl bound: 1 / (0.2 + 0.8/16) = 4
        assert!(s16 < 4.2, "speedup {s16} exceeds Amdahl bound");
        assert!(s16 > 2.5, "speedup {s16} unreasonably low");
    }

    #[test]
    fn tiny_loop_bounded_by_one_iteration() {
        let m = machine();
        let spec = LoopSpec::parallel(4, 1_000_000);
        // On 16 CPUs: 4 chunks of 1 iteration; elapsed >= 1 iteration cost.
        let t16 = m.predict_loop_ns(&spec, 16);
        assert!(t16 >= 1_000_000);
        // Far from work/16.
        assert!(t16 >= spec.total_work_ns() / 4);
    }

    #[test]
    fn overhead_makes_small_loops_slower_in_parallel() {
        let m = Machine::new(MachineConfig {
            fork_overhead_ns: 50_000,
            join_overhead_ns: 50_000,
            ..MachineConfig::default()
        });
        let spec = LoopSpec::parallel(16, 1_000); // only 16 µs of work
        let t1 = m.predict_loop_ns(&spec, 1);
        let t16 = m.predict_loop_ns(&spec, 16);
        assert!(t16 > t1, "tiny loop should lose in parallel: {t16} !> {t1}");
    }

    #[test]
    fn run_loop_records_cpu_plateau() {
        let mut m = machine();
        let spec = LoopSpec::parallel(1_600, 10_000);
        let span = m.run_loop(&spec, 8);
        // During the plateau 8 CPUs are active.
        let mid = span.start_ns + span.duration_ns() / 2;
        assert_eq!(m.timeline().at(mid), 8);
        // After the loop, back to the master.
        assert_eq!(m.timeline().at(span.end_ns), 1);
    }

    #[test]
    fn cpus_clamped_to_machine_size() {
        let m = Machine::new(MachineConfig {
            cpus: 4,
            ..MachineConfig::default()
        });
        let spec = LoopSpec::parallel(400, 10_000);
        assert_eq!(m.predict_loop_ns(&spec, 99), m.predict_loop_ns(&spec, 4));
    }

    #[test]
    fn sampled_trace_shows_open_close_pattern() {
        let mut m = machine();
        let spec = LoopSpec::parallel(16_000, 10_000); // 160 ms on 1 cpu
        for _ in 0..3 {
            m.run_serial(5_000_000); // 5 ms serial
            m.run_loop(&spec, 16);
        }
        let trace = m.sample_cpu_trace(1_000_000);
        let max = trace.iter().copied().fold(f64::MIN, f64::max);
        let min = trace.iter().copied().fold(f64::MAX, f64::min);
        assert_eq!(max, 16.0);
        assert_eq!(min, 1.0);
    }

    #[test]
    fn predict_matches_run_elapsed() {
        let mut m = machine();
        let spec = LoopSpec {
            iterations: 1_000,
            cost_per_iter_ns: 42_000,
            serial_fraction: 0.1,
        };
        for p in [1usize, 2, 5, 16] {
            let predicted = m.predict_loop_ns(&spec, p);
            let span = m.run_loop(&spec, p);
            assert_eq!(span.duration_ns(), predicted, "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpus_panics() {
        let _ = Machine::new(MachineConfig {
            cpus: 0,
            ..MachineConfig::default()
        });
    }
}
