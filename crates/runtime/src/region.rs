//! Parallel-region bookkeeping.
//!
//! OpenMP compilers "encapsulate code of parallel loops in functions" (paper
//! §5.1, Fig. 5); at run time each call opens a parallel region identified
//! by the address of that function. [`RegionTracker`] records the open/close
//! event stream — including nesting — and exposes the address sequence that
//! the DITools layer forwards to the DPD.

/// One open/close event on the region stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionEvent {
    /// A parallel region opened.
    Open {
        /// Identifier (function address) of the encapsulated loop.
        addr: i64,
        /// Virtual or wall time of the event, nanoseconds.
        t_ns: u64,
        /// Nesting depth *after* opening (1 = outermost).
        depth: usize,
    },
    /// A parallel region closed.
    Close {
        /// Identifier (function address) of the encapsulated loop.
        addr: i64,
        /// Virtual or wall time of the event, nanoseconds.
        t_ns: u64,
        /// Nesting depth *before* closing.
        depth: usize,
    },
}

/// Tracks open parallel regions and accumulates the event log.
#[derive(Debug, Clone, Default)]
pub struct RegionTracker {
    stack: Vec<i64>,
    events: Vec<RegionEvent>,
}

impl RegionTracker {
    /// Fresh tracker with no open regions.
    pub fn new() -> Self {
        RegionTracker::default()
    }

    /// Open a region for the loop function at `addr`.
    pub fn open(&mut self, addr: i64, t_ns: u64) {
        self.stack.push(addr);
        self.events.push(RegionEvent::Open {
            addr,
            t_ns,
            depth: self.stack.len(),
        });
    }

    /// Close the innermost open region, returning its address.
    ///
    /// # Panics
    /// Panics when no region is open (unbalanced close).
    pub fn close(&mut self, t_ns: u64) -> i64 {
        let depth = self.stack.len();
        let addr = self
            .stack
            .pop()
            .expect("RegionTracker::close without open region");
        self.events.push(RegionEvent::Close { addr, t_ns, depth });
        addr
    }

    /// Current nesting depth (0 = no region open).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Address of the innermost open region.
    pub fn current(&self) -> Option<i64> {
        self.stack.last().copied()
    }

    /// The full event log.
    pub fn events(&self) -> &[RegionEvent] {
        &self.events
    }

    /// The sequence of region-open addresses — the data stream the paper
    /// passes to the DPD ("the address of parallel loops is the value that
    /// we pass to the DPD", §5.1).
    pub fn address_stream(&self) -> Vec<i64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                RegionEvent::Open { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect()
    }

    /// `true` when every opened region has been closed.
    pub fn is_balanced(&self) -> bool {
        self.stack.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_roundtrip() {
        let mut t = RegionTracker::new();
        assert_eq!(t.depth(), 0);
        t.open(0x100, 10);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.current(), Some(0x100));
        let addr = t.close(20);
        assert_eq!(addr, 0x100);
        assert!(t.is_balanced());
    }

    #[test]
    fn nesting_depths_recorded() {
        let mut t = RegionTracker::new();
        t.open(0x1, 0);
        t.open(0x2, 1);
        t.close(2);
        t.close(3);
        match t.events() {
            [RegionEvent::Open { depth: 1, .. }, RegionEvent::Open { depth: 2, .. }, RegionEvent::Close {
                depth: 2,
                addr: 0x2,
                ..
            }, RegionEvent::Close {
                depth: 1,
                addr: 0x1,
                ..
            }] => {}
            other => panic!("unexpected events: {other:?}"),
        }
    }

    #[test]
    fn address_stream_is_open_order() {
        let mut t = RegionTracker::new();
        for addr in [0x10i64, 0x20, 0x30] {
            t.open(addr, 0);
            t.close(0);
        }
        assert_eq!(t.address_stream(), vec![0x10, 0x20, 0x30]);
    }

    #[test]
    #[should_panic(expected = "without open region")]
    fn unbalanced_close_panics() {
        let mut t = RegionTracker::new();
        t.close(0);
    }

    #[test]
    fn current_is_innermost() {
        let mut t = RegionTracker::new();
        t.open(0x1, 0);
        t.open(0x2, 0);
        assert_eq!(t.current(), Some(0x2));
        t.close(0);
        assert_eq!(t.current(), Some(0x1));
    }
}
