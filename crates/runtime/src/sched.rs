//! Processor-allocation policies.
//!
//! The paper motivates the DPD + SelfAnalyzer pipeline with scheduling: "The
//! speedup calculated can be used to improve the processor allocation
//! scheduling policy, providing a great benefit as we have shown in
//! \[Corbalan2000\]" (§5.1). This module implements the two policies that
//! comparison needs: naive equipartition, and the performance-driven policy
//! that feeds run-time speedup measurements into a marginal-gain allocator.

/// A measured (or predicted) speedup curve for one application.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupCurve {
    /// `(cpus, speedup)` points, cpus strictly ascending and starting at 1.
    points: Vec<(usize, f64)>,
}

impl SpeedupCurve {
    /// Build from measured points. Points are sorted; a `(1, 1.0)` anchor is
    /// inserted when missing.
    pub fn new(mut points: Vec<(usize, f64)>) -> Self {
        points.retain(|&(p, _)| p >= 1);
        points.sort_by_key(|&(p, _)| p);
        points.dedup_by_key(|&mut (p, _)| p);
        if points.first().map(|&(p, _)| p) != Some(1) {
            points.insert(0, (1, 1.0));
        }
        SpeedupCurve { points }
    }

    /// An ideal (linear) speedup curve up to `max_cpus`.
    pub fn linear(max_cpus: usize) -> Self {
        SpeedupCurve::new((1..=max_cpus).map(|p| (p, p as f64)).collect())
    }

    /// An Amdahl curve with serial fraction `f`, up to `max_cpus`.
    pub fn amdahl(f: f64, max_cpus: usize) -> Self {
        SpeedupCurve::new(
            (1..=max_cpus)
                .map(|p| (p, 1.0 / (f + (1.0 - f) / p as f64)))
                .collect(),
        )
    }

    /// Speedup at `cpus` (linear interpolation; clamped at the ends).
    pub fn at(&self, cpus: usize) -> f64 {
        if self.points.is_empty() {
            return 1.0;
        }
        let c = cpus.max(1);
        match self.points.binary_search_by_key(&c, |&(p, _)| p) {
            Ok(i) => self.points[i].1,
            Err(0) => self.points[0].1,
            Err(i) if i == self.points.len() => self.points[i - 1].1,
            Err(i) => {
                let (p0, s0) = self.points[i - 1];
                let (p1, s1) = self.points[i];
                let t = (c - p0) as f64 / (p1 - p0) as f64;
                s0 + (s1 - s0) * t
            }
        }
    }

    /// Marginal speedup gain of going from `cpus` to `cpus + 1`.
    pub fn marginal(&self, cpus: usize) -> f64 {
        self.at(cpus + 1) - self.at(cpus)
    }

    /// Largest CPU count with a recorded point.
    pub fn max_cpus(&self) -> usize {
        self.points.last().map(|&(p, _)| p).unwrap_or(1)
    }
}

/// An allocation of CPUs to applications.
pub type Allocation = Vec<usize>;

/// A policy mapping speedup curves to a CPU allocation.
pub trait AllocationPolicy {
    /// Allocate `total_cpus` among the applications; every running app gets
    /// at least one CPU when `total_cpus >= apps.len()`.
    fn allocate(&self, apps: &[SpeedupCurve], total_cpus: usize) -> Allocation;

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Naive equal split (the baseline the paper's processor-allocation work
/// compares against).
#[derive(Debug, Clone, Copy, Default)]
pub struct Equipartition;

impl AllocationPolicy for Equipartition {
    fn allocate(&self, apps: &[SpeedupCurve], total_cpus: usize) -> Allocation {
        if apps.is_empty() {
            return Vec::new();
        }
        let n = apps.len();
        let base = total_cpus / n;
        let extra = total_cpus % n;
        (0..n).map(|i| base + usize::from(i < extra)).collect()
    }

    fn name(&self) -> &'static str {
        "equipartition"
    }
}

/// Performance-driven allocation: greedy marginal-gain water-filling using
/// the run-time measured speedup curves (\[Corbalan2000\]).
#[derive(Debug, Clone, Copy, Default)]
pub struct PerformanceDriven;

impl AllocationPolicy for PerformanceDriven {
    fn allocate(&self, apps: &[SpeedupCurve], total_cpus: usize) -> Allocation {
        if apps.is_empty() {
            return Vec::new();
        }
        let n = apps.len();
        let mut alloc = vec![0usize; n];
        let mut remaining = total_cpus;
        // Every app gets one CPU first (no starvation).
        for a in alloc.iter_mut() {
            if remaining == 0 {
                break;
            }
            *a = 1;
            remaining -= 1;
        }
        // Hand out the rest one CPU at a time to the best marginal gain.
        while remaining > 0 {
            let mut best: Option<(usize, f64)> = None;
            for (i, curve) in apps.iter().enumerate() {
                if alloc[i] == 0 {
                    continue;
                }
                if alloc[i] >= curve.max_cpus() {
                    continue; // no measured benefit beyond this point
                }
                let gain = curve.marginal(alloc[i]);
                match best {
                    None => best = Some((i, gain)),
                    Some((_, g)) if gain > g => best = Some((i, gain)),
                    _ => {}
                }
            }
            match best {
                Some((i, gain)) if gain > 0.0 => {
                    alloc[i] += 1;
                    remaining -= 1;
                }
                // No app benefits from more CPUs: stop handing them out.
                _ => break,
            }
        }
        alloc
    }

    fn name(&self) -> &'static str {
        "performance-driven"
    }
}

/// Total system speedup achieved by an allocation (the figure of merit used
/// when comparing policies).
pub fn total_speedup(apps: &[SpeedupCurve], alloc: &[usize]) -> f64 {
    apps.iter()
        .zip(alloc)
        .map(|(c, &p)| if p == 0 { 0.0 } else { c.at(p) })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_interpolates_and_clamps() {
        let c = SpeedupCurve::new(vec![(1, 1.0), (4, 3.0), (8, 4.0)]);
        assert_eq!(c.at(1), 1.0);
        assert_eq!(c.at(4), 3.0);
        assert!((c.at(2) - (1.0 + 2.0 / 3.0)).abs() < 1e-12);
        assert_eq!(c.at(100), 4.0); // clamped
        assert_eq!(c.at(0), 1.0); // clamped low
    }

    #[test]
    fn curve_inserts_unit_anchor() {
        let c = SpeedupCurve::new(vec![(4, 3.0)]);
        assert_eq!(c.at(1), 1.0);
    }

    #[test]
    fn amdahl_curve_saturates() {
        let c = SpeedupCurve::amdahl(0.25, 64);
        assert!(c.at(64) < 4.0);
        assert!(c.at(64) > 3.0);
    }

    #[test]
    fn equipartition_splits_evenly() {
        let apps = vec![SpeedupCurve::linear(16); 3];
        let alloc = Equipartition.allocate(&apps, 16);
        assert_eq!(alloc.iter().sum::<usize>(), 16);
        assert_eq!(alloc, vec![6, 5, 5]);
    }

    #[test]
    fn performance_driven_favors_scalable_app() {
        // App A scales linearly; app B saturates at 2 CPUs.
        let apps = vec![
            SpeedupCurve::linear(16),
            SpeedupCurve::new(vec![(1, 1.0), (2, 1.8), (4, 1.9), (16, 1.9)]),
        ];
        let alloc = PerformanceDriven.allocate(&apps, 16);
        assert!(alloc[0] > alloc[1], "alloc: {alloc:?}");
        assert!(alloc[0] >= 12, "scalable app should dominate: {alloc:?}");
        // And it beats equipartition on total speedup.
        let eq = Equipartition.allocate(&apps, 16);
        assert!(total_speedup(&apps, &alloc) > total_speedup(&apps, &eq));
    }

    #[test]
    fn performance_driven_no_starvation() {
        let apps = vec![SpeedupCurve::linear(16), SpeedupCurve::linear(16)];
        let alloc = PerformanceDriven.allocate(&apps, 8);
        assert!(alloc.iter().all(|&p| p >= 1));
        assert_eq!(alloc.iter().sum::<usize>(), 8);
    }

    #[test]
    fn performance_driven_stops_when_no_gain() {
        // Both apps saturate at 2 CPUs; with 16 available the policy must
        // not hand out useless CPUs.
        let flat = SpeedupCurve::new(vec![(1, 1.0), (2, 1.5), (16, 1.5)]);
        let apps = vec![flat.clone(), flat];
        let alloc = PerformanceDriven.allocate(&apps, 16);
        assert!(alloc.iter().sum::<usize>() < 16, "alloc: {alloc:?}");
    }

    #[test]
    fn empty_apps_empty_allocation() {
        assert!(Equipartition.allocate(&[], 8).is_empty());
        assert!(PerformanceDriven.allocate(&[], 8).is_empty());
    }

    #[test]
    fn fewer_cpus_than_apps() {
        let apps = vec![SpeedupCurve::linear(4); 4];
        let alloc = PerformanceDriven.allocate(&apps, 2);
        assert_eq!(alloc.iter().sum::<usize>(), 2);
    }

    #[test]
    fn policy_names() {
        assert_eq!(Equipartition.name(), "equipartition");
        assert_eq!(PerformanceDriven.name(), "performance-driven");
    }
}
