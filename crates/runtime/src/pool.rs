//! A work-sharing thread pool.
//!
//! Persistent worker threads consume jobs from a shared channel — the
//! substrate on which application-level tasks run. Parallel *loops* (the
//! OpenMP-style construct the paper's applications are built from) use the
//! scoped implementation in [`crate::loops`], which can borrow from the
//! caller's stack; this pool serves free-standing `'static` jobs and keeps
//! the live CPU-usage counter (paper Fig. 3) up to date.

use crate::cpustat::CpuUsage;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    usage: Arc<CpuUsage>,
    pending: AtomicUsize,
    /// Threads currently blocked in [`ThreadPool::wait_idle`]. Lets the
    /// worker fast path skip the idle lock entirely when nobody waits —
    /// the common case when jobs trickle in one at a time.
    waiters: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

/// A fixed-size pool of worker threads executing submitted jobs.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ThreadPool {
    /// Spawn a pool with `threads` workers.
    ///
    /// # Panics
    /// Panics when `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "thread pool needs at least one worker");
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = unbounded();
        let shared = Arc::new(Shared {
            usage: CpuUsage::new(),
            pending: AtomicUsize::new(0),
            waiters: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        });
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = receiver.clone();
            let sh = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("par-runtime-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            sh.usage.enter();
                            job();
                            sh.usage.leave();
                            // SeqCst pairs with wait_idle's registration:
                            // either this decrement-to-zero sees the
                            // registered waiter, or the waiter's pending
                            // check sees the zero (store-buffer case ruled
                            // out by the single total order).
                            if sh.pending.fetch_sub(1, Ordering::SeqCst) == 1
                                && sh.waiters.load(Ordering::SeqCst) > 0
                            {
                                let _g = sh.idle_lock.lock();
                                sh.idle_cv.notify_all();
                            }
                        }
                    })
                    .expect("failed to spawn pool worker"),
            );
        }
        ThreadPool {
            sender: Some(sender),
            workers,
            shared,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// The live CPU-usage counter updated by the workers.
    pub fn usage(&self) -> Arc<CpuUsage> {
        Arc::clone(&self.shared.usage)
    }

    /// Submit a job for execution.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.sender
            .as_ref()
            .expect("pool already shut down")
            .send(Box::new(job))
            .expect("pool workers exited early");
    }

    /// Number of jobs submitted but not yet finished.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }

    /// Block until every submitted job has finished.
    ///
    /// Condvar-based: the waiter parks on the pool's idle condition
    /// variable and is woken by the worker that completes the last pending
    /// job — no polling, no spinning, no CPU burned while quiescing.
    /// Workers only touch the idle lock when a waiter is registered, so
    /// the per-job completion path stays lock-free when nothing waits.
    pub fn wait_idle(&self) {
        if self.shared.pending.load(Ordering::SeqCst) == 0 {
            return;
        }
        // Register before re-checking: the worker reads `waiters` *after*
        // its decrement, so (SeqCst) either it sees the registration and
        // notifies, or the re-check below sees pending == 0.
        self.shared.waiters.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.shared.idle_lock.lock();
        while self.shared.pending.load(Ordering::SeqCst) != 0 {
            self.shared.idle_cv.wait(&mut guard);
        }
        drop(guard);
        self.shared.waiters.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel stops the workers after draining.
        self.sender.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn wait_idle_on_empty_pool_returns() {
        let pool = ThreadPool::new(1);
        pool.wait_idle();
    }

    #[test]
    fn usage_returns_to_zero() {
        let pool = ThreadPool::new(2);
        let usage = pool.usage();
        for _ in 0..10 {
            pool.execute(std::thread::yield_now);
        }
        pool.wait_idle();
        assert_eq!(usage.active(), 0);
        assert!(usage.peak() >= 1);
    }

    #[test]
    fn concurrent_waiters_all_release() {
        let pool = Arc::new(ThreadPool::new(2));
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..200 {
            let d = Arc::clone(&done);
            pool.execute(move || {
                d.fetch_add(1, Ordering::Relaxed);
            });
        }
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    pool.wait_idle();
                    assert_eq!(done.load(Ordering::Relaxed), 200);
                })
            })
            .collect();
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn wait_idle_fast_path_when_already_idle() {
        let pool = ThreadPool::new(2);
        for _ in 0..10 {
            pool.execute(|| {});
        }
        pool.wait_idle();
        // Second wait takes the no-waiter fast path (pending == 0).
        pool.wait_idle();
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn drop_joins_workers() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(3);
            for _ in 0..50 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait_idle();
        } // drop here
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn threads_reports_size() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.threads(), 4);
    }
}
