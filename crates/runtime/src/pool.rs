//! A work-sharing thread pool.
//!
//! Persistent worker threads consume jobs from a shared channel — the
//! substrate on which application-level tasks run. Parallel *loops* (the
//! OpenMP-style construct the paper's applications are built from) use the
//! scoped implementation in [`crate::loops`], which can borrow from the
//! caller's stack; this pool serves free-standing `'static` jobs and keeps
//! the live CPU-usage counter (paper Fig. 3) up to date.

use crate::cpustat::CpuUsage;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    usage: Arc<CpuUsage>,
    pending: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

/// A fixed-size pool of worker threads executing submitted jobs.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ThreadPool {
    /// Spawn a pool with `threads` workers.
    ///
    /// # Panics
    /// Panics when `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "thread pool needs at least one worker");
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = unbounded();
        let shared = Arc::new(Shared {
            usage: CpuUsage::new(),
            pending: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        });
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = receiver.clone();
            let sh = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("par-runtime-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            sh.usage.enter();
                            job();
                            sh.usage.leave();
                            if sh.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                                let _g = sh.idle_lock.lock();
                                sh.idle_cv.notify_all();
                            }
                        }
                    })
                    .expect("failed to spawn pool worker"),
            );
        }
        ThreadPool {
            sender: Some(sender),
            workers,
            shared,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// The live CPU-usage counter updated by the workers.
    pub fn usage(&self) -> Arc<CpuUsage> {
        Arc::clone(&self.shared.usage)
    }

    /// Submit a job for execution.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.sender
            .as_ref()
            .expect("pool already shut down")
            .send(Box::new(job))
            .expect("pool workers exited early");
    }

    /// Number of jobs submitted but not yet finished.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }

    /// Block until every submitted job has finished.
    pub fn wait_idle(&self) {
        let mut guard = self.shared.idle_lock.lock();
        while self.shared.pending.load(Ordering::Acquire) != 0 {
            self.shared.idle_cv.wait(&mut guard);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel stops the workers after draining.
        self.sender.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn wait_idle_on_empty_pool_returns() {
        let pool = ThreadPool::new(1);
        pool.wait_idle();
    }

    #[test]
    fn usage_returns_to_zero() {
        let pool = ThreadPool::new(2);
        let usage = pool.usage();
        for _ in 0..10 {
            pool.execute(std::thread::yield_now);
        }
        pool.wait_idle();
        assert_eq!(usage.active(), 0);
        assert!(usage.peak() >= 1);
    }

    #[test]
    fn drop_joins_workers() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(3);
            for _ in 0..50 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait_idle();
        } // drop here
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn threads_reports_size() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.threads(), 4);
    }
}
