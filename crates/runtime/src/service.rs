//! Sharded multi-stream DPD service.
//!
//! [`MultiStreamDpd`] scales the single-stream detector *out*: it owns `S`
//! shards, each a worker thread holding a [`StreamTable`] (a keyed map of
//! independent per-stream detectors), and routes interleaved
//! `(StreamId, &[i64])` record batches to the owning shard by the stable
//! hash [`shard_of`]. Each shard drains its queue in FIFO order and emits
//! `(StreamId, SegmentEvent)` observations into an aggregated event sink.
//!
//! * **Sink.** Workers publish through `std::sync::mpsc`, whose send path
//!   is the lock-free linked-list queue std adopted from crossbeam-channel
//!   (Rust ≥ 1.67): producers never take a lock, and the service side
//!   drains with the non-blocking [`MultiStreamDpd::drain`].
//! * **Rollups.** Per-shard [`ShardStats`] (streams, samples, events, queue
//!   depth, ...) are published into a `dpd_obs` metrics [`Registry`] and
//!   read back without synchronizing with the workers via
//!   [`MultiStreamDpd::snapshot`] — the same cells a live `/metrics`
//!   scrape renders, so drain summaries and scrapes cannot drift (metric
//!   names in `docs/OBSERVABILITY.md`).
//! * **Determinism.** `shards: 0` selects an inline single-threaded mode
//!   that processes every record synchronously on the calling thread. It is
//!   the reference implementation: for any shard count and any interleaving
//!   of per-stream batches, the sharded service produces exactly the same
//!   per-stream event sequences (property-tested in
//!   `tests/proptest_multistream.rs`). This holds because a stream is owned
//!   by exactly one shard, shard queues are FIFO, and every `StreamTable`
//!   decision depends only on the stream's own samples and the global
//!   sample clock carried with each batch.
//!
//! * **Standing queries.** Queries registered on the builder attach to
//!   every shard's table; deltas merge through the same sink and drain
//!   with [`MultiStreamDpd::drain_query_deltas`]. Per-stream queries are
//!   shard-invariant. Join queries are **partition-local** — a pair can
//!   only match inside one shard, exactly like co-partitioned joins in
//!   keyed stream processors — so global joins run inline (`shards(0)`)
//!   or on a single partition (`shards(1)`).
//!
//! Stream lifecycle: streams are created lazily on first sample, evicted
//! after sitting idle past a sample-count watermark, and closed explicitly
//! (or by [`MultiStreamDpd::finish`]) with a final segmentation flush event.
//!
//! * **Durability.** [`MultiStreamDpd::checkpoint`] quiesces every shard,
//!   snapshots the full detector state of the whole service (bit-exact,
//!   via `dpd_core::snapshot`) and writes it to a single-file pile
//!   container atomically (write to `<path>.tmp`, fsync, rename, fsync
//!   the directory). [`MultiStreamDpd::resume`] rebuilds the service from
//!   that file and continues emitting exactly the event suffix an
//!   uninterrupted run would have emitted.

use crossbeam::channel::{unbounded, Sender};
use dpd_core::pipeline::{BuildError, DpdBuilder, DpdEvent, EventSink};
use dpd_core::query::{QueryDelta, QuerySpec};
use dpd_core::shard::{shard_of, MultiStreamEvent, StreamId, StreamTable, TableConfig, TableStats};
use dpd_core::snapshot::{
    Restore, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, TAG_SERVICE,
};
use dpd_obs::{Counter, Gauge, Histogram, Registry, SelfTracer};
use dpd_trace::pile::{recover, EpochMarker, PileError, PileFrame, PileWriter};
use std::fs::{self, File};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of a [`MultiStreamDpd`] service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Worker shards. `0` = deterministic inline mode (no threads): every
    /// record is processed synchronously on the calling thread.
    pub shards: usize,
    /// Per-shard stream-table configuration (detector + eviction).
    pub table: TableConfig,
    /// Samples of shard-local traffic between idle-stream memory sweeps
    /// (`0` = sweep only at [`MultiStreamDpd::finish`]). Sweeps reclaim
    /// memory early but never change emitted events.
    pub sweep_every: u64,
    /// Standing queries attached to every shard's table, in registration
    /// order (empty = no query engine; see `dpd_core::query`).
    pub queries: Vec<QuerySpec>,
}

impl ServiceConfig {
    /// Assemble a service configuration from the unified builder: the
    /// builder is the per-stream factory every shard clones. Requires
    /// [`DpdBuilder::shards`] (`shards(0)` selects inline mode).
    pub fn from_builder(builder: &DpdBuilder) -> Result<Self, BuildError> {
        let spec = builder.service_spec()?;
        Ok(ServiceConfig {
            shards: spec.shards,
            table: spec.table,
            sweep_every: spec.sweep_every,
            queries: spec.queries,
        })
    }

    /// `shards` workers, detector window `n`, no eviction.
    #[deprecated(note = "use MultiStreamDpd::from_builder(DpdBuilder::new().window(n)\
                         .shards(shards)) — see the README migration table")]
    pub fn with_window(shards: usize, n: usize) -> Self {
        ServiceConfig {
            shards,
            table: table_defaults(n, 0, 0),
            sweep_every: 0,
            queries: Vec::new(),
        }
    }

    /// Same, with an idle-eviction watermark (in global samples).
    #[deprecated(note = "use MultiStreamDpd::from_builder(DpdBuilder::new().window(n)\
                         .evict_after(samples).shards(shards)) — see the README migration table")]
    pub fn with_eviction(shards: usize, n: usize, evict_after: u64) -> Self {
        ServiceConfig {
            shards,
            table: table_defaults(n, evict_after, 0),
            sweep_every: if evict_after == 0 { 0 } else { evict_after * 4 },
            queries: Vec::new(),
        }
    }

    /// `shards` workers with opt-in per-stream forecasting at horizon `h`
    /// (detector window `n`, no eviction). Forecast accuracy rolls up into
    /// [`ShardStats::forecast_checked`] / [`ShardStats::forecast_hits`].
    #[deprecated(note = "use MultiStreamDpd::from_builder(DpdBuilder::new().window(n)\
                         .forecast(h).shards(shards)) — see the README migration table")]
    pub fn with_forecast(shards: usize, n: usize, h: usize) -> Self {
        ServiceConfig {
            shards,
            table: table_defaults(n, 0, h),
            sweep_every: 0,
            queries: Vec::new(),
        }
    }
}

/// Builder-equivalent table defaults for the deprecated shims (kept
/// bit-identical to what `DpdBuilder` assembles).
fn table_defaults(n: usize, evict_after: u64, forecast_horizon: usize) -> TableConfig {
    let mut b = DpdBuilder::new().window(n).keyed();
    if evict_after > 0 {
        b = b.evict_after(evict_after);
    }
    if forecast_horizon > 0 {
        b = b.forecast(forecast_horizon);
    }
    b.table_config().expect("shim options are coherent")
}

/// Point-in-time rollup of one shard (or of the inline table).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Live streams held by the shard (hot + cold tiers).
    pub streams: u64,
    /// The cold-summary subset of `streams`.
    pub cold: u64,
    /// Samples ingested by the shard.
    pub samples: u64,
    /// Segmentation events emitted (including close flushes).
    pub events: u64,
    /// Streams evicted by the idle watermark.
    pub evicted: u64,
    /// Streams explicitly closed.
    pub closed: u64,
    /// Hot slots demoted to cold summaries (watermark or memory budget).
    pub demoted: u64,
    /// Cold summaries re-promoted to hot on returning samples.
    pub promoted: u64,
    /// Record batches routed to the shard and not yet processed.
    pub queue_depth: u64,
    /// Record batches fully processed.
    pub batches: u64,
    /// Forecasts scored against an arrived sample (`0` unless the table
    /// config enables forecasting).
    pub forecast_checked: u64,
    /// Scored forecasts that matched exactly.
    pub forecast_hits: u64,
    /// Standing-query `Enter` deltas emitted (`0` unless queries are
    /// registered).
    pub query_enters: u64,
    /// Standing-query `Exit` deltas emitted.
    pub query_exits: u64,
}

impl ShardStats {
    fn add(&mut self, other: &ShardStats) {
        self.streams += other.streams;
        self.cold += other.cold;
        self.samples += other.samples;
        self.events += other.events;
        self.evicted += other.evicted;
        self.closed += other.closed;
        self.demoted += other.demoted;
        self.promoted += other.promoted;
        self.queue_depth += other.queue_depth;
        self.batches += other.batches;
        self.forecast_checked += other.forecast_checked;
        self.forecast_hits += other.forecast_hits;
        self.query_enters += other.query_enters;
        self.query_exits += other.query_exits;
    }

    /// The single table→shard accumulation point. Both rollup paths — the
    /// inline `snapshot()` arm and the worker-side `publish` refresh — map
    /// a [`TableStats`] through here, so the two can never drift
    /// field-by-field (asserted in `tests/proptest_multistream.rs`).
    /// Queue depth and batch counts are shard-frontend concerns and start
    /// at zero.
    pub fn from_table(t: &TableStats) -> Self {
        ShardStats {
            streams: t.streams,
            cold: t.cold,
            samples: t.samples,
            events: t.events,
            evicted: t.evicted,
            closed: t.closed,
            demoted: t.demoted,
            promoted: t.promoted,
            queue_depth: 0,
            batches: 0,
            forecast_checked: t.forecast_checked,
            forecast_hits: t.forecast_hits,
            query_enters: t.query_enters,
            query_exits: t.query_exits,
        }
    }

    /// Exact-match rate of scored forecasts; `None` before any check.
    pub fn forecast_hit_rate(&self) -> Option<f64> {
        (self.forecast_checked > 0)
            .then(|| self.forecast_hits as f64 / self.forecast_checked as f64)
    }
}

/// Snapshot of the whole service: one [`ShardStats`] per shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceSnapshot {
    /// Per-shard rollups (a single entry in inline mode).
    pub shards: Vec<ShardStats>,
}

impl ServiceSnapshot {
    /// Sum over all shards.
    pub fn total(&self) -> ShardStats {
        let mut t = ShardStats::default();
        for s in &self.shards {
            t.add(s);
        }
        t
    }
}

/// Errors produced by [`MultiStreamDpd::checkpoint`] and
/// [`MultiStreamDpd::resume`].
///
/// `#[non_exhaustive]`: downstream matches must carry a wildcard arm.
/// Every variant renders a lowercase, period-free
/// [`Display`](core::fmt::Display) message (asserted by a unit test).
#[non_exhaustive]
#[derive(Debug)]
pub enum CheckpointError {
    /// A filesystem operation outside the pile layer failed (read,
    /// rename, directory fsync).
    Io(std::io::Error),
    /// The checkpoint pile container could not be written or decoded.
    Pile(PileError),
    /// The embedded state snapshot is truncated, malformed, or from an
    /// incompatible version.
    Snapshot(SnapshotError),
    /// The builder passed to [`MultiStreamDpd::resume`] does not describe
    /// a coherent service.
    Build(BuildError),
    /// The recovered pile prefix holds no checkpoint frame.
    NoCheckpoint,
    /// The checkpointed service disagrees with the builder's
    /// configuration (`what` names the first mismatching option).
    ConfigMismatch {
        /// Which configuration aspect disagreed.
        what: &'static str,
    },
}

impl core::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint file io failure: {e}"),
            CheckpointError::Pile(e) => write!(f, "{e}"),
            CheckpointError::Snapshot(e) => write!(f, "{e}"),
            CheckpointError::Build(e) => write!(f, "{e}"),
            CheckpointError::NoCheckpoint => {
                write!(f, "no checkpoint frame in the recovered pile prefix")
            }
            CheckpointError::ConfigMismatch { what } => {
                write!(f, "checkpoint does not match the builder: {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Pile(e) => Some(e),
            CheckpointError::Snapshot(e) => Some(e),
            CheckpointError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<PileError> for CheckpointError {
    fn from(e: PileError) -> Self {
        CheckpointError::Pile(e)
    }
}

impl From<SnapshotError> for CheckpointError {
    fn from(e: SnapshotError) -> Self {
        CheckpointError::Snapshot(e)
    }
}

impl From<BuildError> for CheckpointError {
    fn from(e: BuildError) -> Self {
        CheckpointError::Build(e)
    }
}

/// Observability wiring of a service: the registry its rollups are
/// exported through, plus an optional DTB self-tracer fed by the
/// ingest loops (`dpd serve --self-trace`).
///
/// [`ServiceObs::default`] gives every service its own private
/// [`Registry`] and no tracer, so plain constructors stay zero-config;
/// pass a shared registry (e.g. the one a `--metrics` endpoint
/// renders) through the `*_observed` constructors to surface the
/// rollups live.
#[derive(Clone, Default)]
pub struct ServiceObs {
    /// Registry the per-shard rollups register into (see
    /// `docs/OBSERVABILITY.md` for the metric-name contract).
    pub registry: Registry,
    /// When set, every ingest-loop iteration's wall time is reported
    /// here (log2-quantized) for the DTB self-trace.
    pub self_tracer: Option<SelfTracer>,
}

/// Per-shard rollups as registry handles — the lock-free mirror the
/// workers publish into and both `snapshot()` arms read back from.
/// Series carry a `shard` label: `dpd_shard_samples_total{shard="0"}`.
struct ShardMetrics {
    streams: Gauge,
    cold: Gauge,
    queue_depth: Gauge,
    samples: Counter,
    events: Counter,
    evicted: Counter,
    closed: Counter,
    demoted: Counter,
    promoted: Counter,
    batches: Counter,
    forecast_checked: Counter,
    forecast_hits: Counter,
    query_enters: Counter,
    query_exits: Counter,
    /// Ingest-loop iteration wall time; same log2 bucketing as the
    /// self-trace, so the scraped histogram and the DTB capture agree.
    ingest_ns: Histogram,
}

impl ShardMetrics {
    fn register(reg: &Registry, shard: usize) -> Self {
        let c = |name: &str, help: &str| reg.counter(&format!("{name}{{shard=\"{shard}\"}}"), help);
        let g = |name: &str, help: &str| reg.gauge(&format!("{name}{{shard=\"{shard}\"}}"), help);
        ShardMetrics {
            streams: g(
                "dpd_shard_streams",
                "live streams held by the shard (hot + cold)",
            ),
            cold: g(
                "dpd_shard_streams_cold",
                "cold-summary subset of the shard's streams",
            ),
            queue_depth: g(
                "dpd_shard_queue_depth",
                "record batches routed to the shard and not yet processed",
            ),
            samples: c("dpd_shard_samples_total", "samples ingested by the shard"),
            events: c(
                "dpd_shard_events_total",
                "segmentation events emitted (including close flushes)",
            ),
            evicted: c(
                "dpd_shard_evicted_total",
                "streams evicted by the idle watermark",
            ),
            closed: c("dpd_shard_closed_total", "streams explicitly closed"),
            demoted: c(
                "dpd_shard_demoted_total",
                "hot slots demoted to cold summaries",
            ),
            promoted: c(
                "dpd_shard_promoted_total",
                "cold summaries re-promoted to hot",
            ),
            batches: c("dpd_shard_batches_total", "record batches fully processed"),
            forecast_checked: c(
                "dpd_shard_forecast_checked_total",
                "forecasts scored against an arrived sample",
            ),
            forecast_hits: c(
                "dpd_shard_forecast_hits_total",
                "scored forecasts that matched exactly",
            ),
            query_enters: c(
                "dpd_shard_query_enters_total",
                "standing-query enter deltas emitted",
            ),
            query_exits: c(
                "dpd_shard_query_exits_total",
                "standing-query exit deltas emitted",
            ),
            ingest_ns: reg.histogram(
                &format!("dpd_ingest_loop_nanoseconds{{shard=\"{shard}\"}}"),
                "ingest-loop iteration wall time in nanoseconds (log2 buckets)",
            ),
        }
    }

    /// The single table→registry publication point: map a [`TableStats`]
    /// through [`ShardStats::from_table`] and store each field into its
    /// registry cell. Queue depth and batch counts are owned by the
    /// shard frontend/worker and left untouched.
    fn publish_table(&self, t: &TableStats) {
        let t = ShardStats::from_table(t);
        self.streams.set(t.streams);
        self.cold.set(t.cold);
        self.samples.publish(t.samples);
        self.events.publish(t.events);
        self.evicted.publish(t.evicted);
        self.closed.publish(t.closed);
        self.demoted.publish(t.demoted);
        self.promoted.publish(t.promoted);
        self.forecast_checked.publish(t.forecast_checked);
        self.forecast_hits.publish(t.forecast_hits);
        self.query_enters.publish(t.query_enters);
        self.query_exits.publish(t.query_exits);
    }

    /// Read the rollups back out of the registry cells.
    fn snapshot(&self) -> ShardStats {
        ShardStats {
            streams: self.streams.get(),
            cold: self.cold.get(),
            samples: self.samples.get(),
            events: self.events.get(),
            evicted: self.evicted.get(),
            closed: self.closed.get(),
            demoted: self.demoted.get(),
            promoted: self.promoted.get(),
            queue_depth: self.queue_depth.get(),
            batches: self.batches.get(),
            forecast_checked: self.forecast_checked.get(),
            forecast_hits: self.forecast_hits.get(),
            query_enters: self.query_enters.get(),
            query_exits: self.query_exits.get(),
        }
    }
}

/// One routed record: global sample clock at the first sample, stream,
/// owned samples.
type Record = (u64, StreamId, Vec<i64>);

enum Cmd {
    /// Routed record batches, in frontend arrival order.
    Batches(Vec<Record>),
    /// Explicit close of one stream at the given global clock (final
    /// flush event unless the stream is already idle past the watermark).
    Close(u64, StreamId),
    /// Watermark sweep at the given global clock. Broadcast by the
    /// frontend to every shard on the same global cadence the inline
    /// mode sweeps on, so eviction retirements (and the query `Exit`
    /// deltas they emit) land at identical clocks in both modes.
    Sweep(u64),
    /// Quiesce barrier: ack once every earlier command is processed.
    Flush(mpsc::Sender<()>),
    /// Checkpoint barrier: reply with the shard's full serialized table
    /// state plus its local clock. Read-only; the shard keeps running on
    /// the same table afterwards.
    Snapshot(mpsc::Sender<(Vec<u8>, u64)>),
    /// Final sweep at the given global clock + close of every live stream.
    Finish(u64, mpsc::Sender<()>),
}

/// One publication from a shard worker: pending segmentation events plus
/// the standing-query deltas drained from the shard's table in the same
/// processing round (either side may be empty, never both).
type ShardPublication = (Vec<MultiStreamEvent>, Vec<QueryDelta>);

struct Sharded {
    txs: Vec<Sender<Cmd>>,
    workers: Vec<JoinHandle<()>>,
    sink: mpsc::Receiver<ShardPublication>,
    stats: Arc<Vec<ShardMetrics>>,
    /// Events received while pumping the sink for query deltas.
    pending_events: Vec<MultiStreamEvent>,
    /// Query deltas received while pumping the sink for events.
    pending_deltas: Vec<QueryDelta>,
}

impl Sharded {
    /// Drain everything the workers have published so far into the two
    /// pending buffers (non-blocking).
    fn pump(&mut self) {
        for (events, deltas) in self.sink.try_iter() {
            self.pending_events.extend(events);
            self.pending_deltas.extend(deltas);
        }
    }
}

enum Mode {
    Inline {
        // Boxed: a StreamTable is hundreds of bytes of inline headers
        // and would otherwise dominate the enum's size even in sharded
        // mode (clippy::large_enum_variant).
        table: Box<StreamTable>,
        events: Vec<MultiStreamEvent>,
        metrics: Box<ShardMetrics>,
    },
    Sharded(Sharded),
}

/// A sharded multi-stream periodicity-detection service.
///
/// # Examples
/// ```
/// use dpd_core::pipeline::DpdBuilder;
/// use dpd_core::shard::StreamId;
/// use par_runtime::service::MultiStreamDpd;
///
/// let svc = MultiStreamDpd::from_builder(&DpdBuilder::new().window(8).shards(2));
/// let mut svc = svc.unwrap();
/// for round in 0..20 {
///     let a: Vec<i64> = (0..6).map(|i| ((round * 6 + i) % 3) as i64).collect();
///     let b: Vec<i64> = (0..6).map(|i| ((round * 6 + i) % 5) as i64).collect();
///     svc.ingest(&[(StreamId(1), &a), (StreamId(2), &b)]);
/// }
/// let (events, snapshot) = svc.finish();
/// assert_eq!(snapshot.total().samples, 240);
/// assert!(events.iter().any(|e| e.stream() == StreamId(1)));
/// assert!(events.iter().any(|e| e.stream() == StreamId(2)));
/// ```
///
/// Replaying a persisted DTB trace container (the wire-speed ingestion
/// path — the reader's event batches feed `ingest` without copying):
///
/// ```
/// use dpd_core::pipeline::DpdBuilder;
/// use dpd_core::shard::StreamId;
/// use dpd_trace::dtb::{Block, DtbReader, DtbWriter};
/// use par_runtime::service::MultiStreamDpd;
///
/// // Persist two periodic streams into one container...
/// let mut w = DtbWriter::new(Vec::new()).unwrap();
/// for (id, period) in [(1u64, 3i64), (2, 5)] {
///     w.declare_events(id, &format!("app-{id}")).unwrap();
///     let vals: Vec<i64> = (0..120).map(|i| i % period).collect();
///     w.push_events(id, &vals).unwrap();
/// }
/// let bytes = w.finish().unwrap();
///
/// // ...and replay it through the service.
/// let mut svc = MultiStreamDpd::from_builder(&DpdBuilder::new().window(8).shards(0)).unwrap();
/// let mut reader = DtbReader::new(&bytes).unwrap();
/// while let Some(block) = reader.next_block() {
///     if let Block::Events { stream, values } = block.unwrap() {
///         svc.ingest(&[(StreamId(stream), values)]);
///     }
/// }
/// let (events, snapshot) = svc.finish();
/// assert_eq!(snapshot.total().samples, 240);
/// assert_eq!(snapshot.total().closed, 2);
/// # let _ = events;
/// ```
pub struct MultiStreamDpd {
    mode: Mode,
    config: ServiceConfig,
    /// Global sample clock: samples accepted across all streams.
    ingested: u64,
    /// Samples since the last sweep (both modes: sweeps are scheduled by
    /// the frontend on the global sample clock).
    since_sweep: u64,
    /// Registry the rollups are exported through (shared with workers).
    registry: Registry,
    /// Inline-mode self-tracer (worker shards hold their own clones).
    tracer: Option<SelfTracer>,
}

impl MultiStreamDpd {
    /// Start a service straight from the unified builder (the builder
    /// becomes the per-stream detector factory each shard clones).
    /// Requires [`DpdBuilder::shards`]; `shards(0)` selects the
    /// deterministic inline mode.
    pub fn from_builder(builder: &DpdBuilder) -> Result<Self, BuildError> {
        MultiStreamDpd::from_builder_observed(builder, ServiceObs::default())
    }

    /// [`MultiStreamDpd::from_builder`] with explicit observability
    /// wiring: rollups register into `obs.registry`, ingest-loop
    /// timings feed `obs.self_tracer` when present.
    pub fn from_builder_observed(
        builder: &DpdBuilder,
        obs: ServiceObs,
    ) -> Result<Self, BuildError> {
        Ok(MultiStreamDpd::new_observed(
            ServiceConfig::from_builder(builder)?,
            obs,
        ))
    }

    /// Start a service. `config.shards == 0` runs inline (no threads);
    /// otherwise one worker thread per shard is spawned.
    pub fn new(config: ServiceConfig) -> Self {
        MultiStreamDpd::new_observed(config, ServiceObs::default())
    }

    /// [`MultiStreamDpd::new`] with explicit observability wiring.
    pub fn new_observed(config: ServiceConfig, obs: ServiceObs) -> Self {
        let mode = if config.shards == 0 {
            let mut table = StreamTable::new(config.table);
            table.attach_queries(config.queries.clone());
            Mode::Inline {
                table: Box::new(table),
                events: Vec::new(),
                metrics: Box::new(ShardMetrics::register(&obs.registry, 0)),
            }
        } else {
            Mode::Sharded(spawn_sharded(
                &config,
                (0..config.shards).map(|_| None).collect(),
                &obs,
            ))
        };
        MultiStreamDpd {
            mode,
            config,
            ingested: 0,
            since_sweep: 0,
            registry: obs.registry,
            tracer: obs.self_tracer,
        }
    }

    /// The registry this service's rollups are exported through.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Number of shards (`0` = inline mode).
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// Samples accepted so far (the global sample clock).
    pub fn samples_ingested(&self) -> u64 {
        self.ingested
    }

    /// Ingest a batch of interleaved per-stream records.
    ///
    /// Records are applied in slice order; two records for the same stream
    /// in one call (or across calls) are processed in that order. In
    /// sharded mode this routes each record to its owning shard and returns
    /// once everything is *enqueued* — processing is asynchronous; use
    /// [`MultiStreamDpd::flush`] to quiesce. Empty sample slices are
    /// ignored.
    pub fn ingest(&mut self, records: &[(StreamId, &[i64])]) {
        match &mut self.mode {
            Mode::Inline {
                table,
                events,
                metrics,
            } => {
                let t0 = Instant::now();
                for (stream, samples) in records {
                    table.ingest(self.ingested, *stream, samples, events);
                    self.ingested += samples.len() as u64;
                    self.since_sweep += samples.len() as u64;
                }
                if self.config.sweep_every > 0 && self.since_sweep >= self.config.sweep_every {
                    table.sweep(self.ingested);
                    self.since_sweep = 0;
                }
                // One timing + one rollup publication per ingest call
                // (not per sample): live scrapes stay fresh at batch
                // granularity for nanoseconds of overhead.
                let ns = t0.elapsed().as_nanos() as u64;
                metrics.ingest_ns.record(ns);
                if let Some(tracer) = &self.tracer {
                    tracer.record_ns(0, ns);
                }
                metrics.publish_table(&table.stats());
            }
            Mode::Sharded(sh) => {
                let shards = self.config.shards;
                let swept_at = self.ingested - self.since_sweep;
                let mut routed: Vec<Vec<Record>> = vec![Vec::new(); shards];
                for (stream, samples) in records {
                    if samples.is_empty() {
                        continue;
                    }
                    routed[shard_of(*stream, shards)].push((
                        self.ingested,
                        *stream,
                        samples.to_vec(),
                    ));
                    self.ingested += samples.len() as u64;
                }
                for (shard, batch) in routed.into_iter().enumerate() {
                    if batch.is_empty() {
                        continue;
                    }
                    sh.stats[shard].queue_depth.add(1);
                    sh.txs[shard]
                        .send(Cmd::Batches(batch))
                        .expect("shard worker exited early");
                }
                self.since_sweep = self.ingested - swept_at;
                if self.config.sweep_every > 0 && self.since_sweep >= self.config.sweep_every {
                    // Sweeps are frontend-scheduled in both modes: every
                    // shard observes the watermark at the same global
                    // clock, keeping eviction-driven query deltas
                    // identical across shard counts.
                    for tx in &sh.txs {
                        tx.send(Cmd::Sweep(self.ingested))
                            .expect("shard worker exited early");
                    }
                    self.since_sweep = 0;
                }
            }
        }
    }

    /// Ingest a single stream's batch (convenience wrapper).
    pub fn push(&mut self, stream: StreamId, samples: &[i64]) {
        self.ingest(&[(stream, samples)]);
    }

    /// Explicitly close one stream, emitting its final flush event. Closing
    /// an unknown (or already closed/evicted) stream is a silent no-op, in
    /// both modes.
    pub fn close(&mut self, stream: StreamId) {
        match &mut self.mode {
            Mode::Inline { table, events, .. } => {
                table.close(self.ingested, stream, events);
            }
            Mode::Sharded(sh) => {
                let shard = shard_of(stream, self.config.shards);
                sh.stats[shard].queue_depth.add(1);
                sh.txs[shard]
                    .send(Cmd::Close(self.ingested, stream))
                    .expect("shard worker exited early");
            }
        }
    }

    /// Block until every routed record has been processed. No-op in inline
    /// mode (ingestion is synchronous there). Workers park on their queue
    /// condition variable while idle — quiescing burns no CPU.
    pub fn flush(&mut self) {
        if let Mode::Sharded(sh) = &mut self.mode {
            let (ack_tx, ack_rx) = mpsc::channel();
            for tx in &sh.txs {
                tx.send(Cmd::Flush(ack_tx.clone()))
                    .expect("shard worker exited early");
            }
            drop(ack_tx);
            for _ in 0..sh.txs.len() {
                ack_rx.recv().expect("shard worker dropped flush ack");
            }
        }
    }

    /// Drain every event published so far, in sink arrival order (per-shard
    /// and therefore per-stream order is preserved; events of different
    /// shards interleave arbitrarily). Non-blocking.
    pub fn drain(&mut self) -> Vec<MultiStreamEvent> {
        match &mut self.mode {
            Mode::Inline { events, .. } => std::mem::take(events),
            Mode::Sharded(sh) => {
                sh.pump();
                std::mem::take(&mut sh.pending_events)
            }
        }
    }

    /// Standing queries registered on the service (empty unless the
    /// builder carried `standing_query(..)` calls).
    pub fn query_specs(&self) -> &[QuerySpec] {
        &self.config.queries
    }

    /// Drain every standing-query delta published so far. Per-stream
    /// delta order is preserved (a stream is owned by one shard); deltas
    /// of different shards interleave arbitrarily, so order-sensitive
    /// consumers should sort by `(seq, query, stream)`. Non-blocking; in
    /// sharded mode quiesce with [`MultiStreamDpd::flush`] first to
    /// observe everything already routed.
    pub fn drain_query_deltas(&mut self) -> Vec<QueryDelta> {
        match &mut self.mode {
            Mode::Inline { table, .. } => {
                let mut out = Vec::new();
                table.drain_query_deltas(&mut out);
                out
            }
            Mode::Sharded(sh) => {
                sh.pump();
                std::mem::take(&mut sh.pending_deltas)
            }
        }
    }

    /// Drain every event published so far into a unified-pipeline
    /// [`EventSink`] (translated to [`DpdEvent`]s), returning the number of
    /// events delivered. The service-side analogue of the single-stream
    /// pipeline's event stream. Non-blocking.
    pub fn drain_into<S: EventSink>(&mut self, sink: &mut S) -> usize {
        let events = self.drain();
        for e in &events {
            let (stream, event) = DpdEvent::from_multi_stream(e);
            sink.on_event(stream, &event);
        }
        events.len()
    }

    /// Point-in-time per-shard rollups (lock-free reads; inline mode
    /// reports itself as a single shard with queue depth 0).
    ///
    /// Both arms read *through the registry*: the inline arm publishes
    /// the table's stats into its [`ShardMetrics`] and reads them back,
    /// the sharded arm reads what the workers last published — so a
    /// live `/metrics` scrape and this snapshot can never disagree.
    pub fn snapshot(&self) -> ServiceSnapshot {
        match &self.mode {
            Mode::Inline { table, metrics, .. } => {
                metrics.publish_table(&table.stats());
                ServiceSnapshot {
                    shards: vec![metrics.snapshot()],
                }
            }
            Mode::Sharded(sh) => ServiceSnapshot {
                shards: sh.stats.iter().map(ShardMetrics::snapshot).collect(),
            },
        }
    }

    /// Finish the service: sweep idle streams at the final clock, close
    /// every live stream (final flush events), quiesce, and return all
    /// undrained events plus the final snapshot. Worker threads are joined.
    pub fn finish(self) -> (Vec<MultiStreamEvent>, ServiceSnapshot) {
        let (events, _deltas, snapshot) = self.finish_with_deltas();
        (events, snapshot)
    }

    /// [`MultiStreamDpd::finish`], additionally returning the undrained
    /// standing-query deltas — the final close wave exits every live
    /// membership, and those `Exit` deltas are only observable here.
    pub fn finish_with_deltas(
        mut self,
    ) -> (Vec<MultiStreamEvent>, Vec<QueryDelta>, ServiceSnapshot) {
        let final_seq = self.ingested;
        match &mut self.mode {
            Mode::Inline { table, events, .. } => {
                table.sweep(final_seq);
                table.close_all(final_seq, events);
            }
            Mode::Sharded(sh) => {
                let (ack_tx, ack_rx) = mpsc::channel();
                for tx in &sh.txs {
                    tx.send(Cmd::Finish(final_seq, ack_tx.clone()))
                        .expect("shard worker exited early");
                }
                drop(ack_tx);
                for _ in 0..sh.txs.len() {
                    ack_rx.recv().expect("shard worker dropped finish ack");
                }
            }
        }
        let snapshot = self.snapshot();
        let events = self.drain();
        let deltas = self.drain_query_deltas();
        (events, deltas, snapshot)
        // Drop joins the workers.
    }

    /// Checkpoint the whole service to `path`, durably and atomically.
    ///
    /// Quiesces every shard, captures a bit-exact snapshot of the full
    /// detector state (every stream's detector, forecaster, statistics and
    /// the global sample clock), and writes it as a single-file pile
    /// container carrying one checkpoint frame plus the given epoch
    /// `marker`. The file appears atomically: the bytes go to
    /// `<path>.tmp`, are fsynced, renamed over `path`, and the directory
    /// is fsynced — a crash at any point leaves either the previous
    /// checkpoint or the new one, never a torn file.
    ///
    /// Returns every event published up to the checkpoint (the service
    /// sink is drained as part of quiescing); the caller owns delivering
    /// them. The service keeps running — checkpointing is a read-only
    /// barrier, not a shutdown.
    pub fn checkpoint(
        &mut self,
        path: impl AsRef<Path>,
        marker: EpochMarker,
    ) -> Result<Vec<MultiStreamEvent>, CheckpointError> {
        self.flush();
        let entries: Vec<(Vec<u8>, u64)> = match &mut self.mode {
            Mode::Inline { table, .. } => {
                vec![(table.snapshot(), self.ingested)]
            }
            Mode::Sharded(sh) => {
                let mut acks = Vec::with_capacity(sh.txs.len());
                for tx in &sh.txs {
                    let (ack_tx, ack_rx) = mpsc::channel();
                    tx.send(Cmd::Snapshot(ack_tx))
                        .expect("shard worker exited early");
                    acks.push(ack_rx);
                }
                acks.iter()
                    .map(|rx| rx.recv().expect("shard worker dropped snapshot ack"))
                    .collect()
            }
        };
        let events = self.drain();
        let mut w = SnapshotWriter::envelope(TAG_SERVICE);
        w.u64(self.config.shards as u64);
        w.u64(self.config.sweep_every);
        w.u64(self.ingested);
        w.u64(entries.len() as u64);
        for (bytes, clock) in &entries {
            w.bytes(bytes);
            w.u64(*clock);
            // The sweep phase is frontend state, identical for every
            // shard; stored per entry for format stability.
            w.u64(self.since_sweep);
        }
        write_checkpoint_file(path.as_ref(), &w.into_bytes(), marker)?;
        Ok(events)
    }

    /// Rebuild a service from a checkpoint file written by
    /// [`MultiStreamDpd::checkpoint`].
    ///
    /// The `builder` must describe the same service that took the
    /// checkpoint (shard count, sweep interval, and per-stream table
    /// configuration are all validated —
    /// [`CheckpointError::ConfigMismatch`] otherwise). The file is scanned
    /// with the pile crash-recovery policy, so a torn tail from a crash
    /// mid-write of a *later* append is ignored; the last intact
    /// checkpoint frame wins. Returns the service plus the epoch marker
    /// identifying where ingestion should restart. The resumed service
    /// continues the original event stream bit-identically: replaying the
    /// post-checkpoint suffix of the input yields exactly the events an
    /// uninterrupted run would have emitted.
    pub fn resume(
        builder: &DpdBuilder,
        path: impl AsRef<Path>,
    ) -> Result<(Self, EpochMarker), CheckpointError> {
        MultiStreamDpd::resume_observed(builder, path, ServiceObs::default())
    }

    /// [`MultiStreamDpd::resume`] with explicit observability wiring.
    /// The restored rollups are published immediately (inline mode at
    /// construction, worker shards at spawn), so a scrape right after
    /// resume already reflects the checkpointed streams.
    pub fn resume_observed(
        builder: &DpdBuilder,
        path: impl AsRef<Path>,
        obs: ServiceObs,
    ) -> Result<(Self, EpochMarker), CheckpointError> {
        let config = ServiceConfig::from_builder(builder)?;
        let data = fs::read(path)?;
        let rec = recover(&data);
        let mut payload: Option<&[u8]> = None;
        for frame in &rec.frames {
            if let PileFrame::Checkpoint(p) = frame {
                payload = Some(p);
            }
        }
        let payload = payload.ok_or(CheckpointError::NoCheckpoint)?;
        let marker = rec.last_epoch.unwrap_or(EpochMarker {
            wave: 0,
            samples: 0,
            ordinal: 0,
        });

        let mut r = SnapshotReader::envelope(payload, TAG_SERVICE)?;
        if r.u64()? as usize != config.shards {
            return Err(CheckpointError::ConfigMismatch {
                what: "shard count",
            });
        }
        if r.u64()? != config.sweep_every {
            return Err(CheckpointError::ConfigMismatch {
                what: "sweep interval",
            });
        }
        let ingested = r.u64()?;
        let expected = config.shards.max(1);
        let n = r.count(4096, "implausible shard-state count")?;
        if n != expected {
            return Err(CheckpointError::Snapshot(SnapshotError::Malformed {
                what: "shard-state count disagrees with the shard count",
            }));
        }
        let mut entries: Vec<(StreamTable, u64, u64)> = Vec::with_capacity(n);
        for _ in 0..n {
            let bytes = r.bytes()?.to_vec();
            let clock = r.u64()?;
            let since_sweep = r.u64()?;
            let table = StreamTable::restore(&bytes)?;
            if *table.config() != config.table {
                return Err(CheckpointError::ConfigMismatch {
                    what: "table configuration",
                });
            }
            if table.query_specs() != config.queries.as_slice() {
                return Err(CheckpointError::ConfigMismatch {
                    what: "standing queries",
                });
            }
            entries.push((table, clock, since_sweep));
        }
        r.finish()?;

        let (mode, since_sweep) = if config.shards == 0 {
            let (table, _clock, since_sweep) = entries.pop().expect("count checked above");
            let metrics = Box::new(ShardMetrics::register(&obs.registry, 0));
            metrics.publish_table(&table.stats());
            (
                Mode::Inline {
                    table: Box::new(table),
                    events: Vec::new(),
                    metrics,
                },
                since_sweep,
            )
        } else {
            // Every entry stores the frontend's sweep phase; take the max
            // so checkpoints from older per-shard-scheduled builds resume
            // on a valid (if phase-shifted) cadence.
            let since_sweep = entries.iter().map(|(_, _, s)| *s).max().unwrap_or(0);
            let inits = entries
                .into_iter()
                .map(|(table, clock, _)| Some((table, clock)))
                .collect();
            (
                Mode::Sharded(spawn_sharded(&config, inits, &obs)),
                since_sweep,
            )
        };
        Ok((
            MultiStreamDpd {
                mode,
                config,
                ingested,
                since_sweep,
                registry: obs.registry,
                tracer: obs.self_tracer,
            },
            marker,
        ))
    }
}

/// Write `payload` + `marker` as a fresh single-checkpoint pile at `path`,
/// atomically: build `<path>.tmp`, fsync it, rename over `path`, fsync
/// the containing directory.
fn write_checkpoint_file(
    path: &Path,
    payload: &[u8],
    marker: EpochMarker,
) -> Result<(), CheckpointError> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    let mut w = PileWriter::new(File::create(&tmp)?)?;
    w.checkpoint(payload)?;
    w.epoch(marker)?;
    let file = w.into_inner()?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            File::open(dir)?.sync_all()?;
        }
    }
    Ok(())
}

impl Drop for MultiStreamDpd {
    fn drop(&mut self) {
        if let Mode::Sharded(sh) = &mut self.mode {
            sh.txs.clear(); // closing the queues stops the workers
            for w in sh.workers.drain(..) {
                let _ = w.join();
            }
        }
    }
}

/// Restored state one shard worker starts from: its table, the highest
/// global sample clock it had seen, and its sweep phase.
type ShardInit = (StreamTable, u64);

/// Spawn the worker threads of a sharded service. `inits[shard]` seeds the
/// worker with checkpointed state ([`MultiStreamDpd::resume`]); `None`
/// starts it on a fresh table.
fn spawn_sharded(
    config: &ServiceConfig,
    inits: Vec<Option<ShardInit>>,
    obs: &ServiceObs,
) -> Sharded {
    debug_assert_eq!(inits.len(), config.shards);
    let (sink_tx, sink_rx) = mpsc::channel();
    let stats: Arc<Vec<ShardMetrics>> = Arc::new(
        (0..config.shards)
            .map(|shard| ShardMetrics::register(&obs.registry, shard))
            .collect(),
    );
    let mut txs = Vec::with_capacity(config.shards);
    let mut workers = Vec::with_capacity(config.shards);
    for (shard, init) in inits.into_iter().enumerate() {
        let (tx, rx) = unbounded::<Cmd>();
        let sink = sink_tx.clone();
        let stats = Arc::clone(&stats);
        let table_config = config.table;
        let queries = config.queries.clone();
        let tracer = obs.self_tracer.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("dpd-shard-{shard}"))
                .spawn(move || {
                    shard_worker(
                        rx,
                        sink,
                        shard,
                        &stats[shard],
                        table_config,
                        queries,
                        init,
                        tracer,
                    )
                })
                .expect("failed to spawn shard worker"),
        );
        txs.push(tx);
    }
    Sharded {
        txs,
        workers,
        sink: sink_rx,
        stats,
        pending_events: Vec::new(),
        pending_deltas: Vec::new(),
    }
}

#[allow(clippy::too_many_arguments)]
fn shard_worker(
    rx: crossbeam::channel::Receiver<Cmd>,
    sink: mpsc::Sender<ShardPublication>,
    shard: usize,
    shared: &ShardMetrics,
    table_config: TableConfig,
    queries: Vec<QuerySpec>,
    init: Option<ShardInit>,
    tracer: Option<SelfTracer>,
) {
    let (mut table, mut clock) = match init {
        // A restored table carries its query engine inside the snapshot.
        Some((table, clock)) => (table, clock),
        None => {
            let mut table = StreamTable::new(table_config);
            table.attach_queries(queries);
            (table, 0u64)
        }
    };
    let mut out: Vec<MultiStreamEvent> = Vec::new();
    // Publish the starting rollups so a resumed service's `snapshot`
    // reflects the restored streams before the first routed record.
    publish(&mut table, shared, &mut out, &sink);
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Batches(records) => {
                // One ingest-loop iteration = one routed batch. The
                // timing feeds the per-shard histogram and, when a
                // self-trace is attached, the DTB capture `dpd analyze`
                // can point the detector back at.
                let t0 = Instant::now();
                for (seq, stream, samples) in records {
                    clock = clock.max(seq + samples.len() as u64);
                    table.ingest(seq, stream, &samples, &mut out);
                }
                let ns = t0.elapsed().as_nanos() as u64;
                shared.ingest_ns.record(ns);
                if let Some(tracer) = &tracer {
                    tracer.record_ns(shard, ns);
                }
                shared.queue_depth.sub(1);
                shared.batches.inc();
            }
            Cmd::Sweep(seq) => {
                clock = clock.max(seq);
                table.sweep(seq);
            }
            Cmd::Close(seq, stream) => {
                table.close(seq, stream, &mut out);
                shared.queue_depth.sub(1);
            }
            Cmd::Flush(ack) => {
                // FIFO queue: everything routed before this barrier has
                // been processed and published below on the previous
                // iterations; ack after publishing this round too.
                publish(&mut table, shared, &mut out, &sink);
                let _ = ack.send(());
                continue;
            }
            Cmd::Snapshot(ack) => {
                publish(&mut table, shared, &mut out, &sink);
                let _ = ack.send((table.snapshot(), clock));
                continue;
            }
            Cmd::Finish(seq, ack) => {
                table.sweep(seq);
                table.close_all(seq, &mut out);
                publish(&mut table, shared, &mut out, &sink);
                let _ = ack.send(());
                continue;
            }
        }
        publish(&mut table, shared, &mut out, &sink);
    }
}

/// Push pending events and query deltas into the sink and refresh the
/// shard's rollups.
fn publish(
    table: &mut StreamTable,
    shared: &ShardMetrics,
    out: &mut Vec<MultiStreamEvent>,
    sink: &mpsc::Sender<ShardPublication>,
) {
    let mut deltas = Vec::new();
    table.drain_query_deltas(&mut deltas);
    if !out.is_empty() || !deltas.is_empty() {
        // One lock-free send per processed command, not per event. A send
        // fails only when the service side dropped the receiver
        // (teardown); events are discarded then, matching inline `drop`.
        let _ = sink.send((std::mem::take(out), deltas));
    }
    // Same accumulation point as the inline snapshot arm: map the table's
    // stats through `ShardStats::from_table`, then publish into the
    // registry cells (queue depth and batches are owned by the shard
    // frontend/worker and left untouched here).
    shared.publish_table(&table.stats());
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpd_core::streaming::SegmentEvent;

    fn svc_with_window(shards: usize, n: usize) -> MultiStreamDpd {
        MultiStreamDpd::from_builder(&DpdBuilder::new().window(n).shards(shards)).unwrap()
    }

    fn svc_with_eviction(shards: usize, n: usize, evict_after: u64) -> MultiStreamDpd {
        MultiStreamDpd::from_builder(
            &DpdBuilder::new()
                .window(n)
                .evict_after(evict_after)
                .shards(shards),
        )
        .unwrap()
    }

    fn svc_with_forecast(shards: usize, n: usize, h: usize) -> MultiStreamDpd {
        MultiStreamDpd::from_builder(&DpdBuilder::new().window(n).forecast(h).shards(shards))
            .unwrap()
    }

    fn periodic(period: u64, start: u64, len: usize) -> Vec<i64> {
        (0..len as u64)
            .map(|i| ((start + i) % period) as i64)
            .collect()
    }

    /// Round-robin workload: `streams` streams, stream `s` has period
    /// `s % 7 + 2`, delivered as `rounds` rounds of `chunk`-sample records.
    fn drive(svc: &mut MultiStreamDpd, streams: u64, chunk: usize, rounds: u64) {
        for r in 0..rounds {
            let owned: Vec<(StreamId, Vec<i64>)> = (0..streams)
                .map(|s| (StreamId(s), periodic(s % 7 + 2, r * chunk as u64, chunk)))
                .collect();
            let records: Vec<(StreamId, &[i64])> =
                owned.iter().map(|(s, v)| (*s, v.as_slice())).collect();
            svc.ingest(&records);
        }
    }

    fn by_stream(
        events: &[MultiStreamEvent],
    ) -> std::collections::BTreeMap<u64, Vec<MultiStreamEvent>> {
        let mut m: std::collections::BTreeMap<u64, Vec<MultiStreamEvent>> = Default::default();
        for &e in events {
            m.entry(e.stream().0).or_default().push(e);
        }
        m
    }

    #[test]
    fn sharded_matches_inline_reference() {
        let mut reference = svc_with_window(0, 8);
        drive(&mut reference, 20, 6, 15);
        let (ref_events, ref_snap) = reference.finish();

        for shards in [1usize, 2, 4, 7] {
            let mut svc = svc_with_window(shards, 8);
            drive(&mut svc, 20, 6, 15);
            let (events, snap) = svc.finish();
            assert_eq!(
                by_stream(&events),
                by_stream(&ref_events),
                "shards={shards}"
            );
            assert_eq!(snap.total().samples, ref_snap.total().samples);
            assert_eq!(snap.total().events, ref_snap.total().events);
            assert_eq!(snap.shards.len(), shards);
        }
    }

    #[test]
    fn eviction_equivalence_with_sweeps() {
        // Idle gaps larger than the watermark + periodic sweeps in the
        // sharded workers: per-stream events still match the reference.
        let run = |shards: usize| {
            let mut svc = svc_with_eviction(shards, 8, 40);
            // Stream 0 locks, goes idle past the watermark, comes back.
            svc.push(StreamId(0), &periodic(3, 0, 30));
            svc.push(StreamId(1), &periodic(4, 0, 120));
            svc.push(StreamId(0), &periodic(3, 30, 30));
            svc.push(StreamId(2), &periodic(5, 0, 200));
            svc.finish()
        };
        let (ref_events, _) = run(0);
        for shards in [1usize, 3, 4] {
            let (events, _) = run(shards);
            assert_eq!(
                by_stream(&events),
                by_stream(&ref_events),
                "shards={shards}"
            );
        }
        // The reference itself observed the eviction.
        assert!(ref_events.iter().any(|e| matches!(
            e,
            MultiStreamEvent::Segment {
                stream: StreamId(0),
                event: SegmentEvent::PeriodStart { .. }
            }
        )));
    }

    #[test]
    fn close_flushes_final_state() {
        for shards in [0usize, 2] {
            let mut svc = svc_with_window(shards, 8);
            svc.push(StreamId(5), &periodic(4, 0, 40));
            svc.close(StreamId(5));
            svc.close(StreamId(99)); // unknown: silent no-op
            svc.flush();
            let events = svc.drain();
            assert!(
                events.contains(&MultiStreamEvent::Closed {
                    stream: StreamId(5),
                    samples: 40,
                    period: Some(4),
                }),
                "shards={shards}: {events:?}"
            );
        }
    }

    #[test]
    fn flush_quiesces_queues() {
        let mut svc = svc_with_window(3, 8);
        drive(&mut svc, 30, 8, 10);
        svc.flush();
        let snap = svc.snapshot();
        assert_eq!(snap.total().queue_depth, 0);
        assert_eq!(snap.total().samples, 30 * 8 * 10);
        assert_eq!(snap.total().streams, 30);
        assert!(snap.total().batches > 0);
        drop(svc);
    }

    #[test]
    fn drain_mid_run_preserves_per_stream_order() {
        let mut svc = svc_with_window(4, 8);
        let mut collected = Vec::new();
        for r in 0..12u64 {
            drive(&mut svc, 10, 6, 1);
            // Interleave drains with ingestion; ordering per stream must
            // still be position-monotonic.
            if r % 3 == 0 {
                svc.flush();
                collected.extend(svc.drain());
            }
        }
        let (tail, _) = svc.finish();
        collected.extend(tail);
        for (stream, events) in by_stream(&collected) {
            let positions: Vec<u64> = events
                .iter()
                .filter_map(|e| match e {
                    MultiStreamEvent::Segment {
                        event:
                            SegmentEvent::PeriodStart { position, .. }
                            | SegmentEvent::PeriodLost { position, .. },
                        ..
                    } => Some(*position),
                    _ => None,
                })
                .collect();
            assert!(
                positions.windows(2).all(|w| w[0] < w[1]),
                "stream {stream}: positions not monotonic: {positions:?}"
            );
        }
    }

    #[test]
    fn inline_snapshot_reports_single_shard() {
        let mut svc = svc_with_window(0, 8);
        svc.push(StreamId(1), &periodic(3, 0, 30));
        let snap = svc.snapshot();
        assert_eq!(snap.shards.len(), 1);
        assert_eq!(snap.total().samples, 30);
        assert_eq!(snap.total().streams, 1);
    }

    #[test]
    fn finish_closes_every_live_stream() {
        let mut svc = svc_with_window(2, 8);
        drive(&mut svc, 9, 6, 10);
        let (events, snap) = svc.finish();
        let closed: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                MultiStreamEvent::Closed { stream, .. } => Some(stream.0),
                _ => None,
            })
            .collect();
        assert_eq!(closed.len(), 9);
        assert_eq!(snap.total().closed, 9);
        assert_eq!(snap.total().streams, 0);
    }

    #[test]
    fn forecasting_rollups_match_inline_reference() {
        let run = |shards: usize| {
            let mut svc = svc_with_forecast(shards, 8, 2);
            drive(&mut svc, 12, 6, 20);
            let (_, snap) = svc.finish();
            snap.total()
        };
        let reference = run(0);
        assert!(reference.forecast_checked > 0);
        assert_eq!(
            reference.forecast_hit_rate(),
            Some(1.0),
            "exact periodic corpus must forecast perfectly"
        );
        for shards in [1usize, 3] {
            let t = run(shards);
            assert_eq!(
                t.forecast_checked, reference.forecast_checked,
                "shards={shards}"
            );
            assert_eq!(t.forecast_hits, reference.forecast_hits, "shards={shards}");
        }
    }

    #[test]
    fn non_forecasting_service_reports_zero() {
        let mut svc = svc_with_window(0, 8);
        svc.push(StreamId(1), &periodic(3, 0, 40));
        let (_, snap) = svc.finish();
        assert_eq!(snap.total().forecast_checked, 0);
        assert_eq!(snap.total().forecast_hit_rate(), None);
    }

    #[test]
    fn empty_service_finishes_clean() {
        let svc = svc_with_window(3, 8);
        let (events, snap) = svc.finish();
        assert!(events.is_empty());
        assert_eq!(snap.total().samples, 0);
    }

    /// Unique checkpoint path in a fresh temp directory.
    fn ckpt_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dpd-svc-ckpt-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("state.snap")
    }

    fn marker(wave: u64, samples: u64, ordinal: u64) -> EpochMarker {
        EpochMarker {
            wave,
            samples,
            ordinal,
        }
    }

    /// Checkpoint mid-run, resume, continue: the combined event stream is
    /// bit-identical to an uninterrupted run, in both modes, including
    /// forecasting rollups and idle-stream eviction.
    #[test]
    fn checkpoint_resume_is_bit_identical_to_uninterrupted_run() {
        for shards in [0usize, 3] {
            let builder = DpdBuilder::new()
                .window(8)
                .forecast(2)
                .evict_after(200)
                .shards(shards);

            let mut oracle = MultiStreamDpd::from_builder(&builder).unwrap();
            drive(&mut oracle, 12, 6, 30);
            let (oracle_events, oracle_snap) = oracle.finish();

            let path = ckpt_path(&format!("roundtrip-{shards}"));
            let mut first = MultiStreamDpd::from_builder(&builder).unwrap();
            drive(&mut first, 12, 6, 13);
            let mut events = first
                .checkpoint(&path, marker(13, first.samples_ingested(), 1))
                .unwrap();
            drop(first); // the "crash": the first process goes away

            let (mut resumed, m) = MultiStreamDpd::resume(&builder, &path).unwrap();
            assert_eq!(m.wave, 13);
            assert_eq!(m.ordinal, 1);
            assert_eq!(resumed.samples_ingested(), m.samples);
            // Replay the suffix the oracle saw after wave 13.
            for r in 13..30u64 {
                let owned: Vec<(StreamId, Vec<i64>)> = (0..12u64)
                    .map(|s| (StreamId(s), periodic(s % 7 + 2, r * 6, 6)))
                    .collect();
                let records: Vec<(StreamId, &[i64])> =
                    owned.iter().map(|(s, v)| (*s, v.as_slice())).collect();
                resumed.ingest(&records);
            }
            let (tail, snap) = resumed.finish();
            events.extend(tail);

            assert_eq!(
                by_stream(&events),
                by_stream(&oracle_events),
                "shards={shards}"
            );
            assert_eq!(snap.total().samples, oracle_snap.total().samples);
            assert_eq!(snap.total().events, oracle_snap.total().events);
            assert_eq!(
                snap.total().forecast_checked,
                oracle_snap.total().forecast_checked
            );
            assert_eq!(
                snap.total().forecast_hits,
                oracle_snap.total().forecast_hits
            );
        }
    }

    /// The service keeps running after a checkpoint (read-only barrier),
    /// and a restored sharded service reports its streams in `snapshot`
    /// before any new record arrives.
    #[test]
    fn checkpoint_is_nondestructive_and_resume_publishes_rollups() {
        let path = ckpt_path("live");
        let builder = DpdBuilder::new().window(8).shards(2);
        let mut svc = MultiStreamDpd::from_builder(&builder).unwrap();
        drive(&mut svc, 6, 6, 10);
        let before = svc
            .checkpoint(&path, marker(10, svc.samples_ingested(), 1))
            .unwrap();
        assert!(!before.is_empty());
        drive(&mut svc, 6, 6, 5); // keeps ingesting fine
        let (_, snap) = svc.finish();
        assert_eq!(snap.total().samples, 6 * 6 * 15);

        let (mut resumed, _) = MultiStreamDpd::resume(&builder, &path).unwrap();
        resumed.flush();
        let snap = resumed.snapshot();
        assert_eq!(snap.total().streams, 6);
        assert_eq!(snap.total().samples, 6 * 6 * 10);
        drop(resumed);
    }

    /// Overwriting a checkpoint is atomic: the second file fully replaces
    /// the first and resumes from the later state.
    #[test]
    fn checkpoint_overwrite_resumes_from_latest() {
        let path = ckpt_path("overwrite");
        let builder = DpdBuilder::new().window(8).shards(0);
        let mut svc = MultiStreamDpd::from_builder(&builder).unwrap();
        drive(&mut svc, 4, 6, 5);
        svc.checkpoint(&path, marker(5, svc.samples_ingested(), 1))
            .unwrap();
        drive(&mut svc, 4, 6, 5);
        svc.checkpoint(&path, marker(10, svc.samples_ingested(), 2))
            .unwrap();

        let (resumed, m) = MultiStreamDpd::resume(&builder, &path).unwrap();
        assert_eq!(m.ordinal, 2);
        assert_eq!(resumed.samples_ingested(), 4 * 6 * 10);
    }

    #[test]
    fn resume_rejects_mismatched_builder() {
        let path = ckpt_path("mismatch");
        let builder = DpdBuilder::new().window(8).shards(2);
        let mut svc = MultiStreamDpd::from_builder(&builder).unwrap();
        drive(&mut svc, 4, 6, 5);
        svc.checkpoint(&path, marker(5, svc.samples_ingested(), 1))
            .unwrap();
        drop(svc);

        let wrong_shards = DpdBuilder::new().window(8).shards(3);
        assert!(matches!(
            MultiStreamDpd::resume(&wrong_shards, &path),
            Err(CheckpointError::ConfigMismatch {
                what: "shard count"
            })
        ));
        let wrong_window = DpdBuilder::new().window(16).shards(2);
        assert!(matches!(
            MultiStreamDpd::resume(&wrong_window, &path),
            Err(CheckpointError::ConfigMismatch {
                what: "table configuration"
            })
        ));
    }

    #[test]
    fn resume_surfaces_missing_and_empty_files() {
        let path = ckpt_path("absent");
        let builder = DpdBuilder::new().window(8).shards(0);
        assert!(matches!(
            MultiStreamDpd::resume(&builder, &path),
            Err(CheckpointError::Io(_))
        ));
        std::fs::write(&path, b"not a pile at all").unwrap();
        assert!(matches!(
            MultiStreamDpd::resume(&builder, &path),
            Err(CheckpointError::NoCheckpoint)
        ));
    }

    /// A delta key that is stable across shard interleavings: per-stream
    /// order is preserved by shard ownership, so sorting by
    /// `(seq, query, stream, change)` canonicalizes the merged log.
    fn delta_key(d: &QueryDelta) -> (u64, u32, u64, bool) {
        (
            d.seq,
            d.query.0,
            d.stream.0,
            d.change == dpd_core::query::QueryChange::Exit,
        )
    }

    /// Per-stream standing queries evaluate per shard and the merged
    /// delta log is permutation-identical to the inline reference; the
    /// final close wave exits every membership.
    #[test]
    fn sharded_query_deltas_match_inline_reference() {
        let build = |shards: usize| {
            MultiStreamDpd::from_builder(
                &DpdBuilder::new()
                    .window(8)
                    .standing_query(QuerySpec::PeriodInRange { lo: 2, hi: 4 })
                    .standing_query(QuerySpec::LockLostWithin { window: 50 })
                    .shards(shards),
            )
            .unwrap()
        };
        let mut reference = build(0);
        drive(&mut reference, 10, 6, 12);
        let (_, mut ref_deltas, ref_snap) = reference.finish_with_deltas();
        ref_deltas.sort_by_key(delta_key);
        assert!(!ref_deltas.is_empty());
        let enters = ref_deltas
            .iter()
            .filter(|d| d.change == dpd_core::query::QueryChange::Enter)
            .count();
        let exits = ref_deltas.len() - enters;
        assert_eq!(ref_snap.total().query_enters, enters as u64);
        assert_eq!(ref_snap.total().query_exits, exits as u64);
        // Every membership exits by the end of the close wave.
        assert_eq!(enters, exits);

        for shards in [1usize, 2, 4] {
            let mut svc = build(shards);
            assert_eq!(svc.query_specs().len(), 2);
            drive(&mut svc, 10, 6, 12);
            let (_, mut deltas, snap) = svc.finish_with_deltas();
            deltas.sort_by_key(delta_key);
            assert_eq!(deltas, ref_deltas, "shards={shards}");
            assert_eq!(snap.total().query_enters, ref_snap.total().query_enters);
            assert_eq!(snap.total().query_exits, ref_snap.total().query_exits);
        }
    }

    /// Join queries are partition-local: a single partition (`shards(1)`)
    /// matches the inline reference exactly, and the join does fire on
    /// the equal-period stream pairs of the workload.
    #[test]
    fn join_queries_are_partition_local() {
        let build = |shards: usize| {
            MultiStreamDpd::from_builder(
                &DpdBuilder::new()
                    .window(8)
                    .standing_query(QuerySpec::PeriodJoin { tolerance: 0 })
                    .shards(shards),
            )
            .unwrap()
        };
        let mut reference = build(0);
        drive(&mut reference, 10, 6, 12);
        let (_, mut ref_deltas, _) = reference.finish_with_deltas();
        ref_deltas.sort_by_key(delta_key);
        // Streams s and s+7 share period s%7+2: the join must fire.
        assert!(ref_deltas
            .iter()
            .any(|d| d.change == dpd_core::query::QueryChange::Enter));

        let mut svc = build(1);
        drive(&mut svc, 10, 6, 12);
        let (_, mut deltas, _) = svc.finish_with_deltas();
        deltas.sort_by_key(delta_key);
        assert_eq!(deltas, ref_deltas);
    }

    /// `drain_query_deltas` mid-run drains incrementally (no duplicates,
    /// no losses) and a checkpoint/resume continues the delta stream.
    #[test]
    fn query_deltas_survive_checkpoint_resume() {
        let builder = DpdBuilder::new()
            .window(8)
            .standing_query(QuerySpec::PeriodInRange { lo: 2, hi: 8 })
            .shards(2);

        let mut oracle = MultiStreamDpd::from_builder(&builder).unwrap();
        drive(&mut oracle, 8, 6, 20);
        let (_, mut oracle_deltas, _) = oracle.finish_with_deltas();
        oracle_deltas.sort_by_key(delta_key);

        let path = ckpt_path("query-resume");
        let mut first = MultiStreamDpd::from_builder(&builder).unwrap();
        drive(&mut first, 8, 6, 9);
        first
            .checkpoint(&path, marker(9, first.samples_ingested(), 1))
            .unwrap();
        let mut deltas = first.drain_query_deltas();
        drop(first);

        let (mut resumed, _) = MultiStreamDpd::resume(&builder, &path).unwrap();
        // Replay the suffix the oracle saw after wave 9.
        for r in 9..20u64 {
            let owned: Vec<(StreamId, Vec<i64>)> = (0..8u64)
                .map(|s| (StreamId(s), periodic(s % 7 + 2, r * 6, 6)))
                .collect();
            let records: Vec<(StreamId, &[i64])> =
                owned.iter().map(|(s, v)| (*s, v.as_slice())).collect();
            resumed.ingest(&records);
        }
        let (_, tail, _) = resumed.finish_with_deltas();
        deltas.extend(tail);
        deltas.sort_by_key(delta_key);
        assert_eq!(deltas, oracle_deltas);
    }

    /// Resuming under a builder whose standing queries differ from the
    /// checkpoint is a typed configuration mismatch.
    #[test]
    fn resume_rejects_mismatched_queries() {
        let path = ckpt_path("query-mismatch");
        let builder = DpdBuilder::new()
            .window(8)
            .standing_query(QuerySpec::PeriodInRange { lo: 2, hi: 4 })
            .shards(2);
        let mut svc = MultiStreamDpd::from_builder(&builder).unwrap();
        drive(&mut svc, 4, 6, 5);
        svc.checkpoint(&path, marker(5, svc.samples_ingested(), 1))
            .unwrap();
        drop(svc);

        let wrong = DpdBuilder::new()
            .window(8)
            .standing_query(QuerySpec::PeriodInRange { lo: 2, hi: 5 })
            .shards(2);
        assert!(matches!(
            MultiStreamDpd::resume(&wrong, &path),
            Err(CheckpointError::ConfigMismatch {
                what: "standing queries"
            })
        ));
    }

    /// Every `CheckpointError` variant renders a lowercase, period-free
    /// message; wrapping variants expose their cause through `source()`.
    #[test]
    fn every_checkpoint_error_variant_renders() {
        let variants = vec![
            CheckpointError::Io(std::io::Error::from(std::io::ErrorKind::NotFound)),
            CheckpointError::Pile(PileError::Truncated { offset: 7 }),
            CheckpointError::Snapshot(SnapshotError::Truncated),
            CheckpointError::Build(BuildError::ShardsRequired),
            CheckpointError::NoCheckpoint,
            CheckpointError::ConfigMismatch {
                what: "shard count",
            },
        ];
        for v in variants {
            let msg = v.to_string();
            assert!(!msg.is_empty(), "{v:?} renders empty");
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "{v:?} message must start lowercase: {msg:?}"
            );
            assert!(!msg.ends_with('.'), "{v:?} message ends with a period");
            let err: &dyn std::error::Error = &v;
            assert_eq!(
                err.source().is_some(),
                matches!(
                    v,
                    CheckpointError::Io(_)
                        | CheckpointError::Pile(_)
                        | CheckpointError::Snapshot(_)
                        | CheckpointError::Build(_)
                ),
                "{v:?} source() disagrees with its wrapping shape"
            );
        }
    }
}
