//! OpenMP-style parallel loops on real threads.
//!
//! The paper's applications are "a set of parallel loops inside a main
//! sequential loop" (§5). [`parallel_for`] executes an index range over a
//! team of OS threads with the three classic work-sharing schedules
//! (static, dynamic, guided). The implementation uses scoped threads so the
//! loop body may borrow from the caller, exactly like an OpenMP region.

use crate::cpustat::CpuUsage;
use std::sync::atomic::{AtomicU64, Ordering};

/// Work-sharing schedule for a parallel loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Pre-partition the range into `threads` contiguous blocks.
    Static,
    /// Threads repeatedly grab fixed-size chunks.
    Dynamic {
        /// Chunk size in iterations (>= 1).
        chunk: u64,
    },
    /// Threads grab chunks that shrink as the remaining work shrinks
    /// (`remaining / threads`, floored at `min_chunk`).
    Guided {
        /// Smallest chunk a thread may take (>= 1).
        min_chunk: u64,
    },
}

/// Execute `body(i)` for every `i` in `range` using `threads` OS threads.
///
/// The optional `usage` counter is updated while each thread runs loop work,
/// feeding the live CPU-usage view (paper Fig. 3). Iteration order across
/// threads is unspecified; each index is executed exactly once.
pub fn parallel_for<F>(
    threads: usize,
    range: std::ops::Range<u64>,
    schedule: Schedule,
    usage: Option<&CpuUsage>,
    body: F,
) where
    F: Fn(u64) + Send + Sync,
{
    assert!(threads > 0, "parallel_for needs at least one thread");
    let total = range.end.saturating_sub(range.start);
    if total == 0 {
        return;
    }
    if threads == 1 {
        let _guard = usage.map(crate::cpustat::ActiveCpu::enter);
        for i in range {
            body(i);
        }
        return;
    }

    match schedule {
        Schedule::Static => {
            let per = total / threads as u64;
            let extra = total % threads as u64;
            std::thread::scope(|scope| {
                for t in 0..threads as u64 {
                    // Blocks of per+1 for the first `extra` threads.
                    let start = range.start + t * per + t.min(extra);
                    let len = per + if t < extra { 1 } else { 0 };
                    let body = &body;
                    scope.spawn(move || {
                        let _guard = usage.map(crate::cpustat::ActiveCpu::enter);
                        for i in start..start + len {
                            body(i);
                        }
                    });
                }
            });
        }
        Schedule::Dynamic { chunk } => {
            let chunk = chunk.max(1);
            let next = AtomicU64::new(range.start);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let body = &body;
                    let next = &next;
                    scope.spawn(move || {
                        let _guard = usage.map(crate::cpustat::ActiveCpu::enter);
                        loop {
                            let start = next.fetch_add(chunk, Ordering::Relaxed);
                            if start >= range.end {
                                break;
                            }
                            let end = (start + chunk).min(range.end);
                            for i in start..end {
                                body(i);
                            }
                        }
                    });
                }
            });
        }
        Schedule::Guided { min_chunk } => {
            let min_chunk = min_chunk.max(1);
            let next = AtomicU64::new(range.start);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let body = &body;
                    let next = &next;
                    scope.spawn(move || {
                        let _guard = usage.map(crate::cpustat::ActiveCpu::enter);
                        loop {
                            // Claim a chunk sized to the remaining work.
                            let start = next.load(Ordering::Relaxed);
                            if start >= range.end {
                                break;
                            }
                            let remaining = range.end - start;
                            let chunk = (remaining / threads as u64).max(min_chunk);
                            let start = next.fetch_add(chunk, Ordering::Relaxed);
                            if start >= range.end {
                                break;
                            }
                            let end = (start + chunk).min(range.end);
                            for i in start..end {
                                body(i);
                            }
                        }
                    });
                }
            });
        }
    }
}

/// Parallel reduction: apply `map(i)` to every index and combine with `+`.
///
/// Deterministic result for associative/commutative reductions regardless of
/// the schedule (per-thread partial sums combined at the end).
pub fn parallel_sum<F>(threads: usize, range: std::ops::Range<u64>, map: F) -> f64
where
    F: Fn(u64) -> f64 + Send + Sync,
{
    assert!(threads > 0, "parallel_sum needs at least one thread");
    let total = range.end.saturating_sub(range.start);
    if total == 0 {
        return 0.0;
    }
    if threads == 1 {
        return range.map(&map).sum();
    }
    let partials: Vec<f64> = std::thread::scope(|scope| {
        let per = total / threads as u64;
        let extra = total % threads as u64;
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads as u64 {
            let start = range.start + t * per + t.min(extra);
            let len = per + if t < extra { 1 } else { 0 };
            let map = &map;
            handles.push(scope.spawn(move || (start..start + len).map(map).sum::<f64>()));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    partials.into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize};

    fn check_all_indices(schedule: Schedule, threads: usize) {
        let n = 1000u64;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(threads, 0..n, schedule, None, |i| {
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn static_covers_exactly_once() {
        check_all_indices(Schedule::Static, 4);
    }

    #[test]
    fn dynamic_covers_exactly_once() {
        check_all_indices(Schedule::Dynamic { chunk: 7 }, 4);
    }

    #[test]
    fn guided_covers_exactly_once() {
        check_all_indices(Schedule::Guided { min_chunk: 3 }, 4);
    }

    #[test]
    fn single_thread_fast_path() {
        check_all_indices(Schedule::Static, 1);
    }

    #[test]
    fn uneven_static_split() {
        // 10 iterations over 4 threads: blocks of 3,3,2,2.
        let sum = AtomicU64::new(0);
        parallel_for(4, 0..10, Schedule::Static, None, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn empty_range_is_noop() {
        parallel_for(4, 5..5, Schedule::Static, None, |_| {
            panic!("must not run");
        });
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        parallel_for(0, 0..1, Schedule::Static, None, |_| {});
    }

    #[test]
    fn usage_counter_updated() {
        let usage = CpuUsage::default();
        parallel_for(
            2,
            0..100,
            Schedule::Dynamic { chunk: 10 },
            Some(&usage),
            |_| {
                std::thread::yield_now();
            },
        );
        assert_eq!(usage.active(), 0, "all workers left");
        assert!(usage.peak() >= 1);
    }

    #[test]
    fn parallel_sum_matches_sequential() {
        let seq: f64 = (0..10_000u64).map(|i| (i as f64).sqrt()).sum();
        for threads in [1, 2, 4] {
            let par = parallel_sum(threads, 0..10_000, |i| (i as f64).sqrt());
            assert!((par - seq).abs() < 1e-6, "threads={threads}");
        }
    }

    #[test]
    fn parallel_sum_empty_range() {
        assert_eq!(parallel_sum(4, 3..3, |_| 1.0), 0.0);
    }

    #[test]
    fn borrows_caller_data() {
        // The whole point of scoped threads: body borrows a local.
        let data: Vec<u64> = (0..100).collect();
        let sum = AtomicU64::new(0);
        parallel_for(3, 0..data.len() as u64, Schedule::Static, None, |i| {
            sum.fetch_add(data[i as usize], Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }
}
