//! Virtual time.
//!
//! The simulated multiprocessor advances a nanosecond-resolution virtual
//! clock instead of reading the host's. Virtual time makes the speedup
//! experiments deterministic and host-independent (this matters: the paper
//! measured on a 16-CPU Origin 2000; CI boxes may have a single core).

/// A monotonically advancing virtual clock (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VirtualClock {
    now_ns: u64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock { now_ns: 0 }
    }

    /// Current virtual time in nanoseconds.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Advance by `delta` nanoseconds.
    #[inline]
    pub fn advance(&mut self, delta_ns: u64) {
        self.now_ns = self
            .now_ns
            .checked_add(delta_ns)
            .expect("virtual clock overflow");
    }

    /// Jump to an absolute time, which must not be in the past.
    pub fn advance_to(&mut self, t_ns: u64) {
        assert!(
            t_ns >= self.now_ns,
            "virtual clock cannot move backwards ({} -> {t_ns})",
            self.now_ns
        );
        self.now_ns = t_ns;
    }

    /// Current virtual time in integer milliseconds (rounding down).
    #[inline]
    pub fn now_ms(&self) -> u64 {
        self.now_ns / 1_000_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(1500);
        assert_eq!(c.now_ns(), 1500);
        c.advance(500);
        assert_eq!(c.now_ns(), 2000);
    }

    #[test]
    fn advance_to_forward_ok() {
        let mut c = VirtualClock::new();
        c.advance_to(10);
        assert_eq!(c.now_ns(), 10);
        c.advance_to(10); // same instant allowed
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn advance_to_backwards_panics() {
        let mut c = VirtualClock::new();
        c.advance(100);
        c.advance_to(50);
    }

    #[test]
    fn millisecond_conversion() {
        let mut c = VirtualClock::new();
        c.advance(2_500_000);
        assert_eq!(c.now_ms(), 2);
    }
}
