//! # par-runtime — parallel runtime substrate
//!
//! The paper's environment is the NANOS runtime executing MPI/OpenMP
//! applications on a 16-CPU SGI Origin 2000 (§3.2). This crate rebuilds the
//! pieces of that environment the DPD and SelfAnalyzer observe:
//!
//! * [`pool::ThreadPool`] + [`loops`] — a real work-sharing thread pool with
//!   `parallel_for` (static / dynamic / guided scheduling), exercising the
//!   same code paths under actual OS threads;
//! * [`barrier::SenseBarrier`] — the sense-reversing barrier used at the end
//!   of parallel regions;
//! * [`region`] — parallel-region open/close bookkeeping with nesting;
//! * [`cpustat`] — instantaneous active-CPU accounting and a fixed-rate
//!   sampler, producing the kind of trace shown in the paper's Figure 3;
//! * [`vclock`] + [`machine`] — a discrete-event *virtual-time*
//!   multiprocessor: configurable CPU count, fork/join overheads and an
//!   Amdahl-style cost model. Experiments that need 16 CPUs' worth of
//!   speedup run here deterministically regardless of the host machine;
//! * [`sched`] — processor-allocation policies (equipartition and the
//!   performance-driven policy of \[Corbalan2000\] that consumes the
//!   SelfAnalyzer's speedup estimates);
//! * [`service`] — the sharded multi-stream DPD service: parallel
//!   ingestion of thousands of concurrent streams over per-shard worker
//!   threads, with a deterministic single-threaded fallback, plus durable
//!   crash-safe state via [`service::MultiStreamDpd::checkpoint`] /
//!   [`service::MultiStreamDpd::resume`];
//! * [`net`] — the DTB-over-TCP ingestion front-end: a hand-rolled
//!   thread-per-connection server ([`net::DpdServer`]) with incremental
//!   frame reassembly, bounded per-connection buffers, slow-client
//!   shedding and checkpoint-on-exit durability.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod barrier;
pub mod cpustat;
pub mod loops;
pub mod machine;
pub mod msg;
pub mod net;
pub mod pool;
pub mod region;
pub mod sampler;
pub mod sched;
pub mod service;
pub mod vclock;
pub mod workload;

pub use cpustat::{CpuTimeline, CpuUsage};
pub use machine::{LoopSpec, Machine, MachineConfig, VirtualSpan};
pub use pool::ThreadPool;
pub use service::{CheckpointError, MultiStreamDpd, ServiceConfig, ServiceSnapshot, ShardStats};
pub use vclock::VirtualClock;
