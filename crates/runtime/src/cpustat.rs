//! Instantaneous active-CPU accounting.
//!
//! The paper's Figure 3 plots "the instantaneous number of active CPUs used
//! by a parallel application" sampled every 1 ms. Two sources exist here:
//!
//! * [`CpuUsage`] — a live atomic counter incremented/decremented by the
//!   real thread pool as workers pick up and finish work;
//! * [`CpuTimeline`] — a virtual-time step function recorded by the
//!   simulated machine, sampled at a fixed rate into the Figure 3 trace.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Live count of CPUs currently executing application work.
#[derive(Debug, Default)]
pub struct CpuUsage {
    active: AtomicUsize,
    peak: AtomicUsize,
}

impl CpuUsage {
    /// New counter at zero.
    pub fn new() -> Arc<Self> {
        Arc::new(CpuUsage::default())
    }

    /// A worker started executing work.
    pub fn enter(&self) -> usize {
        let now = self.active.fetch_add(1, Ordering::AcqRel) + 1;
        self.peak.fetch_max(now, Ordering::AcqRel);
        now
    }

    /// A worker finished executing work.
    pub fn leave(&self) -> usize {
        let prev = self.active.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "CpuUsage::leave without matching enter");
        prev - 1
    }

    /// Instantaneous active count.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Highest active count observed so far.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Acquire)
    }
}

/// RAII guard marking one CPU as active for its lifetime.
pub struct ActiveCpu<'a> {
    usage: &'a CpuUsage,
}

impl<'a> ActiveCpu<'a> {
    /// Mark a CPU active until the guard drops.
    pub fn enter(usage: &'a CpuUsage) -> Self {
        usage.enter();
        ActiveCpu { usage }
    }
}

impl Drop for ActiveCpu<'_> {
    fn drop(&mut self) {
        self.usage.leave();
    }
}

/// A step function of active-CPU count over virtual time.
#[derive(Debug, Clone, Default)]
pub struct CpuTimeline {
    /// `(time_ns, active_cpus)` transitions, time ascending. The value holds
    /// from its timestamp until the next transition.
    steps: Vec<(u64, u32)>,
}

impl CpuTimeline {
    /// Empty timeline (0 CPUs active from t = 0).
    pub fn new() -> Self {
        CpuTimeline { steps: Vec::new() }
    }

    /// Record that `active` CPUs are busy from `t_ns` on.
    ///
    /// # Panics
    /// Panics if `t_ns` precedes the last recorded transition.
    pub fn set(&mut self, t_ns: u64, active: u32) {
        if let Some(&(last_t, last_v)) = self.steps.last() {
            assert!(t_ns >= last_t, "timeline must advance monotonically");
            if last_v == active {
                return; // no-op transition
            }
            if last_t == t_ns {
                // Overwrite a same-instant transition.
                self.steps.pop();
            }
        }
        self.steps.push((t_ns, active));
    }

    /// Number of recorded transitions.
    pub fn transitions(&self) -> usize {
        self.steps.len()
    }

    /// Active-CPU count at time `t_ns`.
    pub fn at(&self, t_ns: u64) -> u32 {
        match self.steps.binary_search_by_key(&t_ns, |&(t, _)| t) {
            Ok(i) => self.steps[i].1,
            Err(0) => 0,
            Err(i) => self.steps[i - 1].1,
        }
    }

    /// End of the timeline: timestamp of the final transition.
    pub fn end_ns(&self) -> u64 {
        self.steps.last().map(|&(t, _)| t).unwrap_or(0)
    }

    /// Sample the timeline at a fixed period, from t = 0 to the end,
    /// producing the Figure 3 style trace.
    pub fn sample(&self, period_ns: u64) -> Vec<f64> {
        assert!(period_ns > 0, "sampling period must be non-zero");
        let end = self.end_ns();
        let n = (end / period_ns) as usize + 1;
        let mut out = Vec::with_capacity(n);
        let mut t = 0u64;
        let mut idx = 0usize;
        while t <= end {
            while idx + 1 < self.steps.len() && self.steps[idx + 1].0 <= t {
                idx += 1;
            }
            let v = if self.steps.is_empty() || self.steps[0].0 > t {
                0
            } else {
                self.steps[idx].1
            };
            out.push(v as f64);
            t += period_ns;
        }
        out
    }

    /// CPU-seconds consumed: the integral of the step function up to its
    /// final transition, in cpu-nanoseconds.
    pub fn cpu_time_ns(&self) -> u128 {
        let mut total: u128 = 0;
        for w in self.steps.windows(2) {
            let (t0, v) = w[0];
            let (t1, _) = w[1];
            total += (t1 - t0) as u128 * v as u128;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_enter_leave_peak() {
        let u = CpuUsage::new();
        assert_eq!(u.active(), 0);
        u.enter();
        u.enter();
        assert_eq!(u.active(), 2);
        assert_eq!(u.peak(), 2);
        u.leave();
        assert_eq!(u.active(), 1);
        assert_eq!(u.peak(), 2);
    }

    #[test]
    fn raii_guard_balances() {
        let u = CpuUsage::default();
        {
            let _g = ActiveCpu::enter(&u);
            assert_eq!(u.active(), 1);
        }
        assert_eq!(u.active(), 0);
    }

    #[test]
    fn timeline_at_lookups() {
        let mut tl = CpuTimeline::new();
        tl.set(0, 1);
        tl.set(100, 16);
        tl.set(200, 1);
        assert_eq!(tl.at(0), 1);
        assert_eq!(tl.at(50), 1);
        assert_eq!(tl.at(100), 16);
        assert_eq!(tl.at(150), 16);
        assert_eq!(tl.at(250), 1);
    }

    #[test]
    fn timeline_before_first_step_is_zero() {
        let mut tl = CpuTimeline::new();
        tl.set(100, 4);
        assert_eq!(tl.at(0), 0);
        assert_eq!(tl.at(99), 0);
    }

    #[test]
    fn timeline_dedupes_noop_transitions() {
        let mut tl = CpuTimeline::new();
        tl.set(0, 2);
        tl.set(50, 2);
        assert_eq!(tl.transitions(), 1);
    }

    #[test]
    fn timeline_same_instant_overwrite() {
        let mut tl = CpuTimeline::new();
        tl.set(0, 2);
        tl.set(10, 4);
        tl.set(10, 8);
        assert_eq!(tl.at(10), 8);
        assert_eq!(tl.transitions(), 2);
    }

    #[test]
    #[should_panic(expected = "monotonically")]
    fn timeline_rejects_backwards() {
        let mut tl = CpuTimeline::new();
        tl.set(100, 1);
        tl.set(50, 2);
    }

    #[test]
    fn sampling_matches_steps() {
        let mut tl = CpuTimeline::new();
        tl.set(0, 1);
        tl.set(1_000_000, 4); // at 1 ms
        tl.set(3_000_000, 2); // at 3 ms
        let s = tl.sample(1_000_000);
        assert_eq!(s, vec![1.0, 4.0, 4.0, 2.0]);
    }

    #[test]
    fn cpu_time_integral() {
        let mut tl = CpuTimeline::new();
        tl.set(0, 2);
        tl.set(100, 4);
        tl.set(200, 0);
        // 100ns * 2 + 100ns * 4 = 600 cpu-ns
        assert_eq!(tl.cpu_time_ns(), 600);
    }

    #[test]
    fn empty_timeline_samples_single_zero() {
        let tl = CpuTimeline::new();
        assert_eq!(tl.sample(1000), vec![0.0]);
        assert_eq!(tl.cpu_time_ns(), 0);
    }
}
