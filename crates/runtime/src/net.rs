//! DTB-over-TCP ingestion front-end for the multi-stream service.
//!
//! The ROADMAP north-star is a detector service absorbing heavy traffic
//! from millions of users; this module is the traffic entrance. A
//! [`DpdServer`] listens on a TCP socket and speaks the existing DTB
//! container format as its wire protocol — the same magic, CRC framing,
//! stream declarations and event/sample blocks `docs/FORMAT.md` specifies
//! for files (§11 adds the TCP mapping). Every accepted connection gets:
//!
//! * **incremental frame reassembly** — frames split across arbitrary
//!   `read()` boundaries are reassembled by [`dpd_trace::dtb::DtbDecoder`],
//!   the same decode implementation file replay uses;
//! * **a bounded buffer** — a frame declaring a body beyond
//!   [`NetConfig::max_frame`] is rejected before it is buffered, so a
//!   hostile length varint cannot balloon per-connection memory;
//! * **backpressure** — decoded blocks are applied to the shared
//!   [`MultiStreamDpd`] before more input is read, and cumulative
//!   acknowledgements let well-behaved clients pace themselves;
//! * **shedding** — clients that stall mid-frame past
//!   [`NetConfig::stall_ms`], or stop draining acknowledgements past
//!   [`NetConfig::write_ms`], are disconnected without affecting other
//!   connections;
//! * **typed rejection** — malformed input closes the connection with the
//!   offending [`DtbError`] counted in [`NetStats::protocol_errors`]; the
//!   valid prefix stays applied, nothing is fabricated.
//!
//! Shutdown drains cleanly: connection workers observe the stop flag at
//! their next poll tick, the accept loop is unblocked, and the service is
//! finished (final sweeps + close events). With [`NetConfig::durable`]
//! set, the server checkpoints through the PR 6 pile path — periodically,
//! at every clean client close, and on exit — and acknowledges only
//! checkpointed samples, so a client that resends from its last
//! acknowledgement after a server crash reproduces the uninterrupted run
//! bit-identically.
//!
//! Threading: one accept loop plus one worker thread per connection, each
//! on a small (256 KiB) stack — a thousand mostly-idle connections on the
//! one-CPU reference host cost virtual address space, not time. All
//! detector state lives behind one `parking_lot` mutex; per-connection
//! decode (varints, CRC) happens outside it, only the final
//! `ingest` of each decoded batch happens inside.

use crate::service::{CheckpointError, MultiStreamDpd, ServiceObs, ServiceSnapshot};
use dpd_core::pipeline::{BuildError, DpdBuilder};
use dpd_core::shard::{MultiStreamEvent, StreamId};
use dpd_obs::{Counter, Gauge, Histogram, Registry};
use dpd_trace::dtb::{self, Block, DtbDecoder, DtbError};
use dpd_trace::pile::EpochMarker;
use parking_lot::Mutex;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Handshake magic: the first four bytes the server sends on every
/// accepted connection (`docs/FORMAT.md` §11.1).
pub const HANDSHAKE_MAGIC: [u8; 4] = *b"DPS1";

/// Wire-protocol version carried in the handshake's fifth byte.
pub const PROTOCOL_VERSION: u8 = 1;

/// Per-connection worker stack size. Workers hold a read buffer pointer,
/// a decoder and some counters — 256 KiB is generous, and small stacks
/// are what make a thousand connection threads cheap.
const CONN_STACK: usize = 256 * 1024;

/// Per-`read()` buffer size of a connection worker.
const READ_BUF: usize = 16 * 1024;

/// Errors starting or stopping a [`DpdServer`].
///
/// `#[non_exhaustive]` like the other workspace error enums; every
/// variant renders a lowercase, period-free message.
#[non_exhaustive]
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (bind, local address query).
    Io(std::io::Error),
    /// The detector configuration was rejected.
    Build(BuildError),
    /// A durable checkpoint or resume failed.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "server socket error: {e}"),
            NetError::Build(e) => write!(f, "server configuration rejected: {e}"),
            NetError::Checkpoint(e) => write!(f, "server checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Build(e) => Some(e),
            NetError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<BuildError> for NetError {
    fn from(e: BuildError) -> Self {
        NetError::Build(e)
    }
}

impl From<CheckpointError> for NetError {
    fn from(e: CheckpointError) -> Self {
        NetError::Checkpoint(e)
    }
}

/// Durability policy of a server (the PR 6 checkpoint path over TCP).
#[derive(Debug, Clone)]
pub struct DurableNet {
    /// Checkpoint file path (written atomically; resumed from on start).
    pub path: PathBuf,
    /// Take a checkpoint every this many ingested samples (`0`: only at
    /// clean client closes and on shutdown).
    pub every_samples: u64,
    /// Resume from `path` when it exists instead of starting fresh.
    pub resume: bool,
}

/// Tuning knobs of a [`DpdServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Connections beyond this many simultaneously open are shed at
    /// accept time (counted in [`NetStats::shed_capacity`]).
    pub max_conns: usize,
    /// Per-frame body budget handed to each connection's [`DtbDecoder`].
    pub max_frame: usize,
    /// Worker poll tick in milliseconds: how often an idle connection
    /// checks the stop flag and its acknowledgement backlog.
    pub poll_ms: u64,
    /// Shed a connection stalled mid-frame for this many milliseconds.
    pub stall_ms: u64,
    /// Shed a connection that blocks acknowledgement writes for this many
    /// milliseconds (a slow or absent reader).
    pub write_ms: u64,
    /// Stop accepting after this many connections (`0`: accept forever).
    /// The server keeps serving already-accepted connections; combined
    /// with [`DpdServer::drained`] this gives tests and smoke scripts a
    /// self-terminating server.
    pub accept_limit: u64,
    /// Checkpoint/resume policy; `None` runs purely in memory.
    pub durable: Option<DurableNet>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_conns: 4096,
            max_frame: dtb::DEFAULT_MAX_FRAME,
            poll_ms: 10,
            stall_ms: 5_000,
            write_ms: 2_000,
            accept_limit: 0,
            durable: None,
        }
    }
}

/// Point-in-time counter snapshot of a running server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted (including ones later shed).
    pub accepted: u64,
    /// Connections currently open.
    pub open: u64,
    /// Connections shed at accept time (capacity limit).
    pub shed_capacity: u64,
    /// Connections shed for stalling mid-frame.
    pub shed_stalled: u64,
    /// Connections shed for not draining acknowledgements.
    pub shed_slow: u64,
    /// Connections that disconnected abruptly (reset, or EOF mid-frame —
    /// the latter also counts as a protocol error).
    pub disconnected: u64,
    /// Connections closed over a malformed frame (typed [`DtbError`]).
    pub protocol_errors: u64,
    /// Connections that completed cleanly at a frame boundary.
    pub clean_closes: u64,
    /// DTB frames decoded across all connections.
    pub frames: u64,
    /// Event samples ingested into the detector service.
    pub samples: u64,
    /// Sampled-kind (`f64`) values decoded and discarded (the service
    /// ingests event streams; sampled blocks are validated and counted).
    pub samples_skipped: u64,
    /// Payload bytes read off sockets.
    pub bytes: u64,
    /// Durable checkpoints taken.
    pub checkpoints: u64,
}

/// Server counters as registry handles (`dpd_net_*` series — the
/// metric-name contract is in `docs/OBSERVABILITY.md`). [`NetStats`]
/// snapshots are read back from these same cells, so a live `/metrics`
/// scrape and the drain-time report can never disagree.
struct NetMetrics {
    accepted: Counter,
    open: Gauge,
    shed_capacity: Counter,
    shed_stalled: Counter,
    shed_slow: Counter,
    disconnected: Counter,
    protocol_errors: Counter,
    clean_closes: Counter,
    frames: Counter,
    samples: Counter,
    samples_skipped: Counter,
    bytes: Counter,
    checkpoints: Counter,
    /// Events per decoded DTB events frame (log2 buckets) — the wire
    /// batching profile, deterministic for a deterministic corpus.
    frame_samples: Histogram,
}

impl NetMetrics {
    fn register(reg: &Registry) -> Self {
        NetMetrics {
            accepted: reg.counter(
                "dpd_net_connections_accepted_total",
                "connections accepted (including ones later shed)",
            ),
            open: reg.gauge("dpd_net_connections_open", "connections currently open"),
            shed_capacity: reg.counter(
                "dpd_net_shed_capacity_total",
                "connections shed at accept time (capacity limit)",
            ),
            shed_stalled: reg.counter(
                "dpd_net_shed_stalled_total",
                "connections shed for stalling mid-frame",
            ),
            shed_slow: reg.counter(
                "dpd_net_shed_slow_total",
                "connections shed for not draining acknowledgements",
            ),
            disconnected: reg.counter(
                "dpd_net_disconnected_total",
                "connections that disconnected abruptly",
            ),
            protocol_errors: reg.counter(
                "dpd_net_protocol_errors_total",
                "connections closed over a malformed frame",
            ),
            clean_closes: reg.counter(
                "dpd_net_clean_closes_total",
                "connections that completed cleanly at a frame boundary",
            ),
            frames: reg.counter(
                "dpd_net_frames_total",
                "DTB frames decoded across all connections",
            ),
            samples: reg.counter(
                "dpd_net_samples_total",
                "event samples ingested into the detector service",
            ),
            samples_skipped: reg.counter(
                "dpd_net_samples_skipped_total",
                "sampled-kind values decoded and discarded",
            ),
            bytes: reg.counter("dpd_net_bytes_total", "payload bytes read off sockets"),
            checkpoints: reg.counter("dpd_net_checkpoints_total", "durable checkpoints taken"),
            frame_samples: reg.histogram(
                "dpd_net_frame_samples",
                "event samples per decoded DTB events frame (log2 buckets)",
            ),
        }
    }

    fn stats(&self) -> NetStats {
        NetStats {
            accepted: self.accepted.get(),
            open: self.open.get(),
            shed_capacity: self.shed_capacity.get(),
            shed_stalled: self.shed_stalled.get(),
            shed_slow: self.shed_slow.get(),
            disconnected: self.disconnected.get(),
            protocol_errors: self.protocol_errors.get(),
            clean_closes: self.clean_closes.get(),
            frames: self.frames.get(),
            samples: self.samples.get(),
            samples_skipped: self.samples_skipped.get(),
            bytes: self.bytes.get(),
            checkpoints: self.checkpoints.get(),
        }
    }
}

/// Why a connection worker exited (internal; surfaced as counters).
enum CloseReason {
    Clean,
    Protocol(#[allow(dead_code)] DtbError),
    Stalled,
    SlowReader,
    Disconnected,
    ServerShutdown,
}

/// Per-connection shared state: the acknowledgement cut points.
#[derive(Default)]
struct ConnState {
    /// Samples decoded and applied from this connection (updated inside
    /// the service lock, so checkpoints capture a consistent cut).
    decoded: AtomicU64,
    /// Samples covered by the last durable checkpoint; what durable-mode
    /// acknowledgements report.
    durable: AtomicU64,
}

/// The service plus everything that must be updated under its lock.
struct Core {
    /// `None` only after shutdown took the service out.
    svc: Option<MultiStreamDpd>,
    /// Events drained at checkpoints, delivered with the final report.
    events: Vec<MultiStreamEvent>,
    /// Samples ingested since the last durable checkpoint.
    since_ckpt: u64,
    /// Monotonic checkpoint ordinal (continues a resumed lineage).
    ordinal: u64,
    /// First checkpoint failure, surfaced at shutdown.
    ckpt_error: Option<CheckpointError>,
}

struct Shared {
    cfg: NetConfig,
    core: Mutex<Core>,
    conns: Mutex<Vec<Arc<ConnState>>>,
    stop: AtomicBool,
    ctr: NetMetrics,
    registry: Registry,
}

impl Shared {
    fn stats(&self) -> NetStats {
        self.ctr.stats()
    }

    /// Take a checkpoint now, under the already-held core lock, and
    /// publish the durable acknowledgement cut to every connection.
    fn checkpoint_locked(&self, core: &mut Core) {
        let Some(d) = &self.cfg.durable else { return };
        let Some(svc) = core.svc.as_mut() else { return };
        core.ordinal += 1;
        let marker = EpochMarker {
            wave: core.ordinal,
            samples: svc.samples_ingested(),
            ordinal: core.ordinal,
        };
        match svc.checkpoint(&d.path, marker) {
            Ok(events) => {
                core.events.extend(events);
                core.since_ckpt = 0;
                self.ctr.checkpoints.inc();
                for conn in self.conns.lock().iter() {
                    conn.durable
                        .store(conn.decoded.load(Ordering::Acquire), Ordering::Release);
                }
            }
            Err(e) => {
                // Keep serving; durable acknowledgements simply stop
                // advancing. The first failure is reported at shutdown.
                if core.ckpt_error.is_none() {
                    core.ckpt_error = Some(e);
                }
            }
        }
    }
}

/// What a connection acknowledges: checkpoint-covered samples in durable
/// mode, applied samples otherwise.
fn ack_target(shared: &Shared, state: &ConnState) -> u64 {
    if shared.cfg.durable.is_some() {
        state.durable.load(Ordering::Acquire)
    } else {
        state.decoded.load(Ordering::Acquire)
    }
}

/// Decode every complete frame buffered in `dec` and apply the batch to
/// the service under one lock acquisition. Returns whether any frame was
/// consumed (progress, for the stall clock).
fn drain_decoder(
    dec: &mut DtbDecoder,
    shared: &Shared,
    state: &ConnState,
) -> Result<bool, DtbError> {
    let mut batch: Vec<(StreamId, Vec<i64>)> = Vec::new();
    let mut frames = 0u64;
    let mut skipped = 0u64;
    loop {
        match dec.next_block()? {
            Some(Block::Events { stream, values }) => {
                frames += 1;
                shared.ctr.frame_samples.record(values.len() as u64);
                batch.push((StreamId(stream), values.to_vec()));
            }
            Some(Block::Samples { values, .. }) => {
                frames += 1;
                skipped += values.len() as u64;
            }
            Some(Block::Decl { .. }) => frames += 1,
            None => break,
        }
    }
    if frames == 0 {
        return Ok(false);
    }
    shared.ctr.frames.add(frames);
    if skipped > 0 {
        shared.ctr.samples_skipped.add(skipped);
    }
    let new_samples: u64 = batch.iter().map(|(_, v)| v.len() as u64).sum();
    if new_samples > 0 {
        let records: Vec<(StreamId, &[i64])> =
            batch.iter().map(|(s, v)| (*s, v.as_slice())).collect();
        let mut core = shared.core.lock();
        if let Some(svc) = core.svc.as_mut() {
            svc.ingest(&records);
        }
        state.decoded.fetch_add(new_samples, Ordering::Release);
        shared.ctr.samples.add(new_samples);
        core.since_ckpt += new_samples;
        let cadence = shared
            .cfg
            .durable
            .as_ref()
            .map(|d| d.every_samples)
            .unwrap_or(0);
        if cadence > 0 && core.since_ckpt >= cadence {
            shared.checkpoint_locked(&mut core);
        }
    }
    Ok(true)
}

/// Serve one connection to completion. Runs on the connection's worker
/// thread; all error handling funnels into the returned [`CloseReason`].
fn serve_conn(sock: &mut TcpStream, shared: &Shared, state: &ConnState) -> CloseReason {
    let cfg = &shared.cfg;
    let _ = sock.set_nodelay(true);
    if sock
        .set_read_timeout(Some(Duration::from_millis(cfg.poll_ms.max(1))))
        .is_err()
        || sock
            .set_write_timeout(Some(Duration::from_millis(cfg.write_ms.max(1))))
            .is_err()
    {
        return CloseReason::Disconnected;
    }
    let hello = [
        HANDSHAKE_MAGIC[0],
        HANDSHAKE_MAGIC[1],
        HANDSHAKE_MAGIC[2],
        HANDSHAKE_MAGIC[3],
        PROTOCOL_VERSION,
        0,
    ];
    if sock.write_all(&hello).is_err() {
        return CloseReason::Disconnected;
    }
    let mut dec = DtbDecoder::with_max_frame(cfg.max_frame);
    let mut acked = 0u64;
    let mut last_progress = Instant::now();
    let mut buf = vec![0u8; READ_BUF];
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return CloseReason::ServerShutdown;
        }
        let target = ack_target(shared, state);
        if target > acked {
            if sock.write_all(&target.to_le_bytes()).is_err() {
                return CloseReason::SlowReader;
            }
            acked = target;
        }
        match sock.read(&mut buf) {
            Ok(0) => {
                return match dec.finish() {
                    Ok(()) => {
                        // Clean close. In durable mode a close is a
                        // durability point: checkpoint so the final
                        // acknowledgement covers everything sent.
                        if shared.cfg.durable.is_some() {
                            let mut core = shared.core.lock();
                            shared.checkpoint_locked(&mut core);
                        }
                        let target = ack_target(shared, state);
                        if target > acked {
                            let _ = sock.write_all(&target.to_le_bytes());
                        }
                        CloseReason::Clean
                    }
                    Err(e) => CloseReason::Protocol(e),
                };
            }
            Ok(n) => {
                shared.ctr.bytes.add(n as u64);
                dec.feed(&buf[..n]);
                match drain_decoder(&mut dec, shared, state) {
                    Ok(true) => last_progress = Instant::now(),
                    Ok(false) => {}
                    Err(e) => return CloseReason::Protocol(e),
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if dec.buffered() > 0
                    && last_progress.elapsed() >= Duration::from_millis(cfg.stall_ms)
                {
                    return CloseReason::Stalled;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return CloseReason::Disconnected,
        }
    }
}

/// Deregisters a connection even if its worker panics mid-decode.
struct ConnGuard {
    shared: Arc<Shared>,
    state: Arc<ConnState>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        let mut conns = self.shared.conns.lock();
        conns.retain(|c| !Arc::ptr_eq(c, &self.state));
        drop(conns);
        self.shared.ctr.open.sub(1);
    }
}

fn conn_worker(mut sock: TcpStream, shared: Arc<Shared>, state: Arc<ConnState>) {
    let guard = ConnGuard {
        shared: shared.clone(),
        state,
    };
    let reason = serve_conn(&mut sock, &shared, &guard.state);
    let ctr = &shared.ctr;
    match reason {
        CloseReason::Clean => ctr.clean_closes.inc(),
        CloseReason::Protocol(_) => ctr.protocol_errors.inc(),
        CloseReason::Stalled => ctr.shed_stalled.inc(),
        CloseReason::SlowReader => ctr.shed_slow.inc(),
        CloseReason::Disconnected => ctr.disconnected.inc(),
        CloseReason::ServerShutdown => {}
    };
    let _ = sock.shutdown(Shutdown::Both);
    drop(guard);
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut accepted = 0u64;
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let limit = shared.cfg.accept_limit;
        if limit > 0 && accepted >= limit {
            return;
        }
        let (sock, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::Acquire) {
            // The shutdown self-connection lands here; don't serve it.
            return;
        }
        accepted += 1;
        shared.ctr.accepted.inc();
        if shared.ctr.open.get() >= shared.cfg.max_conns as u64 {
            shared.ctr.shed_capacity.inc();
            let _ = sock.shutdown(Shutdown::Both);
            continue;
        }
        shared.ctr.open.add(1);
        let state = Arc::new(ConnState::default());
        shared.conns.lock().push(state.clone());
        let sh = shared.clone();
        let st = state.clone();
        let spawned = thread::Builder::new()
            .name("dpd-net-conn".into())
            .stack_size(CONN_STACK)
            .spawn(move || conn_worker(sock, sh, st));
        if spawned.is_err() {
            // Out of threads: shed exactly like a capacity overflow.
            let mut conns = shared.conns.lock();
            conns.retain(|c| !Arc::ptr_eq(c, &state));
            drop(conns);
            shared.ctr.open.sub(1);
            shared.ctr.shed_capacity.inc();
        }
    }
}

/// Everything a finished server hands back.
#[derive(Debug)]
pub struct ServeReport {
    /// Every detector event the run produced (checkpoint drains plus the
    /// final close events), in publication order.
    pub events: Vec<MultiStreamEvent>,
    /// Final detector-service snapshot.
    pub snapshot: ServiceSnapshot,
    /// Final network counters.
    pub stats: NetStats,
    /// The epoch marker the server resumed from, when it did.
    pub resumed_from: Option<EpochMarker>,
}

/// A running DTB-over-TCP ingestion server (see the module docs).
#[derive(Debug)]
pub struct DpdServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    resumed_from: Option<EpochMarker>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl DpdServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving a detector service built from `builder` — or resumed from
    /// the checkpoint in `cfg.durable` when configured and present.
    pub fn start(builder: &DpdBuilder, cfg: NetConfig, addr: &str) -> Result<Self, NetError> {
        DpdServer::start_observed(builder, cfg, addr, ServiceObs::default())
    }

    /// [`DpdServer::start`] with explicit observability wiring: both the
    /// detector service's per-shard rollups and the server's `dpd_net_*`
    /// counters register into `obs.registry` (the page a `--metrics`
    /// endpoint serves), and ingest-loop timings feed `obs.self_tracer`
    /// when present.
    pub fn start_observed(
        builder: &DpdBuilder,
        cfg: NetConfig,
        addr: &str,
        obs: ServiceObs,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let registry = obs.registry.clone();
        let (svc, resumed_from) = match &cfg.durable {
            Some(d) if d.resume && d.path.exists() => {
                let (svc, marker) = MultiStreamDpd::resume_observed(builder, &d.path, obs)?;
                (svc, Some(marker))
            }
            _ => (MultiStreamDpd::from_builder_observed(builder, obs)?, None),
        };
        let shared = Arc::new(Shared {
            cfg,
            core: Mutex::new(Core {
                svc: Some(svc),
                events: Vec::new(),
                since_ckpt: 0,
                ordinal: resumed_from.map(|m| m.ordinal).unwrap_or(0),
                ckpt_error: None,
            }),
            conns: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            ctr: NetMetrics::register(&registry),
            registry,
        });
        let sh = shared.clone();
        let accept = thread::Builder::new()
            .name("dpd-net-accept".into())
            .spawn(move || accept_loop(listener, sh))
            .map_err(NetError::Io)?;
        Ok(DpdServer {
            shared,
            addr: local,
            accept: Some(accept),
            resumed_from,
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters.
    pub fn stats(&self) -> NetStats {
        self.shared.stats()
    }

    /// The registry all of this server's metrics live in (`dpd_net_*`
    /// plus the detector service's `dpd_shard_*` rollups) — hand it to
    /// a `dpd_obs::MetricsServer` to expose them live.
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// `true` once the accept limit was reached *and* every accepted
    /// connection has finished — the self-termination condition for
    /// smoke runs (`accept_limit > 0`).
    pub fn drained(&self) -> bool {
        self.accept
            .as_ref()
            .map(|h| h.is_finished())
            .unwrap_or(true)
            && self.shared.ctr.open.get() == 0
    }

    /// Stop accepting, let in-flight connections observe the stop flag,
    /// take the exit checkpoint when durable, finish the service and
    /// return everything it produced.
    pub fn shutdown(mut self) -> Result<ServeReport, NetError> {
        self.shared.stop.store(true, Ordering::Release);
        // Unblock a blocking accept() with a self-connection; harmless
        // when the accept loop already exited.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        while self.shared.ctr.open.get() > 0 {
            thread::sleep(Duration::from_millis(2));
        }
        let mut core = self.shared.core.lock();
        if self.shared.cfg.durable.is_some() && core.since_ckpt > 0 {
            self.shared.checkpoint_locked(&mut core);
        }
        if let Some(e) = core.ckpt_error.take() {
            return Err(NetError::Checkpoint(e));
        }
        let mut events = std::mem::take(&mut core.events);
        let svc = core.svc.take().expect("server shut down twice");
        drop(core);
        let (tail, snapshot) = svc.finish();
        events.extend(tail);
        Ok(ServeReport {
            events,
            snapshot,
            stats: self.shared.stats(),
            resumed_from: self.resumed_from,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpd_trace::dtb::DtbWriter;
    use std::collections::BTreeMap;

    fn read_handshake(sock: &mut TcpStream) {
        let mut hello = [0u8; 6];
        sock.read_exact(&mut hello).expect("handshake");
        assert_eq!(&hello[..4], &HANDSHAKE_MAGIC);
        assert_eq!(hello[4], PROTOCOL_VERSION);
    }

    fn corpus(streams: u64, samples: u64) -> Vec<u8> {
        let mut w = DtbWriter::with_block_len(Vec::new(), 32).unwrap();
        for s in 0..streams {
            w.declare_events(s, &format!("s{s}")).unwrap();
        }
        for s in 0..streams {
            let vals: Vec<i64> = (0..samples)
                .map(|k| 0x1000 + (s as i64) * 0x100 + (k % (3 + s)) as i64)
                .collect();
            w.push_events(s, &vals).unwrap();
        }
        w.finish().unwrap()
    }

    fn by_stream(events: &[MultiStreamEvent]) -> BTreeMap<u64, Vec<MultiStreamEvent>> {
        let mut m: BTreeMap<u64, Vec<MultiStreamEvent>> = BTreeMap::new();
        for &e in events {
            m.entry(e.stream().0).or_default().push(e);
        }
        m
    }

    #[test]
    fn loopback_matches_in_process_replay() {
        let builder = DpdBuilder::new().window(8).keyed().shards(0);
        let bytes = corpus(4, 200);

        // Reference: in-process inline replay of the same container.
        let mut svc = MultiStreamDpd::from_builder(&builder).unwrap();
        let mut r = dpd_trace::dtb::DtbReader::new(&bytes).unwrap();
        while let Some(block) = r.next_block() {
            if let Block::Events { stream, values } = block.unwrap() {
                svc.ingest(&[(StreamId(stream), values)]);
            }
        }
        let (ref_events, _) = svc.finish();

        // Wire: one connection, deliberately fragmented writes.
        let server = DpdServer::start(&builder, NetConfig::default(), "127.0.0.1:0").unwrap();
        let mut sock = TcpStream::connect(server.local_addr()).unwrap();
        read_handshake(&mut sock);
        for piece in bytes.chunks(7) {
            sock.write_all(piece).unwrap();
        }
        sock.shutdown(Shutdown::Write).unwrap();
        // Wait for the final acknowledgement (cumulative sample count).
        let total: u64 = 4 * 200;
        let mut last = 0u64;
        let mut ack = [0u8; 8];
        while last < total {
            sock.read_exact(&mut ack).expect("ack stream");
            last = u64::from_le_bytes(ack);
        }
        drop(sock);
        let report = server.shutdown().unwrap();
        assert_eq!(report.stats.protocol_errors, 0);
        assert_eq!(report.stats.clean_closes, 1);
        assert_eq!(report.stats.samples, total);
        assert_eq!(by_stream(&report.events), by_stream(&ref_events));
    }

    #[test]
    fn malformed_frame_closes_with_protocol_error_only_for_that_conn() {
        let builder = DpdBuilder::new().window(8).keyed().shards(0);
        let server = DpdServer::start(&builder, NetConfig::default(), "127.0.0.1:0").unwrap();
        let bytes = corpus(1, 50);

        // Victim connection: valid header then garbage.
        let mut bad = TcpStream::connect(server.local_addr()).unwrap();
        read_handshake(&mut bad);
        let mut corrupt = bytes.clone();
        let n = corrupt.len();
        corrupt[n / 2] ^= 0x40;
        bad.write_all(&corrupt).unwrap();
        let _ = bad.shutdown(Shutdown::Write);
        // Server closes; the read eventually returns EOF or reset.
        let mut sink = Vec::new();
        let _ = bad.read_to_end(&mut sink);
        drop(bad);

        // A healthy connection is unaffected.
        let mut good = TcpStream::connect(server.local_addr()).unwrap();
        read_handshake(&mut good);
        good.write_all(&bytes).unwrap();
        good.shutdown(Shutdown::Write).unwrap();
        let mut ack = [0u8; 8];
        let mut last = 0u64;
        while last < 50 {
            good.read_exact(&mut ack).expect("healthy ack");
            last = u64::from_le_bytes(ack);
        }
        drop(good);

        let report = server.shutdown().unwrap();
        assert_eq!(report.stats.protocol_errors, 1);
        assert_eq!(report.stats.clean_closes, 1);
        // The healthy connection's samples all landed; the corrupt one
        // contributed at most its clean prefix.
        assert!(report.stats.samples >= 50);
    }

    #[test]
    fn net_error_messages_render_lowercase() {
        let errs: Vec<NetError> = vec![
            std::io::Error::other("boom").into(),
            NetError::Checkpoint(CheckpointError::NoCheckpoint),
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg:?}");
            assert!(!msg.ends_with('.'));
            let dyn_err: &dyn std::error::Error = &e;
            assert!(dyn_err.source().is_some());
        }
    }
}
