//! Wall-clock sampler for live CPU-usage traces.
//!
//! The virtual machine produces Figure-3 traces deterministically; this
//! sampler produces them from *real* executions: a background thread reads
//! the [`CpuUsage`] counter at a fixed wall-clock rate while the thread
//! pool runs actual kernels — the acquisition path the paper used on the
//! Origin 2000 ("the sampling frequency of the CPU usage is set to 1 ms").

use crate::cpustat::CpuUsage;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running sampler; stop it to collect the trace.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<Vec<f64>>,
    period: Duration,
}

impl Sampler {
    /// Start sampling `usage` every `period` until stopped.
    pub fn start(usage: Arc<CpuUsage>, period: Duration) -> Self {
        assert!(!period.is_zero(), "sampling period must be non-zero");
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cpu-usage-sampler".into())
            .spawn(move || {
                let mut samples = Vec::new();
                let start = Instant::now();
                let mut tick = 0u64;
                while !stop2.load(Ordering::Acquire) {
                    samples.push(usage.active() as f64);
                    tick += 1;
                    // Absolute-deadline pacing avoids cumulative drift.
                    let deadline = start + period * tick as u32;
                    let now = Instant::now();
                    if deadline > now {
                        std::thread::sleep(deadline - now);
                    }
                }
                samples
            })
            .expect("failed to spawn sampler thread");
        Sampler {
            stop,
            handle,
            period,
        }
    }

    /// Stop sampling and return the collected samples together with the
    /// sampling period in nanoseconds.
    pub fn stop(self) -> (Vec<f64>, u64) {
        self.stop.store(true, Ordering::Release);
        let samples = self.handle.join().expect("sampler thread panicked");
        (samples, self.period.as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpustat::ActiveCpu;

    #[test]
    fn collects_samples_while_running() {
        let usage = CpuUsage::new();
        let sampler = Sampler::start(Arc::clone(&usage), Duration::from_micros(200));
        {
            let _a = ActiveCpu::enter(&usage);
            let _b = ActiveCpu::enter(&usage);
            std::thread::sleep(Duration::from_millis(10));
        }
        std::thread::sleep(Duration::from_millis(5));
        let (samples, period_ns) = sampler.stop();
        assert_eq!(period_ns, 200_000);
        assert!(samples.len() >= 20, "only {} samples", samples.len());
        // While two guards were alive, the sampler must have seen activity.
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        assert!(max >= 1.0, "no activity observed: max {max}");
        // After the guards dropped, trailing samples return to zero.
        assert_eq!(*samples.last().unwrap(), 0.0);
    }

    #[test]
    fn stop_immediately_is_safe() {
        let usage = CpuUsage::new();
        let sampler = Sampler::start(usage, Duration::from_millis(1));
        let (samples, _) = sampler.stop();
        // At least the first sample is taken before the stop flag is seen.
        assert!(!samples.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_panics() {
        let usage = CpuUsage::new();
        let _ = Sampler::start(usage, Duration::ZERO);
    }
}
