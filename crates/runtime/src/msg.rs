//! Message-passing substrate for multi-process applications.
//!
//! The paper's Figure 3 workload is "MPI/OpenMp. Each process has a number
//! of threads and messages are interchanged between the MPI processes"
//! (§3.2). This module models that outer layer on the virtual machine: a
//! set of virtual processes with per-process clocks exchanging messages
//! through a latency/bandwidth-modelled interconnect, with blocking
//! receives that synchronize the clocks — enough to reproduce the
//! communication phases (serial dips in CPU usage) between the OpenMP
//! compute phases.

use crate::machine::{Machine, MachineConfig, VirtualSpan};

/// Interconnect cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Per-message latency (ns).
    pub latency_ns: u64,
    /// Inverse bandwidth: ns per byte.
    pub ns_per_byte: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        // Origin-2000-era interconnect: ~10 µs latency, ~100 MB/s effective.
        NetConfig {
            latency_ns: 10_000,
            ns_per_byte: 10.0,
        }
    }
}

impl NetConfig {
    /// Transfer time of a message of `bytes`.
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        self.latency_ns + (bytes as f64 * self.ns_per_byte) as u64
    }
}

/// A message in flight: available at the receiver from `ready_ns` on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct InFlight {
    from: usize,
    to: usize,
    tag: u64,
    bytes: u64,
    ready_ns: u64,
}

/// A group of virtual processes, each owning a [`Machine`].
#[derive(Debug)]
pub struct ProcessGroup {
    machines: Vec<Machine>,
    net: NetConfig,
    inflight: Vec<InFlight>,
    sends: u64,
    receives: u64,
}

impl ProcessGroup {
    /// Create `n` processes, each with its own `cpus_per_process`-CPU
    /// machine.
    pub fn new(n: usize, cpus_per_process: usize, net: NetConfig) -> Self {
        assert!(n > 0, "need at least one process");
        let machines = (0..n)
            .map(|_| {
                Machine::new(MachineConfig {
                    cpus: cpus_per_process,
                    ..MachineConfig::default()
                })
            })
            .collect();
        ProcessGroup {
            machines,
            net,
            inflight: Vec::new(),
            sends: 0,
            receives: 0,
        }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// `true` when the group is empty (never: construction requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Borrow process `rank`'s machine.
    pub fn machine(&mut self, rank: usize) -> &mut Machine {
        &mut self.machines[rank]
    }

    /// Immutable access for inspection.
    pub fn machine_ref(&self, rank: usize) -> &Machine {
        &self.machines[rank]
    }

    /// Non-blocking send from `from` to `to`: charges the sender the
    /// injection overhead and puts the message in flight.
    pub fn send(&mut self, from: usize, to: usize, tag: u64, bytes: u64) {
        assert!(from < self.len() && to < self.len(), "rank out of range");
        assert_ne!(from, to, "self-send not modelled");
        // Sender-side injection cost: latency only (rendezvous copies are
        // folded into the transfer time).
        let m = &mut self.machines[from];
        m.run_serial(self.net.latency_ns / 2);
        let ready_ns = m.now_ns() + self.net.transfer_ns(bytes);
        self.inflight.push(InFlight {
            from,
            to,
            tag,
            bytes,
            ready_ns,
        });
        self.sends += 1;
    }

    /// Blocking receive at `to` for a message with `tag` from `from`:
    /// advances the receiver's clock to the message arrival when it has to
    /// wait (the serial "communication dip" in the CPU trace).
    ///
    /// Returns the received byte count, or `None` when no matching message
    /// is in flight (deadlock at the caller's protocol level).
    pub fn recv(&mut self, to: usize, from: usize, tag: u64) -> Option<u64> {
        let idx = self
            .inflight
            .iter()
            .position(|m| m.to == to && m.from == from && m.tag == tag)?;
        let msg = self.inflight.remove(idx);
        let m = &mut self.machines[to];
        if msg.ready_ns > m.now_ns() {
            // Wait (1 CPU polling — communication is serial time).
            m.idle(msg.ready_ns - m.now_ns());
        } else {
            // Message already arrived: just the unpack cost.
            m.run_serial(self.net.latency_ns / 2);
        }
        self.receives += 1;
        Some(msg.bytes)
    }

    /// Synchronize all processes at a barrier: everyone advances to the
    /// latest clock (plus one latency for the barrier protocol).
    pub fn barrier(&mut self) -> u64 {
        let max = self
            .machines
            .iter()
            .map(|m| m.now_ns())
            .max()
            .expect("non-empty");
        let t = max + self.net.latency_ns;
        for m in &mut self.machines {
            let now = m.now_ns();
            if t > now {
                m.idle(t - now);
            }
        }
        t
    }

    /// `(sends, receives)` processed so far.
    pub fn traffic(&self) -> (u64, u64) {
        (self.sends, self.receives)
    }

    /// Messages still in flight (unmatched).
    pub fn pending(&self) -> usize {
        self.inflight.len()
    }

    /// All-to-all exchange of `bytes` per pair followed by a barrier — the
    /// transpose step of a distributed FFT (NAS FT's dominant
    /// communication).
    pub fn alltoall(&mut self, bytes: u64) -> VirtualSpan {
        let start = self
            .machines
            .iter()
            .map(|m| m.now_ns())
            .max()
            .expect("non-empty");
        let n = self.len();
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    self.send(from, to, 0xA2A, bytes);
                }
            }
        }
        for to in 0..n {
            for from in 0..n {
                if from != to {
                    self.recv(to, from, 0xA2A).expect("matching send exists");
                }
            }
        }
        let end = self.barrier();
        VirtualSpan {
            start_ns: start,
            end_ns: end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(n: usize) -> ProcessGroup {
        ProcessGroup::new(n, 4, NetConfig::default())
    }

    #[test]
    fn send_recv_advances_receiver_to_arrival() {
        let mut g = group(2);
        g.send(0, 1, 7, 1_000);
        let sender_t = g.machine_ref(0).now_ns();
        assert!(sender_t > 0, "sender pays injection cost");
        let bytes = g.recv(1, 0, 7).unwrap();
        assert_eq!(bytes, 1_000);
        // Receiver waited until the transfer completed.
        let expect = sender_t + NetConfig::default().transfer_ns(1_000);
        assert_eq!(g.machine_ref(1).now_ns(), expect);
        assert_eq!(g.pending(), 0);
    }

    #[test]
    fn recv_without_send_returns_none() {
        let mut g = group(2);
        assert_eq!(g.recv(1, 0, 7), None);
    }

    #[test]
    fn late_receiver_pays_only_unpack() {
        let mut g = group(2);
        g.send(0, 1, 1, 100);
        // Receiver does a lot of compute first.
        g.machine(1).run_serial(10_000_000);
        let before = g.machine_ref(1).now_ns();
        g.recv(1, 0, 1).unwrap();
        let after = g.machine_ref(1).now_ns();
        assert_eq!(after - before, NetConfig::default().latency_ns / 2);
    }

    #[test]
    fn tag_matching() {
        let mut g = group(2);
        g.send(0, 1, 1, 10);
        g.send(0, 1, 2, 20);
        assert_eq!(g.recv(1, 0, 2), Some(20));
        assert_eq!(g.recv(1, 0, 1), Some(10));
        assert_eq!(g.recv(1, 0, 3), None);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut g = group(3);
        g.machine(0).run_serial(5_000);
        g.machine(1).run_serial(50_000);
        g.machine(2).run_serial(500);
        let t = g.barrier();
        for r in 0..3 {
            assert_eq!(g.machine_ref(r).now_ns(), t);
        }
        assert_eq!(t, 50_000 + NetConfig::default().latency_ns);
    }

    #[test]
    fn alltoall_completes_and_synchronizes() {
        let mut g = group(4);
        let span = g.alltoall(4096);
        assert!(span.duration_ns() > 0);
        assert_eq!(g.pending(), 0);
        let (s, r) = g.traffic();
        assert_eq!(s, 12); // 4 * 3
        assert_eq!(r, 12);
        let t0 = g.machine_ref(0).now_ns();
        for r in 1..4 {
            assert_eq!(g.machine_ref(r).now_ns(), t0);
        }
    }

    #[test]
    fn transfer_cost_scales_with_size() {
        let net = NetConfig::default();
        assert!(net.transfer_ns(1_000_000) > net.transfer_ns(1_000));
        assert_eq!(net.transfer_ns(0), net.latency_ns);
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn self_send_rejected() {
        let mut g = group(2);
        g.send(0, 0, 1, 10);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_group_rejected() {
        let _ = ProcessGroup::new(0, 4, NetConfig::default());
    }
}
