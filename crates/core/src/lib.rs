//! # dpd-core — Dynamic Periodicity Detector
//!
//! A production-quality implementation of the Dynamic Periodicity Detector
//! (DPD) of Freitag, Corbalan and Labarta, *"A Dynamic Periodicity Detector:
//! Application to Speedup Computation"*, IPDPS 2001.
//!
//! The DPD estimates the periodicity of a data stream obtained from the
//! execution of an application (sequences of parallel-loop call addresses,
//! sampled CPU-usage counts, hardware-counter values, ...). It works on a
//! sliding data window of `N` samples and computes, for every candidate delay
//! `m` with `0 < m < M <= N`, a distance between the window and the window
//! shifted by `m` samples:
//!
//! * **Equation (1)** (magnitude streams):
//!   `d(m) = (1/N) * sum_{n=0}^{N-1} |x[n] - x[n-m]|`
//! * **Equation (2)** (event streams, e.g. function addresses):
//!   `d(m) = sign( sum_{i=0}^{N-1} |x(i) - x(i-m)| )`
//!
//! A (local) minimum of `d(m)` — exactly zero for event streams — indicates
//! that the stream is periodic with period `m`. On top of the raw metric the
//! crate provides:
//!
//! * [`detector::FrameDetector`] — frame-based analysis of a complete slice,
//!   producing a full [`spectrum::Spectrum`] of `d(m)` values (paper Fig. 4),
//! * [`streaming::StreamingDpd`] — the on-line detector with per-sample cost
//!   `O(M)` that performs **segmentation** of the stream into periods (the
//!   semantics of the paper's `int DPD(long sample, int *period)` interface),
//! * [`nested::NestedDetector`] / [`streaming::MultiScaleDpd`] — detection of
//!   nested iterative structures (hydro2d/turb3d in the paper's Table 2),
//! * [`prediction::PeriodicPredictor`] — prediction of future stream values
//!   from the detected period (paper §1, application 3),
//! * [`predict::Predictor`] / [`predict::ForecastingDpd`] — the online
//!   forecasting subsystem: allocation-free per-stream forecasts with
//!   confidence scoring and phase-change invalidation (see
//!   `docs/PREDICTION.md`),
//! * [`query::QueryEngine`] — delta-evaluated standing queries
//!   (period-in-range, lock-lost-within, confidence thresholds, period
//!   joins) answered incrementally from event deltas (see
//!   `docs/QUERIES.md`),
//! * [`autotune::WindowTuner`] — dynamic adjustment of the window size once a
//!   satisfying periodicity has been found (paper §3.1/§4),
//! * [`snapshot::Snapshot`] / [`snapshot::Restore`] — versioned,
//!   bit-exact serialization of every stack's full state for crash-safe
//!   checkpoint/restore (builder `restore_*` finishers validate the
//!   snapshot against the builder's configuration),
//! * [`capi::Dpd`] — the paper-faithful Table 1 interface.
//!
//! Every one of those stacks is constructed through **one typed entry
//! point**, [`pipeline::DpdBuilder`], which validates option combinations
//! ([`pipeline::BuildError`]) and reports through one event stream
//! ([`pipeline::EventSink`] / [`pipeline::DpdEvent`]). The pre-builder
//! constructors remain as `#[deprecated]` delegates; the README's
//! *"Migration from 0.x constructors"* table maps each to its builder call.
//!
//! ## Quick start
//!
//! ```
//! use dpd_core::pipeline::{Detector, DpdBuilder, DpdEvent};
//! use dpd_core::streaming::SegmentEvent;
//!
//! // A stream of "parallel loop addresses" with period 3: A B C A B C ...
//! let stream = [10i64, 20, 30, 10, 20, 30, 10, 20, 30, 10, 20, 30];
//! let mut pipe = DpdBuilder::new().window(8).build(Vec::new()).unwrap();
//! pipe.push_slice(&stream);
//! let detected = pipe.into_sink().iter().find_map(|(_, e)| match e {
//!     DpdEvent::Segment(SegmentEvent::PeriodStart { period, .. }) => Some(*period),
//!     _ => None,
//! });
//! assert_eq!(detected, Some(3));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod autotune;
pub mod baseline;
pub mod capi;
pub mod confidence;
pub mod detector;
pub mod hierarchy;
pub mod incremental;
pub mod intervals;
pub mod metric;
pub mod minima;
pub mod nested;
pub mod periodogram;
pub mod pipeline;
pub mod predict;
pub mod prediction;
pub mod query;
pub mod segmentation;
pub mod shard;
pub mod snapshot;
pub mod spectrum;
pub mod streaming;
pub mod window;

/// The naive full-history periodic predictor, re-exported under a name
/// that distinguishes it from the normative online forecasting subsystem
/// in [`predict`]: `naive::PeriodicPredictor` is the simple period-locked
/// baseline (`docs/PREDICTION.md` states which module is normative).
pub use self::prediction as naive;

pub use capi::Dpd;
pub use detector::{FrameDetector, PeriodicityReport};
pub use metric::{EventMetric, L1Metric, Metric};
pub use pipeline::{BuildError, Detector, DpdBuilder, DpdEvent, EventSink};
pub use predict::{Forecast, ForecastStats, ForecastingDpd, PredictConfig, Predictor};
pub use prediction::PeriodicPredictor;
pub use query::{QueryChange, QueryDelta, QueryEngine, QueryId, QuerySpec};
pub use shard::{
    MultiStreamEvent, StreamHandle, StreamId, StreamSummary, StreamTable, StreamTier, TableConfig,
};
pub use snapshot::{Restore, Snapshot, SnapshotError};
pub use spectrum::Spectrum;
pub use streaming::{MultiScaleDpd, SegmentEvent, StreamingConfig, StreamingDpd};

/// Errors produced by detector construction and reconfiguration.
///
/// `#[non_exhaustive]`: downstream matches must carry a wildcard arm so
/// new diagnostics can be added without a breaking change. Every variant
/// renders a lowercase, period-free [`Display`](core::fmt::Display)
/// message (asserted by a unit test).
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DpdError {
    /// The requested window size is zero or otherwise unusable.
    InvalidWindow(usize),
    /// The requested maximum delay `M` does not satisfy `0 < M <= N`.
    InvalidMaxDelay {
        /// Requested maximum delay.
        m_max: usize,
        /// Configured window size.
        window: usize,
    },
    /// A slice passed to a frame API was too short for the configuration.
    StreamTooShort {
        /// Number of samples required.
        needed: usize,
        /// Number of samples provided.
        got: usize,
    },
    /// The requested forecast horizon is zero or otherwise unusable.
    InvalidHorizon(usize),
}

impl core::fmt::Display for DpdError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DpdError::InvalidWindow(n) => write!(f, "invalid DPD window size: {n}"),
            DpdError::InvalidMaxDelay { m_max, window } => {
                write!(f, "invalid max delay M={m_max} for window N={window}")
            }
            DpdError::StreamTooShort { needed, got } => {
                write!(f, "stream too short: need {needed} samples, got {got}")
            }
            DpdError::InvalidHorizon(h) => write!(f, "invalid forecast horizon: {h}"),
        }
    }
}

impl std::error::Error for DpdError {}

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, DpdError>;

#[cfg(test)]
mod error_tests {
    use super::DpdError;

    /// Every `DpdError` variant renders a lowercase, period-free message
    /// and is usable as a `std::error::Error`.
    #[test]
    fn every_dpd_error_variant_renders() {
        let variants = vec![
            DpdError::InvalidWindow(0),
            DpdError::InvalidMaxDelay {
                m_max: 9,
                window: 8,
            },
            DpdError::StreamTooShort { needed: 10, got: 3 },
            DpdError::InvalidHorizon(0),
        ];
        for v in variants {
            let msg = v.to_string();
            assert!(!msg.is_empty(), "{v:?} renders empty");
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "{v:?} message must start lowercase: {msg:?}"
            );
            assert!(!msg.ends_with('.'), "{v:?} message ends with a period");
            let err: &dyn std::error::Error = &v;
            assert!(err.source().is_none());
        }
    }
}
