//! Measurement-interval recommendation.
//!
//! The paper's first application of periodicity knowledge (§1): "Periods in
//! a data stream or multiples of them may represent reasonable intervals
//! for performance measurement." Given a detected period and constraints on
//! how long a measurement should run (too short → timer noise dominates;
//! too long → adaptation lags), this module recommends the multiple of the
//! period to measure over, and iterates as the period estimate changes.

/// Constraints for choosing a measurement interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalPolicy {
    /// Shortest acceptable measurement interval (e.g. timer resolution
    /// times a safety factor), in the same unit the period is expressed in
    /// (samples or nanoseconds).
    pub min_length: u64,
    /// Longest acceptable interval (bounds adaptation latency).
    pub max_length: u64,
}

impl IntervalPolicy {
    /// Policy with the given bounds.
    ///
    /// # Panics
    /// Panics when `min_length > max_length` or `max_length == 0`.
    pub fn new(min_length: u64, max_length: u64) -> Self {
        assert!(max_length > 0, "max_length must be positive");
        assert!(min_length <= max_length, "min must not exceed max");
        IntervalPolicy {
            min_length,
            max_length,
        }
    }
}

/// A recommended measurement interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasurementInterval {
    /// The period the recommendation is based on.
    pub period: u64,
    /// Number of whole periods to measure over.
    pub periods: u64,
    /// Interval length (`period * periods`).
    pub length: u64,
}

/// Recommend the number of whole periods to measure over.
///
/// Picks the smallest multiple of `period` that reaches `min_length`;
/// returns `None` when no whole multiple fits inside `max_length` (the
/// period itself is too long — the caller should measure sub-period or
/// accept a single truncated interval).
pub fn recommend(period: u64, policy: IntervalPolicy) -> Option<MeasurementInterval> {
    if period == 0 || period > policy.max_length {
        return None;
    }
    let k = policy.min_length.div_ceil(period).max(1);
    let length = k.checked_mul(period)?;
    if length > policy.max_length {
        return None;
    }
    Some(MeasurementInterval {
        period,
        periods: k,
        length,
    })
}

/// Tracks the current recommendation as period estimates evolve
/// (period changes arrive from the streaming DPD's lock events).
#[derive(Debug, Clone, Copy)]
pub struct IntervalPlanner {
    policy: IntervalPolicy,
    current: Option<MeasurementInterval>,
    revisions: u64,
}

impl IntervalPlanner {
    /// Planner with no period known yet.
    pub fn new(policy: IntervalPolicy) -> Self {
        IntervalPlanner {
            policy,
            current: None,
            revisions: 0,
        }
    }

    /// Update with a newly detected period; returns the new recommendation
    /// when it changed.
    pub fn on_period(&mut self, period: u64) -> Option<MeasurementInterval> {
        let next = recommend(period, self.policy);
        if next != self.current {
            self.current = next;
            self.revisions += 1;
            next
        } else {
            None
        }
    }

    /// The period was lost: clear the recommendation.
    pub fn on_loss(&mut self) {
        if self.current.is_some() {
            self.current = None;
            self.revisions += 1;
        }
    }

    /// Current recommendation.
    pub fn current(&self) -> Option<MeasurementInterval> {
        self.current
    }

    /// Number of times the recommendation changed.
    pub fn revisions(&self) -> u64 {
        self.revisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_multiple_reaching_min() {
        let p = IntervalPolicy::new(100, 1000);
        let r = recommend(30, p).unwrap();
        assert_eq!(r.periods, 4); // 4 * 30 = 120 >= 100
        assert_eq!(r.length, 120);
    }

    #[test]
    fn single_period_when_long_enough() {
        let p = IntervalPolicy::new(100, 1000);
        let r = recommend(250, p).unwrap();
        assert_eq!(r.periods, 1);
        assert_eq!(r.length, 250);
    }

    #[test]
    fn period_exceeding_max_is_rejected() {
        let p = IntervalPolicy::new(100, 1000);
        assert_eq!(recommend(1500, p), None);
    }

    #[test]
    fn no_whole_multiple_fits() {
        // period 600, need >= 700 -> 2 periods = 1200 > max 1000.
        let p = IntervalPolicy::new(700, 1000);
        assert_eq!(recommend(600, p), None);
    }

    #[test]
    fn zero_period_rejected() {
        assert_eq!(recommend(0, IntervalPolicy::new(1, 10)), None);
    }

    #[test]
    fn exact_boundary_lengths() {
        let p = IntervalPolicy::new(100, 100);
        let r = recommend(50, p).unwrap();
        assert_eq!(r.length, 100);
        let r = recommend(100, p).unwrap();
        assert_eq!(r.periods, 1);
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn invalid_policy_panics() {
        let _ = IntervalPolicy::new(10, 5);
    }

    #[test]
    fn planner_tracks_changes() {
        let mut planner = IntervalPlanner::new(IntervalPolicy::new(100, 2000));
        assert_eq!(planner.current(), None);
        let r = planner.on_period(44).unwrap();
        assert_eq!(r.periods, 3); // 132 >= 100
                                  // Same period again: no change signalled.
        assert_eq!(planner.on_period(44), None);
        // Period refined: new recommendation.
        let r2 = planner.on_period(269).unwrap();
        assert_eq!(r2.periods, 1);
        planner.on_loss();
        assert_eq!(planner.current(), None);
        assert_eq!(planner.revisions(), 3);
    }

    #[test]
    fn planner_loss_when_empty_is_noop() {
        let mut planner = IntervalPlanner::new(IntervalPolicy::new(1, 10));
        planner.on_loss();
        assert_eq!(planner.revisions(), 0);
    }
}
