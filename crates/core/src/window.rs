//! Sample-history windows.
//!
//! The DPD needs access to the last `N + M` samples of the stream: the data
//! window of size `N` plus `M` additional samples of history so that the
//! shifted sequence `x[n - m]` is available for every delay `m <= M`
//! (see paper §3.1 and the memory discussion referencing \[Freitag00\]).
//! Two implementations are provided:
//!
//! * [`RingWindow`] — a classic modulo-indexed ring buffer with O(1) push and
//!   O(1) random access, for callers that only need point lookups.
//! * [`MirroredHistory`] — every sample is written twice, at `buf[i]` and
//!   `buf[i + cap]`, so the trailing `k <= cap` samples are *always available
//!   as one contiguous slice*. This is the backing store of the incremental
//!   engine's hot path: the per-delay update reads plain slices with no
//!   modulo arithmetic and no wraparound branch, which is what lets LLVM
//!   auto-vectorize the spectrum update (see `crate::incremental`).

/// Fixed-capacity ring buffer over the most recent samples of a stream.
///
/// Samples are addressed by *age*: `ago(0)` is the most recently pushed
/// sample, `ago(1)` the one before it, and so on. This matches the index
/// convention of the paper's distance metric, where the current frame is
/// compared against itself shifted `m` samples into the past.
#[derive(Debug, Clone)]
pub struct RingWindow<T> {
    buf: Vec<T>,
    /// Requested retention capacity. Kept explicitly: `Vec::capacity()` is
    /// allowed to over-allocate, and using it as the logical capacity would
    /// silently retain more samples than configured.
    cap: usize,
    /// Index of the slot that will receive the *next* push.
    head: usize,
    /// Number of valid samples stored (saturates at `cap`).
    len: usize,
    /// Total number of samples ever pushed.
    pushed: u64,
}

impl<T: Copy> RingWindow<T> {
    /// Create a window that retains the last `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RingWindow capacity must be non-zero");
        RingWindow {
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
            len: 0,
            pushed: 0,
        }
    }

    /// Retention capacity of the window.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of valid samples currently retained (`<= capacity`).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` until the first push.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` once `capacity` samples have been pushed.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.cap
    }

    /// Total number of samples pushed over the lifetime of the window.
    #[inline]
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Append a sample, evicting the oldest one if the window is full.
    #[inline]
    pub fn push(&mut self, sample: T) {
        if self.buf.len() < self.cap {
            self.buf.push(sample);
        } else {
            self.buf[self.head] = sample;
        }
        self.head = (self.head + 1) % self.cap;
        if self.len < self.cap {
            self.len += 1;
        }
        self.pushed += 1;
    }

    /// The sample pushed `age` steps ago (`age == 0` is the newest).
    ///
    /// Returns `None` when fewer than `age + 1` samples are retained.
    #[inline]
    pub fn ago(&self, age: usize) -> Option<T> {
        if age >= self.len {
            return None;
        }
        let cap = self.cap;
        // head points at the next write slot; newest element is head-1.
        let idx = (self.head + cap - 1 - age) % cap;
        Some(self.buf[idx])
    }

    /// Like [`RingWindow::ago`] but without the bounds check.
    ///
    /// Panics on the `debug_assert!` in debug builds, or returns stale data
    /// in release builds, if `age >= len`; callers must uphold
    /// `age < self.len()`.
    #[inline]
    pub fn ago_unchecked(&self, age: usize) -> T {
        debug_assert!(age < self.len, "age {age} out of window (len {})", self.len);
        let cap = self.cap;
        let idx = (self.head + cap - 1 - age) % cap;
        self.buf[idx]
    }

    /// Copy the retained samples into a `Vec`, oldest first.
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for age in (0..self.len).rev() {
            out.push(self.ago_unchecked(age));
        }
        out
    }

    /// Iterate over retained samples from newest (`age 0`) to oldest.
    pub fn iter_newest_first(&self) -> impl Iterator<Item = T> + '_ {
        (0..self.len).map(move |age| self.ago_unchecked(age))
    }

    /// Drop all retained samples but keep the capacity and push counter.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.len = 0;
    }

    /// Overwrite the lifetime push counter (snapshot restore only: the
    /// restored window must report the same `pushed()` as the one that was
    /// serialized, even though its contents were re-pushed here).
    pub(crate) fn set_pushed(&mut self, n: u64) {
        self.pushed = n;
    }

    /// Grow or shrink the retention capacity, preserving the most recent
    /// samples that fit. Used by the dynamic window-size interface
    /// (`DPDWindowSize`, paper Table 1).
    pub fn resize(&mut self, new_capacity: usize) {
        assert!(new_capacity > 0, "RingWindow capacity must be non-zero");
        if new_capacity == self.cap {
            return;
        }
        let keep = self.len.min(new_capacity);
        let mut newest_first: Vec<T> = (0..keep).map(|a| self.ago_unchecked(a)).collect();
        newest_first.reverse(); // oldest-first now
        self.buf = Vec::with_capacity(new_capacity);
        self.buf.extend(newest_first.iter().copied());
        self.cap = new_capacity;
        self.head = self.buf.len() % new_capacity;
        self.len = keep;
    }
}

/// History buffer whose trailing samples are always one contiguous slice.
///
/// Every pushed sample is written twice — at `buf[i]` and `buf[i + cap]` —
/// so for any `k <= len` the most recent `k` samples occupy the contiguous
/// range `buf[head + cap - k .. head + cap]`, oldest first. Point access
/// needs no modulo: the sample pushed `age` steps ago sits at
/// `buf[head + cap - 1 - age]`.
///
/// The double-write costs one extra store per push; in exchange, bulk
/// consumers (the incremental spectrum kernel) read plain slices that the
/// compiler can auto-vectorize, which is worth far more than the store.
#[derive(Debug, Clone)]
pub struct MirroredHistory<T> {
    /// `2 * cap` slots once initialized; empty until the first push (there
    /// is no `T: Default`, so the backing store is materialized from the
    /// first pushed value).
    buf: Vec<T>,
    cap: usize,
    /// Next write slot, in `0..cap`.
    head: usize,
    /// Number of valid samples retained (saturates at `cap`).
    len: usize,
    /// Total number of samples ever pushed.
    pushed: u64,
}

impl<T: Copy> MirroredHistory<T> {
    /// Create a history retaining the last `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MirroredHistory capacity must be non-zero");
        MirroredHistory {
            buf: Vec::new(),
            cap: capacity,
            head: 0,
            len: 0,
            pushed: 0,
        }
    }

    /// Retention capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of valid samples currently retained (`<= capacity`).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` until the first push (or after [`MirroredHistory::clear`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` once `capacity` samples are retained.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.cap
    }

    /// Total number of samples pushed over the lifetime of the history.
    #[inline]
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Append a sample, evicting the oldest one if the history is full.
    #[inline]
    pub fn push(&mut self, sample: T) {
        if self.buf.is_empty() {
            // Materialize the backing store from the first value pushed.
            self.buf = vec![sample; 2 * self.cap];
        }
        self.buf[self.head] = sample;
        self.buf[self.head + self.cap] = sample;
        self.head += 1;
        if self.head == self.cap {
            self.head = 0;
        }
        if self.len < self.cap {
            self.len += 1;
        }
        self.pushed += 1;
    }

    /// Append every sample of `slice` in order.
    #[inline]
    pub fn extend_from_slice(&mut self, slice: &[T]) {
        for &s in slice {
            self.push(s);
        }
    }

    /// The most recent `k` retained samples as one contiguous slice, oldest
    /// first (`tail(k)[k - 1]` is the newest sample).
    ///
    /// # Panics
    /// Panics if `k > self.len()`.
    #[inline]
    pub fn tail(&self, k: usize) -> &[T] {
        assert!(k <= self.len, "tail({k}) exceeds retained len {}", self.len);
        if k == 0 {
            return &[];
        }
        let end = self.head + self.cap;
        &self.buf[end - k..end]
    }

    /// All retained samples as one contiguous slice, oldest first.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        self.tail(self.len)
    }

    /// The sample pushed `age` steps ago (`age == 0` is the newest).
    ///
    /// Returns `None` when fewer than `age + 1` samples are retained.
    #[inline]
    pub fn ago(&self, age: usize) -> Option<T> {
        if age >= self.len {
            return None;
        }
        Some(self.buf[self.head + self.cap - 1 - age])
    }

    /// Copy the retained samples into a `Vec`, oldest first.
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }

    /// Drop all retained samples but keep the capacity and push counter.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    /// Overwrite the lifetime push counter (snapshot restore only; see
    /// [`RingWindow::set_pushed`]).
    pub(crate) fn set_pushed(&mut self, n: u64) {
        self.pushed = n;
    }

    /// Grow or shrink the retention capacity, preserving the most recent
    /// samples that fit.
    ///
    /// # Panics
    /// Panics if `new_capacity` is zero.
    pub fn resize(&mut self, new_capacity: usize) {
        assert!(
            new_capacity > 0,
            "MirroredHistory capacity must be non-zero"
        );
        if new_capacity == self.cap {
            return;
        }
        let keep: Vec<T> = self.tail(self.len.min(new_capacity)).to_vec();
        let pushed = self.pushed;
        self.buf = Vec::new();
        self.cap = new_capacity;
        self.head = 0;
        self.len = 0;
        self.extend_from_slice(&keep);
        self.pushed = pushed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window() {
        let w: RingWindow<i64> = RingWindow::new(4);
        assert!(w.is_empty());
        assert!(!w.is_full());
        assert_eq!(w.len(), 0);
        assert_eq!(w.ago(0), None);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = RingWindow::<i64>::new(0);
    }

    #[test]
    fn push_and_ago_before_full() {
        let mut w = RingWindow::new(4);
        w.push(1i64);
        w.push(2);
        assert_eq!(w.len(), 2);
        assert_eq!(w.ago(0), Some(2));
        assert_eq!(w.ago(1), Some(1));
        assert_eq!(w.ago(2), None);
    }

    #[test]
    fn eviction_after_full() {
        let mut w = RingWindow::new(3);
        for v in 1..=5i64 {
            w.push(v);
        }
        assert!(w.is_full());
        assert_eq!(w.len(), 3);
        assert_eq!(w.ago(0), Some(5));
        assert_eq!(w.ago(1), Some(4));
        assert_eq!(w.ago(2), Some(3));
        assert_eq!(w.ago(3), None);
        assert_eq!(w.pushed(), 5);
    }

    #[test]
    fn to_vec_is_oldest_first() {
        let mut w = RingWindow::new(3);
        for v in [7i64, 8, 9, 10] {
            w.push(v);
        }
        assert_eq!(w.to_vec(), vec![8, 9, 10]);
    }

    #[test]
    fn iter_newest_first_order() {
        let mut w = RingWindow::new(3);
        for v in [1i64, 2, 3] {
            w.push(v);
        }
        let got: Vec<i64> = w.iter_newest_first().collect();
        assert_eq!(got, vec![3, 2, 1]);
    }

    #[test]
    fn clear_preserves_capacity_and_counter() {
        let mut w = RingWindow::new(3);
        w.push(1i64);
        w.push(2);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.capacity(), 3);
        assert_eq!(w.pushed(), 2);
        w.push(5);
        assert_eq!(w.ago(0), Some(5));
    }

    #[test]
    fn resize_shrink_keeps_newest() {
        let mut w = RingWindow::new(5);
        for v in 1..=5i64 {
            w.push(v);
        }
        w.resize(2);
        assert_eq!(w.capacity(), 2);
        assert_eq!(w.to_vec(), vec![4, 5]);
        w.push(6);
        assert_eq!(w.to_vec(), vec![5, 6]);
    }

    #[test]
    fn resize_grow_keeps_contents() {
        let mut w = RingWindow::new(2);
        for v in [1i64, 2, 3] {
            w.push(v);
        }
        w.resize(4);
        assert_eq!(w.to_vec(), vec![2, 3]);
        w.push(4);
        w.push(5);
        w.push(6);
        assert_eq!(w.to_vec(), vec![3, 4, 5, 6]);
    }

    #[test]
    fn resize_same_capacity_is_noop() {
        let mut w = RingWindow::new(3);
        w.push(1i64);
        w.resize(3);
        assert_eq!(w.to_vec(), vec![1]);
    }

    #[test]
    fn wraparound_many_pushes() {
        let mut w = RingWindow::new(7);
        for v in 0..1000i64 {
            w.push(v);
        }
        for age in 0..7 {
            assert_eq!(w.ago(age), Some(999 - age as i64));
        }
    }

    #[test]
    fn capacity_is_exactly_as_requested() {
        // Vec::with_capacity may over-allocate; the logical capacity must
        // not follow it. 6 is a size where Vec typically rounds up.
        let mut w = RingWindow::new(6);
        assert_eq!(w.capacity(), 6);
        for v in 0..100i64 {
            w.push(v);
        }
        assert_eq!(w.len(), 6);
        assert_eq!(w.to_vec(), (94..100).collect::<Vec<i64>>());
        assert_eq!(w.ago(6), None, "retains exactly 6 samples, not more");
    }

    // --- MirroredHistory ---

    #[test]
    fn mirrored_empty() {
        let h: MirroredHistory<i64> = MirroredHistory::new(4);
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.ago(0), None);
        assert_eq!(h.as_slice(), &[] as &[i64]);
        assert_eq!(h.tail(0), &[] as &[i64]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn mirrored_zero_capacity_panics() {
        let _ = MirroredHistory::<i64>::new(0);
    }

    #[test]
    fn mirrored_tail_is_contiguous_after_wraparound() {
        let mut h = MirroredHistory::new(5);
        for v in 0..137i64 {
            h.push(v);
            let len = h.len();
            // The full retained slice is always oldest..newest.
            let expect: Vec<i64> = ((v + 1 - len as i64)..=v).collect();
            assert_eq!(h.as_slice(), &expect[..], "after push {v}");
            // Every tail length agrees with ago().
            for k in 0..=len {
                let t = h.tail(k);
                assert_eq!(t.len(), k);
                for (i, &tv) in t.iter().enumerate() {
                    assert_eq!(Some(tv), h.ago(k - 1 - i));
                }
            }
        }
        assert_eq!(h.pushed(), 137);
    }

    #[test]
    #[should_panic(expected = "exceeds retained")]
    fn mirrored_tail_beyond_len_panics() {
        let mut h = MirroredHistory::new(4);
        h.push(1i64);
        let _ = h.tail(2);
    }

    #[test]
    fn mirrored_matches_ring_window_semantics() {
        let mut ring = RingWindow::new(7);
        let mut mir = MirroredHistory::new(7);
        for v in 0..200i64 {
            ring.push(v * v % 31);
            mir.push(v * v % 31);
            assert_eq!(ring.to_vec(), mir.to_vec());
            assert_eq!(ring.len(), mir.len());
            for age in 0..10 {
                assert_eq!(ring.ago(age), mir.ago(age));
            }
        }
    }

    #[test]
    fn mirrored_extend_equals_pushes() {
        let data: Vec<i64> = (0..50).collect();
        let mut a = MirroredHistory::new(8);
        let mut b = MirroredHistory::new(8);
        a.extend_from_slice(&data);
        for &v in &data {
            b.push(v);
        }
        assert_eq!(a.to_vec(), b.to_vec());
        assert_eq!(a.pushed(), b.pushed());
    }

    #[test]
    fn mirrored_clear_keeps_counter() {
        let mut h = MirroredHistory::new(4);
        h.push(1i64);
        h.push(2);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.pushed(), 2);
        h.push(9);
        assert_eq!(h.to_vec(), vec![9]);
    }

    #[test]
    fn mirrored_resize_keeps_newest() {
        let mut h = MirroredHistory::new(6);
        for v in 0..10i64 {
            h.push(v);
        }
        h.resize(3);
        assert_eq!(h.capacity(), 3);
        assert_eq!(h.to_vec(), vec![7, 8, 9]);
        assert_eq!(h.pushed(), 10);
        h.resize(8);
        assert_eq!(h.to_vec(), vec![7, 8, 9]);
        h.push(10);
        assert_eq!(h.to_vec(), vec![7, 8, 9, 10]);
    }
}
