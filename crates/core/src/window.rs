//! Ring-buffer sample window.
//!
//! The DPD needs access to the last `N + M` samples of the stream: the data
//! window of size `N` plus `M` additional samples of history so that the
//! shifted sequence `x[n - m]` is available for every delay `m <= M`
//! (see paper §3.1 and the memory discussion referencing \[Freitag00\]).
//! [`RingWindow`] provides exactly that: O(1) push, O(1) random access to the
//! most recent `capacity` samples addressed *backwards* from the newest one.

/// Fixed-capacity ring buffer over the most recent samples of a stream.
///
/// Samples are addressed by *age*: `ago(0)` is the most recently pushed
/// sample, `ago(1)` the one before it, and so on. This matches the index
/// convention of the paper's distance metric, where the current frame is
/// compared against itself shifted `m` samples into the past.
#[derive(Debug, Clone)]
pub struct RingWindow<T> {
    buf: Vec<T>,
    /// Index of the slot that will receive the *next* push.
    head: usize,
    /// Number of valid samples stored (saturates at `buf.len()`).
    len: usize,
    /// Total number of samples ever pushed.
    pushed: u64,
}

impl<T: Copy> RingWindow<T> {
    /// Create a window that retains the last `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RingWindow capacity must be non-zero");
        RingWindow {
            buf: Vec::with_capacity(capacity),
            head: 0,
            len: 0,
            pushed: 0,
        }
    }

    /// Retention capacity of the window.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Number of valid samples currently retained (`<= capacity`).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` until the first push.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` once `capacity` samples have been pushed.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity()
    }

    /// Total number of samples pushed over the lifetime of the window.
    #[inline]
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Append a sample, evicting the oldest one if the window is full.
    #[inline]
    pub fn push(&mut self, sample: T) {
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(sample);
        } else {
            self.buf[self.head] = sample;
        }
        self.head = (self.head + 1) % self.buf.capacity();
        if self.len < self.buf.capacity() {
            self.len += 1;
        }
        self.pushed += 1;
    }

    /// The sample pushed `age` steps ago (`age == 0` is the newest).
    ///
    /// Returns `None` when fewer than `age + 1` samples are retained.
    #[inline]
    pub fn ago(&self, age: usize) -> Option<T> {
        if age >= self.len {
            return None;
        }
        let cap = self.buf.capacity();
        // head points at the next write slot; newest element is head-1.
        let idx = (self.head + cap - 1 - age) % cap;
        Some(self.buf[idx])
    }

    /// Like [`RingWindow::ago`] but without the bounds check.
    ///
    /// # Panics
    /// Panics (in debug builds via the modulo index) or returns stale data if
    /// `age >= len`; callers must uphold `age < self.len()`.
    #[inline]
    pub fn ago_unchecked(&self, age: usize) -> T {
        debug_assert!(age < self.len, "age {age} out of window (len {})", self.len);
        let cap = self.buf.capacity();
        let idx = (self.head + cap - 1 - age) % cap;
        self.buf[idx]
    }

    /// Copy the retained samples into a `Vec`, oldest first.
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for age in (0..self.len).rev() {
            out.push(self.ago_unchecked(age));
        }
        out
    }

    /// Iterate over retained samples from newest (`age 0`) to oldest.
    pub fn iter_newest_first(&self) -> impl Iterator<Item = T> + '_ {
        (0..self.len).map(move |age| self.ago_unchecked(age))
    }

    /// Drop all retained samples but keep the capacity and push counter.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.len = 0;
    }

    /// Grow or shrink the retention capacity, preserving the most recent
    /// samples that fit. Used by the dynamic window-size interface
    /// (`DPDWindowSize`, paper Table 1).
    pub fn resize(&mut self, new_capacity: usize) {
        assert!(new_capacity > 0, "RingWindow capacity must be non-zero");
        if new_capacity == self.capacity() {
            return;
        }
        let keep = self.len.min(new_capacity);
        let mut newest_first: Vec<T> = (0..keep).map(|a| self.ago_unchecked(a)).collect();
        newest_first.reverse(); // oldest-first now
        self.buf = Vec::with_capacity(new_capacity);
        self.buf.extend(newest_first.iter().copied());
        self.head = self.buf.len() % new_capacity;
        self.len = keep;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window() {
        let w: RingWindow<i64> = RingWindow::new(4);
        assert!(w.is_empty());
        assert!(!w.is_full());
        assert_eq!(w.len(), 0);
        assert_eq!(w.ago(0), None);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = RingWindow::<i64>::new(0);
    }

    #[test]
    fn push_and_ago_before_full() {
        let mut w = RingWindow::new(4);
        w.push(1i64);
        w.push(2);
        assert_eq!(w.len(), 2);
        assert_eq!(w.ago(0), Some(2));
        assert_eq!(w.ago(1), Some(1));
        assert_eq!(w.ago(2), None);
    }

    #[test]
    fn eviction_after_full() {
        let mut w = RingWindow::new(3);
        for v in 1..=5i64 {
            w.push(v);
        }
        assert!(w.is_full());
        assert_eq!(w.len(), 3);
        assert_eq!(w.ago(0), Some(5));
        assert_eq!(w.ago(1), Some(4));
        assert_eq!(w.ago(2), Some(3));
        assert_eq!(w.ago(3), None);
        assert_eq!(w.pushed(), 5);
    }

    #[test]
    fn to_vec_is_oldest_first() {
        let mut w = RingWindow::new(3);
        for v in [7i64, 8, 9, 10] {
            w.push(v);
        }
        assert_eq!(w.to_vec(), vec![8, 9, 10]);
    }

    #[test]
    fn iter_newest_first_order() {
        let mut w = RingWindow::new(3);
        for v in [1i64, 2, 3] {
            w.push(v);
        }
        let got: Vec<i64> = w.iter_newest_first().collect();
        assert_eq!(got, vec![3, 2, 1]);
    }

    #[test]
    fn clear_preserves_capacity_and_counter() {
        let mut w = RingWindow::new(3);
        w.push(1i64);
        w.push(2);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.capacity(), 3);
        assert_eq!(w.pushed(), 2);
        w.push(5);
        assert_eq!(w.ago(0), Some(5));
    }

    #[test]
    fn resize_shrink_keeps_newest() {
        let mut w = RingWindow::new(5);
        for v in 1..=5i64 {
            w.push(v);
        }
        w.resize(2);
        assert_eq!(w.capacity(), 2);
        assert_eq!(w.to_vec(), vec![4, 5]);
        w.push(6);
        assert_eq!(w.to_vec(), vec![5, 6]);
    }

    #[test]
    fn resize_grow_keeps_contents() {
        let mut w = RingWindow::new(2);
        for v in [1i64, 2, 3] {
            w.push(v);
        }
        w.resize(4);
        assert_eq!(w.to_vec(), vec![2, 3]);
        w.push(4);
        w.push(5);
        w.push(6);
        assert_eq!(w.to_vec(), vec![3, 4, 5, 6]);
    }

    #[test]
    fn resize_same_capacity_is_noop() {
        let mut w = RingWindow::new(3);
        w.push(1i64);
        w.resize(3);
        assert_eq!(w.to_vec(), vec![1]);
    }

    #[test]
    fn wraparound_many_pushes() {
        let mut w = RingWindow::new(7);
        for v in 0..1000i64 {
            w.push(v);
        }
        for age in 0..7 {
            assert_eq!(w.ago(age), Some(999 - age as i64));
        }
    }
}
