//! Incremental maintenance of the full `d(m)` spectrum.
//!
//! A naive implementation recomputes equation (1)/(2) from scratch for every
//! delay after each new sample — `O(N * M)` per sample, far too expensive for
//! the "negligible overhead" the paper reports (Table 3: ~4 µs per element on
//! 2001 hardware, including trace handling). [`IncrementalEngine`] instead
//! maintains, for every delay `m`, the running pair-sum
//! `S_m = Σ_{k=0}^{N-1} pair(x[t-k], x[t-k-m])` and updates all of them in
//! `O(M)` per pushed sample:
//!
//! * the newly formed pair `(x[t], x[t-m])` enters the frame,
//! * the pair `(x[t-N], x[t-N-m])` leaves it.
//!
//! For the event metric the pair contributions are exact small integers, so
//! the running sums never drift. For the floating-point L1 metric the engine
//! optionally re-derives all sums from the retained history every
//! `resync_interval` pushes to bound accumulated rounding error.

use crate::metric::Metric;
use crate::spectrum::Spectrum;
use crate::window::RingWindow;

/// Configuration of an [`IncrementalEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Frame size `N`: number of pairs summed per delay.
    pub frame: usize,
    /// Largest candidate delay `M` (`0 < M <= N` per the paper §3.1).
    pub m_max: usize,
    /// Recompute the sums from history every this many pushes (`0` = never).
    /// Only useful for inexact metrics; exact metrics never drift.
    pub resync_interval: u64,
}

impl EngineConfig {
    /// The paper's guidance: `M = N` candidates over a window of `N`.
    pub fn square(n: usize) -> Self {
        EngineConfig {
            frame: n,
            m_max: n,
            resync_interval: 0,
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> crate::Result<()> {
        if self.frame == 0 {
            return Err(crate::DpdError::InvalidWindow(self.frame));
        }
        if self.m_max == 0 || self.m_max > self.frame {
            return Err(crate::DpdError::InvalidMaxDelay {
                m_max: self.m_max,
                window: self.frame,
            });
        }
        Ok(())
    }
}

/// O(M)-per-sample sliding computation of `d(m)` for all `m <= M`.
#[derive(Debug, Clone)]
pub struct IncrementalEngine<T, M: Metric<T>> {
    metric: M,
    config: EngineConfig,
    /// Last `N + M` samples (plus one slot of slack for the outgoing pair).
    history: RingWindow<T>,
    /// Running pair-sums, indexed by `m - 1`.
    sums: Vec<f64>,
    /// Number of pairs currently contributing to each sum.
    pairs: Vec<u32>,
    /// Total samples pushed.
    pushed: u64,
}

impl<T: Copy, M: Metric<T>> IncrementalEngine<T, M> {
    /// Create an engine with the given metric and configuration.
    pub fn new(metric: M, config: EngineConfig) -> crate::Result<Self> {
        config.validate()?;
        Ok(IncrementalEngine {
            metric,
            history: RingWindow::new(config.frame + config.m_max + 1),
            sums: vec![0.0; config.m_max],
            pairs: vec![0; config.m_max],
            config,
            pushed: 0,
        })
    }

    /// The engine's configuration.
    #[inline]
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Total samples pushed so far.
    #[inline]
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Number of samples needed before *all* delays have complete frames:
    /// `N + M` (the frame plus the deepest delayed access).
    #[inline]
    pub fn warmup_len(&self) -> usize {
        self.config.frame + self.config.m_max
    }

    /// `true` once every delay has a full frame of pairs.
    #[inline]
    pub fn is_warm(&self) -> bool {
        self.pushed as usize >= self.warmup_len()
    }

    /// Push one sample, updating every `d(m)` in O(M).
    pub fn push(&mut self, sample: T) {
        let n = self.config.frame;
        let m_max = self.config.m_max;
        self.history.push(sample);
        self.pushed += 1;
        let t = self.history.len(); // retained samples, newest has age 0

        for m in 1..=m_max {
            // Incoming pair (x[t], x[t-m]): ages 0 and m.
            if t > m {
                let newest = self.history.ago_unchecked(0);
                let delayed = self.history.ago_unchecked(m);
                self.sums[m - 1] += self.metric.pair(newest, delayed);
                self.pairs[m - 1] += 1;
                // Outgoing pair (x[t-N], x[t-N-m]): ages N and N+m.
                if self.pairs[m - 1] as usize > n {
                    let out_cur = self.history.ago_unchecked(n);
                    let out_del = self.history.ago_unchecked(n + m);
                    self.sums[m - 1] -= self.metric.pair(out_cur, out_del);
                    self.pairs[m - 1] = n as u32;
                }
            }
        }

        if self.config.resync_interval > 0 && self.pushed % self.config.resync_interval == 0 {
            self.resync();
        }
    }

    /// Recompute all running sums from the retained history. Bounds
    /// floating-point drift for inexact metrics; a no-op semantically.
    pub fn resync(&mut self) {
        let n = self.config.frame;
        for m in 1..=self.config.m_max {
            let avail = self.history.len();
            // Pairs exist for current ages 0..N-1 provided age+m < avail.
            let mut sum = 0.0;
            let mut count = 0u32;
            for age in 0..n.min(avail) {
                if age + m < avail {
                    let cur = self.history.ago_unchecked(age);
                    let del = self.history.ago_unchecked(age + m);
                    sum += self.metric.pair(cur, del);
                    count += 1;
                }
            }
            self.sums[m - 1] = sum;
            self.pairs[m - 1] = count;
        }
    }

    /// Current `d(m)`; `None` for out-of-range `m` or when no pairs exist.
    pub fn distance(&self, m: usize) -> Option<f64> {
        if m == 0 || m > self.config.m_max {
            return None;
        }
        let pairs = self.pairs[m - 1] as usize;
        if pairs == 0 {
            return None;
        }
        Some(self.metric.finalize(self.sums[m - 1], pairs))
    }

    /// `true` when delay `m` currently has a full frame of `N` pairs.
    pub fn is_complete(&self, m: usize) -> bool {
        m >= 1 && m <= self.config.m_max && self.pairs[m - 1] as usize == self.config.frame
    }

    /// Raw pair-sum at delay `m` (mismatch count for event metrics).
    pub fn pair_sum(&self, m: usize) -> Option<f64> {
        if m == 0 || m > self.config.m_max {
            None
        } else {
            Some(self.sums[m - 1])
        }
    }

    /// Snapshot the current spectrum.
    pub fn spectrum(&self) -> Spectrum {
        let values: Vec<f64> = (1..=self.config.m_max)
            .map(|m| {
                let p = self.pairs[m - 1] as usize;
                self.metric.finalize(self.sums[m - 1], p)
            })
            .collect();
        Spectrum::from_parts(values, self.pairs.clone(), self.config.frame)
    }

    /// Smallest delay whose full-frame distance is exactly zero, if any.
    ///
    /// For the event metric this is the paper's equation-(2) detection: "if
    /// d(m) = 0, then a periodic pattern with dimension m is detected".
    pub fn first_zero(&self) -> Option<usize> {
        (1..=self.config.m_max)
            .find(|&m| self.is_complete(m) && self.sums[m - 1] == 0.0)
    }

    /// Reconfigure frame size and maximum delay, preserving as much history
    /// as the new capacity allows, and rebuild the sums. O(N*M).
    pub fn reconfigure(&mut self, config: EngineConfig) -> crate::Result<()> {
        config.validate()?;
        self.config = config;
        self.history.resize(config.frame + config.m_max + 1);
        self.sums = vec![0.0; config.m_max];
        self.pairs = vec![0; config.m_max];
        self.resync();
        Ok(())
    }

    /// Forget all history and sums (e.g. after a detected phase change).
    pub fn reset(&mut self) {
        self.history.clear();
        self.sums.iter_mut().for_each(|s| *s = 0.0);
        self.pairs.iter_mut().for_each(|p| *p = 0);
    }

    /// Access the retained history, oldest first (test/diagnostic helper).
    pub fn history_vec(&self) -> Vec<T> {
        self.history.to_vec()
    }

    /// The retained sample pushed `age` steps ago (`0` = newest).
    #[inline]
    pub fn history_ago(&self, age: usize) -> Option<T> {
        self.history.ago(age)
    }

    /// Borrow the metric driving this engine.
    #[inline]
    pub fn metric_ref(&self) -> &M {
        &self.metric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{direct_distance, EventMetric, L1Metric};

    fn feed<T: Copy, M: Metric<T>>(engine: &mut IncrementalEngine<T, M>, data: &[T]) {
        for &s in data {
            engine.push(s);
        }
    }

    #[test]
    fn config_validation() {
        assert!(EngineConfig { frame: 0, m_max: 1, resync_interval: 0 }
            .validate()
            .is_err());
        assert!(EngineConfig { frame: 4, m_max: 0, resync_interval: 0 }
            .validate()
            .is_err());
        assert!(EngineConfig { frame: 4, m_max: 5, resync_interval: 0 }
            .validate()
            .is_err());
        assert!(EngineConfig::square(8).validate().is_ok());
    }

    #[test]
    fn periodic_event_stream_zero_at_period() {
        let mut e = IncrementalEngine::new(EventMetric, EngineConfig::square(8)).unwrap();
        let data: Vec<i64> = (0..32).map(|i| [5, 7, 9, 11][i % 4]).collect();
        feed(&mut e, &data);
        assert!(e.is_warm());
        assert_eq!(e.distance(4), Some(0.0));
        assert_eq!(e.distance(8), Some(0.0)); // harmonic
        assert_eq!(e.distance(3), Some(1.0));
        assert_eq!(e.first_zero(), Some(4));
    }

    #[test]
    fn incremental_matches_direct_for_events() {
        // pseudo-random-ish but deterministic data
        let data: Vec<i64> = (0..200).map(|i| (i * i % 17) as i64).collect();
        let cfg = EngineConfig { frame: 16, m_max: 12, resync_interval: 0 };
        let mut e = IncrementalEngine::new(EventMetric, cfg).unwrap();
        for (t, &s) in data.iter().enumerate() {
            e.push(s);
            let seen = &data[..=t];
            for m in 1..=12 {
                if let Some(direct) = direct_distance(&EventMetric, seen, 16, m) {
                    assert_eq!(
                        e.distance(m),
                        Some(direct),
                        "mismatch at t={t} m={m}"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_matches_direct_for_l1() {
        let data: Vec<f64> = (0..150)
            .map(|i| ((i as f64) * 0.7).sin() * 10.0 + (i % 5) as f64)
            .collect();
        let cfg = EngineConfig { frame: 20, m_max: 15, resync_interval: 0 };
        let mut e = IncrementalEngine::new(L1Metric, cfg).unwrap();
        for (t, &s) in data.iter().enumerate() {
            e.push(s);
            let seen = &data[..=t];
            for m in 1..=15 {
                if let Some(direct) = direct_distance(&L1Metric, seen, 20, m) {
                    let inc = e.distance(m).unwrap();
                    assert!(
                        (inc - direct).abs() < 1e-9,
                        "drift at t={t} m={m}: {inc} vs {direct}"
                    );
                }
            }
        }
    }

    #[test]
    fn resync_is_semantically_noop() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).cos() * 4.0).collect();
        let cfg = EngineConfig { frame: 10, m_max: 8, resync_interval: 0 };
        let mut a = IncrementalEngine::new(L1Metric, cfg).unwrap();
        let mut b = IncrementalEngine::new(
            L1Metric,
            EngineConfig { resync_interval: 7, ..cfg },
        )
        .unwrap();
        for &s in &data {
            a.push(s);
            b.push(s);
        }
        for m in 1..=8 {
            let da = a.distance(m).unwrap();
            let db = b.distance(m).unwrap();
            assert!((da - db).abs() < 1e-9, "m={m}: {da} vs {db}");
        }
    }

    #[test]
    fn warmup_accounting() {
        let cfg = EngineConfig { frame: 6, m_max: 4, resync_interval: 0 };
        let mut e = IncrementalEngine::new(EventMetric, cfg).unwrap();
        assert_eq!(e.warmup_len(), 10);
        for i in 0..9i64 {
            e.push(i);
            assert!(!e.is_warm());
        }
        e.push(9);
        assert!(e.is_warm());
        for m in 1..=4 {
            assert!(e.is_complete(m), "m={m} incomplete after warmup");
        }
    }

    #[test]
    fn distance_none_before_any_pairs() {
        let cfg = EngineConfig::square(4);
        let mut e = IncrementalEngine::new(EventMetric, cfg).unwrap();
        assert_eq!(e.distance(1), None);
        e.push(1i64);
        assert_eq!(e.distance(1), None); // still no pair: needs 2 samples
        e.push(1);
        assert_eq!(e.distance(1), Some(0.0));
    }

    #[test]
    fn reconfigure_preserves_recent_history() {
        let mut e = IncrementalEngine::new(EventMetric, EngineConfig::square(16)).unwrap();
        let data: Vec<i64> = (0..64).map(|i| [1, 2, 3][i % 3]).collect();
        feed(&mut e, &data);
        assert_eq!(e.first_zero(), Some(3));
        e.reconfigure(EngineConfig::square(6)).unwrap();
        assert_eq!(e.first_zero(), Some(3), "period survives shrink");
        // and it keeps working for further pushes
        for i in 64..90 {
            e.push([1, 2, 3][i % 3]);
        }
        assert_eq!(e.first_zero(), Some(3));
    }

    #[test]
    fn reset_clears_detection() {
        let mut e = IncrementalEngine::new(EventMetric, EngineConfig::square(6)).unwrap();
        let data: Vec<i64> = (0..24).map(|i| [1, 2][i % 2]).collect();
        feed(&mut e, &data);
        assert_eq!(e.first_zero(), Some(2));
        e.reset();
        assert_eq!(e.first_zero(), None);
        assert_eq!(e.distance(1), None);
    }

    #[test]
    fn period_larger_than_window_not_detected() {
        // paper §3.1: "if the periodicity m ... is larger than the data
        // window size N, then the pattern and its periodicity cannot be
        // captured by the detector".
        let period = 12usize;
        let data: Vec<i64> = (0..96).map(|i| (i % period) as i64).collect();
        let mut e = IncrementalEngine::new(EventMetric, EngineConfig::square(8)).unwrap();
        feed(&mut e, &data);
        assert_eq!(e.first_zero(), None);
    }

    #[test]
    fn spectrum_snapshot_matches_distances() {
        let data: Vec<i64> = (0..40).map(|i| [4, 5, 6, 7, 8][i % 5]).collect();
        let mut e = IncrementalEngine::new(EventMetric, EngineConfig::square(10)).unwrap();
        feed(&mut e, &data);
        let s = e.spectrum();
        for m in 1..=10 {
            assert_eq!(s.at(m), e.distance(m), "m={m}");
        }
        assert_eq!(s.zeros(), vec![5, 10]);
    }
}
