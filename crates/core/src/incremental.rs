//! Incremental maintenance of the full `d(m)` spectrum.
//!
//! A naive implementation recomputes equation (1)/(2) from scratch for every
//! delay after each new sample — `O(N * M)` per sample, far too expensive for
//! the "negligible overhead" the paper reports (Table 3: ~4 µs per element on
//! 2001 hardware, including trace handling). [`IncrementalEngine`] instead
//! maintains, for every delay `m`, the running pair-sum
//! `S_m = Σ_{k=0}^{N-1} pair(x[t-k], x[t-k-m])` and updates all of them in
//! `O(M)` per pushed sample:
//!
//! * the newly formed pair `(x[t], x[t-m])` enters the frame,
//! * the pair `(x[t-N], x[t-N-m])` leaves it.
//!
//! # Hot-path layout
//!
//! History lives in a [`MirroredHistory`]: every sample is stored twice so
//! the trailing `N + M + k` samples are always one contiguous slice — no
//! modulo indexing, no wraparound branch. `push` splits into two paths:
//!
//! * a branchy **warmup** path while some delay still lacks a full frame of
//!   pairs (the first `N + M` samples after construction or reset), and
//! * a branch-free **steady-state** path in which *every* delay gains one
//!   incoming pair and sheds one outgoing pair. The per-delay update then
//!   reads two reverse-contiguous slices of history and accumulates into the
//!   flat `sums` array — a pure streaming kernel that LLVM auto-vectorizes.
//!
//! [`IncrementalEngine::push_slice`] feeds whole slices: warmup samples go
//! through the per-sample path, after which samples are ingested in
//! cache-sized blocks (history written first, then one fused pass per block)
//! amortizing per-push bookkeeping. Block processing preserves the exact
//! per-accumulator floating-point operation order of sample-by-sample
//! `push`, so batch and per-sample ingestion produce **bit-identical**
//! spectra — a property the test suite checks with property tests.
//!
//! For the event metric the pair contributions are exact small integers, so
//! the running sums never drift. For the floating-point L1 metric the engine
//! optionally re-derives all sums from the retained history every
//! `resync_interval` pushes to bound accumulated rounding error; batch
//! ingestion splits blocks at resync boundaries so the resync points are
//! sample-exact.

use crate::metric::Metric;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use crate::spectrum::Spectrum;
use crate::window::MirroredHistory;

/// Block length for steady-state batch ingestion. Sized so the working set
/// (history slice of `N + M + BLOCK` samples plus the `M`-entry sums array)
/// stays cache-resident for the window sizes the paper uses (`N <= 1024`).
const STEADY_BLOCK: usize = 64;

/// Configuration of an [`IncrementalEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Frame size `N`: number of pairs summed per delay.
    pub frame: usize,
    /// Largest candidate delay `M` (`0 < M <= N` per the paper §3.1).
    pub m_max: usize,
    /// Recompute the sums from history every this many pushes (`0` = never).
    /// Only useful for inexact metrics; exact metrics never drift.
    pub resync_interval: u64,
}

impl EngineConfig {
    /// The paper's guidance: `M = N` candidates over a window of `N`.
    pub fn square(n: usize) -> Self {
        EngineConfig {
            frame: n,
            m_max: n,
            resync_interval: 0,
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> crate::Result<()> {
        if self.frame == 0 {
            return Err(crate::DpdError::InvalidWindow(self.frame));
        }
        if self.m_max == 0 || self.m_max > self.frame {
            return Err(crate::DpdError::InvalidMaxDelay {
                m_max: self.m_max,
                window: self.frame,
            });
        }
        Ok(())
    }

    /// History retention backing this configuration: the frame, the deepest
    /// delayed access, and one steady-state ingestion block.
    fn history_capacity(&self) -> usize {
        self.frame + self.m_max + STEADY_BLOCK
    }
}

/// O(M)-per-sample sliding computation of `d(m)` for all `m <= M`.
#[derive(Debug, Clone)]
pub struct IncrementalEngine<T, M: Metric<T>> {
    metric: M,
    config: EngineConfig,
    /// Last `N + M + STEADY_BLOCK` samples, mirrored for contiguous reads.
    history: MirroredHistory<T>,
    /// Running pair-sums, indexed by `m - 1`.
    sums: Vec<f64>,
    /// Number of pairs currently contributing to each sum.
    pairs: Vec<u32>,
    /// Total samples pushed.
    pushed: u64,
}

impl<T: Copy, M: Metric<T>> IncrementalEngine<T, M> {
    /// Create an engine with the given metric and configuration.
    pub fn new(metric: M, config: EngineConfig) -> crate::Result<Self> {
        config.validate()?;
        Ok(IncrementalEngine {
            metric,
            history: MirroredHistory::new(config.history_capacity()),
            sums: vec![0.0; config.m_max],
            pairs: vec![0; config.m_max],
            config,
            pushed: 0,
        })
    }

    /// The engine's configuration.
    #[inline]
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Total samples pushed so far.
    #[inline]
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Number of samples needed before *all* delays have complete frames:
    /// `N + M` (the frame plus the deepest delayed access).
    #[inline]
    pub fn warmup_len(&self) -> usize {
        self.config.frame + self.config.m_max
    }

    /// `true` once every delay has a full frame of pairs.
    #[inline]
    pub fn is_warm(&self) -> bool {
        self.pushed as usize >= self.warmup_len()
    }

    /// `true` when the *next* push takes the branch-free steady-state path:
    /// every delay both gains an incoming pair and sheds an outgoing one.
    #[inline]
    fn next_push_is_steady(&self) -> bool {
        self.history.len() >= self.warmup_len()
    }

    /// Push one sample, updating every `d(m)` in O(M).
    #[inline]
    pub fn push(&mut self, sample: T) {
        if self.next_push_is_steady() {
            self.history.push(sample);
            self.pushed += 1;
            self.steady_update(1);
        } else {
            self.warm_push(sample);
        }
        self.maybe_resync();
    }

    /// Push a whole slice of samples, semantically identical to calling
    /// [`IncrementalEngine::push`] for each element — including bit-identical
    /// floating-point sums — but ingested in cache-sized blocks once the
    /// engine is warm.
    pub fn push_slice(&mut self, samples: &[T]) {
        let mut rest = samples;

        // Warmup: per-sample branchy path until every delay is complete.
        while !rest.is_empty() && !self.next_push_is_steady() {
            self.warm_push(rest[0]);
            self.maybe_resync();
            rest = &rest[1..];
        }

        // Steady state: blocks, split at resync boundaries so inexact
        // metrics resynchronize at exactly the same stream positions as
        // sample-by-sample ingestion.
        let interval = self.config.resync_interval;
        while !rest.is_empty() {
            let mut block = rest.len().min(STEADY_BLOCK);
            if interval > 0 {
                let until_boundary = interval - (self.pushed % interval);
                block = block.min(until_boundary as usize);
            }
            let (now, later) = rest.split_at(block);
            self.history.extend_from_slice(now);
            self.pushed += block as u64;
            self.steady_update(block);
            if interval > 0 && self.pushed.is_multiple_of(interval) {
                self.resync();
            }
            rest = later;
        }
    }

    /// Warmup-path push: some delays may still be missing pairs, so every
    /// delay carries two data-dependent branches. Mirrors the definition
    /// exactly; runs for the first `N + M` samples after construction,
    /// [`IncrementalEngine::reset`] or a shrinking reconfigure.
    fn warm_push(&mut self, sample: T) {
        let n = self.config.frame;
        let m_max = self.config.m_max;
        self.history.push(sample);
        self.pushed += 1;
        let h = self.history.as_slice();
        let t = h.len(); // retained samples; h[t - 1] is the newest
        let newest = h[t - 1];

        for m in 1..=m_max {
            // Incoming pair (x[t], x[t-m]): ages 0 and m.
            if t > m {
                self.sums[m - 1] += self.metric.pair(newest, h[t - 1 - m]);
                self.pairs[m - 1] += 1;
                // Outgoing pair (x[t-N], x[t-N-m]): ages N and N+m.
                if self.pairs[m - 1] as usize > n {
                    self.sums[m - 1] -= self.metric.pair(h[t - 1 - n], h[t - 1 - n - m]);
                    self.pairs[m - 1] = n as u32;
                }
            }
        }
    }

    /// Steady-state spectrum update for the trailing `block` samples already
    /// written to history. For each sample the per-delay work is a pure
    /// streaming kernel: broadcast the incoming/outgoing anchors, read the
    /// two reverse-contiguous history slices, accumulate into `sums`. No
    /// branches, no modulo — auto-vectorizable.
    ///
    /// Per accumulator the operation order is identical to sample-by-sample
    /// ingestion (`+= incoming` then `-= outgoing`, in stream order), so
    /// results are bit-identical to repeated `push`.
    fn steady_update(&mut self, block: usize) {
        let n = self.config.frame;
        let m_max = self.config.m_max;
        let h = self.history.tail(n + m_max + block);
        let sums = &mut self.sums[..m_max];
        let metric = &self.metric;
        for i in 0..block {
            // Stream indices within `h`: current sample at n + m_max + i.
            let cur = h[n + m_max + i];
            let out_cur = h[m_max + i];
            // delayed[m_max - m] == x[t - m]; out_delayed[m_max - m] == x[t - N - m].
            let delayed = &h[n + i..n + m_max + i];
            let out_delayed = &h[i..m_max + i];
            for ((s, &d_in), &d_out) in sums
                .iter_mut()
                .zip(delayed.iter().rev())
                .zip(out_delayed.iter().rev())
            {
                *s += metric.pair(cur, d_in);
                *s -= metric.pair(out_cur, d_out);
            }
        }
    }

    #[inline]
    fn maybe_resync(&mut self) {
        if self.config.resync_interval > 0
            && self.pushed.is_multiple_of(self.config.resync_interval)
        {
            self.resync();
        }
    }

    /// Recompute all running sums from the retained history. Bounds
    /// floating-point drift for inexact metrics; a no-op semantically.
    pub fn resync(&mut self) {
        let n = self.config.frame;
        let h = self.history.as_slice();
        let avail = h.len();
        for m in 1..=self.config.m_max {
            // Pairs exist for current ages 0..N-1 provided age+m < avail.
            let mut sum = 0.0;
            let mut count = 0u32;
            for age in 0..n.min(avail) {
                if age + m < avail {
                    sum += self.metric.pair(h[avail - 1 - age], h[avail - 1 - age - m]);
                    count += 1;
                }
            }
            self.sums[m - 1] = sum;
            self.pairs[m - 1] = count;
        }
    }

    /// Current `d(m)`; `None` for out-of-range `m` or when no pairs exist.
    pub fn distance(&self, m: usize) -> Option<f64> {
        if m == 0 || m > self.config.m_max {
            return None;
        }
        let pairs = self.pairs[m - 1] as usize;
        if pairs == 0 {
            return None;
        }
        Some(self.metric.finalize(self.sums[m - 1], pairs))
    }

    /// `true` when delay `m` currently has a full frame of `N` pairs.
    pub fn is_complete(&self, m: usize) -> bool {
        m >= 1 && m <= self.config.m_max && self.pairs[m - 1] as usize == self.config.frame
    }

    /// Raw pair-sum at delay `m` (mismatch count for event metrics).
    pub fn pair_sum(&self, m: usize) -> Option<f64> {
        if m == 0 || m > self.config.m_max {
            None
        } else {
            Some(self.sums[m - 1])
        }
    }

    /// Snapshot the current spectrum.
    pub fn spectrum(&self) -> Spectrum {
        let values: Vec<f64> = (1..=self.config.m_max)
            .map(|m| {
                let p = self.pairs[m - 1] as usize;
                self.metric.finalize(self.sums[m - 1], p)
            })
            .collect();
        Spectrum::from_parts(values, self.pairs.clone(), self.config.frame)
    }

    /// Smallest delay whose full-frame distance is exactly zero, if any.
    ///
    /// For the event metric this is the paper's equation-(2) detection: "if
    /// d(m) = 0, then a periodic pattern with dimension m is detected".
    pub fn first_zero(&self) -> Option<usize> {
        (1..=self.config.m_max).find(|&m| self.is_complete(m) && self.sums[m - 1] == 0.0)
    }

    /// Reconfigure frame size and maximum delay, preserving as much history
    /// as the new capacity allows, and rebuild the sums. O(N*M).
    pub fn reconfigure(&mut self, config: EngineConfig) -> crate::Result<()> {
        config.validate()?;
        self.config = config;
        self.history.resize(config.history_capacity());
        self.sums = vec![0.0; config.m_max];
        self.pairs = vec![0; config.m_max];
        self.resync();
        Ok(())
    }

    /// Forget all history and sums (e.g. after a detected phase change).
    pub fn reset(&mut self) {
        self.history.clear();
        self.sums.iter_mut().for_each(|s| *s = 0.0);
        self.pairs.iter_mut().for_each(|p| *p = 0);
    }

    /// Return to the exact as-constructed state — including the lifetime
    /// push counters, which [`IncrementalEngine::reset`] deliberately
    /// keeps — while retaining every buffer allocation. An engine after
    /// `reset_fresh` is observably (and serialization-byte) identical to
    /// `IncrementalEngine::new` with the same metric and config; the
    /// stream-table hot-state pool relies on that to recycle detectors
    /// without reallocating.
    pub(crate) fn reset_fresh(&mut self) {
        self.reset();
        self.history.set_pushed(0);
        self.pushed = 0;
    }

    /// Access the retained history, oldest first (test/diagnostic helper).
    pub fn history_vec(&self) -> Vec<T> {
        self.history.to_vec()
    }

    /// The retained sample pushed `age` steps ago (`0` = newest).
    #[inline]
    pub fn history_ago(&self, age: usize) -> Option<T> {
        self.history.ago(age)
    }

    /// Borrow the metric driving this engine.
    #[inline]
    pub fn metric_ref(&self) -> &M {
        &self.metric
    }

    /// Serialize the engine state (not the configuration — the caller owns
    /// that) into `w`. `put` encodes one sample of `T`.
    pub(crate) fn snapshot_state(
        &self,
        w: &mut SnapshotWriter,
        put: &impl Fn(&mut SnapshotWriter, T),
    ) {
        w.u64(self.pushed);
        let hist = self.history.to_vec();
        w.u64(hist.len() as u64);
        for &s in &hist {
            put(w, s);
        }
        w.u64(self.history.pushed());
        w.u64(self.sums.len() as u64);
        for &s in &self.sums {
            w.f64(s);
        }
        for &p in &self.pairs {
            w.u64(u64::from(p));
        }
    }

    /// Rebuild an engine from serialized state under a known-valid
    /// configuration. The running sums are restored verbatim — **never**
    /// re-derived via [`IncrementalEngine::resync`], which could differ from
    /// the incrementally-maintained values in the last ulp.
    pub(crate) fn restore_state<'a>(
        metric: M,
        config: EngineConfig,
        r: &mut SnapshotReader<'a>,
        get: &impl Fn(&mut SnapshotReader<'a>) -> Result<T, SnapshotError>,
    ) -> Result<Self, SnapshotError> {
        let mut engine =
            IncrementalEngine::new(metric, config).map_err(|_| SnapshotError::Malformed {
                what: "engine configuration fails validation",
            })?;
        let pushed = r.u64()?;
        let hist_len = r.count(
            config.history_capacity(),
            "history longer than configured capacity",
        )?;
        for _ in 0..hist_len {
            let s = get(r)?;
            engine.history.push(s);
        }
        engine.history.set_pushed(r.u64()?);
        let m_max = r.u64()? as usize;
        if m_max != config.m_max {
            return Err(SnapshotError::Malformed {
                what: "sums length disagrees with configured max delay",
            });
        }
        for s in engine.sums.iter_mut() {
            *s = r.f64()?;
        }
        for p in engine.pairs.iter_mut() {
            let v = r.u64()?;
            if v > u64::from(u32::MAX) {
                return Err(SnapshotError::Malformed {
                    what: "pair count overflows 32 bits",
                });
            }
            *p = v as u32;
        }
        engine.pushed = pushed;
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{direct_distance, EventMetric, L1Metric};

    fn feed<T: Copy, M: Metric<T>>(engine: &mut IncrementalEngine<T, M>, data: &[T]) {
        for &s in data {
            engine.push(s);
        }
    }

    #[test]
    fn config_validation() {
        assert!(EngineConfig {
            frame: 0,
            m_max: 1,
            resync_interval: 0
        }
        .validate()
        .is_err());
        assert!(EngineConfig {
            frame: 4,
            m_max: 0,
            resync_interval: 0
        }
        .validate()
        .is_err());
        assert!(EngineConfig {
            frame: 4,
            m_max: 5,
            resync_interval: 0
        }
        .validate()
        .is_err());
        assert!(EngineConfig::square(8).validate().is_ok());
    }

    #[test]
    fn periodic_event_stream_zero_at_period() {
        let mut e = IncrementalEngine::new(EventMetric, EngineConfig::square(8)).unwrap();
        let data: Vec<i64> = (0..32).map(|i| [5, 7, 9, 11][i % 4]).collect();
        feed(&mut e, &data);
        assert!(e.is_warm());
        assert_eq!(e.distance(4), Some(0.0));
        assert_eq!(e.distance(8), Some(0.0)); // harmonic
        assert_eq!(e.distance(3), Some(1.0));
        assert_eq!(e.first_zero(), Some(4));
    }

    #[test]
    fn incremental_matches_direct_for_events() {
        // pseudo-random-ish but deterministic data
        let data: Vec<i64> = (0..200).map(|i| (i * i % 17) as i64).collect();
        let cfg = EngineConfig {
            frame: 16,
            m_max: 12,
            resync_interval: 0,
        };
        let mut e = IncrementalEngine::new(EventMetric, cfg).unwrap();
        for (t, &s) in data.iter().enumerate() {
            e.push(s);
            let seen = &data[..=t];
            for m in 1..=12 {
                if let Some(direct) = direct_distance(&EventMetric, seen, 16, m) {
                    assert_eq!(e.distance(m), Some(direct), "mismatch at t={t} m={m}");
                }
            }
        }
    }

    #[test]
    fn incremental_matches_direct_for_l1() {
        let data: Vec<f64> = (0..150)
            .map(|i| ((i as f64) * 0.7).sin() * 10.0 + (i % 5) as f64)
            .collect();
        let cfg = EngineConfig {
            frame: 20,
            m_max: 15,
            resync_interval: 0,
        };
        let mut e = IncrementalEngine::new(L1Metric, cfg).unwrap();
        for (t, &s) in data.iter().enumerate() {
            e.push(s);
            let seen = &data[..=t];
            for m in 1..=15 {
                if let Some(direct) = direct_distance(&L1Metric, seen, 20, m) {
                    let inc = e.distance(m).unwrap();
                    assert!(
                        (inc - direct).abs() < 1e-9,
                        "drift at t={t} m={m}: {inc} vs {direct}"
                    );
                }
            }
        }
    }

    #[test]
    fn resync_is_semantically_noop() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).cos() * 4.0).collect();
        let cfg = EngineConfig {
            frame: 10,
            m_max: 8,
            resync_interval: 0,
        };
        let mut a = IncrementalEngine::new(L1Metric, cfg).unwrap();
        let mut b = IncrementalEngine::new(
            L1Metric,
            EngineConfig {
                resync_interval: 7,
                ..cfg
            },
        )
        .unwrap();
        for &s in &data {
            a.push(s);
            b.push(s);
        }
        for m in 1..=8 {
            let da = a.distance(m).unwrap();
            let db = b.distance(m).unwrap();
            assert!((da - db).abs() < 1e-9, "m={m}: {da} vs {db}");
        }
    }

    #[test]
    fn warmup_accounting() {
        let cfg = EngineConfig {
            frame: 6,
            m_max: 4,
            resync_interval: 0,
        };
        let mut e = IncrementalEngine::new(EventMetric, cfg).unwrap();
        assert_eq!(e.warmup_len(), 10);
        for i in 0..9i64 {
            e.push(i);
            assert!(!e.is_warm());
        }
        e.push(9);
        assert!(e.is_warm());
        for m in 1..=4 {
            assert!(e.is_complete(m), "m={m} incomplete after warmup");
        }
    }

    #[test]
    fn distance_none_before_any_pairs() {
        let cfg = EngineConfig::square(4);
        let mut e = IncrementalEngine::new(EventMetric, cfg).unwrap();
        assert_eq!(e.distance(1), None);
        e.push(1i64);
        assert_eq!(e.distance(1), None); // still no pair: needs 2 samples
        e.push(1);
        assert_eq!(e.distance(1), Some(0.0));
    }

    #[test]
    fn reconfigure_preserves_recent_history() {
        let mut e = IncrementalEngine::new(EventMetric, EngineConfig::square(16)).unwrap();
        let data: Vec<i64> = (0..64).map(|i| [1, 2, 3][i % 3]).collect();
        feed(&mut e, &data);
        assert_eq!(e.first_zero(), Some(3));
        e.reconfigure(EngineConfig::square(6)).unwrap();
        assert_eq!(e.first_zero(), Some(3), "period survives shrink");
        // and it keeps working for further pushes
        for i in 64..90 {
            e.push([1, 2, 3][i % 3]);
        }
        assert_eq!(e.first_zero(), Some(3));
    }

    #[test]
    fn reset_clears_detection() {
        let mut e = IncrementalEngine::new(EventMetric, EngineConfig::square(6)).unwrap();
        let data: Vec<i64> = (0..24).map(|i| [1, 2][i % 2]).collect();
        feed(&mut e, &data);
        assert_eq!(e.first_zero(), Some(2));
        e.reset();
        assert_eq!(e.first_zero(), None);
        assert_eq!(e.distance(1), None);
    }

    #[test]
    fn period_larger_than_window_not_detected() {
        // paper §3.1: "if the periodicity m ... is larger than the data
        // window size N, then the pattern and its periodicity cannot be
        // captured by the detector".
        let period = 12usize;
        let data: Vec<i64> = (0..96).map(|i| (i % period) as i64).collect();
        let mut e = IncrementalEngine::new(EventMetric, EngineConfig::square(8)).unwrap();
        feed(&mut e, &data);
        assert_eq!(e.first_zero(), None);
    }

    #[test]
    fn spectrum_snapshot_matches_distances() {
        let data: Vec<i64> = (0..40).map(|i| [4, 5, 6, 7, 8][i % 5]).collect();
        let mut e = IncrementalEngine::new(EventMetric, EngineConfig::square(10)).unwrap();
        feed(&mut e, &data);
        let s = e.spectrum();
        for m in 1..=10 {
            assert_eq!(s.at(m), e.distance(m), "m={m}");
        }
        assert_eq!(s.zeros(), vec![5, 10]);
    }

    // --- batch ingestion ---

    /// Clone-free helper: feed `data` through per-sample pushes into one
    /// engine and through `push_slice` chunks into another, then assert the
    /// observable state matches bit-for-bit.
    fn assert_batch_equivalent<T, M>(metric: M, cfg: EngineConfig, data: &[T], chunks: &[usize])
    where
        T: Copy + std::fmt::Debug + PartialEq,
        M: Metric<T>,
    {
        let mut single = IncrementalEngine::new(metric.clone(), cfg).unwrap();
        let mut batch = IncrementalEngine::new(metric, cfg).unwrap();
        for &s in data {
            single.push(s);
        }
        let mut rest = data;
        let mut it = chunks.iter().copied().cycle();
        while !rest.is_empty() {
            let k = it.next().unwrap().clamp(1, rest.len());
            let (now, later) = rest.split_at(k);
            batch.push_slice(now);
            rest = later;
        }
        assert_eq!(single.pushed(), batch.pushed());
        for m in 1..=cfg.m_max {
            assert_eq!(
                single.pair_sum(m).map(f64::to_bits),
                batch.pair_sum(m).map(f64::to_bits),
                "pair_sum mismatch at m={m}"
            );
            assert_eq!(single.is_complete(m), batch.is_complete(m), "m={m}");
            assert_eq!(
                single.distance(m).map(f64::to_bits),
                batch.distance(m).map(f64::to_bits),
                "distance mismatch at m={m}"
            );
        }
        assert_eq!(single.history_vec(), batch.history_vec());
    }

    #[test]
    fn push_slice_bit_identical_events() {
        let data: Vec<i64> = (0..700).map(|i| (i * 31 % 13) as i64).collect();
        let cfg = EngineConfig {
            frame: 24,
            m_max: 20,
            resync_interval: 0,
        };
        assert_batch_equivalent(EventMetric, cfg, &data, &[1, 7, 64, 3, 200]);
    }

    #[test]
    fn push_slice_bit_identical_l1_with_resync() {
        let data: Vec<f64> = (0..900)
            .map(|i| ((i as f64) * 0.37).sin() * 5.0 + ((i * 7) % 11) as f64 * 0.1)
            .collect();
        let cfg = EngineConfig {
            frame: 32,
            m_max: 24,
            resync_interval: 53,
        };
        assert_batch_equivalent(L1Metric, cfg, &data, &[5, 1, 97, 13]);
    }

    #[test]
    fn push_slice_crossing_warmup_boundary() {
        // One slice covering warmup and steady state in a single call.
        let data: Vec<i64> = (0..300).map(|i| [3, 1, 4, 1, 5][i % 5]).collect();
        let cfg = EngineConfig {
            frame: 40,
            m_max: 40,
            resync_interval: 0,
        };
        assert_batch_equivalent(EventMetric, cfg, &data, &[300]);
    }

    #[test]
    fn push_slice_empty_is_noop() {
        let mut e = IncrementalEngine::new(EventMetric, EngineConfig::square(8)).unwrap();
        e.push_slice(&[]);
        assert_eq!(e.pushed(), 0);
        feed(&mut e, &[1, 2, 1, 2]);
        let before: Vec<Option<f64>> = (1..=8).map(|m| e.pair_sum(m)).collect();
        e.push_slice(&[]);
        let after: Vec<Option<f64>> = (1..=8).map(|m| e.pair_sum(m)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn push_slice_after_reset_replays_warmup() {
        let data: Vec<i64> = (0..60).map(|i| [9, 8, 7][i % 3]).collect();
        let cfg = EngineConfig::square(8);
        let mut e = IncrementalEngine::new(EventMetric, cfg).unwrap();
        e.push_slice(&data);
        assert_eq!(e.first_zero(), Some(3));
        e.reset();
        assert_eq!(e.first_zero(), None);
        e.push_slice(&data);
        assert_eq!(e.first_zero(), Some(3));
    }
}
