//! Frame-based (off-line) periodicity analysis.
//!
//! [`FrameDetector`] computes the full `d(m)` spectrum for the trailing frame
//! of a slice exactly as defined by equations (1)/(2) and extracts the
//! periodicities from it. This is the analysis behind the paper's Figure 4
//! (the d(m) curve of the NAS FT CPU-usage trace with its local minimum at
//! m = 44); the on-line streaming detector lives in [`crate::streaming`].

use crate::metric::{direct_distance, Metric};
use crate::minima::{MinimaPolicy, Minimum};
use crate::spectrum::Spectrum;

/// Result of analysing one frame of data.
#[derive(Debug, Clone)]
pub struct PeriodicityReport {
    /// The full distance spectrum `d(m)`, `m = 1..=M`.
    pub spectrum: Spectrum,
    /// All accepted local minima, delay ascending.
    pub minima: Vec<Minimum>,
    /// The fundamental periodicity (harmonics folded), if any.
    pub fundamental: Option<Minimum>,
}

impl PeriodicityReport {
    /// Convenience: the fundamental period length, if detected.
    pub fn period(&self) -> Option<usize> {
        self.fundamental.map(|m| m.delay)
    }

    /// All detected period lengths after folding harmonics.
    pub fn periods(&self) -> Vec<usize> {
        let delays: Vec<usize> = self.minima.iter().map(|m| m.delay).collect();
        Spectrum::fold_harmonics(&delays)
    }
}

/// Off-line, frame-based periodicity detector.
///
/// # Examples
/// ```
/// use dpd_core::detector::FrameDetector;
///
/// // Event stream (loop addresses) with period 3.
/// let data: Vec<i64> = (0..64).map(|i| [7, 8, 9][i % 3]).collect();
/// let report = FrameDetector::events(16).analyze(&data).unwrap();
/// assert_eq!(report.period(), Some(3));
///
/// // Magnitude stream (sampled values) with period 4.
/// let cpu: Vec<f64> = (0..120).map(|i| [1.0, 8.0, 16.0, 4.0][i % 4]).collect();
/// let report = FrameDetector::magnitudes(32, 0.5).analyze(&cpu).unwrap();
/// assert_eq!(report.period(), Some(4));
/// ```
#[derive(Debug, Clone)]
pub struct FrameDetector<M> {
    metric: M,
    frame: usize,
    m_max: usize,
    policy: MinimaPolicy,
}

impl<M: Clone> FrameDetector<M> {
    /// Create a detector with frame size `n` and maximum delay `m_max`.
    pub fn new(metric: M, n: usize, m_max: usize, policy: MinimaPolicy) -> crate::Result<Self> {
        if n == 0 {
            return Err(crate::DpdError::InvalidWindow(n));
        }
        if m_max == 0 || m_max > n {
            return Err(crate::DpdError::InvalidMaxDelay { m_max, window: n });
        }
        Ok(FrameDetector {
            metric,
            frame: n,
            m_max,
            policy,
        })
    }

    /// Frame size `N`.
    pub fn frame(&self) -> usize {
        self.frame
    }

    /// Maximum candidate delay `M`.
    pub fn m_max(&self) -> usize {
        self.m_max
    }

    /// The minima-acceptance policy in force.
    pub fn policy(&self) -> MinimaPolicy {
        self.policy
    }
}

impl<M: Clone> FrameDetector<M> {
    /// Compute the spectrum for the trailing frame of `data`.
    ///
    /// `d(m)` is marked complete only when `data` contains the full `N + m`
    /// samples needed; shorter prefixes produce partial (excluded) entries.
    /// Errors when even `d(1)` cannot be formed (`data.len() < N + 1`).
    pub fn spectrum<T: Copy>(&self, data: &[T]) -> crate::Result<Spectrum>
    where
        M: Metric<T>,
    {
        if data.len() < self.frame + 1 {
            return Err(crate::DpdError::StreamTooShort {
                needed: self.frame + 1,
                got: data.len(),
            });
        }
        let mut values = Vec::with_capacity(self.m_max);
        let mut pairs = Vec::with_capacity(self.m_max);
        for m in 1..=self.m_max {
            match direct_distance(&self.metric, data, self.frame, m) {
                Some(d) => {
                    values.push(d);
                    pairs.push(self.frame as u32);
                }
                None => {
                    // Not enough history for this delay: partial frame using
                    // whatever pairs exist.
                    let avail = data.len().saturating_sub(m).min(self.frame);
                    if avail == 0 {
                        values.push(f64::INFINITY);
                        pairs.push(0);
                        continue;
                    }
                    let end = data.len();
                    let mut sum = 0.0;
                    for i in (end - avail)..end {
                        sum += self.metric.pair(data[i], data[i - m]);
                    }
                    values.push(self.metric.finalize(sum, avail));
                    pairs.push(avail as u32);
                }
            }
        }
        Ok(Spectrum::from_parts(values, pairs, self.frame))
    }

    /// Analyse the trailing frame of `data` and extract periodicities.
    pub fn analyze<T: Copy>(&self, data: &[T]) -> crate::Result<PeriodicityReport>
    where
        M: Metric<T>,
    {
        let spectrum = self.spectrum(data)?;
        let minima = self.policy.extract(&spectrum);
        let fundamental = self.policy.fundamental(&spectrum);
        Ok(PeriodicityReport {
            spectrum,
            minima,
            fundamental,
        })
    }
}

impl FrameDetector<crate::metric::EventMetric> {
    /// Event-stream detector (equation 2) with the exact-zero policy.
    pub fn events(n: usize) -> Self {
        FrameDetector::new(crate::metric::EventMetric, n, n, MinimaPolicy::exact())
            .expect("square config is always valid")
    }
}

impl FrameDetector<crate::metric::L1Metric> {
    /// Magnitude-stream detector (equation 1) with a relative-minimum policy.
    pub fn magnitudes(n: usize, relative_threshold: f64) -> Self {
        FrameDetector::new(
            crate::metric::L1Metric,
            n,
            n,
            MinimaPolicy::relative(relative_threshold),
        )
        .expect("square config is always valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::EventMetric;

    #[test]
    fn event_frame_detects_exact_period() {
        let data: Vec<i64> = (0..64).map(|i| [10, 20, 30, 40, 50][i % 5]).collect();
        let det = FrameDetector::events(16);
        let report = det.analyze(&data).unwrap();
        assert_eq!(report.period(), Some(5));
        assert_eq!(report.periods(), vec![5]);
        assert_eq!(report.spectrum.zeros(), vec![5, 10, 15]);
    }

    #[test]
    fn magnitude_frame_detects_noisy_period() {
        // Period-8 sine with small additive deterministic "noise".
        let data: Vec<f64> = (0..200)
            .map(|i| {
                let base = (i as f64 * std::f64::consts::TAU / 8.0).sin() * 10.0;
                let noise = ((i * 7919) % 13) as f64 * 0.05;
                base + noise
            })
            .collect();
        let det = FrameDetector::magnitudes(64, 0.5);
        let report = det.analyze(&data).unwrap();
        assert_eq!(report.period(), Some(8));
    }

    #[test]
    fn aperiodic_stream_yields_no_fundamental() {
        // A strictly increasing ramp has no repeating pattern.
        let data: Vec<i64> = (0..100).collect();
        let det = FrameDetector::events(32);
        let report = det.analyze(&data).unwrap();
        assert_eq!(report.period(), None);
        assert!(report.minima.is_empty());
    }

    #[test]
    fn too_short_slice_errors() {
        let data = [1i64, 2, 3];
        let det = FrameDetector::events(8);
        assert!(matches!(
            det.analyze(&data),
            Err(crate::DpdError::StreamTooShort { .. })
        ));
    }

    #[test]
    fn partial_delays_are_marked_incomplete() {
        // 20 samples, frame 16: only m <= 4 has a full frame.
        let data: Vec<i64> = (0..20).map(|i| [1, 2][i % 2]).collect();
        let det = FrameDetector::events(16);
        let spec = det.spectrum(&data).unwrap();
        assert!(spec.is_complete_at(4));
        assert!(!spec.is_complete_at(5));
        // Even though the stream is 2-periodic, the incomplete zero at higher
        // delays must not be reported as a detection:
        let report = det.analyze(&data).unwrap();
        assert_eq!(report.period(), Some(2));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(FrameDetector::new(EventMetric, 0, 1, MinimaPolicy::exact()).is_err());
        assert!(FrameDetector::new(EventMetric, 4, 0, MinimaPolicy::exact()).is_err());
        assert!(FrameDetector::new(EventMetric, 4, 8, MinimaPolicy::exact()).is_err());
    }

    #[test]
    fn nested_stream_reports_both_periods() {
        // Outer period 12 containing an inner 3-pattern repeated 3 times
        // plus a distinct 3-sample tail: [a b c a b c a b c x y z] repeated.
        let pattern: [i64; 12] = [1, 2, 3, 1, 2, 3, 1, 2, 3, 7, 8, 9];
        let data: Vec<i64> = (0..120).map(|i| pattern[i % 12]).collect();
        let det = FrameDetector::events(48);
        let report = det.analyze(&data).unwrap();
        // Full-window exact zeros exist only at 12, 24, 36, 48 -> fundamental 12.
        assert_eq!(report.period(), Some(12));
        // The inner structure appears in the mismatch-fraction spectrum as a
        // dip at m=3 (verified in nested.rs tests).
    }

    #[test]
    fn l1_detector_sees_amplitude_scaled_stream() {
        let base: Vec<f64> = (0..120).map(|i| [0.0, 4.0, 8.0, 4.0][i % 4]).collect();
        let det = FrameDetector::magnitudes(32, 0.5);
        assert_eq!(det.analyze(&base).unwrap().period(), Some(4));
        let scaled: Vec<f64> = base.iter().map(|v| v * 1000.0).collect();
        assert_eq!(det.analyze(&scaled).unwrap().period(), Some(4));
    }
}
