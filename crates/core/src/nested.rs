//! Nested (multi-level) periodicity analysis.
//!
//! Two of the paper's five evaluation applications contain *nested iterative
//! parallel structures*: hydro2d (periodicities 1, 24 and 269) and turb3d
//! (12 and 142) — Table 2 and Figure 7. The streaming multi-scale bank
//! ([`crate::streaming::MultiScaleDpd`]) discovers these on-line; this module
//! provides the complementary off-line analysis: given a complete stream, it
//! reports the hierarchy of periodicities present, using the mismatch
//! *fraction* spectrum so that inner patterns that only repeat for part of
//! the outer period still produce detectable dips.

use crate::detector::FrameDetector;
use crate::metric::MismatchFraction;
use crate::minima::MinimaPolicy;
use crate::streaming::MultiScaleDpd;

/// Result of nested analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestedReport {
    /// Distinct periodicities found, ascending (inner to outer).
    pub periods: Vec<usize>,
}

impl NestedReport {
    /// The outermost (largest) periodicity, if any.
    pub fn outer(&self) -> Option<usize> {
        self.periods.last().copied()
    }

    /// The innermost (smallest) periodicity, if any.
    pub fn inner(&self) -> Option<usize> {
        self.periods.first().copied()
    }

    /// Nesting depth (number of distinct levels).
    pub fn depth(&self) -> usize {
        self.periods.len()
    }
}

/// Off-line nested periodicity detector.
///
/// Strategy: replay the stream through a [`MultiScaleDpd`] bank (which is
/// sensitive to periodicities that hold over *segments* of the stream, the
/// way the paper's dynamic detector encounters them), then validate each
/// candidate with a frame-based mismatch-fraction dip over the full stream
/// tail. Candidates that never produce either signal are discarded.
#[derive(Debug, Clone)]
pub struct NestedDetector {
    windows: Vec<usize>,
    /// Dip threshold on the mismatch fraction for frame validation
    /// (a delay qualifies when at most this fraction of positions mismatch
    /// at some point of the stream).
    pub dip_threshold: f64,
}

impl NestedDetector {
    /// Detector with the default scale bank (8 / 64 / 512).
    pub fn new() -> Self {
        NestedDetector {
            windows: vec![8, 64, 512],
            dip_threshold: 0.05,
        }
    }

    /// Detector with custom scale windows.
    pub fn with_windows(windows: Vec<usize>) -> crate::Result<Self> {
        if windows.is_empty() || windows.contains(&0) {
            return Err(crate::DpdError::InvalidWindow(0));
        }
        Ok(NestedDetector {
            windows,
            dip_threshold: 0.05,
        })
    }

    /// Analyse a complete event stream.
    pub fn analyze(&self, data: &[i64]) -> NestedReport {
        // Phase 1: streaming multi-scale detection over the whole stream.
        let usable: Vec<usize> = self
            .windows
            .iter()
            .copied()
            .filter(|&w| w < data.len())
            .collect();
        let mut periods: Vec<usize> = if usable.is_empty() {
            Vec::new()
        } else {
            let mut bank = MultiScaleDpd::from_windows(&usable).expect("validated windows");
            bank.push_slice(data);
            bank.detected_periods()
        };

        // Phase 2: frame-based validation / enrichment with the mismatch
        // fraction on a frame sized to the stream.
        if data.len() >= 32 {
            let n = (data.len() / 2).min(1024);
            if let Ok(det) = FrameDetector::new(
                MismatchFraction,
                n,
                n,
                MinimaPolicy {
                    relative_threshold: f64::INFINITY,
                    absolute_threshold: self.dip_threshold,
                    strict: true,
                    min_delay: 1,
                },
            ) {
                if let Ok(report) = det.analyze(data) {
                    for m in report.minima {
                        if !periods.contains(&m.delay)
                            && !periods.iter().any(|&p| m.delay % p == 0 && m.value == 0.0)
                        {
                            periods.push(m.delay);
                        }
                    }
                }
            }
        }

        periods.sort_unstable();
        periods.dedup();
        NestedReport { periods }
    }
}

impl Default for NestedDetector {
    fn default() -> Self {
        NestedDetector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a nested stream: each outer period is `runs` repeats of an
    /// inner pattern of length `inner`, followed by `tail` distinct values.
    fn nested_stream(inner: usize, runs: usize, tail: usize, outers: usize) -> Vec<i64> {
        let mut outer: Vec<i64> = Vec::new();
        for _ in 0..runs {
            outer.extend((0..inner).map(|i| 100 + i as i64));
        }
        outer.extend((0..tail).map(|i| 900 + i as i64));
        let period = outer.len();
        (0..period * outers).map(|i| outer[i % period]).collect()
    }

    #[test]
    fn flat_periodic_stream_has_single_level() {
        let data: Vec<i64> = (0..400).map(|i| [1, 2, 3, 4, 5, 6][i % 6]).collect();
        let report = NestedDetector::new().analyze(&data);
        assert_eq!(report.periods, vec![6]);
        assert_eq!(report.depth(), 1);
        assert_eq!(report.inner(), Some(6));
        assert_eq!(report.outer(), Some(6));
    }

    #[test]
    fn two_level_nesting_detected() {
        // inner 4, repeated 10 times + 8 tail = outer 48; 12 outer periods.
        let data = nested_stream(4, 10, 8, 12);
        assert_eq!(data.len(), 48 * 12);
        let report = NestedDetector::with_windows(vec![8, 128])
            .unwrap()
            .analyze(&data);
        assert!(report.periods.contains(&4), "{:?}", report.periods);
        assert!(report.periods.contains(&48), "{:?}", report.periods);
        assert_eq!(report.inner(), Some(4));
        assert_eq!(report.outer(), Some(48));
    }

    #[test]
    fn period_one_runs_detected_as_level() {
        // Outer period: 20 repeats of the same address + 12 distinct.
        let mut outer = vec![5i64; 20];
        outer.extend(200..212);
        let data: Vec<i64> = (0..outer.len() * 15)
            .map(|i| outer[i % outer.len()])
            .collect();
        let report = NestedDetector::with_windows(vec![8, 128])
            .unwrap()
            .analyze(&data);
        assert!(report.periods.contains(&1), "{:?}", report.periods);
        assert!(report.periods.contains(&32), "{:?}", report.periods);
    }

    #[test]
    fn aperiodic_stream_is_empty() {
        let data: Vec<i64> = (0..500).collect();
        let report = NestedDetector::new().analyze(&data);
        assert!(report.periods.is_empty());
        assert_eq!(report.depth(), 0);
        assert_eq!(report.inner(), None);
        assert_eq!(report.outer(), None);
    }

    #[test]
    fn short_stream_does_not_panic() {
        let data = [1i64, 2, 3];
        let report = NestedDetector::new().analyze(&data);
        assert!(report.periods.is_empty());
    }

    #[test]
    fn with_windows_validation() {
        assert!(NestedDetector::with_windows(vec![]).is_err());
        assert!(NestedDetector::with_windows(vec![4, 0]).is_err());
        assert!(NestedDetector::with_windows(vec![4, 32]).is_ok());
    }
}
