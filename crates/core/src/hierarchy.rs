//! Hierarchical segmentation of nested iterative structures.
//!
//! Figure 7 of the paper shows hydro2d/turb3d streams containing "a large
//! iterative pattern within which smaller iterative patterns appear". The
//! multi-scale bank reports those periodicities independently; this module
//! reconstructs the *containment* relation: which inner segments live
//! inside which outer periods — the structure a performance tool needs to
//! attribute measurements to the right loop level.

use crate::segmentation::{Segment, Segmenter};
use crate::streaming::MultiScaleDpd;

/// A segment annotated with its nesting level (0 = outermost detected).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeveledSegment {
    /// The underlying segment.
    pub segment: Segment,
    /// Nesting level: 0 for segments of the largest period, increasing
    /// inward.
    pub level: usize,
}

/// Result of hierarchical analysis.
#[derive(Debug, Clone, Default)]
pub struct Hierarchy {
    /// All segments from all scales, annotated with levels, stream order
    /// within each level.
    pub segments: Vec<LeveledSegment>,
    /// Distinct periods per level, outermost first.
    pub level_periods: Vec<usize>,
}

impl Hierarchy {
    /// Segments at a given level.
    pub fn at_level(&self, level: usize) -> Vec<Segment> {
        self.segments
            .iter()
            .filter(|s| s.level == level)
            .map(|s| s.segment)
            .collect()
    }

    /// Number of levels found.
    pub fn depth(&self) -> usize {
        self.level_periods.len()
    }

    /// Inner segments (strictly) contained in `outer`.
    pub fn children_of(&self, outer: &Segment) -> Vec<Segment> {
        self.segments
            .iter()
            .map(|s| s.segment)
            .filter(|s| s.period < outer.period && s.start >= outer.start && s.end <= outer.end)
            .collect()
    }
}

/// Build a [`Hierarchy`] from an event stream using a multi-scale bank.
pub fn analyze_hierarchy(data: &[i64], windows: &[usize]) -> crate::Result<Hierarchy> {
    let mut bank = MultiScaleDpd::from_windows(windows)?;
    // One segmenter per scale.
    let mut segmenters: Vec<Segmenter> = windows.iter().map(|_| Segmenter::new()).collect();
    for &s in data {
        let event = bank.push(s);
        for (w, e) in event.events {
            if let Some(idx) = windows.iter().position(|&win| win == w) {
                segmenters[idx].observe(e);
            }
        }
    }
    // Collect all segments, deduplicate by (start, period): different
    // scales can lock the same periodicity.
    let mut all: Vec<Segment> = Vec::new();
    for seg in segmenters {
        for s in seg.finish() {
            if !all
                .iter()
                .any(|o| o.period == s.period && o.start == s.start)
            {
                all.push(s);
            }
        }
    }
    // Levels: distinct periods, descending (largest = level 0).
    let mut periods: Vec<usize> = all.iter().map(|s| s.period).collect();
    periods.sort_unstable_by(|a, b| b.cmp(a));
    periods.dedup();
    let segments: Vec<LeveledSegment> = all
        .into_iter()
        .map(|segment| LeveledSegment {
            level: periods
                .iter()
                .position(|&p| p == segment.period)
                .expect("period registered"),
            segment,
        })
        .collect();
    Ok(Hierarchy {
        segments,
        level_periods: periods,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stream with outer period 40 = 8 repeats of inner 4 + 8 tail values.
    fn nested_stream(outers: usize) -> Vec<i64> {
        let mut one: Vec<i64> = Vec::new();
        for _ in 0..8 {
            one.extend([1i64, 2, 3, 4]);
        }
        one.extend(100..108);
        (0..one.len() * outers)
            .map(|i| one[i % one.len()])
            .collect()
    }

    #[test]
    fn two_level_hierarchy() {
        let data = nested_stream(12);
        let h = analyze_hierarchy(&data, &[8, 128]).unwrap();
        assert_eq!(h.depth(), 2);
        assert_eq!(h.level_periods, vec![40, 4]);
        assert!(!h.at_level(0).is_empty());
        assert!(!h.at_level(1).is_empty());
    }

    #[test]
    fn children_are_contained_in_outer_period() {
        let data = nested_stream(12);
        let h = analyze_hierarchy(&data, &[8, 128]).unwrap();
        let outers = h.at_level(0);
        let outer = outers.first().unwrap();
        let children = h.children_of(outer);
        for c in &children {
            assert!(c.start >= outer.start && c.end <= outer.end);
            assert_eq!(c.period, 4);
        }
        assert!(!children.is_empty(), "inner segments inside the outer one");
    }

    #[test]
    fn flat_stream_has_single_level() {
        let data: Vec<i64> = (0..400).map(|i| [7i64, 8, 9][i % 3]).collect();
        let h = analyze_hierarchy(&data, &[8, 128]).unwrap();
        assert_eq!(h.depth(), 1);
        assert_eq!(h.level_periods, vec![3]);
    }

    #[test]
    fn aperiodic_stream_empty_hierarchy() {
        let data: Vec<i64> = (0..500).collect();
        let h = analyze_hierarchy(&data, &[8, 64]).unwrap();
        assert_eq!(h.depth(), 0);
        assert!(h.segments.is_empty());
    }

    #[test]
    fn invalid_windows_rejected() {
        assert!(analyze_hierarchy(&[1, 2, 3], &[]).is_err());
    }

    #[test]
    fn hydro2d_like_three_levels() {
        // prologue-free hydro2d shape: 5 boundary + 11 * (10 same + 14 distinct).
        let mut one: Vec<i64> = (500..505).collect();
        for _ in 0..11 {
            one.extend(std::iter::repeat_n(42, 10));
            one.extend(600..614);
        }
        assert_eq!(one.len(), 269);
        let data: Vec<i64> = (0..269 * 30).map(|i| one[i % 269]).collect();
        let h = analyze_hierarchy(&data, &[8, 64, 512]).unwrap();
        assert_eq!(h.level_periods, vec![269, 24, 1]);
        assert_eq!(h.depth(), 3);
    }
}
