//! The `d(m)` curve produced by the periodicity detector.
//!
//! A [`Spectrum`] holds the distance value for every candidate delay
//! `m in 1..=m_max` together with how many sample pairs contributed to each
//! value. This is the object plotted in the paper's Figure 4 (d(m) over m for
//! the NAS FT CPU-usage trace, local minimum at m = 44).

/// Distance values `d(m)` for `m = 1..=m_max`.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    /// `d[m - 1]` is the distance at delay `m`.
    values: Vec<f64>,
    /// Number of sample pairs that contributed to each `d(m)`.
    pairs: Vec<u32>,
    /// Frame size `N` the spectrum was computed with.
    frame: usize,
}

impl Spectrum {
    /// Build a spectrum from raw parts.
    ///
    /// # Panics
    /// Panics when `values` and `pairs` have different lengths.
    pub fn from_parts(values: Vec<f64>, pairs: Vec<u32>, frame: usize) -> Self {
        assert_eq!(
            values.len(),
            pairs.len(),
            "spectrum values/pairs length mismatch"
        );
        Spectrum {
            values,
            pairs,
            frame,
        }
    }

    /// Largest candidate delay `M`.
    #[inline]
    pub fn m_max(&self) -> usize {
        self.values.len()
    }

    /// Frame size `N` used when computing the spectrum.
    #[inline]
    pub fn frame(&self) -> usize {
        self.frame
    }

    /// `d(m)`; `None` when `m` is out of `1..=m_max`.
    #[inline]
    pub fn at(&self, m: usize) -> Option<f64> {
        if m == 0 || m > self.values.len() {
            None
        } else {
            Some(self.values[m - 1])
        }
    }

    /// Number of sample pairs behind `d(m)`.
    #[inline]
    pub fn pairs_at(&self, m: usize) -> Option<u32> {
        if m == 0 || m > self.pairs.len() {
            None
        } else {
            Some(self.pairs[m - 1])
        }
    }

    /// `true` when `d(m)` was computed from a full frame of `N` pairs.
    #[inline]
    pub fn is_complete_at(&self, m: usize) -> bool {
        self.pairs_at(m)
            .map(|p| p as usize == self.frame)
            .unwrap_or(false)
    }

    /// All `(m, d(m))` points, `m` ascending.
    pub fn points(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.values.iter().enumerate().map(|(i, &v)| (i + 1, v))
    }

    /// The raw distance values (`index 0` is `m = 1`).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Delay with the globally smallest distance, ties going to the smallest
    /// delay (the fundamental period rather than a multiple). Only complete
    /// (full-frame) delays are considered; `None` when there are none.
    pub fn global_minimum(&self) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &v) in self.values.iter().enumerate() {
            if self.pairs[i] as usize != self.frame {
                continue;
            }
            match best {
                None => best = Some((i + 1, v)),
                Some((_, bv)) if v < bv => best = Some((i + 1, v)),
                _ => {}
            }
        }
        best
    }

    /// Mean of the complete distance values; `None` without complete values.
    pub fn mean(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (i, &v) in self.values.iter().enumerate() {
            if self.pairs[i] as usize == self.frame && v.is_finite() {
                sum += v;
                count += 1;
            }
        }
        if count == 0 {
            None
        } else {
            Some(sum / count as f64)
        }
    }

    /// All delays at which `d(m)` is exactly zero over a full frame.
    ///
    /// For the event metric (equation 2) these are the exact periodicities
    /// present in the window; multiples of the fundamental period also
    /// appear here, as the paper notes in §3.1.
    pub fn zeros(&self) -> Vec<usize> {
        self.values
            .iter()
            .enumerate()
            .filter(|&(i, &v)| v == 0.0 && self.pairs[i] as usize == self.frame)
            .map(|(i, _)| i + 1)
            .collect()
    }

    /// Remove delays that are integer multiples of an earlier reported delay.
    ///
    /// `d(m) = 0` implies `d(k*m) = 0` whenever the window is long enough, so
    /// the raw zero set contains the harmonics of the fundamental period.
    pub fn fold_harmonics(delays: &[usize]) -> Vec<usize> {
        let mut fundamental: Vec<usize> = Vec::new();
        for &m in delays {
            if m == 0 {
                continue;
            }
            if !fundamental.iter().any(|&f| m % f == 0) {
                fundamental.push(m);
            }
        }
        fundamental
    }

    /// Render the spectrum as a compact ASCII chart (one row per delay),
    /// useful in example binaries and EXPERIMENTS.md evidence.
    pub fn ascii_chart(&self, width: usize) -> String {
        let max = self
            .values
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(0.0f64, f64::max);
        let mut out = String::new();
        for (m, v) in self.points() {
            let bar = if max > 0.0 && v.is_finite() {
                ((v / max) * width as f64).round() as usize
            } else {
                0
            };
            out.push_str(&format!(
                "m={m:4} |{}{}  d={v:.4}\n",
                "#".repeat(bar),
                " ".repeat(width.saturating_sub(bar))
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(values: Vec<f64>, frame: usize) -> Spectrum {
        let pairs = vec![frame as u32; values.len()];
        Spectrum::from_parts(values, pairs, frame)
    }

    #[test]
    fn at_is_one_indexed() {
        let s = spec(vec![0.5, 0.0, 0.7], 10);
        assert_eq!(s.at(0), None);
        assert_eq!(s.at(1), Some(0.5));
        assert_eq!(s.at(2), Some(0.0));
        assert_eq!(s.at(3), Some(0.7));
        assert_eq!(s.at(4), None);
    }

    #[test]
    fn global_minimum_prefers_smallest_delay_on_tie() {
        let s = spec(vec![0.3, 0.0, 0.5, 0.0], 10);
        assert_eq!(s.global_minimum(), Some((2, 0.0)));
    }

    #[test]
    fn global_minimum_skips_incomplete() {
        let values = vec![0.0, 0.4];
        let pairs = vec![3u32, 10]; // m=1 incomplete
        let s = Spectrum::from_parts(values, pairs, 10);
        assert_eq!(s.global_minimum(), Some((2, 0.4)));
    }

    #[test]
    fn zeros_reports_all_exact_periods() {
        let s = spec(vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0], 10);
        assert_eq!(s.zeros(), vec![2, 4, 6]);
    }

    #[test]
    fn fold_harmonics_removes_multiples() {
        assert_eq!(Spectrum::fold_harmonics(&[2, 4, 6, 9]), vec![2, 9]);
        assert_eq!(Spectrum::fold_harmonics(&[3, 5, 6, 10, 15]), vec![3, 5]);
        assert_eq!(Spectrum::fold_harmonics(&[]), Vec::<usize>::new());
    }

    #[test]
    fn mean_ignores_incomplete_and_infinite() {
        let values = vec![2.0, f64::INFINITY, 4.0];
        let pairs = vec![10u32, 10, 10];
        let s = Spectrum::from_parts(values, pairs, 10);
        assert_eq!(s.mean(), Some(3.0));
    }

    #[test]
    fn ascii_chart_contains_all_delays() {
        let s = spec(vec![1.0, 0.0], 4);
        let chart = s.ascii_chart(10);
        assert!(chart.contains("m=   1"));
        assert!(chart.contains("m=   2"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_parts_validates_lengths() {
        let _ = Spectrum::from_parts(vec![0.0], vec![], 4);
    }
}
