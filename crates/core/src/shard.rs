//! Multi-stream detection: keyed stream tables and shard routing.
//!
//! The paper's detector analyzes one instrumented stream; a production
//! deployment serves *many* concurrent traces — one per user session, per
//! instrumented loop nest, per monitored process. This module provides the
//! deterministic single-threaded substrate for that scale-out:
//!
//! * [`StreamId`] — an opaque 64-bit stream key,
//! * [`StreamHandle`] — a compact generational handle naming one resident
//!   stream; the cheap key of the handle-first accessor API,
//! * [`shard_of`] — the stable hash route `StreamId -> shard index` used by
//!   the sharded service in `par-runtime`,
//! * [`StreamTable`] — a keyed slab of independent [`StreamingDpd`]
//!   detectors with lazy stream creation, tiered idle eviction by a
//!   sample-count watermark, an optional byte-accounted memory budget, and
//!   explicit close with a final segmentation flush.
//!
//! # Storage layout
//!
//! The table is a two-level store built for millions of resident streams:
//!
//! ```text
//!   StreamId (u64) ──splitmix64──▶ interning index ──▶ slot (u24) + gen (u8)
//!                                  (open-addressed,          │
//!                                   backshift deletion)      ▼
//!   slab:   slots[slot]  = Free | Hot(Box<detector+predictor>) | Cold(summary)
//!   strips: id[slot], last_seq[slot], tier[slot], gen[slot],
//!           samples[slot], boundaries[slot], checked[slot], hits[slot]
//! ```
//!
//! The *strips* are parallel struct-of-arrays columns holding exactly the
//! fields the sweep and stats paths touch (the watermark clock, the tier
//! byte, lifetime rollup counters), so walking a million idle streams never
//! dereferences a boxed detector. Freed slots go on a free list and are
//! reused; each reuse bumps the slot's generation so stale
//! [`StreamHandle`]s are detectably invalid rather than silently aliased.
//!
//! # Eviction tiers
//!
//! With a cold retention window configured
//! ([`TableConfig::cold_retain`] > 0), an idle stream decays in two steps
//! instead of one: past the hot watermark its boxed detector state is
//! dropped and replaced by a compact [`StreamSummary`]-backed cold record
//! (period, confidence; the lifetime rollups stay in the strips); past
//! `evict_after + cold_retain` the summary goes too. The tier a stream is
//! in is a pure function of its idle gap, so lazy transitions at
//! ingest/close time are observably identical to eager transitions in
//! [`StreamTable::sweep`] — sweeps remain schedulable without affecting
//! determinism. With `cold_retain == 0` eviction is the original binary
//! hot→gone behavior, bit-identical to previous releases.
//!
//! A byte budget ([`TableConfig::memory_budget`]) additionally bounds
//! resident memory: creating or re-promoting a hot stream first demotes
//! (or, without a cold tier, evicts) victims chosen by a clock hand walking
//! the slab until the newcomer fits. The hand is process-local scratch —
//! budget-driven victim order is deterministic for a fixed op sequence on
//! one table but, unlike watermark tiering, not partition-invariant.
//!
//! A sharded deployment runs one `StreamTable` per shard and routes batches
//! by `shard_of`; a deterministic fallback runs a single table over the same
//! batch sequence. Both produce **identical per-stream event sequences**
//! because every watermark decision a table makes about a stream depends
//! only on that stream's own samples and on the global sample clock (`seq`)
//! carried with each batch — never on which other streams happen to share
//! the table.

use crate::predict::{Forecast, ForecastStats, PredictConfig, Predictor};
use crate::query::{QueryDelta, QueryEngine, QuerySpec};
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use crate::streaming::{SegmentEvent, StreamStats, StreamingConfig, StreamingDpd};
use crate::EventMetric;

/// Opaque identifier of one logical input stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u64);

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream#{}", self.0)
    }
}

/// The splitmix64 finalizer: scrambles low-entropy keys (sequential ids,
/// aligned addresses) into uniform 64-bit hashes. Shared by [`shard_of`]
/// and the table's interning index, so a stream's shard route and its
/// in-shard probe sequence derive from one well-studied mix.
#[inline]
fn splitmix64(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stable shard route for a stream: `splitmix64(id) % shards`.
///
/// The finalizer scrambles low-entropy keys (sequential ids, aligned
/// addresses) so consecutive streams spread across shards instead of
/// clustering on `id % shards` residues.
///
/// # Panics
/// Panics when `shards == 0` — a zero-shard service has no routing.
pub fn shard_of(stream: StreamId, shards: usize) -> usize {
    assert!(shards > 0, "shard_of requires at least one shard");
    (splitmix64(stream.0) % shards as u64) as usize
}

/// Configuration of a [`StreamTable`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableConfig {
    /// Detector configuration applied to every stream.
    pub detector: StreamingConfig,
    /// Idle-eviction watermark, in global samples: a stream whose last
    /// sample is more than this many samples of total traffic in the past
    /// leaves the hot tier (its detector state discarded). `0` disables
    /// watermark eviction.
    pub evict_after: u64,
    /// Opt-in per-stream forecasting: horizon `H` of the [`Predictor`]
    /// attached to every stream (scoring the `H`-step-ahead prediction at
    /// each sample). `0` disables forecasting.
    pub forecast_horizon: usize,
    /// Byte budget for resident per-stream state, measured by the table's
    /// own accounting ([`StreamTable::accounted_bytes`]). When creating or
    /// re-promoting a hot stream would exceed the budget, victims are
    /// demoted to cold summaries (or evicted outright when
    /// [`TableConfig::cold_retain`] is `0`) until it fits. `0` disables
    /// the budget.
    pub memory_budget: u64,
    /// Cold-summary retention window, in global samples past the hot
    /// watermark: a stream idle for more than `evict_after` keeps a
    /// compact summary for another `cold_retain` samples before it is
    /// fully evicted. `0` disables the cold tier (binary hot→gone
    /// eviction, the pre-tiering behavior).
    pub cold_retain: u64,
}

impl TableConfig {
    /// Table with the given detector window and no eviction.
    #[deprecated(note = "use dpd_core::pipeline::DpdBuilder::new().window(n).keyed()\
                         .table_config() — see the README migration table")]
    pub fn with_window(n: usize) -> Self {
        crate::pipeline::DpdBuilder::new()
            .window(n)
            .keyed()
            .table_config()
            .unwrap_or_else(|e| panic!("TableConfig::with_window shim: {e}"))
    }

    /// Same, with an idle-eviction watermark.
    #[deprecated(note = "use dpd_core::pipeline::DpdBuilder::new().window(n)\
                         .evict_after(samples).table_config() — see the README migration table")]
    pub fn with_eviction(n: usize, evict_after: u64) -> Self {
        crate::pipeline::DpdBuilder::new()
            .window(n)
            .keyed()
            .evict_after(evict_after)
            .table_config()
            .unwrap_or_else(|e| panic!("TableConfig::with_eviction shim: {e}"))
    }

    /// Table with per-stream forecasting at horizon `h` (detector window
    /// `n`, no eviction).
    #[deprecated(note = "use dpd_core::pipeline::DpdBuilder::new().window(n).keyed()\
                         .forecast(h).table_config() — see the README migration table")]
    pub fn with_forecast(n: usize, h: usize) -> Self {
        crate::pipeline::DpdBuilder::new()
            .window(n)
            .keyed()
            .forecast(h)
            .table_config()
            .unwrap_or_else(|e| panic!("TableConfig::with_forecast shim: {e}"))
    }

    /// Builder-style: enable forecasting at horizon `h` on any config.
    #[deprecated(note = "use dpd_core::pipeline::DpdBuilder::forecast(h) — \
                         see the README migration table")]
    pub fn forecasting(self, h: usize) -> Self {
        let mut b = crate::pipeline::DpdBuilder::new()
            .detector(self.detector)
            .keyed()
            .forecast(h);
        if self.evict_after > 0 {
            b = b.evict_after(self.evict_after);
        }
        if self.memory_budget > 0 {
            b = b.memory_budget(self.memory_budget);
        }
        if self.cold_retain > 0 {
            b = b.cold_summary(self.cold_retain);
        }
        b.table_config()
            .unwrap_or_else(|e| panic!("TableConfig::forecasting shim: {e}"))
    }

    /// The predictor configuration for one stream, when forecasting is on.
    fn predict_config(&self) -> Option<PredictConfig> {
        (self.forecast_horizon > 0)
            .then(|| PredictConfig::new(self.detector.window, self.forecast_horizon))
            .transpose()
            .expect("window validated by detector construction")
    }

    /// Accounted bytes of one **hot** resident stream under this config:
    /// the cold-tier base plus the detector's mirrored history, delay
    /// accumulators and (when forecasting) the predictor's ring, pending
    /// queue and scratch. This is the table's own cost model — a stable,
    /// documented estimate of heap use, not a malloc-exact measurement —
    /// and the unit [`TableConfig::memory_budget`] is enforced in.
    pub fn hot_stream_bytes(&self) -> u64 {
        self.cold_stream_bytes() + hot_heap_bytes(self)
    }

    /// Accounted bytes of one **cold** resident stream: the slab slot, its
    /// struct-of-arrays strip columns, and its amortized share of the
    /// interning index.
    pub fn cold_stream_bytes(&self) -> u64 {
        // strip columns: id(8) + last_seq(8) + tier(1) + gen(1) + four
        // lifetime rollup counters (32); index share: (key + slot) at the
        // 3/4 load factor the index grows at.
        let strip = 8 + 8 + 1 + 1 + 32;
        let index = (8 + 4) * 4 / 3;
        (std::mem::size_of::<SlotState>() as u64) + strip + index
    }
}

/// Heap bytes behind one hot slot's `Box`: the detector's mirrored history
/// (`2 * (window + m_max + 64)` samples), its per-delay sums and pair
/// counts, fixed struct overhead, and the forecaster's ring + pending +
/// scratch when a horizon is configured.
fn hot_heap_bytes(config: &TableConfig) -> u64 {
    let n = config.detector.window as u64;
    let m = config.detector.m_max as u64;
    let history = 2 * (n + m + 64) * 8;
    let engine = m * 12; // f64 sum + u32 pair count per candidate delay
    let fixed = std::mem::size_of::<HotState>() as u64 + 128;
    let predictor = if config.forecast_horizon > 0 {
        let h = config.forecast_horizon as u64;
        n * 8 + h * 24 + 128
    } else {
        0
    };
    history + engine + fixed + predictor
}

/// One observation emitted by a multi-stream detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiStreamEvent {
    /// A segmentation event on one stream.
    Segment {
        /// The stream the event belongs to.
        stream: StreamId,
        /// The underlying detector event (never [`SegmentEvent::None`]).
        event: SegmentEvent,
    },
    /// A stream was explicitly closed; carries the final segmentation
    /// state as the close-time "flush".
    Closed {
        /// The closed stream.
        stream: StreamId,
        /// Samples the stream received over its lifetime.
        samples: u64,
        /// The periodicity locked at close time, if any.
        period: Option<usize>,
    },
}

impl MultiStreamEvent {
    /// The stream this event belongs to.
    pub fn stream(&self) -> StreamId {
        match self {
            MultiStreamEvent::Segment { stream, .. } => *stream,
            MultiStreamEvent::Closed { stream, .. } => *stream,
        }
    }
}

/// Rollup counters of one [`StreamTable`] (one shard's worth of state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Resident streams currently held (hot + cold tiers).
    pub streams: u64,
    /// Resident streams currently in the cold summary tier.
    pub cold: u64,
    /// Streams ever created (lazy creations, including re-creations after
    /// eviction or close).
    pub created: u64,
    /// Total samples ingested.
    pub samples: u64,
    /// Total non-trivial segmentation events emitted.
    pub events: u64,
    /// Streams evicted — fully removed past the watermark(s) or under
    /// budget pressure (swept, reset in place, or dropped at close time).
    pub evicted: u64,
    /// Streams explicitly closed.
    pub closed: u64,
    /// Hot→cold demotions (idle past the hot watermark with a cold tier
    /// configured, or squeezed out by the memory budget).
    pub demoted: u64,
    /// Cold→hot re-promotions (a cold stream received new samples).
    pub promoted: u64,
    /// Forecasts scored against an arrived sample (monotonic: survives
    /// eviction and close of the streams that produced them). `0` unless
    /// [`TableConfig::forecast_horizon`] is set.
    pub forecast_checked: u64,
    /// Scored forecasts that matched exactly.
    pub forecast_hits: u64,
    /// Forecast invalidations across all streams (phase changes; see
    /// [`crate::predict`]).
    pub forecast_invalidations: u64,
    /// Standing-query `Enter` transitions emitted (see [`crate::query`]).
    /// `0` unless queries are attached.
    pub query_enters: u64,
    /// Standing-query `Exit` transitions emitted.
    pub query_exits: u64,
}

impl TableStats {
    /// Exact-match rate of scored forecasts; `None` before any check.
    pub fn forecast_hit_rate(&self) -> Option<f64> {
        (self.forecast_checked > 0)
            .then(|| self.forecast_hits as f64 / self.forecast_checked as f64)
    }
}

// ---------------------------------------------------------------------------
// Handles, tiers and summaries: the handle-first accessor vocabulary.

/// Hard cap on resident streams per table: slot indices are 24 bits.
pub const MAX_RESIDENT_STREAMS: usize = 1 << 24;

/// A compact generational handle naming one **resident** stream of one
/// [`StreamTable`]: the slab slot index in the low 24 bits, the slot's
/// generation tag in the high 8.
///
/// Handles are the cheap tier of the table API: [`StreamTable::resolve`]
/// pays the hash probe once, and every `*_of` accessor afterwards is a
/// bounds-check plus generation compare — no re-hash per call. A handle
/// stays valid across hot↔cold tier moves and across lazy in-place resets
/// of the *same* resident slot, and is invalidated (generation bump) when
/// its stream is closed or fully evicted. Handles are process-local
/// conveniences: they are never serialized, and a restored table assigns
/// fresh ones. The 8-bit generation means a slot must be reused 256 times
/// before a stale handle could alias; treat handles as short-lived keys,
/// not durable names — the durable name is the [`StreamId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamHandle(u32);

impl StreamHandle {
    fn new(slot: usize, generation: u8) -> Self {
        debug_assert!(slot < MAX_RESIDENT_STREAMS);
        StreamHandle(((generation as u32) << 24) | slot as u32)
    }

    /// The slab slot index this handle names.
    pub fn index(self) -> usize {
        (self.0 & 0x00FF_FFFF) as usize
    }

    fn generation(self) -> u8 {
        (self.0 >> 24) as u8
    }
}

impl std::fmt::Display for StreamHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "handle#{}@{}", self.index(), self.generation())
    }
}

/// Which residency tier a stream currently occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamTier {
    /// Full detector (and predictor) state resident; samples apply
    /// directly.
    Hot,
    /// Compact summary only (period, confidence, lifetime rollups); new
    /// samples re-promote the stream with a fresh detector.
    Cold,
}

/// The compact per-stream digest available in every tier (~64 bytes).
///
/// For a hot stream the period/confidence fields are computed live from
/// the resident detector; for a cold stream they are the values frozen at
/// demotion time. The rollup counters are lifetime totals that survive
/// hot→cold→hot round trips (they reset only when the stream is closed or
/// fully evicted and later re-created).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSummary {
    /// Samples ingested over the stream's resident lifetime.
    pub samples: u64,
    /// Period-start boundaries observed over the resident lifetime.
    pub boundaries: u64,
    /// The period the stream is (hot) or was (cold) locked to, if any.
    pub period: Option<usize>,
    /// Forecast confidence, `0.0` when the table does not forecast.
    pub confidence: f64,
    /// Forecasts scored over the resident lifetime.
    pub forecast_checked: u64,
    /// Scored forecasts that matched exactly.
    pub forecast_hits: u64,
}

// ---------------------------------------------------------------------------
// The interning index: StreamId -> slot, open-addressed, tombstone-free.

const IDX_EMPTY: u32 = u32::MAX;

/// Open-addressed `u64 key -> u32 slot` map with linear probing over a
/// power-of-two capacity, splitmix64-hashed, grown at 3/4 load. Deletion
/// is by backshift (displaced entries slide back toward their home
/// bucket), so the index carries no tombstones and probe lengths never
/// degrade under churn.
#[derive(Debug)]
struct StreamIndex {
    keys: Vec<u64>,
    slots: Vec<u32>,
    len: usize,
}

impl StreamIndex {
    fn new() -> Self {
        StreamIndex::with_pow2_capacity(16)
    }

    fn with_pow2_capacity(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two());
        StreamIndex {
            keys: vec![0; cap],
            slots: vec![IDX_EMPTY; cap],
            len: 0,
        }
    }

    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    fn get(&self, key: u64) -> Option<u32> {
        let mask = self.mask();
        let mut i = (splitmix64(key) as usize) & mask;
        loop {
            let slot = self.slots[i];
            if slot == IDX_EMPTY {
                return None;
            }
            if self.keys[i] == key {
                return Some(slot);
            }
            i = (i + 1) & mask;
        }
    }

    /// Insert a key known to be absent.
    fn insert(&mut self, key: u64, slot: u32) {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.mask();
        let mut i = (splitmix64(key) as usize) & mask;
        while self.slots[i] != IDX_EMPTY {
            debug_assert_ne!(self.keys[i], key, "insert of a present key");
            i = (i + 1) & mask;
        }
        self.keys[i] = key;
        self.slots[i] = slot;
        self.len += 1;
    }

    /// Remove a key known to be present, backshifting displaced entries.
    fn remove(&mut self, key: u64) {
        let mask = self.mask();
        let mut i = (splitmix64(key) as usize) & mask;
        loop {
            debug_assert_ne!(self.slots[i], IDX_EMPTY, "remove of an absent key");
            if self.slots[i] != IDX_EMPTY && self.keys[i] == key {
                break;
            }
            if self.slots[i] == IDX_EMPTY {
                return; // release: tolerate an absent key
            }
            i = (i + 1) & mask;
        }
        // Backshift: an entry at j (home h) may fill the hole at i iff i
        // lies on its probe path, i.e. dist(i, j) <= dist(h, j) cyclically.
        let mut j = i;
        loop {
            self.slots[i] = IDX_EMPTY;
            loop {
                j = (j + 1) & mask;
                if self.slots[j] == IDX_EMPTY {
                    self.len -= 1;
                    return;
                }
                let home = (splitmix64(self.keys[j]) as usize) & mask;
                if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(i) & mask) {
                    break;
                }
            }
            self.keys[i] = self.keys[j];
            self.slots[i] = self.slots[j];
            i = j;
        }
    }

    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        let mut keys = vec![0u64; cap];
        let mut slots = vec![IDX_EMPTY; cap];
        let mask = cap - 1;
        for i in 0..self.slots.len() {
            if self.slots[i] == IDX_EMPTY {
                continue;
            }
            let mut j = (splitmix64(self.keys[i]) as usize) & mask;
            while slots[j] != IDX_EMPTY {
                j = (j + 1) & mask;
            }
            keys[j] = self.keys[i];
            slots[j] = self.slots[i];
        }
        self.keys = keys;
        self.slots = slots;
    }
}

// ---------------------------------------------------------------------------
// The slab: boxed hot state or inline cold summaries, plus SoA strips.

const TIER_FREE: u8 = 0;
const TIER_HOT: u8 = 1;
const TIER_COLD: u8 = 2;

/// Full per-stream state of one hot slot (boxed: the slab stays dense and
/// slot moves never copy detector innards).
#[derive(Debug)]
struct HotState {
    dpd: StreamingDpd<i64, EventMetric>,
    /// Per-stream forecaster, present when the table forecasts.
    predictor: Option<Predictor>,
}

impl HotState {
    /// Back to the as-constructed state without touching any allocation —
    /// a pooled `HotState` after `reset_fresh` is observably (and
    /// serialization-byte) identical to [`StreamTable::fresh_hot_state`]'s
    /// freshly built one.
    fn reset_fresh(&mut self) {
        self.dpd.reset_fresh();
        if let Some(p) = self.predictor.as_mut() {
            p.reset_fresh();
        }
    }
}

/// Retired hot states kept for reuse. Bounds the pool's unaccounted
/// memory to `HOT_POOL_CAP * hot_stream_bytes` while keeping the
/// demote-one-admit-one steady state allocation-free: under budget
/// pressure every newly created or promoted stream recycles the detector
/// buffers of a recently demoted victim. Since the pool's allocations
/// are made early (while the heap is small), the resident hot set stays
/// in a dense address range no matter how many streams have churned
/// through — which is what keeps per-push cost flat from 10⁴ to 10⁶
/// resident streams.
const HOT_POOL_CAP: usize = 32;

/// The ~16-byte inline record of a cold slot; the rest of the cold
/// summary (lifetime rollups, last_seq) lives in the strips.
#[derive(Debug, Clone, Copy)]
struct ColdState {
    period: Option<u32>,
    confidence: f64,
}

#[derive(Debug)]
enum SlotState {
    Free,
    Hot(Box<HotState>),
    Cold(ColdState),
}

/// Struct-of-arrays strip columns, indexed by slot. Sweep walks
/// `tier` + `last_seq` only; stats and summaries read the rollup columns —
/// neither ever touches the boxed detector state.
#[derive(Debug, Default)]
struct Strips {
    id: Vec<u64>,
    last_seq: Vec<u64>,
    tier: Vec<u8>,
    generation: Vec<u8>,
    samples: Vec<u64>,
    boundaries: Vec<u64>,
    checked: Vec<u64>,
    hits: Vec<u64>,
}

impl Strips {
    fn push_slot(&mut self) {
        self.id.push(0);
        self.last_seq.push(0);
        self.tier.push(TIER_FREE);
        self.generation.push(0);
        self.samples.push(0);
        self.boundaries.push(0);
        self.checked.push(0);
        self.hits.push(0);
    }

    /// Zero the per-lifetime columns of a slot being (re)born.
    fn reset_lifetime(&mut self, slot: usize) {
        self.last_seq[slot] = 0;
        self.samples[slot] = 0;
        self.boundaries[slot] = 0;
        self.checked[slot] = 0;
        self.hits[slot] = 0;
    }
}

/// A keyed table of independent per-stream detectors.
///
/// Streams are created lazily on first sample, tiered out when idle past
/// the configured watermark(s), and closed explicitly with a final flush
/// event. All watermark behavior is deterministic in the batch sequence:
/// feeding the same `(seq, stream, samples)` calls produces the same
/// per-stream events regardless of how streams are partitioned across
/// tables.
///
/// # Examples
/// ```
/// use dpd_core::pipeline::DpdBuilder;
/// use dpd_core::shard::{MultiStreamEvent, StreamId};
///
/// let mut table = DpdBuilder::new().window(8).keyed().build_table().unwrap();
/// let mut out = Vec::new();
/// let mut seq = 0u64;
/// for round in 0..30 {
///     for s in 0..3u64 {
///         // Stream s carries period s+2.
///         let chunk: Vec<i64> = (0..4).map(|i| ((round * 4 + i) % (s + 2)) as i64).collect();
///         table.ingest(seq, StreamId(s), &chunk, &mut out);
///         seq += chunk.len() as u64;
///     }
/// }
/// assert_eq!(table.len(), 3);
/// assert!(out.iter().any(|e| matches!(
///     e,
///     MultiStreamEvent::Segment { stream: StreamId(0), .. }
/// )));
/// ```
///
/// The handle-first tier skips the per-call hash probe:
///
/// ```
/// use dpd_core::pipeline::DpdBuilder;
/// use dpd_core::shard::StreamId;
///
/// let mut table = DpdBuilder::new().window(8).keyed().build_table().unwrap();
/// let mut out = Vec::new();
/// table.ingest(0, StreamId(7), &[0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2], &mut out);
/// let h = table.resolve(StreamId(7)).unwrap();
/// assert_eq!(table.id_of(h), Some(StreamId(7)));
/// assert_eq!(table.locked_period_of(h), Some(3));
/// assert!(table.ingest_handle(12, h, &[0, 1, 2], &mut out));
/// ```
#[derive(Debug)]
pub struct StreamTable {
    config: TableConfig,
    index: StreamIndex,
    slots: Vec<SlotState>,
    strips: Strips,
    free: Vec<u32>,
    /// Resident-state accounting in the config's cost model.
    accounted: u64,
    hot_count: usize,
    cold_count: usize,
    /// Clock hand for budget victim selection (process-local scratch;
    /// never serialized).
    hand: usize,
    /// Retired hot states awaiting reuse (process-local scratch; never
    /// serialized, capped at [`HOT_POOL_CAP`]). Deliberately a vec of
    /// boxes: entries are the exact `Box<HotState>` allocations moved
    /// out of [`SlotState::Hot`], recycled without reallocating.
    #[allow(clippy::vec_box)]
    pool: Vec<Box<HotState>>,
    /// Cached `config.cold_stream_bytes()`.
    slot_bytes: u64,
    /// Cached `hot_stream_bytes - cold_stream_bytes`.
    hot_extra: u64,
    stats: TableStats,
    /// Delta-evaluated standing queries over this table's event stream,
    /// when attached (see [`crate::query`] and
    /// [`StreamTable::attach_queries`]). Boxed: query-less tables pay one
    /// pointer.
    queries: Option<Box<QueryEngine>>,
}

impl StreamTable {
    /// Empty table with the given configuration.
    pub fn new(config: TableConfig) -> Self {
        let slot_bytes = config.cold_stream_bytes();
        let hot_extra = config.hot_stream_bytes() - slot_bytes;
        StreamTable {
            config,
            index: StreamIndex::new(),
            slots: Vec::new(),
            strips: Strips::default(),
            free: Vec::new(),
            accounted: 0,
            hot_count: 0,
            cold_count: 0,
            hand: 0,
            pool: Vec::new(),
            slot_bytes,
            hot_extra,
            stats: TableStats::default(),
            queries: None,
        }
    }

    /// Attach a standing-query engine evaluating `specs` against this
    /// table's event stream (see [`crate::query`]). Membership deltas
    /// accumulate in the table and are collected with
    /// [`StreamTable::drain_query_deltas`]. Specs must be valid
    /// ([`QuerySpec::is_valid`]) — the validating registration surface is
    /// `DpdBuilder::standing_query`. An empty `specs` detaches.
    ///
    /// # Panics
    /// Panics when the table already holds resident streams: queries
    /// observe every state transition from the start, so they must be
    /// attached before the first ingest.
    pub fn attach_queries(&mut self, specs: Vec<QuerySpec>) {
        assert!(
            self.is_empty() && self.stats.created == 0,
            "standing queries must be attached before the first ingest"
        );
        self.queries = (!specs.is_empty()).then(|| Box::new(QueryEngine::new(specs)));
    }

    /// The attached standing-query specs, in registration order (empty
    /// when no engine is attached).
    pub fn query_specs(&self) -> &[QuerySpec] {
        self.queries.as_ref().map_or(&[], |q| q.specs())
    }

    /// The attached standing-query engine, for result-set inspection
    /// ([`QueryEngine::members`], [`QueryEngine::tracked`]).
    pub fn query_engine(&self) -> Option<&QueryEngine> {
        self.queries.as_deref()
    }

    /// Move every pending standing-query delta into `out`, preserving
    /// emission order. No-op without an attached engine.
    pub fn drain_query_deltas(&mut self, out: &mut Vec<QueryDelta>) {
        if let Some(q) = self.queries.as_deref_mut() {
            q.drain_deltas(out);
        }
    }

    /// The table's configuration.
    pub fn config(&self) -> &TableConfig {
        &self.config
    }

    /// Number of resident streams (hot + cold tiers).
    pub fn len(&self) -> usize {
        self.hot_count + self.cold_count
    }

    /// `true` when no stream is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rollup counters.
    pub fn stats(&self) -> TableStats {
        TableStats {
            streams: self.len() as u64,
            cold: self.cold_count as u64,
            query_enters: self.queries.as_ref().map_or(0, |q| q.enters()),
            query_exits: self.queries.as_ref().map_or(0, |q| q.exits()),
            ..self.stats
        }
    }

    /// Resident bytes currently accounted against
    /// [`TableConfig::memory_budget`], in the cost model of
    /// [`TableConfig::hot_stream_bytes`] / [`TableConfig::cold_stream_bytes`].
    pub fn accounted_bytes(&self) -> u64 {
        self.accounted
    }

    fn cold_enabled(&self) -> bool {
        self.config.cold_retain > 0
    }

    /// The watermark past which even a cold summary is gone.
    fn gone_after(&self) -> u64 {
        if self.cold_enabled() {
            self.config
                .evict_after
                .saturating_add(self.config.cold_retain)
        } else {
            self.config.evict_after
        }
    }

    // ------------------------------------------------------------------
    // Handle-first accessors: resolve once, address by slot afterwards.

    /// Intern lookup: the handle of a resident stream (hot or cold).
    pub fn resolve(&self, stream: StreamId) -> Option<StreamHandle> {
        let slot = self.index.get(stream.0)? as usize;
        Some(StreamHandle::new(slot, self.strips.generation[slot]))
    }

    /// The slot a live handle names, or `None` when the handle is stale
    /// (its stream was closed or evicted since it was resolved).
    fn slot_of(&self, handle: StreamHandle) -> Option<usize> {
        let slot = handle.index();
        (slot < self.slots.len()
            && self.strips.tier[slot] != TIER_FREE
            && self.strips.generation[slot] == handle.generation())
        .then_some(slot)
    }

    /// The stream a live handle names.
    pub fn id_of(&self, handle: StreamHandle) -> Option<StreamId> {
        self.slot_of(handle).map(|s| StreamId(self.strips.id[s]))
    }

    /// The residency tier of a live handle's stream.
    pub fn tier_of(&self, handle: StreamHandle) -> Option<StreamTier> {
        match self.strips.tier[self.slot_of(handle)?] {
            TIER_HOT => Some(StreamTier::Hot),
            TIER_COLD => Some(StreamTier::Cold),
            _ => None,
        }
    }

    /// Detector statistics of a live **hot** stream (cold streams have no
    /// resident detector — see [`StreamTable::summary_of`]).
    pub fn stream_stats_of(&self, handle: StreamHandle) -> Option<&StreamStats> {
        match &self.slots[self.slot_of(handle)?] {
            SlotState::Hot(hot) => Some(hot.dpd.stats()),
            _ => None,
        }
    }

    /// The period a live **hot** stream is currently locked to, if any.
    pub fn locked_period_of(&self, handle: StreamHandle) -> Option<usize> {
        match &self.slots[self.slot_of(handle)?] {
            SlotState::Hot(hot) => hot.dpd.locked_period(),
            _ => None,
        }
    }

    /// Forecast-accuracy statistics of a live **hot** stream (since its
    /// creation or last re-promotion). `None` for cold streams or when the
    /// table does not forecast.
    pub fn forecast_stats_of(&self, handle: StreamHandle) -> Option<ForecastStats> {
        match &self.slots[self.slot_of(handle)?] {
            SlotState::Hot(hot) => hot.predictor.as_ref().map(|p| p.stats()),
            _ => None,
        }
    }

    /// Current forecast confidence of a live **hot** stream.
    pub fn forecast_confidence_of(&self, handle: StreamHandle) -> Option<f64> {
        match &self.slots[self.slot_of(handle)?] {
            SlotState::Hot(hot) => hot.predictor.as_ref().map(|p| p.confidence()),
            _ => None,
        }
    }

    /// Materialize the forecast for the next `h` values of a live **hot**
    /// stream (`h` up to the configured horizon).
    pub fn forecast_of(&mut self, handle: StreamHandle, h: usize) -> Option<Forecast<'_>> {
        let slot = self.slot_of(handle)?;
        match &mut self.slots[slot] {
            SlotState::Hot(hot) => hot.predictor.as_mut()?.forecast(h),
            _ => None,
        }
    }

    /// The compact digest of a live stream in **either** tier: lifetime
    /// rollups from the strips plus period/confidence (computed live for
    /// hot streams, frozen at demotion time for cold ones).
    pub fn summary_of(&self, handle: StreamHandle) -> Option<StreamSummary> {
        let slot = self.slot_of(handle)?;
        let (period, confidence) = match &self.slots[slot] {
            SlotState::Hot(hot) => (
                hot.dpd.locked_period(),
                hot.predictor.as_ref().map_or(0.0, |p| p.confidence()),
            ),
            SlotState::Cold(cold) => (cold.period.map(|p| p as usize), cold.confidence),
            SlotState::Free => return None,
        };
        Some(StreamSummary {
            samples: self.strips.samples[slot],
            boundaries: self.strips.boundaries[slot],
            period,
            confidence,
            forecast_checked: self.strips.checked[slot],
            forecast_hits: self.strips.hits[slot],
        })
    }

    /// Ingest one batch for the stream a live handle names — the
    /// hash-free twin of [`StreamTable::ingest`], byte-identical in
    /// effect. Returns `false` (and ingests nothing) when the handle is
    /// stale. Note the batch itself may retire the handle: a stream idle
    /// past the full eviction horizon is reset to a fresh incarnation
    /// (generation bump), so re-resolve after long gaps.
    pub fn ingest_handle(
        &mut self,
        seq: u64,
        handle: StreamHandle,
        samples: &[i64],
        out: &mut Vec<MultiStreamEvent>,
    ) -> bool {
        let Some(slot) = self.slot_of(handle) else {
            return false;
        };
        if samples.is_empty() {
            return true;
        }
        let stream = StreamId(self.strips.id[slot]);
        self.ingest_resident(seq, slot, stream, samples, out);
        true
    }

    /// Handles of every resident stream, in slab order (unspecified;
    /// sort by [`StreamTable::id_of`] for a partition-stable order).
    pub fn handles(&self) -> impl Iterator<Item = StreamHandle> + '_ {
        self.strips
            .tier
            .iter()
            .enumerate()
            .filter(|&(_, &tier)| tier != TIER_FREE)
            .map(|(slot, _)| StreamHandle::new(slot, self.strips.generation[slot]))
    }

    // ------------------------------------------------------------------
    // StreamId convenience tier: thin resolve-then-delegate wrappers.

    /// Per-stream detector statistics for a resident hot stream.
    pub fn stream_stats(&self, stream: StreamId) -> Option<&StreamStats> {
        self.stream_stats_of(self.resolve(stream)?)
    }

    /// The period a resident hot stream is currently locked to, if any.
    pub fn locked_period(&self, stream: StreamId) -> Option<usize> {
        self.locked_period_of(self.resolve(stream)?)
    }

    /// Forecast-accuracy statistics of one resident hot stream (since its
    /// creation or last eviction reset). `None` when the stream is not
    /// resident hot or the table does not forecast.
    pub fn forecast_stats(&self, stream: StreamId) -> Option<ForecastStats> {
        self.forecast_stats_of(self.resolve(stream)?)
    }

    /// Current forecast confidence of one resident hot stream; `None` when
    /// the stream is not resident hot or the table does not forecast.
    pub fn forecast_confidence(&self, stream: StreamId) -> Option<f64> {
        self.forecast_confidence_of(self.resolve(stream)?)
    }

    /// Materialize the forecast for the next `h` values of one stream
    /// (`h` up to the configured horizon). `None` when the stream is not
    /// resident hot, the table does not forecast, or the stream's
    /// predictor is not locked and primed yet.
    pub fn forecast(&mut self, stream: StreamId, h: usize) -> Option<Forecast<'_>> {
        let handle = self.resolve(stream)?;
        self.forecast_of(handle, h)
    }

    /// The compact digest of one resident stream in either tier.
    pub fn summary(&self, stream: StreamId) -> Option<StreamSummary> {
        self.summary_of(self.resolve(stream)?)
    }

    /// Ids of every resident stream, in slab order (unspecified; collect
    /// and sort for a partition-stable order). Allocation-free.
    pub fn stream_ids(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.strips
            .tier
            .iter()
            .enumerate()
            .filter(|&(_, &tier)| tier != TIER_FREE)
            .map(|(slot, _)| StreamId(self.strips.id[slot]))
    }

    fn sorted_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.stream_ids().map(|s| s.0).collect();
        ids.sort_unstable();
        ids
    }

    // ------------------------------------------------------------------
    // Slab lifecycle.

    /// A hot state indistinguishable from newly constructed — recycled
    /// from the pool when one is available (resetting is cheaper than
    /// reallocating the detector's window buffers, and keeps the hot
    /// heap dense; see [`HOT_POOL_CAP`]).
    fn fresh_hot_state(&mut self) -> Box<HotState> {
        if let Some(mut state) = self.pool.pop() {
            state.reset_fresh();
            return state;
        }
        Box::new(HotState {
            dpd: StreamingDpd::new(EventMetric, self.config.detector)
                .expect("table config validated at construction"),
            predictor: self.config.predict_config().map(Predictor::new),
        })
    }

    /// Retire a hot state into the reuse pool (dropped once full).
    fn retire_hot_state(&mut self, state: Box<HotState>) {
        if self.pool.len() < HOT_POOL_CAP {
            self.pool.push(state);
        }
    }

    /// Take a slot off the free list (or extend the slab) and stamp it
    /// with `id`, lifetime columns zeroed. Tier stays `Free`; the caller
    /// installs state. The slot's generation carries over from its
    /// previous life — it was bumped at release time.
    fn alloc_slot(&mut self, id: u64) -> usize {
        let slot = match self.free.pop() {
            Some(slot) => slot as usize,
            None => {
                assert!(
                    self.slots.len() < MAX_RESIDENT_STREAMS,
                    "stream table slab is full ({MAX_RESIDENT_STREAMS} resident streams)"
                );
                self.slots.push(SlotState::Free);
                self.strips.push_slot();
                self.slots.len() - 1
            }
        };
        self.strips.id[slot] = id;
        self.strips.reset_lifetime(slot);
        slot
    }

    /// Install fresh hot state into a slot that currently holds none.
    fn make_hot(&mut self, slot: usize) {
        let state = self.fresh_hot_state();
        self.install_hot(slot, state);
    }

    fn install_hot(&mut self, slot: usize, state: Box<HotState>) {
        self.slots[slot] = SlotState::Hot(state);
        self.strips.tier[slot] = TIER_HOT;
        self.hot_count += 1;
        self.accounted += self.hot_extra;
    }

    /// Create a brand-new stream: allocate, intern, budget, go hot.
    fn create_stream(&mut self, id: u64) -> usize {
        self.stats.created += 1;
        let slot = self.alloc_slot(id);
        self.index.insert(id, slot as u32);
        self.accounted += self.slot_bytes;
        self.enforce_budget(slot);
        self.make_hot(slot);
        slot
    }

    /// Drop a slot's hot state down to a cold summary (frozen period +
    /// confidence; rollups stay in the strips).
    fn demote_slot(&mut self, slot: usize) {
        let state = std::mem::replace(&mut self.slots[slot], SlotState::Free);
        let SlotState::Hot(hot) = state else {
            unreachable!("demote requires a hot slot");
        };
        let cold = ColdState {
            period: hot.dpd.locked_period().map(|p| p as u32),
            confidence: hot.predictor.as_ref().map_or(0.0, |p| p.confidence()),
        };
        self.slots[slot] = SlotState::Cold(cold);
        self.strips.tier[slot] = TIER_COLD;
        self.hot_count -= 1;
        self.cold_count += 1;
        self.accounted -= self.hot_extra;
        self.stats.demoted += 1;
        self.retire_hot_state(hot);
    }

    /// Re-promote a cold slot: fresh detector/predictor, lifetime rollup
    /// columns carried forward. `seq` is the global clock of the samples
    /// that triggered the promotion — the standing-query engine clears
    /// the lock- and confidence-derived facts there (the fresh detector
    /// starts unlocked; a silent reset is not a loss).
    fn promote_slot(&mut self, slot: usize, seq: u64) {
        if let Some(q) = self.queries.as_deref_mut() {
            q.reset_lock(StreamId(self.strips.id[slot]), seq);
        }
        self.cold_count -= 1;
        self.enforce_budget(slot);
        self.make_hot(slot);
        self.stats.promoted += 1;
    }

    /// Remove a resident slot entirely: un-intern, free state, bump the
    /// generation (stale handles die here), push on the free list.
    fn release_slot(&mut self, slot: usize) {
        if let Some(q) = self.queries.as_deref_mut() {
            // Exit every membership at the engine's clock (callers with a
            // batch clock advance the engine first; budget evictions have
            // no clock of their own).
            let at = q.clock();
            q.retire(StreamId(self.strips.id[slot]), at);
        }
        match self.strips.tier[slot] {
            TIER_HOT => {
                self.hot_count -= 1;
                self.accounted -= self.hot_extra + self.slot_bytes;
            }
            TIER_COLD => {
                self.cold_count -= 1;
                self.accounted -= self.slot_bytes;
            }
            _ => unreachable!("release of a free slot"),
        }
        self.index.remove(self.strips.id[slot]);
        if let SlotState::Hot(hot) = std::mem::replace(&mut self.slots[slot], SlotState::Free) {
            self.retire_hot_state(hot);
        }
        self.strips.tier[slot] = TIER_FREE;
        self.strips.generation[slot] = self.strips.generation[slot].wrapping_add(1);
        self.free.push(slot as u32);
    }

    fn evict_slot(&mut self, slot: usize) {
        self.release_slot(slot);
        self.stats.evicted += 1;
    }

    /// Demote or evict resident streams until one more hot stream fits
    /// [`TableConfig::memory_budget`]. Victims are chosen by a clock hand
    /// walking the slab: pass one demotes hot slots to cold summaries (or
    /// evicts them outright when the cold tier is disabled); if the table
    /// is still over budget after a full lap, pass two evicts cold slots
    /// too. Best-effort: the protected newcomer is always admitted. The
    /// hand is process-local scratch — budget-driven victim order (unlike
    /// watermark tiering) is not partition-invariant.
    fn enforce_budget(&mut self, protect: usize) {
        let budget = self.config.memory_budget;
        if budget == 0 {
            return;
        }
        let cap = self.slots.len();
        if cap == 0 {
            return;
        }
        let need = self.hot_extra;
        let mut steps = 0;
        while self.accounted.saturating_add(need) > budget && steps < cap {
            let slot = self.hand;
            self.hand = (self.hand + 1) % cap;
            steps += 1;
            if slot == protect || self.strips.tier[slot] != TIER_HOT {
                continue;
            }
            if self.cold_enabled() {
                self.demote_slot(slot);
            } else {
                self.evict_slot(slot);
            }
        }
        let mut steps = 0;
        while self.accounted.saturating_add(need) > budget && steps < cap {
            let slot = self.hand;
            self.hand = (self.hand + 1) % cap;
            steps += 1;
            if slot == protect || self.strips.tier[slot] != TIER_COLD {
                continue;
            }
            self.evict_slot(slot);
        }
    }

    // ------------------------------------------------------------------
    // Ingest / close / sweep.

    /// Ingest one batch of samples for one stream, appending every
    /// non-trivial event to `out`.
    ///
    /// `seq` is the global sample clock at the batch's first sample — the
    /// total number of samples ingested across *all* streams before this
    /// batch. It drives idle tiering: a stream whose previous sample is
    /// more than `evict_after` global samples in the past is demoted (cold
    /// tier on) or reset to a fresh detector (cold tier off) before the
    /// batch is applied; past `evict_after + cold_retain` even the cold
    /// summary is discarded and the stream starts a fresh incarnation.
    /// The lazy transitions are observably identical to a sweep at any
    /// point inside the gap.
    pub fn ingest(
        &mut self,
        seq: u64,
        stream: StreamId,
        samples: &[i64],
        out: &mut Vec<MultiStreamEvent>,
    ) {
        if samples.is_empty() {
            return;
        }
        match self.index.get(stream.0) {
            Some(slot) => self.ingest_resident(seq, slot as usize, stream, samples, out),
            None => {
                let slot = self.create_stream(stream.0);
                self.push_batch(seq, slot, stream, samples, out);
            }
        }
    }

    /// Apply the watermark tier transitions a resident slot owes at `seq`,
    /// then push the batch. Counter increments mirror exactly what eager
    /// sweeps at the tier boundaries would have recorded.
    fn ingest_resident(
        &mut self,
        seq: u64,
        slot: usize,
        stream: StreamId,
        samples: &[i64],
        out: &mut Vec<MultiStreamEvent>,
    ) {
        if let Some(q) = self.queries.as_deref_mut() {
            // Fire lock-lost deadlines the arriving batch's clock passed
            // *before* any watermark eviction below retires the slot —
            // a retirement bumps the epoch, which would orphan a still
            // parked deadline exit that logically preceded it.
            q.advance(seq);
        }
        let watermark = self.config.evict_after;
        let gap = seq.saturating_sub(self.strips.last_seq[slot]);
        match self.strips.tier[slot] {
            TIER_HOT => {
                if watermark > 0 && gap > watermark {
                    if self.cold_enabled() && gap <= self.gone_after() {
                        // Idle into the cold window: demote (as a sweep
                        // inside the gap would have), then immediately
                        // re-promote for the arriving samples. Lifetime
                        // rollups survive; detector state does not.
                        self.demote_slot(slot);
                        self.promote_slot(slot, seq);
                    } else {
                        // Idle past everything: a fresh incarnation. A
                        // sweep schedule would have demoted then evicted;
                        // mirror both counters.
                        if self.cold_enabled() {
                            self.stats.demoted += 1;
                        }
                        self.reset_hot_slot(slot, seq);
                    }
                }
            }
            TIER_COLD => {
                if watermark > 0 && gap > self.gone_after() {
                    // The summary was logically gone before the samples
                    // arrived: evict it and start a fresh incarnation.
                    if let Some(q) = self.queries.as_deref_mut() {
                        q.retire(stream, seq);
                    }
                    self.stats.evicted += 1;
                    self.stats.created += 1;
                    self.cold_count -= 1;
                    self.strips.generation[slot] = self.strips.generation[slot].wrapping_add(1);
                    self.strips.reset_lifetime(slot);
                    self.enforce_budget(slot);
                    self.make_hot(slot);
                } else {
                    self.promote_slot(slot, seq);
                }
            }
            _ => unreachable!("interned stream in a free slot"),
        }
        self.push_batch(seq, slot, stream, samples, out);
    }

    /// In-place rebirth of a hot slot whose stream idled out completely:
    /// discard state, count the eviction + re-creation, and start over —
    /// exactly what a memory sweep inside the gap followed by lazy
    /// re-creation would have produced. Forecast state is part of the
    /// discarded state: the fresh predictor starts unlocked with empty
    /// statistics. The generation bumps — handles into the old
    /// incarnation must not alias the new one. The standing-query engine
    /// retires the old incarnation at `seq` (every membership exits).
    fn reset_hot_slot(&mut self, slot: usize, seq: u64) {
        if let Some(q) = self.queries.as_deref_mut() {
            q.retire(StreamId(self.strips.id[slot]), seq);
        }
        self.stats.evicted += 1;
        self.stats.created += 1;
        self.strips.generation[slot] = self.strips.generation[slot].wrapping_add(1);
        self.strips.reset_lifetime(slot);
        let SlotState::Hot(hot) = &mut self.slots[slot] else {
            unreachable!("in-place rebirth requires a hot slot");
        };
        hot.reset_fresh();
    }

    /// The per-sample hot loop: push into the detector, emit events, score
    /// forecasts, then fold the batch's deltas into table stats and the
    /// slot's lifetime strip columns.
    fn push_batch(
        &mut self,
        seq: u64,
        slot: usize,
        stream: StreamId,
        samples: &[i64],
        out: &mut Vec<MultiStreamEvent>,
    ) {
        let mut queries = self.queries.as_deref_mut();
        let SlotState::Hot(hot) = &mut self.slots[slot] else {
            unreachable!("push into a non-hot slot");
        };
        let mut events = 0u64;
        let mut boundaries = 0u64;
        let mut checked = 0u64;
        let mut hits = 0u64;
        let mut invalidations = 0u64;
        for (i, &s) in samples.iter().enumerate() {
            // Advance the query clock to this sample *before* its events:
            // a lock-lost deadline elapsing here must exit (at its true
            // `loss + window` seq) ahead of any membership change this
            // sample causes, keeping the delta log emission-ordered by
            // seq. O(1) when no deadline is due (a heap peek).
            if let Some(q) = queries.as_deref_mut() {
                q.advance(seq + i as u64);
            }
            let e = hot.dpd.push(s);
            if e != SegmentEvent::None {
                if matches!(e, SegmentEvent::PeriodStart { .. }) {
                    boundaries += 1;
                }
                out.push(MultiStreamEvent::Segment { stream, event: e });
                events += 1;
                if let Some(q) = queries.as_deref_mut() {
                    q.on_segment(stream, e, seq + i as u64);
                }
            }
            if let Some(pred) = hot.predictor.as_mut() {
                let ob = pred.observe(s, e);
                if let Some(scored) = ob.scored {
                    checked += 1;
                    hits += scored.hit as u64;
                    if let Some(q) = queries.as_deref_mut() {
                        q.on_scored(stream, scored.hit, seq + i as u64);
                    }
                }
                invalidations += ob.invalidated as u64;
            }
        }
        let len = samples.len() as u64;
        self.strips.last_seq[slot] = seq + len - 1;
        self.strips.samples[slot] += len;
        self.strips.boundaries[slot] += boundaries;
        self.strips.checked[slot] += checked;
        self.strips.hits[slot] += hits;
        self.stats.samples += len;
        self.stats.events += events;
        self.stats.forecast_checked += checked;
        self.stats.forecast_hits += hits;
        self.stats.forecast_invalidations += invalidations;
    }

    /// Explicitly close a stream at global sample clock `seq`, emitting a
    /// final [`MultiStreamEvent::Closed`] flush. A stream already idle past
    /// the full eviction horizon at `seq` is evicted silently instead — it
    /// was logically gone before the close arrived, whether or not a memory
    /// sweep had gotten to it, so close-time behavior stays independent of
    /// sweep scheduling. A stream in the cold window (resident cold, or
    /// hot-but-logically-cold) flushes from its summary: lifetime sample
    /// count and frozen period. Returns `false` when the stream is not
    /// live (already closed, evicted, or never seen).
    pub fn close(&mut self, seq: u64, stream: StreamId, out: &mut Vec<MultiStreamEvent>) -> bool {
        let Some(slot) = self.index.get(stream.0).map(|s| s as usize) else {
            return false;
        };
        if let Some(q) = self.queries.as_deref_mut() {
            // Fire lock-lost deadlines the close clock passed, so the
            // retirement below exits at `seq`, after them.
            q.advance(seq);
        }
        let watermark = self.config.evict_after;
        let gap = seq.saturating_sub(self.strips.last_seq[slot]);
        if watermark > 0 && gap > watermark {
            if !self.cold_enabled() || gap > self.gone_after() {
                // Logically gone before the close arrived. Mirror the
                // sweep counters the gap owed (demotion first, if a
                // hot slot crossed the whole cold window unswept).
                if self.cold_enabled() && self.strips.tier[slot] == TIER_HOT {
                    self.stats.demoted += 1;
                }
                self.evict_slot(slot);
                return false;
            }
            if self.strips.tier[slot] == TIER_HOT {
                // Logically cold: demote now (as a sweep would have), then
                // flush below from the summary.
                self.demote_slot(slot);
            }
        }
        let period = match &self.slots[slot] {
            SlotState::Hot(hot) => hot.dpd.locked_period(),
            SlotState::Cold(cold) => cold.period.map(|p| p as usize),
            SlotState::Free => unreachable!("interned stream in a free slot"),
        };
        out.push(MultiStreamEvent::Closed {
            stream,
            samples: self.strips.samples[slot],
            period,
        });
        self.stats.closed += 1;
        self.stats.events += 1;
        self.release_slot(slot);
        true
    }

    /// Close every resident stream at clock `seq`, ascending by id (a
    /// stable order no matter how streams were partitioned across tables).
    pub fn close_all(&mut self, seq: u64, out: &mut Vec<MultiStreamEvent>) {
        for id in self.sorted_ids() {
            self.close(seq, StreamId(id), out);
        }
    }

    /// Reclaim memory of streams idle past the watermark(s) at global
    /// sample clock `seq`, walking only the dense tier/clock strips.
    /// Hot streams idle past `evict_after` demote to cold summaries (or
    /// evict, without a cold tier); summaries idle past
    /// `evict_after + cold_retain` are freed. Returns the number of
    /// streams fully evicted. Emits no events: a swept stream that later
    /// receives samples is indistinguishable from one lazily tiered by
    /// [`StreamTable::ingest`], so sweeps may run on any schedule without
    /// affecting determinism.
    pub fn sweep(&mut self, seq: u64) -> usize {
        if let Some(q) = self.queries.as_deref_mut() {
            // A sweep is a clock observation: parked lock-lost exits the
            // clock passed fire here, eviction retirements exit at `seq`.
            q.advance(seq);
        }
        let watermark = self.config.evict_after;
        if watermark == 0 {
            return 0;
        }
        let gone = self.gone_after();
        let mut evicted = 0usize;
        for slot in 0..self.slots.len() {
            match self.strips.tier[slot] {
                TIER_HOT => {
                    let gap = seq.saturating_sub(self.strips.last_seq[slot]);
                    if gap <= watermark {
                        continue;
                    }
                    if self.cold_enabled() && gap <= gone {
                        self.demote_slot(slot);
                    } else {
                        // Crossed the whole cold window between sweeps:
                        // count the demotion the schedule skipped.
                        if self.cold_enabled() {
                            self.stats.demoted += 1;
                        }
                        self.evict_slot(slot);
                        evicted += 1;
                    }
                }
                TIER_COLD => {
                    let gap = seq.saturating_sub(self.strips.last_seq[slot]);
                    if gap > gone {
                        self.evict_slot(slot);
                        evicted += 1;
                    }
                }
                _ => {}
            }
        }
        evicted
    }

    // ------------------------------------------------------------------
    // Snapshot hooks (see `crate::snapshot` for the envelope and the
    // TAG_TABLE v1 / TAG_TABLE_V2 negotiation; layouts in docs/FORMAT.md).

    /// Serialize the full table state — configuration, rollup counters,
    /// every hot stream entry and every cold summary (each section
    /// ascending by id, so the byte image is independent of slab layout
    /// and sweep schedule) — into `w`. Handles, slot indices, the free
    /// list and the budget clock hand are process-local and deliberately
    /// not serialized.
    pub(crate) fn snapshot_state(&self, w: &mut SnapshotWriter) {
        crate::snapshot::write_streaming_config(w, &self.config.detector);
        w.u64(self.config.evict_after);
        w.u64(self.config.forecast_horizon as u64);
        w.u64(self.config.memory_budget);
        w.u64(self.config.cold_retain);
        w.u64(self.stats.created);
        w.u64(self.stats.samples);
        w.u64(self.stats.events);
        w.u64(self.stats.evicted);
        w.u64(self.stats.closed);
        w.u64(self.stats.demoted);
        w.u64(self.stats.promoted);
        w.u64(self.stats.forecast_checked);
        w.u64(self.stats.forecast_hits);
        w.u64(self.stats.forecast_invalidations);
        let mut hot: Vec<(u64, usize)> = Vec::with_capacity(self.hot_count);
        let mut cold: Vec<(u64, usize)> = Vec::with_capacity(self.cold_count);
        for slot in 0..self.slots.len() {
            match self.strips.tier[slot] {
                TIER_HOT => hot.push((self.strips.id[slot], slot)),
                TIER_COLD => cold.push((self.strips.id[slot], slot)),
                _ => {}
            }
        }
        hot.sort_unstable();
        cold.sort_unstable();
        w.u64(hot.len() as u64);
        for (id, slot) in hot {
            w.u64(id);
            self.write_strip_columns(w, slot);
            let SlotState::Hot(state) = &self.slots[slot] else {
                unreachable!("hot tier strip names a non-hot slot");
            };
            state.dpd.snapshot_state(w, &|w, v| w.i64(v));
            match state.predictor.as_ref() {
                Some(p) => {
                    w.bool(true);
                    p.snapshot_state(w);
                }
                None => w.bool(false),
            }
        }
        w.u64(cold.len() as u64);
        for (id, slot) in cold {
            w.u64(id);
            self.write_strip_columns(w, slot);
            let SlotState::Cold(state) = &self.slots[slot] else {
                unreachable!("cold tier strip names a non-cold slot");
            };
            w.u64(state.period.map_or(0, |p| p as u64 + 1));
            w.f64(state.confidence);
        }
    }

    /// V3 body: the v2 body followed by the standing-query engine section
    /// (specs, clock, counters, per-stream facts, pending deltas — see
    /// `crate::query` and docs/FORMAT.md §12). Only engine-attached
    /// tables write this; query-less tables keep emitting the v2 tag so
    /// their checkpoints stay readable by older builds.
    pub(crate) fn snapshot_state_v3(&self, w: &mut SnapshotWriter) {
        self.snapshot_state(w);
        self.queries
            .as_ref()
            .expect("v3 table snapshot requires an attached query engine")
            .snapshot_state(w);
    }

    /// Rebuild a table plus its standing-query engine from a v3 body.
    pub(crate) fn restore_state_v3(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let mut table = StreamTable::restore_state(r)?;
        let engine = QueryEngine::restore_state(r)?;
        table.queries = Some(Box::new(engine));
        Ok(table)
    }

    /// `true` when a standing-query engine is attached (selects the
    /// snapshot tag).
    pub(crate) fn has_queries(&self) -> bool {
        self.queries.is_some()
    }

    fn write_strip_columns(&self, w: &mut SnapshotWriter, slot: usize) {
        w.u64(self.strips.last_seq[slot]);
        w.u64(self.strips.samples[slot]);
        w.u64(self.strips.boundaries[slot]);
        w.u64(self.strips.checked[slot]);
        w.u64(self.strips.hits[slot]);
    }

    /// Rebuild a table from serialized v2 state. Slots are assigned in
    /// deserialization order (hot section first, then cold, each
    /// ascending by id): handles are process-local, so slab layout need
    /// not survive a restore — only logical state does. The budget clock
    /// hand restarts at 0.
    pub(crate) fn restore_state(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let detector = crate::snapshot::read_streaming_config(r)?;
        let config = TableConfig {
            detector,
            evict_after: r.u64()?,
            forecast_horizon: r.u64()? as usize,
            memory_budget: r.u64()?,
            cold_retain: r.u64()?,
        };
        if detector.window == 0 || detector.m_max == 0 || detector.m_max > detector.window {
            return Err(SnapshotError::Malformed {
                what: "table detector configuration fails validation",
            });
        }
        let mut table = StreamTable::new(config);
        table.stats = TableStats {
            streams: 0,
            cold: 0,
            created: r.u64()?,
            samples: r.u64()?,
            events: r.u64()?,
            evicted: r.u64()?,
            closed: r.u64()?,
            demoted: r.u64()?,
            promoted: r.u64()?,
            forecast_checked: r.u64()?,
            forecast_hits: r.u64()?,
            forecast_invalidations: r.u64()?,
            query_enters: 0,
            query_exits: 0,
        };
        let hot = r.count(MAX_RESIDENT_STREAMS, "implausible hot-stream count")?;
        let mut prev: Option<u64> = None;
        for _ in 0..hot {
            let id = r.u64()?;
            if prev.is_some_and(|p| p >= id) {
                return Err(SnapshotError::Malformed {
                    what: "hot stream entries out of ascending id order",
                });
            }
            prev = Some(id);
            let slot = table.adopt_slot(id, r)?;
            let dpd = StreamingDpd::restore_state(EventMetric, r, &|r| r.i64())?;
            if dpd.config() != config.detector {
                return Err(SnapshotError::Malformed {
                    what: "stream detector configuration disagrees with table",
                });
            }
            let predictor = if r.bool()? {
                let p = Predictor::restore_state(r)?;
                if Some(p.config()) != config.predict_config() {
                    return Err(SnapshotError::Malformed {
                        what: "stream predictor configuration disagrees with table",
                    });
                }
                Some(p)
            } else {
                if config.forecast_horizon > 0 {
                    return Err(SnapshotError::Malformed {
                        what: "forecasting table entry lacks a predictor",
                    });
                }
                None
            };
            table.install_hot(slot, Box::new(HotState { dpd, predictor }));
        }
        let cold = r.count(MAX_RESIDENT_STREAMS, "implausible cold-stream count")?;
        if cold > 0 && config.cold_retain == 0 {
            return Err(SnapshotError::Malformed {
                what: "cold summaries in a table without a cold tier",
            });
        }
        let mut prev: Option<u64> = None;
        for _ in 0..cold {
            let id = r.u64()?;
            if prev.is_some_and(|p| p >= id) {
                return Err(SnapshotError::Malformed {
                    what: "cold stream entries out of ascending id order",
                });
            }
            prev = Some(id);
            let slot = table.adopt_slot(id, r)?;
            let raw = r.u64()?;
            let period = match raw {
                0 => None,
                p if p - 1 <= u32::MAX as u64 => Some((p - 1) as u32),
                _ => {
                    return Err(SnapshotError::Malformed {
                        what: "cold summary period out of range",
                    })
                }
            };
            let confidence = r.f64()?;
            table.slots[slot] = SlotState::Cold(ColdState { period, confidence });
            table.strips.tier[slot] = TIER_COLD;
            table.cold_count += 1;
        }
        Ok(table)
    }

    /// Allocate + intern a slot during restore and fill its strip columns
    /// (no creation counter, no budget enforcement — restores are
    /// faithful; the budget re-engages on future creations).
    fn adopt_slot(&mut self, id: u64, r: &mut SnapshotReader<'_>) -> Result<usize, SnapshotError> {
        if self.index.get(id).is_some() {
            return Err(SnapshotError::Malformed {
                what: "duplicate stream id across table tiers",
            });
        }
        let slot = self.alloc_slot(id);
        self.index.insert(id, slot as u32);
        self.accounted += self.slot_bytes;
        self.strips.last_seq[slot] = r.u64()?;
        self.strips.samples[slot] = r.u64()?;
        self.strips.boundaries[slot] = r.u64()?;
        self.strips.checked[slot] = r.u64()?;
        self.strips.hits[slot] = r.u64()?;
        Ok(slot)
    }

    /// Rebuild a table from the legacy v1 (`TAG_TABLE`, PR 6) body: the
    /// pre-tiering layout with no budget/cold configuration, no
    /// demote/promote counters and no cold section. Lifetime strip
    /// columns are derived from the restored per-stream state (exact for
    /// v1 tables: without tiering, per-incarnation and lifetime counters
    /// coincide).
    pub(crate) fn restore_state_v1(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let detector = crate::snapshot::read_streaming_config(r)?;
        let config = TableConfig {
            detector,
            evict_after: r.u64()?,
            forecast_horizon: r.u64()? as usize,
            memory_budget: 0,
            cold_retain: 0,
        };
        if detector.window == 0 || detector.m_max == 0 || detector.m_max > detector.window {
            return Err(SnapshotError::Malformed {
                what: "table detector configuration fails validation",
            });
        }
        let mut table = StreamTable::new(config);
        table.stats = TableStats {
            streams: 0,
            cold: 0,
            created: r.u64()?,
            samples: r.u64()?,
            events: r.u64()?,
            evicted: r.u64()?,
            closed: r.u64()?,
            demoted: 0,
            promoted: 0,
            forecast_checked: r.u64()?,
            forecast_hits: r.u64()?,
            forecast_invalidations: r.u64()?,
            query_enters: 0,
            query_exits: 0,
        };
        let n = r.count(MAX_RESIDENT_STREAMS, "implausible live-stream count")?;
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let id = r.u64()?;
            if prev.is_some_and(|p| p >= id) {
                return Err(SnapshotError::Malformed {
                    what: "stream entries out of ascending id order",
                });
            }
            prev = Some(id);
            let last_seq = r.u64()?;
            let dpd = StreamingDpd::restore_state(EventMetric, r, &|r| r.i64())?;
            if dpd.config() != config.detector {
                return Err(SnapshotError::Malformed {
                    what: "stream detector configuration disagrees with table",
                });
            }
            let predictor = if r.bool()? {
                let p = Predictor::restore_state(r)?;
                if Some(p.config()) != config.predict_config() {
                    return Err(SnapshotError::Malformed {
                        what: "stream predictor configuration disagrees with table",
                    });
                }
                Some(p)
            } else {
                if config.forecast_horizon > 0 {
                    return Err(SnapshotError::Malformed {
                        what: "forecasting table entry lacks a predictor",
                    });
                }
                None
            };
            let slot = table.alloc_slot(id);
            table.index.insert(id, slot as u32);
            table.accounted += table.slot_bytes;
            table.strips.last_seq[slot] = last_seq;
            table.strips.samples[slot] = dpd.stats().samples;
            table.strips.boundaries[slot] = dpd.stats().boundaries;
            table.strips.checked[slot] = predictor.as_ref().map_or(0, |p| p.stats().checked);
            table.strips.hits[slot] = predictor.as_ref().map_or(0, |p| p.stats().hits);
            table.install_hot(slot, Box::new(HotState { dpd, predictor }));
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DpdBuilder;

    fn table_with_window(n: usize) -> StreamTable {
        DpdBuilder::new().window(n).keyed().build_table().unwrap()
    }

    fn table_with_eviction(n: usize, evict_after: u64) -> StreamTable {
        DpdBuilder::new()
            .window(n)
            .evict_after(evict_after)
            .build_table()
            .unwrap()
    }

    fn periodic(period: u64, start: u64, len: usize) -> Vec<i64> {
        (0..len as u64)
            .map(|i| ((start + i) % period) as i64)
            .collect()
    }

    /// Feed `rounds` rounds of `chunk`-sized batches for `streams` streams
    /// round-robin; stream `s` carries period `s + 2`.
    fn drive(
        table: &mut StreamTable,
        streams: u64,
        chunk: usize,
        rounds: u64,
    ) -> Vec<MultiStreamEvent> {
        let mut out = Vec::new();
        let mut seq = 0u64;
        for r in 0..rounds {
            for s in 0..streams {
                let data = periodic(s + 2, r * chunk as u64, chunk);
                table.ingest(seq, StreamId(s), &data, &mut out);
                seq += chunk as u64;
            }
        }
        out
    }

    #[test]
    fn lazy_creation_and_per_stream_detection() {
        let mut table = table_with_window(8);
        let out = drive(&mut table, 4, 8, 20);
        assert_eq!(table.len(), 4);
        assert_eq!(table.stats().created, 4);
        for s in 0..4u64 {
            let stats = table.stream_stats(StreamId(s)).unwrap();
            assert_eq!(
                stats.detected_periods(),
                vec![(s + 2) as usize],
                "stream {s}"
            );
        }
        assert!(out.len() > 20);
        assert_eq!(table.stats().events, out.len() as u64);
    }

    #[test]
    fn events_tag_the_right_stream() {
        let mut table = table_with_window(8);
        let out = drive(&mut table, 3, 6, 30);
        for e in &out {
            if let MultiStreamEvent::Segment {
                stream,
                event: SegmentEvent::PeriodStart { period, .. },
            } = e
            {
                assert_eq!(*period as u64, stream.0 + 2);
            }
        }
    }

    #[test]
    fn table_partitioning_is_observation_invariant() {
        // One table over 6 streams vs two tables over a 3/3 split: the
        // per-stream event sequences must be identical.
        let mut whole = table_with_eviction(8, 64);
        let all = drive(&mut whole, 6, 8, 25);

        let mut even = table_with_eviction(8, 64);
        let mut odd = table_with_eviction(8, 64);
        let mut split = Vec::new();
        let mut seq = 0u64;
        for r in 0..25u64 {
            for s in 0..6u64 {
                let data = periodic(s + 2, r * 8, 8);
                let table = if s % 2 == 0 { &mut even } else { &mut odd };
                table.ingest(seq, StreamId(s), &data, &mut split);
                seq += 8;
            }
        }
        for s in 0..6u64 {
            let expect: Vec<_> = all.iter().filter(|e| e.stream().0 == s).collect();
            let got: Vec<_> = split.iter().filter(|e| e.stream().0 == s).collect();
            assert_eq!(got, expect, "stream {s}");
        }
    }

    #[test]
    fn idle_eviction_resets_detector_state() {
        let mut table = table_with_eviction(8, 16);
        let mut out = Vec::new();
        // Lock stream 0 to period 3.
        table.ingest(0, StreamId(0), &periodic(3, 0, 24), &mut out);
        assert_eq!(table.locked_period(StreamId(0)), Some(3));
        // 100 global samples of other traffic go by (> watermark 16).
        table.ingest(24, StreamId(1), &periodic(5, 0, 100), &mut out);
        // Stream 0 returns: its old lock must be gone (fresh detector).
        out.clear();
        table.ingest(124, StreamId(0), &periodic(3, 0, 4), &mut out);
        assert_eq!(table.locked_period(StreamId(0)), None);
        assert_eq!(table.stats().evicted, 1);
        // ...and it re-locks with more data, proving the state is live.
        table.ingest(128, StreamId(0), &periodic(3, 4, 24), &mut out);
        assert_eq!(table.locked_period(StreamId(0)), Some(3));
    }

    #[test]
    fn sweep_matches_lazy_eviction_observably() {
        let mk = || table_with_eviction(8, 16);
        let feed = |table: &mut StreamTable, sweep_at: Option<u64>| {
            let mut out = Vec::new();
            table.ingest(0, StreamId(0), &periodic(3, 0, 24), &mut out);
            table.ingest(24, StreamId(1), &periodic(5, 0, 100), &mut out);
            if let Some(seq) = sweep_at {
                table.sweep(seq);
            }
            table.ingest(124, StreamId(0), &periodic(3, 0, 30), &mut out);
            table.ingest(154, StreamId(1), &periodic(5, 100, 10), &mut out);
            out
        };
        let lazy = feed(&mut mk(), None);
        let swept = feed(&mut mk(), Some(124));
        assert_eq!(lazy, swept);
        // The sweep actually removed stream 0's state at seq 124.
        let mut probe = mk();
        let mut out = Vec::new();
        probe.ingest(0, StreamId(0), &periodic(3, 0, 24), &mut out);
        probe.ingest(24, StreamId(1), &periodic(5, 0, 100), &mut out);
        assert_eq!(probe.sweep(124), 1);
        assert_eq!(probe.len(), 1);
        assert_eq!(probe.stats().evicted, 1);
    }

    #[test]
    fn close_emits_final_flush() {
        let mut table = table_with_window(8);
        let mut out = Vec::new();
        table.ingest(0, StreamId(7), &periodic(4, 0, 32), &mut out);
        out.clear();
        assert!(table.close(32, StreamId(7), &mut out));
        assert_eq!(
            out,
            vec![MultiStreamEvent::Closed {
                stream: StreamId(7),
                samples: 32,
                period: Some(4),
            }]
        );
        assert!(!table.close(32, StreamId(7), &mut out), "already closed");
        assert_eq!(table.stats().closed, 1);
        assert!(table.is_empty());
    }

    #[test]
    fn close_all_is_ascending_by_id() {
        let mut table = table_with_window(8);
        let mut out = Vec::new();
        for &s in &[9u64, 2, 5] {
            table.ingest(0, StreamId(s), &periodic(3, 0, 6), &mut out);
        }
        out.clear();
        table.close_all(18, &mut out);
        let order: Vec<u64> = out.iter().map(|e| e.stream().0).collect();
        assert_eq!(order, vec![2, 5, 9]);
    }

    #[test]
    fn close_of_idle_stream_evicts_silently() {
        let mut table = table_with_eviction(8, 16);
        let mut out = Vec::new();
        table.ingest(0, StreamId(0), &periodic(3, 0, 24), &mut out);
        out.clear();
        // Clock 200: stream 0 sat idle far past the watermark. Whether or
        // not a sweep ran in between, close must not flush it.
        assert!(!table.close(200, StreamId(0), &mut out));
        assert!(out.is_empty());
        assert_eq!(table.stats().evicted, 1);
        assert_eq!(table.stats().closed, 0);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut table = table_with_window(8);
        let mut out = Vec::new();
        table.ingest(0, StreamId(1), &[], &mut out);
        assert!(table.is_empty());
        assert_eq!(table.stats().samples, 0);
    }

    #[test]
    fn shard_of_spreads_sequential_ids() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for s in 0..8000u64 {
            counts[shard_of(StreamId(s), shards)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1300).contains(&c),
                "shard {i} got {c} of 8000 streams"
            );
        }
        // Stable: same input, same route.
        assert_eq!(shard_of(StreamId(42), 8), shard_of(StreamId(42), 8));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn shard_of_zero_panics() {
        let _ = shard_of(StreamId(1), 0);
    }

    #[test]
    fn forecasting_table_scores_per_stream() {
        let mut table = DpdBuilder::new()
            .window(8)
            .keyed()
            .forecast(2)
            .build_table()
            .unwrap();
        let mut out = Vec::new();
        table.ingest(0, StreamId(1), &periodic(3, 0, 60), &mut out);
        table.ingest(60, StreamId(2), &periodic(5, 0, 60), &mut out);
        let t = table.stats();
        assert!(t.forecast_checked > 0);
        assert_eq!(t.forecast_hits, t.forecast_checked);
        assert_eq!(t.forecast_hit_rate(), Some(1.0));
        for s in [1u64, 2] {
            let fs = table.forecast_stats(StreamId(s)).unwrap();
            assert_eq!(fs.hit_rate(), Some(1.0), "stream {s}");
            assert!(table.forecast_confidence(StreamId(s)).unwrap() > 0.9);
        }
        // Table totals are the sum of per-stream stats while all live.
        let sum: u64 = [1u64, 2]
            .iter()
            .map(|&s| table.forecast_stats(StreamId(s)).unwrap().checked)
            .sum();
        assert_eq!(sum, t.forecast_checked);
        // Forecast slice for stream 1: period 3, last sample of
        // periodic(3, 0, 60) is value (59 % 3) = 2.
        let fc = table.forecast(StreamId(1), 2).unwrap();
        assert_eq!(fc.period, 3);
        assert_eq!(fc.predicted, &[0, 1]);
    }

    #[test]
    fn non_forecasting_table_reports_none() {
        let mut table = table_with_window(8);
        let mut out = Vec::new();
        table.ingest(0, StreamId(1), &periodic(3, 0, 40), &mut out);
        assert_eq!(table.forecast_stats(StreamId(1)), None);
        assert_eq!(table.forecast_confidence(StreamId(1)), None);
        assert!(table.forecast(StreamId(1), 1).is_none());
        assert_eq!(table.stats().forecast_checked, 0);
    }

    #[test]
    fn eviction_resets_forecast_state_but_keeps_table_counters() {
        let mut table = DpdBuilder::new()
            .window(8)
            .evict_after(16)
            .forecast(1)
            .build_table()
            .unwrap();
        let mut out = Vec::new();
        table.ingest(0, StreamId(0), &periodic(3, 0, 40), &mut out);
        let before = table.stats().forecast_checked;
        assert!(before > 0);
        assert!(table.forecast_stats(StreamId(0)).unwrap().checked > 0);
        // Idle past the watermark, then return: per-stream stats reset,
        // table rollups stay monotonic.
        table.ingest(40, StreamId(1), &periodic(4, 0, 100), &mut out);
        table.ingest(140, StreamId(0), &periodic(3, 0, 4), &mut out);
        let fs = table.forecast_stats(StreamId(0)).unwrap();
        assert_eq!(fs.checked, 0, "fresh predictor after eviction");
        assert_eq!(table.forecast_confidence(StreamId(0)), Some(0.0));
        assert!(table.stats().forecast_checked >= before);
    }

    #[test]
    fn stats_roll_up() {
        let mut table = table_with_window(8);
        let out = drive(&mut table, 2, 10, 10);
        let st = table.stats();
        assert_eq!(st.streams, 2);
        assert_eq!(st.samples, 200);
        assert_eq!(st.events, out.len() as u64);
        assert_eq!(st.evicted, 0);
    }

    // ------------------------------------------------------------------
    // Handle-first API.

    #[test]
    fn handles_resolve_and_delegate() {
        let mut table = DpdBuilder::new()
            .window(8)
            .keyed()
            .forecast(2)
            .build_table()
            .unwrap();
        let mut out = Vec::new();
        table.ingest(0, StreamId(5), &periodic(3, 0, 40), &mut out);
        let h = table.resolve(StreamId(5)).unwrap();
        assert_eq!(table.id_of(h), Some(StreamId(5)));
        assert_eq!(table.tier_of(h), Some(StreamTier::Hot));
        assert_eq!(table.locked_period_of(h), table.locked_period(StreamId(5)));
        assert_eq!(
            table.forecast_stats_of(h),
            table.forecast_stats(StreamId(5))
        );
        assert_eq!(
            table.forecast_confidence_of(h),
            table.forecast_confidence(StreamId(5))
        );
        let s = table.summary_of(h).unwrap();
        assert_eq!(s.samples, 40);
        assert_eq!(s.period, Some(3));
        assert!(s.confidence > 0.9);
        assert!(table.resolve(StreamId(6)).is_none());
    }

    #[test]
    fn ingest_handle_matches_ingest_by_id() {
        let mk = || {
            DpdBuilder::new()
                .window(8)
                .evict_after(64)
                .forecast(1)
                .build_table()
                .unwrap()
        };
        let mut by_id = mk();
        let mut by_handle = mk();
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        let mut seq = 0u64;
        for round in 0..12u64 {
            for s in 0..3u64 {
                let chunk = periodic(s + 2, round * 6, 6);
                by_id.ingest(seq, StreamId(s), &chunk, &mut ea);
                match by_handle.resolve(StreamId(s)) {
                    Some(h) => assert!(by_handle.ingest_handle(seq, h, &chunk, &mut eb)),
                    None => by_handle.ingest(seq, StreamId(s), &chunk, &mut eb),
                }
                seq += 6;
            }
        }
        assert_eq!(ea, eb, "handle ingest is byte-identical to id ingest");
        assert_eq!(by_id.stats(), by_handle.stats());
    }

    #[test]
    fn stale_handles_die_with_their_stream() {
        let mut table = table_with_eviction(8, 16);
        let mut out = Vec::new();
        table.ingest(0, StreamId(1), &periodic(3, 0, 12), &mut out);
        let h = table.resolve(StreamId(1)).unwrap();
        assert!(table.close(12, StreamId(1), &mut out));
        assert_eq!(table.id_of(h), None);
        assert_eq!(table.tier_of(h), None);
        assert!(table.summary_of(h).is_none());
        assert!(!table.ingest_handle(12, h, &[1, 2, 3], &mut out));
        // The re-created stream reuses the slot under a fresh generation.
        table.ingest(12, StreamId(1), &periodic(3, 0, 6), &mut out);
        assert_eq!(
            table.id_of(h),
            None,
            "old handle must not alias the new incarnation"
        );
        assert!(table.resolve(StreamId(1)).is_some());
    }

    #[test]
    fn stream_ids_iterates_live_slots() {
        let mut table = table_with_window(8);
        let mut out = Vec::new();
        for &s in &[9u64, 2, 5] {
            table.ingest(0, StreamId(s), &periodic(3, 0, 6), &mut out);
        }
        let mut ids: Vec<u64> = table.stream_ids().map(|s| s.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 5, 9]);
        table.close(18, StreamId(5), &mut out);
        let mut ids: Vec<u64> = table.stream_ids().map(|s| s.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 9]);
        assert_eq!(table.handles().count(), 2);
    }

    #[test]
    fn index_churn_matches_reference_model() {
        let mut idx = StreamIndex::new();
        let mut model: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        let mut x = 7u64;
        for step in 0..20_000u64 {
            x = splitmix64(x ^ step);
            let key = x % 512; // heavy collisions, constant reuse
            match model.remove(&key) {
                Some(_) => idx.remove(key),
                None => {
                    let slot = (step % 90_000) as u32;
                    model.insert(key, slot);
                    idx.insert(key, slot);
                }
            }
            if step % 251 == 0 {
                for probe in 0..512u64 {
                    assert_eq!(
                        idx.get(probe),
                        model.get(&probe).copied(),
                        "key {probe} at step {step}"
                    );
                }
            }
        }
        assert_eq!(idx.len, model.len());
    }

    // ------------------------------------------------------------------
    // Cold tier.

    #[test]
    fn cold_tier_keeps_summary_then_expires() {
        let mut table = DpdBuilder::new()
            .window(8)
            .evict_after(16)
            .cold_summary(32)
            .build_table()
            .unwrap();
        let mut out = Vec::new();
        table.ingest(0, StreamId(0), &periodic(3, 0, 24), &mut out);
        // last_seq 23; gap 25 at clock 48 (> 16, <= 48): logically cold.
        assert_eq!(table.sweep(48), 0, "cold window: demoted, not evicted");
        let h = table.resolve(StreamId(0)).unwrap();
        assert_eq!(table.tier_of(h), Some(StreamTier::Cold));
        assert_eq!(table.locked_period_of(h), None, "no resident detector");
        assert!(table.stream_stats_of(h).is_none());
        let s = table.summary_of(h).unwrap();
        assert_eq!(s.period, Some(3), "summary froze the lock");
        assert_eq!(s.samples, 24);
        let st = table.stats();
        assert_eq!((st.demoted, st.evicted, st.cold, st.streams), (1, 0, 1, 1));
        // Past evict_after + cold_retain the summary goes too.
        assert_eq!(table.sweep(23 + 16 + 32 + 1), 1);
        assert!(table.is_empty());
        assert_eq!(table.stats().evicted, 1);
    }

    #[test]
    fn cold_revival_restores_lifetime_rollups_exactly() {
        let mk = || {
            DpdBuilder::new()
                .window(8)
                .evict_after(16)
                .cold_summary(64)
                .forecast(1)
                .build_table()
                .unwrap()
        };
        let run = |sweep_at: Option<u64>| {
            let mut table = mk();
            let mut out = Vec::new();
            table.ingest(0, StreamId(0), &periodic(3, 0, 24), &mut out);
            let before = table.summary(StreamId(0)).unwrap();
            if let Some(seq) = sweep_at {
                table.sweep(seq);
            }
            // Return inside the cold window (gap 37 <= 16 + 64).
            table.ingest(60, StreamId(0), &periodic(3, 0, 6), &mut out);
            (table, before, out)
        };
        let (mut lazy, before, lazy_out) = run(None);
        let (mut eager, _, eager_out) = run(Some(50));
        assert_eq!(lazy_out, eager_out, "events agree across sweep schedules");
        assert_eq!(lazy.stats(), eager.stats());
        for table in [&mut lazy, &mut eager] {
            let h = table.resolve(StreamId(0)).unwrap();
            assert_eq!(table.tier_of(h), Some(StreamTier::Hot));
            let after = table.summary_of(h).unwrap();
            assert_eq!(
                after.samples,
                before.samples + 6,
                "lifetime samples carried through the cold tier"
            );
            assert_eq!(after.boundaries, before.boundaries, "rollups exact");
            assert_eq!(after.forecast_checked, before.forecast_checked);
            assert_eq!(after.period, None, "fresh detector after revival");
            let st = table.stats();
            assert_eq!((st.demoted, st.promoted, st.evicted), (1, 1, 0));
            assert_eq!(st.created, 1, "revival is not a re-creation");
        }
    }

    #[test]
    fn cold_close_flushes_the_summary() {
        let mk = || {
            DpdBuilder::new()
                .window(8)
                .evict_after(16)
                .cold_summary(64)
                .build_table()
                .unwrap()
        };
        let mut table = mk();
        let mut out = Vec::new();
        table.ingest(0, StreamId(3), &periodic(4, 0, 32), &mut out);
        out.clear();
        // gap 30 at close: inside the cold window — demoted, then flushed.
        assert!(table.close(61, StreamId(3), &mut out));
        assert_eq!(
            out,
            vec![MultiStreamEvent::Closed {
                stream: StreamId(3),
                samples: 32,
                period: Some(4),
            }]
        );
        let st = table.stats();
        assert_eq!((st.demoted, st.closed, st.evicted), (1, 1, 0));
        // Past the whole horizon the close is a silent eviction instead.
        let mut table = mk();
        table.ingest(0, StreamId(3), &periodic(4, 0, 32), &mut out);
        out.clear();
        assert!(!table.close(400, StreamId(3), &mut out));
        assert!(out.is_empty());
        let st = table.stats();
        assert_eq!((st.demoted, st.closed, st.evicted), (1, 0, 1));
    }

    // ------------------------------------------------------------------
    // Memory budget.

    #[test]
    fn memory_budget_demotes_to_cold_and_accounts() {
        let probe = DpdBuilder::new().window(8).keyed().table_config().unwrap();
        // Room for ~3 hot streams plus slot overhead for the rest.
        let budget = probe.hot_stream_bytes() * 3 + probe.cold_stream_bytes() * 64;
        let mut table = DpdBuilder::new()
            .window(8)
            .keyed()
            .cold_summary(1_000_000)
            .memory_budget(budget)
            .build_table()
            .unwrap();
        let mut out = Vec::new();
        for s in 0..32u64 {
            table.ingest(s * 8, StreamId(s), &periodic(3, 0, 8), &mut out);
            assert!(
                table.accounted_bytes() <= budget,
                "over budget after stream {s}"
            );
        }
        let st = table.stats();
        assert_eq!(st.streams, 32, "every stream stays resident");
        assert!(st.cold >= 28, "budget squeezed most cold (got {})", st.cold);
        assert_eq!(st.evicted, 0, "the cold tier absorbed the pressure");
        assert!(st.demoted >= 28);
    }

    #[test]
    fn memory_budget_without_cold_tier_evicts() {
        let probe = DpdBuilder::new().window(8).keyed().table_config().unwrap();
        let budget = probe.hot_stream_bytes() * 3;
        let mut table = DpdBuilder::new()
            .window(8)
            .keyed()
            .memory_budget(budget)
            .build_table()
            .unwrap();
        let mut out = Vec::new();
        for s in 0..16u64 {
            table.ingest(s * 8, StreamId(s), &periodic(3, 0, 8), &mut out);
            assert!(table.accounted_bytes() <= budget);
        }
        let st = table.stats();
        assert!(st.streams <= 3, "budget holds {} streams", st.streams);
        assert!(st.evicted >= 13);
        assert_eq!((st.cold, st.demoted), (0, 0));
        // Evicted streams are gone: the clock hand took the oldest first.
        assert!(table.resolve(StreamId(0)).is_none());
    }

    #[test]
    fn accounting_returns_to_zero_when_drained() {
        let mut table = table_with_eviction(8, 16);
        let mut out = Vec::new();
        for s in 0..5u64 {
            table.ingest(s, StreamId(s), &periodic(3, 0, 4), &mut out);
        }
        assert_eq!(
            table.accounted_bytes(),
            5 * table.config().hot_stream_bytes()
        );
        table.close_all(18, &mut out);
        assert!(table.is_empty());
        assert_eq!(table.accounted_bytes(), 0);
    }
}
