//! Multi-stream detection: keyed stream tables and shard routing.
//!
//! The paper's detector analyzes one instrumented stream; a production
//! deployment serves *many* concurrent traces — one per user session, per
//! instrumented loop nest, per monitored process. This module provides the
//! deterministic single-threaded substrate for that scale-out:
//!
//! * [`StreamId`] — an opaque 64-bit stream key,
//! * [`shard_of`] — the stable hash route `StreamId -> shard index` used by
//!   the sharded service in `par-runtime`,
//! * [`StreamTable`] — a keyed map of independent [`StreamingDpd`] detectors
//!   with lazy stream creation, idle eviction by a sample-count watermark,
//!   and explicit close with a final segmentation flush.
//!
//! A sharded deployment runs one `StreamTable` per shard and routes batches
//! by `shard_of`; a deterministic fallback runs a single table over the same
//! batch sequence. Both produce **identical per-stream event sequences**
//! because every decision a table makes about a stream depends only on that
//! stream's own samples and on the global sample clock (`seq`) carried with
//! each batch — never on which other streams happen to share the table.

use crate::predict::{Forecast, ForecastStats, PredictConfig, Predictor};
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use crate::streaming::{SegmentEvent, StreamStats, StreamingConfig, StreamingDpd};
use crate::EventMetric;
use std::collections::HashMap;

/// Opaque identifier of one logical input stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u64);

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream#{}", self.0)
    }
}

/// Stable shard route for a stream: `splitmix64(id) % shards`.
///
/// The finalizer scrambles low-entropy keys (sequential ids, aligned
/// addresses) so consecutive streams spread across shards instead of
/// clustering on `id % shards` residues.
///
/// # Panics
/// Panics when `shards == 0` — a zero-shard service has no routing.
pub fn shard_of(stream: StreamId, shards: usize) -> usize {
    assert!(shards > 0, "shard_of requires at least one shard");
    let mut z = stream.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

/// Configuration of a [`StreamTable`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableConfig {
    /// Detector configuration applied to every stream.
    pub detector: StreamingConfig,
    /// Idle-eviction watermark, in global samples: a stream whose last
    /// sample is more than this many samples of total traffic in the past
    /// is evicted (its detector state discarded). `0` disables eviction.
    pub evict_after: u64,
    /// Opt-in per-stream forecasting: horizon `H` of the [`Predictor`]
    /// attached to every stream (scoring the `H`-step-ahead prediction at
    /// each sample). `0` disables forecasting.
    pub forecast_horizon: usize,
}

impl TableConfig {
    /// Table with the given detector window and no eviction.
    #[deprecated(note = "use dpd_core::pipeline::DpdBuilder::new().window(n).keyed()\
                         .table_config() — see the README migration table")]
    pub fn with_window(n: usize) -> Self {
        TableConfig {
            detector: StreamingConfig::events_defaults(n),
            evict_after: 0,
            forecast_horizon: 0,
        }
    }

    /// Same, with an idle-eviction watermark.
    #[deprecated(note = "use dpd_core::pipeline::DpdBuilder::new().window(n)\
                         .evict_after(samples).table_config() — see the README migration table")]
    pub fn with_eviction(n: usize, evict_after: u64) -> Self {
        TableConfig {
            detector: StreamingConfig::events_defaults(n),
            evict_after,
            forecast_horizon: 0,
        }
    }

    /// Table with per-stream forecasting at horizon `h` (detector window
    /// `n`, no eviction).
    #[deprecated(note = "use dpd_core::pipeline::DpdBuilder::new().window(n).keyed()\
                         .forecast(h).table_config() — see the README migration table")]
    pub fn with_forecast(n: usize, h: usize) -> Self {
        TableConfig {
            detector: StreamingConfig::events_defaults(n),
            evict_after: 0,
            forecast_horizon: h,
        }
    }

    /// Builder-style: enable forecasting at horizon `h` on any config.
    #[deprecated(note = "use dpd_core::pipeline::DpdBuilder::forecast(h) — \
                         see the README migration table")]
    pub fn forecasting(mut self, h: usize) -> Self {
        self.forecast_horizon = h;
        self
    }

    /// The predictor configuration for one stream, when forecasting is on.
    fn predict_config(&self) -> Option<PredictConfig> {
        (self.forecast_horizon > 0)
            .then(|| PredictConfig::new(self.detector.window, self.forecast_horizon))
            .transpose()
            .expect("window validated by detector construction")
    }
}

/// One observation emitted by a multi-stream detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiStreamEvent {
    /// A segmentation event on one stream.
    Segment {
        /// The stream the event belongs to.
        stream: StreamId,
        /// The underlying detector event (never [`SegmentEvent::None`]).
        event: SegmentEvent,
    },
    /// A stream was explicitly closed; carries the final segmentation
    /// state as the close-time "flush".
    Closed {
        /// The closed stream.
        stream: StreamId,
        /// Samples the stream received over its lifetime.
        samples: u64,
        /// The periodicity locked at close time, if any.
        period: Option<usize>,
    },
}

impl MultiStreamEvent {
    /// The stream this event belongs to.
    pub fn stream(&self) -> StreamId {
        match self {
            MultiStreamEvent::Segment { stream, .. } => *stream,
            MultiStreamEvent::Closed { stream, .. } => *stream,
        }
    }
}

/// Rollup counters of one [`StreamTable`] (one shard's worth of state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Live streams currently held.
    pub streams: u64,
    /// Streams ever created (lazy creations, including re-creations after
    /// eviction or close).
    pub created: u64,
    /// Total samples ingested.
    pub samples: u64,
    /// Total non-trivial segmentation events emitted.
    pub events: u64,
    /// Streams evicted by the idle watermark (swept or reset in place).
    pub evicted: u64,
    /// Streams explicitly closed.
    pub closed: u64,
    /// Forecasts scored against an arrived sample (monotonic: survives
    /// eviction and close of the streams that produced them). `0` unless
    /// [`TableConfig::forecast_horizon`] is set.
    pub forecast_checked: u64,
    /// Scored forecasts that matched exactly.
    pub forecast_hits: u64,
    /// Forecast invalidations across all streams (phase changes; see
    /// [`crate::predict`]).
    pub forecast_invalidations: u64,
}

impl TableStats {
    /// Exact-match rate of scored forecasts; `None` before any check.
    pub fn forecast_hit_rate(&self) -> Option<f64> {
        (self.forecast_checked > 0)
            .then(|| self.forecast_hits as f64 / self.forecast_checked as f64)
    }
}

#[derive(Debug)]
struct StreamEntry {
    dpd: StreamingDpd<i64, EventMetric>,
    /// Per-stream forecaster, present when the table forecasts.
    predictor: Option<Predictor>,
    /// Global sample clock at this stream's most recent sample.
    last_seq: u64,
}

impl StreamEntry {
    fn new(config: &TableConfig) -> Self {
        StreamEntry {
            dpd: StreamingDpd::new(EventMetric, config.detector)
                .expect("table config validated at construction"),
            predictor: config.predict_config().map(Predictor::new),
            last_seq: 0,
        }
    }
}

/// A keyed table of independent per-stream detectors.
///
/// Streams are created lazily on first sample, evicted when idle past the
/// configured watermark, and closed explicitly with a final flush event.
/// All behavior is deterministic in the batch sequence: feeding the same
/// `(seq, stream, samples)` calls produces the same per-stream events
/// regardless of how streams are partitioned across tables.
///
/// # Examples
/// ```
/// use dpd_core::pipeline::DpdBuilder;
/// use dpd_core::shard::{MultiStreamEvent, StreamId};
///
/// let mut table = DpdBuilder::new().window(8).keyed().build_table().unwrap();
/// let mut out = Vec::new();
/// let mut seq = 0u64;
/// for round in 0..30 {
///     for s in 0..3u64 {
///         // Stream s carries period s+2.
///         let chunk: Vec<i64> = (0..4).map(|i| ((round * 4 + i) % (s + 2)) as i64).collect();
///         table.ingest(seq, StreamId(s), &chunk, &mut out);
///         seq += chunk.len() as u64;
///     }
/// }
/// assert_eq!(table.len(), 3);
/// assert!(out.iter().any(|e| matches!(
///     e,
///     MultiStreamEvent::Segment { stream: StreamId(0), .. }
/// )));
/// ```
#[derive(Debug)]
pub struct StreamTable {
    config: TableConfig,
    streams: HashMap<u64, StreamEntry>,
    stats: TableStats,
}

impl StreamTable {
    /// Empty table with the given configuration.
    pub fn new(config: TableConfig) -> Self {
        StreamTable {
            config,
            streams: HashMap::new(),
            stats: TableStats::default(),
        }
    }

    /// The table's configuration.
    pub fn config(&self) -> &TableConfig {
        &self.config
    }

    /// Number of live streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// `true` when no stream is live.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Rollup counters.
    pub fn stats(&self) -> TableStats {
        TableStats {
            streams: self.streams.len() as u64,
            ..self.stats
        }
    }

    /// Per-stream detector statistics for a live stream.
    pub fn stream_stats(&self, stream: StreamId) -> Option<&StreamStats> {
        self.streams.get(&stream.0).map(|e| e.dpd.stats())
    }

    /// The period a live stream is currently locked to, if any.
    pub fn locked_period(&self, stream: StreamId) -> Option<usize> {
        self.streams
            .get(&stream.0)
            .and_then(|e| e.dpd.locked_period())
    }

    /// Forecast-accuracy statistics of one live stream (since its creation
    /// or last eviction reset). `None` when the stream is not live or the
    /// table does not forecast.
    pub fn forecast_stats(&self, stream: StreamId) -> Option<ForecastStats> {
        self.streams
            .get(&stream.0)?
            .predictor
            .as_ref()
            .map(|p| p.stats())
    }

    /// Current forecast confidence of one live stream; `None` when the
    /// stream is not live or the table does not forecast.
    pub fn forecast_confidence(&self, stream: StreamId) -> Option<f64> {
        self.streams
            .get(&stream.0)?
            .predictor
            .as_ref()
            .map(|p| p.confidence())
    }

    /// Materialize the forecast for the next `h` values of one stream
    /// (`h` up to the configured horizon). `None` when the stream is not
    /// live, the table does not forecast, or the stream's predictor is not
    /// locked and primed yet.
    pub fn forecast(&mut self, stream: StreamId, h: usize) -> Option<Forecast<'_>> {
        self.streams
            .get_mut(&stream.0)?
            .predictor
            .as_mut()?
            .forecast(h)
    }

    /// Live stream ids, ascending (stable across table partitionings).
    pub fn stream_ids(&self) -> Vec<StreamId> {
        let mut ids: Vec<StreamId> = self.streams.keys().map(|&k| StreamId(k)).collect();
        ids.sort_unstable();
        ids
    }

    /// Ingest one batch of samples for one stream, appending every
    /// non-trivial event to `out`.
    ///
    /// `seq` is the global sample clock at the batch's first sample — the
    /// total number of samples ingested across *all* streams before this
    /// batch. It drives idle eviction: a stream whose previous sample is
    /// more than `evict_after` global samples in the past is reset to a
    /// fresh detector before the batch is applied (the idle state could
    /// not have been swept deterministically, so it is discarded lazily —
    /// observably identical to a sweep at any point inside the gap).
    pub fn ingest(
        &mut self,
        seq: u64,
        stream: StreamId,
        samples: &[i64],
        out: &mut Vec<MultiStreamEvent>,
    ) {
        if samples.is_empty() {
            return;
        }
        let config = self.config;
        let entry = match self.streams.entry(stream.0) {
            std::collections::hash_map::Entry::Occupied(o) => {
                let e = o.into_mut();
                if config.evict_after > 0 && seq.saturating_sub(e.last_seq) > config.evict_after {
                    // Idle past the watermark: discard state, count the
                    // eviction, and start over — exactly what a memory
                    // sweep anywhere inside the gap would have produced.
                    // Forecast state is part of that state: the fresh
                    // predictor starts unlocked with empty statistics.
                    *e = StreamEntry::new(&config);
                    self.stats.evicted += 1;
                    self.stats.created += 1;
                }
                e
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.stats.created += 1;
                v.insert(StreamEntry::new(&config))
            }
        };
        for &s in samples {
            let e = entry.dpd.push(s);
            if e != SegmentEvent::None {
                out.push(MultiStreamEvent::Segment { stream, event: e });
                self.stats.events += 1;
            }
            if let Some(pred) = entry.predictor.as_mut() {
                let ob = pred.observe(s, e);
                if let Some(scored) = ob.scored {
                    self.stats.forecast_checked += 1;
                    self.stats.forecast_hits += scored.hit as u64;
                }
                self.stats.forecast_invalidations += ob.invalidated as u64;
            }
        }
        entry.last_seq = seq + samples.len() as u64 - 1;
        self.stats.samples += samples.len() as u64;
    }

    /// Explicitly close a stream at global sample clock `seq`, emitting a
    /// final [`MultiStreamEvent::Closed`] flush. A stream already idle past
    /// the eviction watermark at `seq` is evicted silently instead — it was
    /// logically gone before the close arrived, whether or not a memory
    /// sweep had gotten to it, so close-time behavior stays independent of
    /// sweep scheduling. Returns `false` when the stream is not live
    /// (already closed, evicted, or never seen).
    pub fn close(&mut self, seq: u64, stream: StreamId, out: &mut Vec<MultiStreamEvent>) -> bool {
        match self.streams.remove(&stream.0) {
            Some(entry) => {
                if self.config.evict_after > 0
                    && seq.saturating_sub(entry.last_seq) > self.config.evict_after
                {
                    self.stats.evicted += 1;
                    return false;
                }
                self.stats.closed += 1;
                self.stats.events += 1;
                out.push(MultiStreamEvent::Closed {
                    stream,
                    samples: entry.dpd.stats().samples,
                    period: entry.dpd.locked_period(),
                });
                true
            }
            None => false,
        }
    }

    /// Close every live stream at clock `seq`, ascending by id (a stable
    /// order no matter how streams were partitioned across tables).
    pub fn close_all(&mut self, seq: u64, out: &mut Vec<MultiStreamEvent>) {
        for id in self.stream_ids() {
            self.close(seq, id, out);
        }
    }

    /// Reclaim memory of streams idle past the watermark at global sample
    /// clock `seq`. Returns the number of streams evicted. Emits no events:
    /// a swept stream that later receives samples is indistinguishable from
    /// one lazily reset by [`StreamTable::ingest`], so sweeps may run on
    /// any schedule without affecting determinism.
    pub fn sweep(&mut self, seq: u64) -> usize {
        if self.config.evict_after == 0 {
            return 0;
        }
        let watermark = self.config.evict_after;
        let before = self.streams.len();
        self.streams
            .retain(|_, e| seq.saturating_sub(e.last_seq) <= watermark);
        let evicted = before - self.streams.len();
        self.stats.evicted += evicted as u64;
        evicted
    }

    /// Serialize the full table state — configuration, rollup counters and
    /// every live stream entry (ascending by id, so the byte image is
    /// independent of hash-map iteration order) — into `w`.
    pub(crate) fn snapshot_state(&self, w: &mut SnapshotWriter) {
        crate::snapshot::write_streaming_config(w, &self.config.detector);
        w.u64(self.config.evict_after);
        w.u64(self.config.forecast_horizon as u64);
        w.u64(self.stats.created);
        w.u64(self.stats.samples);
        w.u64(self.stats.events);
        w.u64(self.stats.evicted);
        w.u64(self.stats.closed);
        w.u64(self.stats.forecast_checked);
        w.u64(self.stats.forecast_hits);
        w.u64(self.stats.forecast_invalidations);
        w.u64(self.streams.len() as u64);
        for id in self.stream_ids() {
            let entry = &self.streams[&id.0];
            w.u64(id.0);
            w.u64(entry.last_seq);
            entry.dpd.snapshot_state(w, &|w, v| w.i64(v));
            match entry.predictor.as_ref() {
                Some(p) => {
                    w.bool(true);
                    p.snapshot_state(w);
                }
                None => w.bool(false),
            }
        }
    }

    /// Rebuild a table from serialized state.
    pub(crate) fn restore_state(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let detector = crate::snapshot::read_streaming_config(r)?;
        let config = TableConfig {
            detector,
            evict_after: r.u64()?,
            forecast_horizon: r.u64()? as usize,
        };
        if detector.window == 0 || detector.m_max == 0 || detector.m_max > detector.window {
            return Err(SnapshotError::Malformed {
                what: "table detector configuration fails validation",
            });
        }
        let mut table = StreamTable::new(config);
        table.stats = TableStats {
            streams: 0,
            created: r.u64()?,
            samples: r.u64()?,
            events: r.u64()?,
            evicted: r.u64()?,
            closed: r.u64()?,
            forecast_checked: r.u64()?,
            forecast_hits: r.u64()?,
            forecast_invalidations: r.u64()?,
        };
        let n = r.count(1 << 32, "implausible live-stream count")?;
        table.streams.reserve(n);
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let id = r.u64()?;
            if prev.is_some_and(|p| p >= id) {
                return Err(SnapshotError::Malformed {
                    what: "stream entries out of ascending id order",
                });
            }
            prev = Some(id);
            let last_seq = r.u64()?;
            let dpd = StreamingDpd::restore_state(EventMetric, r, &|r| r.i64())?;
            if dpd.config() != config.detector {
                return Err(SnapshotError::Malformed {
                    what: "stream detector configuration disagrees with table",
                });
            }
            let predictor = if r.bool()? {
                let p = Predictor::restore_state(r)?;
                if Some(p.config()) != config.predict_config() {
                    return Err(SnapshotError::Malformed {
                        what: "stream predictor configuration disagrees with table",
                    });
                }
                Some(p)
            } else {
                if config.forecast_horizon > 0 {
                    return Err(SnapshotError::Malformed {
                        what: "forecasting table entry lacks a predictor",
                    });
                }
                None
            };
            table.streams.insert(
                id,
                StreamEntry {
                    dpd,
                    predictor,
                    last_seq,
                },
            );
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DpdBuilder;

    fn table_with_window(n: usize) -> StreamTable {
        DpdBuilder::new().window(n).keyed().build_table().unwrap()
    }

    fn table_with_eviction(n: usize, evict_after: u64) -> StreamTable {
        DpdBuilder::new()
            .window(n)
            .evict_after(evict_after)
            .build_table()
            .unwrap()
    }

    fn periodic(period: u64, start: u64, len: usize) -> Vec<i64> {
        (0..len as u64)
            .map(|i| ((start + i) % period) as i64)
            .collect()
    }

    /// Feed `rounds` rounds of `chunk`-sized batches for `streams` streams
    /// round-robin; stream `s` carries period `s + 2`.
    fn drive(
        table: &mut StreamTable,
        streams: u64,
        chunk: usize,
        rounds: u64,
    ) -> Vec<MultiStreamEvent> {
        let mut out = Vec::new();
        let mut seq = 0u64;
        for r in 0..rounds {
            for s in 0..streams {
                let data = periodic(s + 2, r * chunk as u64, chunk);
                table.ingest(seq, StreamId(s), &data, &mut out);
                seq += chunk as u64;
            }
        }
        out
    }

    #[test]
    fn lazy_creation_and_per_stream_detection() {
        let mut table = table_with_window(8);
        let out = drive(&mut table, 4, 8, 20);
        assert_eq!(table.len(), 4);
        assert_eq!(table.stats().created, 4);
        for s in 0..4u64 {
            let stats = table.stream_stats(StreamId(s)).unwrap();
            assert_eq!(
                stats.detected_periods(),
                vec![(s + 2) as usize],
                "stream {s}"
            );
        }
        assert!(out.len() > 20);
        assert_eq!(table.stats().events, out.len() as u64);
    }

    #[test]
    fn events_tag_the_right_stream() {
        let mut table = table_with_window(8);
        let out = drive(&mut table, 3, 6, 30);
        for e in &out {
            if let MultiStreamEvent::Segment {
                stream,
                event: SegmentEvent::PeriodStart { period, .. },
            } = e
            {
                assert_eq!(*period as u64, stream.0 + 2);
            }
        }
    }

    #[test]
    fn table_partitioning_is_observation_invariant() {
        // One table over 6 streams vs two tables over a 3/3 split: the
        // per-stream event sequences must be identical.
        let mut whole = table_with_eviction(8, 64);
        let all = drive(&mut whole, 6, 8, 25);

        let mut even = table_with_eviction(8, 64);
        let mut odd = table_with_eviction(8, 64);
        let mut split = Vec::new();
        let mut seq = 0u64;
        for r in 0..25u64 {
            for s in 0..6u64 {
                let data = periodic(s + 2, r * 8, 8);
                let table = if s % 2 == 0 { &mut even } else { &mut odd };
                table.ingest(seq, StreamId(s), &data, &mut split);
                seq += 8;
            }
        }
        for s in 0..6u64 {
            let expect: Vec<_> = all.iter().filter(|e| e.stream().0 == s).collect();
            let got: Vec<_> = split.iter().filter(|e| e.stream().0 == s).collect();
            assert_eq!(got, expect, "stream {s}");
        }
    }

    #[test]
    fn idle_eviction_resets_detector_state() {
        let mut table = table_with_eviction(8, 16);
        let mut out = Vec::new();
        // Lock stream 0 to period 3.
        table.ingest(0, StreamId(0), &periodic(3, 0, 24), &mut out);
        assert_eq!(table.locked_period(StreamId(0)), Some(3));
        // 100 global samples of other traffic go by (> watermark 16).
        table.ingest(24, StreamId(1), &periodic(5, 0, 100), &mut out);
        // Stream 0 returns: its old lock must be gone (fresh detector).
        out.clear();
        table.ingest(124, StreamId(0), &periodic(3, 0, 4), &mut out);
        assert_eq!(table.locked_period(StreamId(0)), None);
        assert_eq!(table.stats().evicted, 1);
        // ...and it re-locks with more data, proving the state is live.
        table.ingest(128, StreamId(0), &periodic(3, 4, 24), &mut out);
        assert_eq!(table.locked_period(StreamId(0)), Some(3));
    }

    #[test]
    fn sweep_matches_lazy_eviction_observably() {
        let mk = || table_with_eviction(8, 16);
        let feed = |table: &mut StreamTable, sweep_at: Option<u64>| {
            let mut out = Vec::new();
            table.ingest(0, StreamId(0), &periodic(3, 0, 24), &mut out);
            table.ingest(24, StreamId(1), &periodic(5, 0, 100), &mut out);
            if let Some(seq) = sweep_at {
                table.sweep(seq);
            }
            table.ingest(124, StreamId(0), &periodic(3, 0, 30), &mut out);
            table.ingest(154, StreamId(1), &periodic(5, 100, 10), &mut out);
            out
        };
        let lazy = feed(&mut mk(), None);
        let swept = feed(&mut mk(), Some(124));
        assert_eq!(lazy, swept);
        // The sweep actually removed stream 0's state at seq 124.
        let mut probe = mk();
        let mut out = Vec::new();
        probe.ingest(0, StreamId(0), &periodic(3, 0, 24), &mut out);
        probe.ingest(24, StreamId(1), &periodic(5, 0, 100), &mut out);
        assert_eq!(probe.sweep(124), 1);
        assert_eq!(probe.len(), 1);
        assert_eq!(probe.stats().evicted, 1);
    }

    #[test]
    fn close_emits_final_flush() {
        let mut table = table_with_window(8);
        let mut out = Vec::new();
        table.ingest(0, StreamId(7), &periodic(4, 0, 32), &mut out);
        out.clear();
        assert!(table.close(32, StreamId(7), &mut out));
        assert_eq!(
            out,
            vec![MultiStreamEvent::Closed {
                stream: StreamId(7),
                samples: 32,
                period: Some(4),
            }]
        );
        assert!(!table.close(32, StreamId(7), &mut out), "already closed");
        assert_eq!(table.stats().closed, 1);
        assert!(table.is_empty());
    }

    #[test]
    fn close_all_is_ascending_by_id() {
        let mut table = table_with_window(8);
        let mut out = Vec::new();
        for &s in &[9u64, 2, 5] {
            table.ingest(0, StreamId(s), &periodic(3, 0, 6), &mut out);
        }
        out.clear();
        table.close_all(18, &mut out);
        let order: Vec<u64> = out.iter().map(|e| e.stream().0).collect();
        assert_eq!(order, vec![2, 5, 9]);
    }

    #[test]
    fn close_of_idle_stream_evicts_silently() {
        let mut table = table_with_eviction(8, 16);
        let mut out = Vec::new();
        table.ingest(0, StreamId(0), &periodic(3, 0, 24), &mut out);
        out.clear();
        // Clock 200: stream 0 sat idle far past the watermark. Whether or
        // not a sweep ran in between, close must not flush it.
        assert!(!table.close(200, StreamId(0), &mut out));
        assert!(out.is_empty());
        assert_eq!(table.stats().evicted, 1);
        assert_eq!(table.stats().closed, 0);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut table = table_with_window(8);
        let mut out = Vec::new();
        table.ingest(0, StreamId(1), &[], &mut out);
        assert!(table.is_empty());
        assert_eq!(table.stats().samples, 0);
    }

    #[test]
    fn shard_of_spreads_sequential_ids() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for s in 0..8000u64 {
            counts[shard_of(StreamId(s), shards)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1300).contains(&c),
                "shard {i} got {c} of 8000 streams"
            );
        }
        // Stable: same input, same route.
        assert_eq!(shard_of(StreamId(42), 8), shard_of(StreamId(42), 8));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn shard_of_zero_panics() {
        let _ = shard_of(StreamId(1), 0);
    }

    #[test]
    fn forecasting_table_scores_per_stream() {
        let mut table = DpdBuilder::new()
            .window(8)
            .keyed()
            .forecast(2)
            .build_table()
            .unwrap();
        let mut out = Vec::new();
        table.ingest(0, StreamId(1), &periodic(3, 0, 60), &mut out);
        table.ingest(60, StreamId(2), &periodic(5, 0, 60), &mut out);
        let t = table.stats();
        assert!(t.forecast_checked > 0);
        assert_eq!(t.forecast_hits, t.forecast_checked);
        assert_eq!(t.forecast_hit_rate(), Some(1.0));
        for s in [1u64, 2] {
            let fs = table.forecast_stats(StreamId(s)).unwrap();
            assert_eq!(fs.hit_rate(), Some(1.0), "stream {s}");
            assert!(table.forecast_confidence(StreamId(s)).unwrap() > 0.9);
        }
        // Table totals are the sum of per-stream stats while all live.
        let sum: u64 = [1u64, 2]
            .iter()
            .map(|&s| table.forecast_stats(StreamId(s)).unwrap().checked)
            .sum();
        assert_eq!(sum, t.forecast_checked);
        // Forecast slice for stream 1: period 3, last sample of
        // periodic(3, 0, 60) is value (59 % 3) = 2.
        let fc = table.forecast(StreamId(1), 2).unwrap();
        assert_eq!(fc.period, 3);
        assert_eq!(fc.predicted, &[0, 1]);
    }

    #[test]
    fn non_forecasting_table_reports_none() {
        let mut table = table_with_window(8);
        let mut out = Vec::new();
        table.ingest(0, StreamId(1), &periodic(3, 0, 40), &mut out);
        assert_eq!(table.forecast_stats(StreamId(1)), None);
        assert_eq!(table.forecast_confidence(StreamId(1)), None);
        assert!(table.forecast(StreamId(1), 1).is_none());
        assert_eq!(table.stats().forecast_checked, 0);
    }

    #[test]
    fn eviction_resets_forecast_state_but_keeps_table_counters() {
        let mut table = DpdBuilder::new()
            .window(8)
            .evict_after(16)
            .forecast(1)
            .build_table()
            .unwrap();
        let mut out = Vec::new();
        table.ingest(0, StreamId(0), &periodic(3, 0, 40), &mut out);
        let before = table.stats().forecast_checked;
        assert!(before > 0);
        assert!(table.forecast_stats(StreamId(0)).unwrap().checked > 0);
        // Idle past the watermark, then return: per-stream stats reset,
        // table rollups stay monotonic.
        table.ingest(40, StreamId(1), &periodic(4, 0, 100), &mut out);
        table.ingest(140, StreamId(0), &periodic(3, 0, 4), &mut out);
        let fs = table.forecast_stats(StreamId(0)).unwrap();
        assert_eq!(fs.checked, 0, "fresh predictor after eviction");
        assert_eq!(table.forecast_confidence(StreamId(0)), Some(0.0));
        assert!(table.stats().forecast_checked >= before);
    }

    #[test]
    fn stats_roll_up() {
        let mut table = table_with_window(8);
        let out = drive(&mut table, 2, 10, 10);
        let st = table.stats();
        assert_eq!(st.streams, 2);
        assert_eq!(st.samples, 200);
        assert_eq!(st.events, out.len() as u64);
        assert_eq!(st.evicted, 0);
    }
}
