//! Dynamic window-size adaptation.
//!
//! Paper §3.1: "For an unknown data stream, the window size N of the
//! periodicity detector should be set initially to a large value, in order to
//! be able to capture large periodicities. Once a satisfying periodicity is
//! detected, the window size may be reduced dynamically." [`WindowTuner`]
//! implements that policy and [`TunedDpd`] bundles it with a streaming
//! detector: shrink to a small multiple of the locked period, grow back
//! toward the maximum when the lock is lost.

use crate::streaming::{SegmentEvent, StreamingDpd};

/// Window adaptation policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerPolicy {
    /// Lower bound on the window size.
    pub min_window: usize,
    /// Upper bound on the window size (the "large initial value").
    pub max_window: usize,
    /// After locking period `p`, resize the window to `p * period_multiple`
    /// (clamped to the bounds). The multiple must be at least 1; 2 keeps a
    /// safety margin so the shrunken window still spans two periods.
    pub period_multiple: usize,
    /// Only resize when the target differs from the current window by at
    /// least this factor (avoids thrashing on close sizes).
    pub hysteresis: f64,
    /// Number of boundary confirmations required before shrinking.
    pub confirmations: u64,
}

impl Default for TunerPolicy {
    fn default() -> Self {
        TunerPolicy {
            min_window: 8,
            max_window: 1024,
            period_multiple: 2,
            hysteresis: 2.0,
            confirmations: 3,
        }
    }
}

/// Decision produced by the tuner for one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneAction {
    /// Keep the current window.
    Keep,
    /// Resize the window to the given size.
    Resize(usize),
}

/// Stateless-ish policy engine deciding window resizes from events.
#[derive(Debug, Clone)]
pub struct WindowTuner {
    policy: TunerPolicy,
    confirmed: u64,
    shrunk_for: Option<usize>,
}

impl WindowTuner {
    /// New tuner with the given policy.
    pub fn new(policy: TunerPolicy) -> Self {
        WindowTuner {
            policy,
            confirmed: 0,
            shrunk_for: None,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> TunerPolicy {
        self.policy
    }

    /// Decide what to do after `event` arrived while the detector window was
    /// `current_window`.
    pub fn decide(&mut self, current_window: usize, event: SegmentEvent) -> TuneAction {
        match event {
            SegmentEvent::PeriodStart { period, .. } => {
                if self.shrunk_for == Some(period) {
                    return TuneAction::Keep;
                }
                self.confirmed += 1;
                if self.confirmed < self.policy.confirmations {
                    return TuneAction::Keep;
                }
                let target = (period * self.policy.period_multiple)
                    .clamp(self.policy.min_window, self.policy.max_window);
                let ratio = current_window as f64 / target as f64;
                if ratio >= self.policy.hysteresis {
                    self.shrunk_for = Some(period);
                    self.confirmed = 0;
                    TuneAction::Resize(target)
                } else {
                    // Window already appropriately sized for this period.
                    self.shrunk_for = Some(period);
                    self.confirmed = 0;
                    TuneAction::Keep
                }
            }
            SegmentEvent::PeriodLost { .. } => {
                self.confirmed = 0;
                self.shrunk_for = None;
                if current_window < self.policy.max_window {
                    TuneAction::Resize(self.policy.max_window)
                } else {
                    TuneAction::Keep
                }
            }
            SegmentEvent::None => TuneAction::Keep,
        }
    }
}

/// A streaming event-DPD with automatic window adaptation.
#[derive(Debug, Clone)]
pub struct TunedDpd {
    dpd: StreamingDpd<i64, crate::metric::EventMetric>,
    tuner: WindowTuner,
    resizes: u64,
}

impl TunedDpd {
    /// Create a tuned detector starting at the policy's maximum window.
    pub fn new(policy: TunerPolicy) -> Self {
        let dpd = crate::pipeline::DpdBuilder::new()
            .window(policy.max_window)
            .build_detector()
            .expect("invalid tuner max_window");
        TunedDpd {
            dpd,
            tuner: WindowTuner::new(policy),
            resizes: 0,
        }
    }

    /// Push one sample; the window may be resized as a side effect.
    pub fn push(&mut self, sample: i64) -> SegmentEvent {
        let event = self.dpd.push(sample);
        if let TuneAction::Resize(n) = self.tuner.decide(self.dpd.window(), event) {
            // A resize drops the lock; the detector re-confirms quickly
            // because the (smaller) window refills within ~n samples.
            self.dpd
                .set_window(n)
                .expect("tuner targets are validated by policy bounds");
            self.resizes += 1;
        }
        event
    }

    /// Current window size.
    pub fn window(&self) -> usize {
        self.dpd.window()
    }

    /// Number of resizes performed.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// Access the wrapped detector.
    pub fn inner(&self) -> &StreamingDpd<i64, crate::metric::EventMetric> {
        &self.dpd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_after_confirmed_lock() {
        let policy = TunerPolicy {
            min_window: 4,
            max_window: 256,
            period_multiple: 2,
            hysteresis: 2.0,
            confirmations: 3,
        };
        let mut tuned = TunedDpd::new(policy);
        assert_eq!(tuned.window(), 256);
        for i in 0..2000usize {
            tuned.push([1i64, 2, 3, 4, 5][i % 5]);
        }
        // Locked period 5 -> target 10, clamped >= 4: window should be 10.
        assert_eq!(tuned.window(), 10);
        assert!(tuned.resizes() >= 1);
        // Detector still works at the small window.
        assert_eq!(tuned.inner().locked_period(), Some(5));
    }

    #[test]
    fn grows_back_on_loss() {
        let policy = TunerPolicy {
            min_window: 4,
            max_window: 128,
            period_multiple: 2,
            hysteresis: 2.0,
            confirmations: 1,
        };
        let mut tuned = TunedDpd::new(policy);
        for i in 0..600usize {
            tuned.push([1i64, 2, 3][i % 3]);
        }
        assert_eq!(tuned.window(), 6);
        // Break the periodicity: aperiodic ramp.
        for i in 0..400i64 {
            tuned.push(1000 + i);
        }
        assert_eq!(tuned.window(), 128, "window must grow back after loss");
    }

    #[test]
    fn tuner_respects_confirmations() {
        let mut tuner = WindowTuner::new(TunerPolicy {
            confirmations: 2,
            ..TunerPolicy::default()
        });
        let start = SegmentEvent::PeriodStart {
            period: 5,
            position: 0,
        };
        assert_eq!(tuner.decide(1024, start), TuneAction::Keep);
        assert_eq!(tuner.decide(1024, start), TuneAction::Resize(10));
    }

    #[test]
    fn tuner_hysteresis_blocks_small_resizes() {
        let mut tuner = WindowTuner::new(TunerPolicy {
            confirmations: 1,
            hysteresis: 2.0,
            ..TunerPolicy::default()
        });
        // period 300 -> target 600; window 1024 is < 2x of 600 -> keep.
        let e = SegmentEvent::PeriodStart {
            period: 300,
            position: 0,
        };
        assert_eq!(tuner.decide(1024, e), TuneAction::Keep);
    }

    #[test]
    fn tuner_clamps_to_min_window() {
        let mut tuner = WindowTuner::new(TunerPolicy {
            min_window: 16,
            confirmations: 1,
            ..TunerPolicy::default()
        });
        let e = SegmentEvent::PeriodStart {
            period: 2,
            position: 0,
        };
        assert_eq!(tuner.decide(1024, e), TuneAction::Resize(16));
    }

    #[test]
    fn none_event_keeps_window() {
        let mut tuner = WindowTuner::new(TunerPolicy::default());
        assert_eq!(tuner.decide(1024, SegmentEvent::None), TuneAction::Keep);
    }

    #[test]
    fn no_redundant_shrink_for_same_period() {
        let mut tuner = WindowTuner::new(TunerPolicy {
            confirmations: 1,
            ..TunerPolicy::default()
        });
        let e = SegmentEvent::PeriodStart {
            period: 5,
            position: 0,
        };
        assert_eq!(tuner.decide(1024, e), TuneAction::Resize(10));
        // Same period again at the already-shrunk window: keep.
        assert_eq!(tuner.decide(10, e), TuneAction::Keep);
    }
}
