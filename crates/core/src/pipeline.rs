//! One typed entry point for every detector stack: the [`DpdBuilder`].
//!
//! The paper describes a single conceptual object — a dynamic periodicity
//! detector fed a sample stream, emitting periods, segments and forecasts —
//! but a grown codebase easily fractures that object into parallel
//! construction paths (`Dpd::with_window`, `StreamingDpd` + config,
//! `MultiScaleDpd`, `ForecastingDpd`, `StreamTable`, the sharded service),
//! each with its own push/event vocabulary. This module is the unification:
//!
//! * [`DpdBuilder`] — one builder whose typed options (window, metric,
//!   multi-scale bank, forecast horizon, keyed table, shard count) cover
//!   every stack; incoherent combinations are rejected with a precise
//!   [`BuildError`] instead of panicking or silently misbehaving,
//! * [`Detector`] — the uniform push surface (`push` / `push_slice`),
//! * [`EventSink`] + [`DpdEvent`] — the uniform event stream: segmentation,
//!   per-scale nested-period reports, stream-close flushes and forecast
//!   issuance/scoring all arrive through one `on_event(stream, &event)`
//!   call, whatever stack produced them.
//!
//! The old constructors remain as `#[deprecated]` shims that delegate here;
//! the README's *"Migration from 0.x constructors"* table maps each one to
//! its builder call. Behavior is bit-identical (property-tested in
//! `tests/proptest_pipeline.rs`): the builder assembles exactly the same
//! detector objects the deprecated paths did.
//!
//! # Quick start
//!
//! ```
//! use dpd_core::pipeline::{Detector, DpdBuilder, DpdEvent};
//! use dpd_core::streaming::SegmentEvent;
//!
//! // Period-3 loop-address stream through the default event-stream stack.
//! let mut pipe = DpdBuilder::new().window(8).build(Vec::new()).unwrap();
//! for i in 0..30usize {
//!     pipe.push([0x400000i64, 0x400040, 0x400080][i % 3]);
//! }
//! let events = pipe.into_sink();
//! assert!(events.iter().any(|(_, e)| matches!(
//!     e,
//!     DpdEvent::Segment(SegmentEvent::PeriodStart { period: 3, .. })
//! )));
//! ```
//!
//! A forecasting stack is the same entry point plus one option:
//!
//! ```
//! use dpd_core::pipeline::{Detector, DpdBuilder};
//!
//! let mut pipe = DpdBuilder::new().window(8).forecast(4).build(Vec::new()).unwrap();
//! for i in 0..40usize {
//!     pipe.push([10i64, 20, 30][i % 3]);
//! }
//! let fc = pipe.forecast(4).expect("locked and primed");
//! assert_eq!(fc.period, 3);
//! assert_eq!(fc.predicted, &[20, 30, 10, 20]);
//! ```

use crate::capi::Dpd;
use crate::metric::{EventMetric, L1Metric};
use crate::minima::MinimaPolicy;
use crate::predict::{Forecast, ForecastingDpd, PredictConfig, Predictor};
use crate::query::QuerySpec;
use crate::shard::{MultiStreamEvent, StreamId, StreamTable, TableConfig};
use crate::snapshot::{Restore, SnapshotError};
use crate::streaming::{MultiScaleDpd, SegmentEvent, StreamingConfig, StreamingDpd};
use crate::DpdError;

/// The paper's multi-scale setting: small, medium and large windows
/// (`N = 8, 64, 512`; §3.1 discusses N from under 10 up to 1024).
pub const DEFAULT_SCALES: &[usize] = &[8, 64, 512];

/// An option combination the builder cannot assemble into a coherent stack.
///
/// Every variant renders a lowercase, period-free [`Display`] message
/// (asserted by a unit test) and the enum is `#[non_exhaustive]`: new
/// incoherent-combination diagnostics may be added without a major bump.
///
/// [`Display`]: core::fmt::Display
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The underlying detector configuration is invalid (window, maximum
    /// delay or forecast horizon out of range).
    Detector(DpdError),
    /// `scales(&[])`: a multi-scale bank needs at least one window.
    EmptyScales,
    /// A multi-scale bank cannot drive the forecaster (which extends one
    /// stream under one lock); forecast on the outer scale explicitly via
    /// two pipelines instead.
    ScalesWithForecast,
    /// A multi-scale bank is a single-stream analysis; it cannot be the
    /// per-stream detector of a keyed table or sharded service.
    ScalesWithKeyed,
    /// A plain single detector was requested but a multi-scale bank is
    /// configured; finish with [`DpdBuilder::build_multi_scale`] instead.
    ScalesOnPlainDetector,
    /// [`DpdBuilder::build_multi_scale`] needs [`DpdBuilder::scales`].
    ScalesRequired,
    /// A plain single detector was requested but a forecast horizon is
    /// configured; finish with [`DpdBuilder::build_forecasting`] or
    /// [`DpdBuilder::build`] instead.
    ForecastOnPlainDetector,
    /// [`DpdBuilder::build_forecasting`] needs [`DpdBuilder::forecast`].
    ForecastRequired,
    /// Magnitude streams (equation 1) carry `f64` samples; the multi-scale
    /// bank is an event-stream (equation 2) analysis.
    MagnitudesWithScales,
    /// The online forecaster extends exact event values; magnitude streams
    /// have no exact periodic extension to issue.
    MagnitudesWithForecast,
    /// Keyed tables and the sharded service detect event streams; magnitude
    /// streams are single-stream analyses.
    MagnitudesWithKeyed,
    /// An event-stream (`i64`) stack was requested but
    /// [`DpdBuilder::magnitudes`] is set; finish with
    /// [`DpdBuilder::build_magnitude_detector`] instead.
    MagnitudesOnEventPipeline,
    /// [`DpdBuilder::build_magnitude_detector`] needs
    /// [`DpdBuilder::magnitudes`].
    EventsOnMagnitudePipeline,
    /// A keyed-table option ([`DpdBuilder::keyed`] /
    /// [`DpdBuilder::evict_after`]) is set but a single-stream stack was
    /// requested; finish with [`DpdBuilder::build_keyed`] or
    /// [`DpdBuilder::build_table`] instead.
    KeyedOnSingleStream,
    /// [`DpdBuilder::shards`] is set but a single-stream stack was
    /// requested; build the sharded service via
    /// `MultiStreamDpd::from_builder` in `par-runtime` instead.
    ShardsOnSingleStream,
    /// [`DpdBuilder::shards`] is set but an in-process keyed table was
    /// requested; sharding is a service concern — use
    /// `MultiStreamDpd::from_builder`, or drop the option.
    ShardsOnTable,
    /// A service was requested ([`DpdBuilder::service_spec`]) without
    /// [`DpdBuilder::shards`] (use `shards(0)` for the deterministic
    /// inline mode).
    ShardsRequired,
    /// [`DpdBuilder::sweep_every`] paces idle-stream sweeps of a keyed
    /// table or service; it has no meaning on a single-stream stack.
    SweepWithoutKeyed,
    /// [`DpdBuilder::memory_budget`] is smaller than the accounted cost of
    /// a single hot stream under the configured detector options; such a
    /// table could never admit any stream.
    MemoryBudgetTooSmall,
    /// [`DpdBuilder::cold_summary`] retains demoted streams, but nothing
    /// ever demotes them: cold retention needs [`DpdBuilder::evict_after`]
    /// or [`DpdBuilder::memory_budget`].
    ColdSummaryWithoutEviction,
    /// A [`DpdBuilder::standing_query`] spec has unusable parameters
    /// (empty or oversized period range, zero loss window, non-finite or
    /// out-of-range confidence threshold; see
    /// [`QuerySpec::is_valid`](crate::query::QuerySpec::is_valid)).
    InvalidQuerySpec(QuerySpec),
    /// A `confidence-at-least` standing query scores forecast confidence,
    /// which only exists with [`DpdBuilder::forecast`] configured.
    ConfidenceQueryWithoutForecast,
    /// [`DpdBuilder::standing_query`] subscribes to a keyed table's event
    /// stream; it has no meaning on a single-stream stack.
    QueriesOnSingleStream,
    /// A `restore_*` finisher could not reconstruct the stack from the
    /// snapshot bytes (truncated/corrupt image, wrong type tag, or a
    /// configuration mismatch against the builder's options).
    Snapshot(SnapshotError),
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            // Transparent: callers prefixing "invalid configuration: {e}"
            // read the same message the pre-builder constructors produced.
            BuildError::Detector(e) => write!(f, "{e}"),
            BuildError::EmptyScales => write!(f, "multi-scale bank needs at least one window"),
            BuildError::ScalesWithForecast => {
                write!(f, "forecasting is incompatible with a multi-scale bank")
            }
            BuildError::ScalesWithKeyed => {
                write!(f, "a keyed table cannot hold multi-scale banks")
            }
            BuildError::ScalesOnPlainDetector => {
                write!(f, "scales are configured: finish with build_multi_scale")
            }
            BuildError::ScalesRequired => {
                write!(f, "build_multi_scale needs scales(..)")
            }
            BuildError::ForecastOnPlainDetector => {
                write!(
                    f,
                    "a forecast horizon is configured: finish with build_forecasting"
                )
            }
            BuildError::ForecastRequired => {
                write!(f, "build_forecasting needs forecast(..)")
            }
            BuildError::MagnitudesWithScales => {
                write!(f, "magnitude streams have no multi-scale bank")
            }
            BuildError::MagnitudesWithForecast => {
                write!(f, "magnitude streams cannot drive the online forecaster")
            }
            BuildError::MagnitudesWithKeyed => {
                write!(f, "keyed tables detect event streams, not magnitudes")
            }
            BuildError::MagnitudesOnEventPipeline => {
                write!(
                    f,
                    "magnitudes() is set: finish with build_magnitude_detector"
                )
            }
            BuildError::EventsOnMagnitudePipeline => {
                write!(f, "build_magnitude_detector needs magnitudes()")
            }
            BuildError::KeyedOnSingleStream => {
                write!(f, "keyed-table options need build_keyed or build_table")
            }
            BuildError::ShardsOnSingleStream => {
                write!(f, "shards(..) needs the sharded service (par-runtime)")
            }
            BuildError::ShardsOnTable => {
                write!(
                    f,
                    "an in-process table has no shards: use the service or drop shards(..)"
                )
            }
            BuildError::ShardsRequired => {
                write!(f, "a service needs shards(..) (0 selects inline mode)")
            }
            BuildError::SweepWithoutKeyed => {
                write!(f, "sweep_every(..) only paces keyed tables and services")
            }
            BuildError::MemoryBudgetTooSmall => {
                write!(f, "memory_budget(..) cannot hold even one hot stream")
            }
            BuildError::ColdSummaryWithoutEviction => {
                write!(
                    f,
                    "cold_summary(..) needs evict_after(..) or memory_budget(..) to demote"
                )
            }
            BuildError::InvalidQuerySpec(spec) => {
                write!(f, "invalid standing-query parameters: {spec}")
            }
            BuildError::ConfidenceQueryWithoutForecast => {
                write!(f, "confidence-at-least queries need forecast(..) to score")
            }
            BuildError::QueriesOnSingleStream => {
                write!(
                    f,
                    "standing_query(..) subscribes to a keyed table or service"
                )
            }
            // Transparent like Detector: the snapshot error is the message.
            BuildError::Snapshot(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Detector(e) => Some(e),
            BuildError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DpdError> for BuildError {
    fn from(e: DpdError) -> Self {
        BuildError::Detector(e)
    }
}

impl From<SnapshotError> for BuildError {
    fn from(e: SnapshotError) -> Self {
        BuildError::Snapshot(e)
    }
}

/// The uniform push surface of every event-stream detector stack.
///
/// Implementations feed their configured [`EventSink`] as a side effect of
/// pushing; the paper's per-sample return value becomes sink traffic, so a
/// consumer wired against `Detector` + `EventSink` works unchanged whether
/// the stack is a plain detector, a multi-scale bank or a forecaster.
pub trait Detector {
    /// Push one sample.
    fn push(&mut self, sample: i64);

    /// Push a whole slice of samples, in order. Semantically identical to
    /// per-sample [`Detector::push`].
    fn push_slice(&mut self, samples: &[i64]) {
        for &s in samples {
            self.push(s);
        }
    }
}

/// The uniform event stream: one callback for every observation any stack
/// makes, tagged with the logical stream it belongs to.
///
/// Implementations exist for `Vec<(StreamId, DpdEvent)>` (collect), for any
/// `FnMut(StreamId, &DpdEvent)` closure, and for `()` (discard).
pub trait EventSink {
    /// Handle one event on one stream.
    fn on_event(&mut self, stream: StreamId, event: &DpdEvent);
}

impl EventSink for Vec<(StreamId, DpdEvent)> {
    fn on_event(&mut self, stream: StreamId, event: &DpdEvent) {
        self.push((stream, *event));
    }
}

impl EventSink for () {
    fn on_event(&mut self, _stream: StreamId, _event: &DpdEvent) {}
}

impl<F: FnMut(StreamId, &DpdEvent)> EventSink for F {
    fn on_event(&mut self, stream: StreamId, event: &DpdEvent) {
        self(stream, event)
    }
}

/// One observation from any detector stack, on one logical stream.
///
/// `#[non_exhaustive]`: downstream matches must carry a wildcard arm, so
/// new observation kinds (new subsystems) extend the enum without breaking
/// consumers — the whole point of funnelling every layer's vocabulary
/// through one type.
///
/// Per pushed sample, a stack emits events in a fixed order: the
/// segmentation observation first, then forecast invalidation, scoring and
/// issuance (mirroring [`Predictor::observe`]'s internal step order).
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DpdEvent {
    /// A segmentation event from a single-detector stack (never
    /// [`SegmentEvent::None`]).
    Segment(SegmentEvent),
    /// A segmentation event from one scale of a multi-scale bank — the
    /// nested-period report, tagged with the scale's window size.
    Scale {
        /// Window size `N` of the scale that observed the event.
        window: usize,
        /// The underlying detector event (never [`SegmentEvent::None`]).
        event: SegmentEvent,
    },
    /// A stream was explicitly closed; the final segmentation state is the
    /// close-time "flush".
    Closed {
        /// Samples the stream received over its lifetime.
        samples: u64,
        /// The periodicity locked at close time, if any.
        period: Option<usize>,
    },
    /// The forecaster issued its `H`-step-ahead prediction for an upcoming
    /// position.
    ForecastIssued {
        /// Stream position (0-based) the prediction targets.
        position: u64,
        /// The predicted value.
        value: i64,
    },
    /// A standing prediction was scored against the sample that arrived at
    /// its target position.
    ForecastScored {
        /// What was predicted for this position.
        predicted: i64,
        /// What actually arrived.
        actual: i64,
        /// `predicted == actual`.
        hit: bool,
    },
    /// A phase change invalidated the forecast state: outstanding
    /// predictions were dropped unscored (see `docs/PREDICTION.md`).
    ForecastInvalidated {
        /// Outstanding predictions dropped by this invalidation.
        dropped: u64,
    },
}

impl DpdEvent {
    /// Translate a [`MultiStreamEvent`] into the unified vocabulary,
    /// splitting off the stream tag.
    pub fn from_multi_stream(event: &MultiStreamEvent) -> (StreamId, DpdEvent) {
        match *event {
            MultiStreamEvent::Segment { stream, event } => (stream, DpdEvent::Segment(event)),
            MultiStreamEvent::Closed {
                stream,
                samples,
                period,
            } => (stream, DpdEvent::Closed { samples, period }),
        }
    }
}

/// Everything `par-runtime` needs to assemble the sharded service from a
/// builder: the validated per-stream table configuration (the factory each
/// shard clones), the shard count, the sweep cadence, and the registered
/// standing queries (evaluated per shard over that shard's streams).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSpec {
    /// Per-stream table configuration, cloned into every shard.
    pub table: TableConfig,
    /// Worker shards (`0` = deterministic inline mode).
    pub shards: usize,
    /// Samples of shard-local traffic between idle-stream sweeps
    /// (`0` = sweep only at service finish).
    pub sweep_every: u64,
    /// Standing queries attached to every shard's table, in registration
    /// order (see [`crate::query`]).
    pub queries: Vec<QuerySpec>,
}

/// One typed, validated construction path for every detector stack.
///
/// Options compose freely; incoherent combinations surface as a
/// [`BuildError`] from the finisher instead of a panic deep inside a
/// subsystem. Finishers, by stack:
///
/// | finisher | stack |
/// |----------|-------|
/// | [`build`](DpdBuilder::build) | unified single-stream pipeline (plain / multi-scale / forecasting) behind [`Detector`] + [`EventSink`] |
/// | [`build_detector`](DpdBuilder::build_detector) | raw [`StreamingDpd`] (event metric, equation 2) |
/// | [`build_magnitude_detector`](DpdBuilder::build_magnitude_detector) | raw [`StreamingDpd`] (`f64` L1 metric, equation 1) |
/// | [`build_multi_scale`](DpdBuilder::build_multi_scale) | raw [`MultiScaleDpd`] bank |
/// | [`build_forecasting`](DpdBuilder::build_forecasting) | raw [`ForecastingDpd`] |
/// | [`build_capi`](DpdBuilder::build_capi) | the paper-faithful Table 1 [`Dpd`] |
/// | [`build_keyed`](DpdBuilder::build_keyed) | [`KeyedDpd`]: keyed multi-stream table behind [`EventSink`] |
/// | [`build_table`](DpdBuilder::build_table) | raw [`StreamTable`] |
/// | [`service_spec`](DpdBuilder::service_spec) | sharded service (finished by `MultiStreamDpd::from_builder` in `par-runtime`) |
///
/// [`detector_config`](DpdBuilder::detector_config) and
/// [`table_config`](DpdBuilder::table_config) expose the validated
/// configuration structs for code that embeds them.
#[derive(Debug, Clone, PartialEq)]
pub struct DpdBuilder {
    window: usize,
    m_max: Option<usize>,
    policy: Option<MinimaPolicy>,
    confirm: Option<usize>,
    lose: Option<usize>,
    resync_interval: Option<u64>,
    magnitudes: bool,
    scales: Option<Vec<usize>>,
    horizon: Option<usize>,
    keyed: bool,
    evict_after: u64,
    memory_budget: u64,
    cold_retain: u64,
    shards: Option<usize>,
    sweep_every: Option<u64>,
    stream: StreamId,
    queries: Vec<QuerySpec>,
}

impl Default for DpdBuilder {
    fn default() -> Self {
        DpdBuilder::new()
    }
}

impl DpdBuilder {
    /// Builder with the paper's defaults: the large initial window
    /// ([`crate::capi::DEFAULT_WINDOW`], §3.1), exact event metric,
    /// immediate lock, no forecasting, single stream.
    pub fn new() -> Self {
        DpdBuilder {
            window: crate::capi::DEFAULT_WINDOW,
            m_max: None,
            policy: None,
            confirm: None,
            lose: None,
            resync_interval: None,
            magnitudes: false,
            scales: None,
            horizon: None,
            keyed: false,
            evict_after: 0,
            memory_budget: 0,
            cold_retain: 0,
            shards: None,
            sweep_every: None,
            stream: StreamId(0),
            queries: Vec::new(),
        }
    }

    /// Data window size `N`.
    pub fn window(mut self, n: usize) -> Self {
        self.window = n;
        self
    }

    /// Maximum candidate delay `M` (`0 < M <= N`); defaults to `N`.
    pub fn m_max(mut self, m: usize) -> Self {
        self.m_max = Some(m);
        self
    }

    /// Minima acceptance policy (consulted by inexact metrics only).
    pub fn policy(mut self, policy: MinimaPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Consecutive agreeing detections required to lock (default 1 for
    /// event streams, 4 under [`DpdBuilder::magnitudes`]).
    pub fn confirm(mut self, n: usize) -> Self {
        self.confirm = Some(n);
        self
    }

    /// Consecutive failed boundary verifications tolerated before the lock
    /// drops (default 1 for event streams, 2 under
    /// [`DpdBuilder::magnitudes`]).
    pub fn lose(mut self, n: usize) -> Self {
        self.lose = Some(n);
        self
    }

    /// Resync interval for the incremental engine's L1 drift bound
    /// (default 0 for event streams, 8192 under
    /// [`DpdBuilder::magnitudes`]).
    pub fn resync_interval(mut self, samples: u64) -> Self {
        self.resync_interval = Some(samples);
        self
    }

    /// Select the magnitude-stream metric (equation 1, `f64` samples —
    /// sampled CPU-usage traces, paper Figs. 3/4) with its noisy-stream
    /// defaults: relative-threshold minima policy, confirmation window 4,
    /// loss tolerance 2, drift resync every 8192 samples. Explicit
    /// [`DpdBuilder::policy`] / [`DpdBuilder::confirm`] /
    /// [`DpdBuilder::lose`] / [`DpdBuilder::resync_interval`] calls
    /// override the defaults in any order. Finish with
    /// [`DpdBuilder::build_magnitude_detector`].
    pub fn magnitudes(mut self) -> Self {
        self.magnitudes = true;
        self
    }

    /// Run a bank of event-stream detectors at these window sizes
    /// (ascending recommended; see [`DEFAULT_SCALES`]) to capture nested
    /// periodicities (paper Table 2).
    pub fn scales(mut self, windows: &[usize]) -> Self {
        self.scales = Some(windows.to_vec());
        self
    }

    /// Attach the online forecaster at horizon `h >= 1`: the `h`-step-ahead
    /// prediction is issued and scored at every sample
    /// (see `docs/PREDICTION.md`).
    pub fn forecast(mut self, h: usize) -> Self {
        self.horizon = Some(h);
        self
    }

    /// Key detectors by [`StreamId`]: one independent detector per logical
    /// stream, created lazily, behind one table.
    pub fn keyed(mut self) -> Self {
        self.keyed = true;
        self
    }

    /// Evict a stream idle for more than this many global samples
    /// (implies [`DpdBuilder::keyed`]; `0` disables eviction).
    pub fn evict_after(mut self, samples: u64) -> Self {
        self.evict_after = samples;
        self.keyed = true;
        self
    }

    /// Bound the table's accounted per-stream memory to this many bytes
    /// (implies [`DpdBuilder::keyed`]; `0` disables the budget). When
    /// admission or re-promotion would exceed the budget the table demotes
    /// least-recently-active hot streams to compact cold summaries (when
    /// [`DpdBuilder::cold_summary`] is on) or evicts them outright. The
    /// budget must cover at least one hot stream
    /// ([`BuildError::MemoryBudgetTooSmall`]); see
    /// [`TableConfig::hot_stream_bytes`] for the accounting model.
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = bytes;
        self.keyed = true;
        self
    }

    /// Retain demoted streams as compact cold summaries (~64 bytes: frozen
    /// period, confidence and lifetime rollups) for this many further
    /// global samples past the eviction watermark before they are gone
    /// (implies [`DpdBuilder::keyed`]; `0` disables the cold tier —
    /// demotion then means eviction, the pre-budget binary behavior). A
    /// stream returning within the retention window is re-promoted with
    /// its lifetime counters restored exactly. Requires
    /// [`DpdBuilder::evict_after`] or [`DpdBuilder::memory_budget`]
    /// ([`BuildError::ColdSummaryWithoutEviction`]).
    pub fn cold_summary(mut self, samples: u64) -> Self {
        self.cold_retain = samples;
        self.keyed = true;
        self
    }

    /// Shard the keyed table over this many worker threads (`0` =
    /// deterministic inline mode). Only the sharded service consumes this
    /// option — finish with `MultiStreamDpd::from_builder` in
    /// `par-runtime`.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Samples of traffic between idle-stream memory sweeps on a keyed
    /// table or service (default: four eviction watermarks when eviction is
    /// on, else never). Sweeps reclaim memory early but never change
    /// emitted events.
    pub fn sweep_every(mut self, samples: u64) -> Self {
        self.sweep_every = Some(samples);
        self
    }

    /// Tag for the single logical stream of a [`DpdBuilder::build`]
    /// pipeline's events (default `StreamId(0)`).
    pub fn stream_id(mut self, stream: StreamId) -> Self {
        self.stream = stream;
        self
    }

    /// Register a standing query (implies [`DpdBuilder::keyed`]): the
    /// table or service evaluates `spec` incrementally against its event
    /// stream and emits [`QueryDelta`](crate::query::QueryDelta)
    /// membership transitions (see [`crate::query`] and `docs/QUERIES.md`).
    /// Call repeatedly to register several queries; registration order
    /// assigns the [`QueryId`](crate::query::QueryId)s. Validated by the
    /// keyed finishers: bad parameters are
    /// [`BuildError::InvalidQuerySpec`], confidence queries without
    /// [`DpdBuilder::forecast`] are
    /// [`BuildError::ConfidenceQueryWithoutForecast`], and single-stream
    /// finishers reject queries outright
    /// ([`BuildError::QueriesOnSingleStream`]).
    pub fn standing_query(mut self, spec: QuerySpec) -> Self {
        self.queries.push(spec);
        self.keyed = true;
        self
    }

    /// Register every query parsed from the text spec grammar
    /// ([`crate::query::parse_specs`]) — the bulk twin of
    /// [`DpdBuilder::standing_query`].
    pub fn standing_queries(mut self, specs: &[QuerySpec]) -> Self {
        self.queries.extend_from_slice(specs);
        self.keyed |= !specs.is_empty();
        self
    }

    /// Adopt every detector-level option from an existing
    /// [`StreamingConfig`] (window, maximum delay, policy, confirmation,
    /// loss tolerance, resync interval).
    pub fn detector(mut self, config: StreamingConfig) -> Self {
        self.window = config.window;
        self.m_max = Some(config.m_max);
        self.policy = Some(config.policy);
        self.confirm = Some(config.confirm);
        self.lose = Some(config.lose);
        self.resync_interval = Some(config.resync_interval);
        self
    }

    // ------------------------------------------------------------------
    // Validation.

    /// `true` when any keyed-table option is set.
    fn is_keyed(&self) -> bool {
        self.keyed || self.evict_after > 0 || self.memory_budget > 0 || self.cold_retain > 0
    }

    /// Checks shared by every finisher.
    fn validate_shared(&self) -> Result<(), BuildError> {
        if let Some(scales) = &self.scales {
            if scales.is_empty() {
                return Err(BuildError::EmptyScales);
            }
            if scales.contains(&0) {
                return Err(BuildError::Detector(DpdError::InvalidWindow(0)));
            }
            if self.magnitudes {
                return Err(BuildError::MagnitudesWithScales);
            }
            if self.horizon.is_some() {
                return Err(BuildError::ScalesWithForecast);
            }
            if self.is_keyed() || self.shards.is_some() {
                return Err(BuildError::ScalesWithKeyed);
            }
        }
        if self.magnitudes {
            if self.horizon.is_some() {
                return Err(BuildError::MagnitudesWithForecast);
            }
            if self.is_keyed() || self.shards.is_some() {
                return Err(BuildError::MagnitudesWithKeyed);
            }
        }
        if self.sweep_every.is_some() && !self.is_keyed() && self.shards.is_none() {
            return Err(BuildError::SweepWithoutKeyed);
        }
        if self.window == 0 {
            return Err(BuildError::Detector(DpdError::InvalidWindow(0)));
        }
        let m_max = self.m_max.unwrap_or(self.window);
        if m_max == 0 || m_max > self.window {
            return Err(BuildError::Detector(DpdError::InvalidMaxDelay {
                m_max,
                window: self.window,
            }));
        }
        if let Some(h) = self.horizon {
            // Validated here (not only in PredictConfig) so every finisher
            // reports a bad horizon the same way.
            if h == 0 {
                return Err(BuildError::Detector(DpdError::InvalidHorizon(0)));
            }
        }
        Ok(())
    }

    /// Reject multi-stream options on single-stream finishers.
    fn validate_single_stream(&self) -> Result<(), BuildError> {
        if self.shards.is_some() {
            return Err(BuildError::ShardsOnSingleStream);
        }
        // Before the generic keyed check: standing_query implies keyed,
        // and the precise diagnosis is the query registration.
        if !self.queries.is_empty() {
            return Err(BuildError::QueriesOnSingleStream);
        }
        if self.is_keyed() {
            return Err(BuildError::KeyedOnSingleStream);
        }
        Ok(())
    }

    /// The assembled detector configuration (defaults resolved by metric).
    fn assemble_detector(&self) -> StreamingConfig {
        StreamingConfig {
            window: self.window,
            m_max: self.m_max.unwrap_or(self.window),
            policy: self.policy.unwrap_or(if self.magnitudes {
                MinimaPolicy::relative(0.35)
            } else {
                MinimaPolicy::exact()
            }),
            confirm: self.confirm.unwrap_or(if self.magnitudes { 4 } else { 1 }),
            lose: self.lose.unwrap_or(if self.magnitudes { 2 } else { 1 }),
            resync_interval: self
                .resync_interval
                .unwrap_or(if self.magnitudes { 8192 } else { 0 }),
        }
    }

    // ------------------------------------------------------------------
    // Finishers.

    /// The validated single-detector [`StreamingConfig`] (for embedding in
    /// code that owns its own detector wiring).
    pub fn detector_config(&self) -> Result<StreamingConfig, BuildError> {
        self.validate_shared()?;
        if self.scales.is_some() {
            return Err(BuildError::ScalesOnPlainDetector);
        }
        Ok(self.assemble_detector())
    }

    /// Assemble the event-stream detector (options already validated).
    fn assemble_event_detector(&self) -> Result<StreamingDpd<i64, EventMetric>, BuildError> {
        StreamingDpd::new(EventMetric, self.assemble_detector()).map_err(BuildError::Detector)
    }

    /// Assemble the detector + forecaster bundle (options already
    /// validated, horizon already resolved).
    fn assemble_forecasting(&self, horizon: usize) -> Result<ForecastingDpd, BuildError> {
        let predict = PredictConfig::new(self.window, horizon).map_err(BuildError::Detector)?;
        Ok(ForecastingDpd::from_parts(
            self.assemble_event_detector()?,
            Predictor::new(predict),
        ))
    }

    /// A raw event-stream detector (equation 2) — the paper's on-line DPD.
    pub fn build_detector(&self) -> Result<StreamingDpd<i64, EventMetric>, BuildError> {
        self.validate_shared()?;
        self.validate_single_stream()?;
        if self.magnitudes {
            return Err(BuildError::MagnitudesOnEventPipeline);
        }
        if self.horizon.is_some() {
            return Err(BuildError::ForecastOnPlainDetector);
        }
        if self.scales.is_some() {
            return Err(BuildError::ScalesOnPlainDetector);
        }
        self.assemble_event_detector()
    }

    /// A raw magnitude-stream detector (equation 1, `f64` samples).
    /// Requires [`DpdBuilder::magnitudes`].
    pub fn build_magnitude_detector(&self) -> Result<StreamingDpd<f64, L1Metric>, BuildError> {
        self.validate_shared()?;
        self.validate_single_stream()?;
        if !self.magnitudes {
            return Err(BuildError::EventsOnMagnitudePipeline);
        }
        if self.horizon.is_some() {
            return Err(BuildError::ForecastOnPlainDetector);
        }
        if self.scales.is_some() {
            return Err(BuildError::ScalesOnPlainDetector);
        }
        StreamingDpd::new(L1Metric, self.assemble_detector()).map_err(BuildError::Detector)
    }

    /// A raw multi-scale bank. Requires [`DpdBuilder::scales`].
    pub fn build_multi_scale(&self) -> Result<MultiScaleDpd, BuildError> {
        self.validate_shared()?;
        self.validate_single_stream()?;
        match &self.scales {
            Some(scales) => MultiScaleDpd::from_windows(scales).map_err(BuildError::Detector),
            None => Err(BuildError::ScalesRequired),
        }
    }

    /// The paper-faithful Table 1 interface
    /// (`int DPD(long sample, int *period)`).
    pub fn build_capi(&self) -> Result<Dpd, BuildError> {
        Ok(Dpd::from_detector(self.build_detector()?))
    }

    /// A raw detector + forecaster bundle. Requires
    /// [`DpdBuilder::forecast`].
    pub fn build_forecasting(&self) -> Result<ForecastingDpd, BuildError> {
        self.validate_shared()?;
        self.validate_single_stream()?;
        if self.magnitudes {
            return Err(BuildError::MagnitudesOnEventPipeline);
        }
        let horizon = self.horizon.ok_or(BuildError::ForecastRequired)?;
        self.assemble_forecasting(horizon)
    }

    /// The unified single-stream pipeline: the stack the options select
    /// (plain detector, multi-scale bank, or forecaster), pushing every
    /// observation into `sink` as [`DpdEvent`]s tagged
    /// [`DpdBuilder::stream_id`].
    pub fn build<S: EventSink>(&self, sink: S) -> Result<DpdPipeline<S>, BuildError> {
        self.validate_shared()?;
        self.validate_single_stream()?;
        if self.magnitudes {
            return Err(BuildError::MagnitudesOnEventPipeline);
        }
        // validate_shared above already rejected every incoherent combo;
        // dispatch straight to the assemblers (one validation pass).
        let stack = if let Some(horizon) = self.horizon {
            Stack::Forecasting(self.assemble_forecasting(horizon)?)
        } else if let Some(scales) = &self.scales {
            Stack::MultiScale(MultiScaleDpd::from_windows(scales).map_err(BuildError::Detector)?)
        } else {
            Stack::Streaming(self.assemble_event_detector()?)
        };
        Ok(DpdPipeline {
            stack,
            sink,
            stream: self.stream,
        })
    }

    /// Validate and assemble the per-stream table configuration shared by
    /// the in-process table and the sharded service.
    fn keyed_table_config(&self) -> Result<TableConfig, BuildError> {
        self.validate_shared()?;
        if self.scales.is_some() {
            return Err(BuildError::ScalesWithKeyed);
        }
        if self.magnitudes {
            return Err(BuildError::MagnitudesWithKeyed);
        }
        if self.cold_retain > 0 && self.evict_after == 0 && self.memory_budget == 0 {
            return Err(BuildError::ColdSummaryWithoutEviction);
        }
        for spec in &self.queries {
            if !spec.is_valid() {
                return Err(BuildError::InvalidQuerySpec(*spec));
            }
            if matches!(spec, QuerySpec::ConfidenceAtLeast { .. }) && self.horizon.is_none() {
                return Err(BuildError::ConfidenceQueryWithoutForecast);
            }
        }
        let config = TableConfig {
            detector: self.assemble_detector(),
            evict_after: self.evict_after,
            forecast_horizon: self.horizon.unwrap_or(0),
            memory_budget: self.memory_budget,
            cold_retain: self.cold_retain,
        };
        if config.memory_budget > 0 && config.memory_budget < config.hot_stream_bytes() {
            return Err(BuildError::MemoryBudgetTooSmall);
        }
        Ok(config)
    }

    /// The validated keyed-table configuration. Implies
    /// [`DpdBuilder::keyed`].
    pub fn table_config(&self) -> Result<TableConfig, BuildError> {
        if self.shards.is_some() {
            return Err(BuildError::ShardsOnTable);
        }
        self.keyed_table_config()
    }

    /// A raw keyed stream table. Implies [`DpdBuilder::keyed`]. Registered
    /// standing queries ([`DpdBuilder::standing_query`]) are attached
    /// before the table sees its first sample.
    pub fn build_table(&self) -> Result<StreamTable, BuildError> {
        let mut table = StreamTable::new(self.table_config()?);
        table.attach_queries(self.queries.clone());
        Ok(table)
    }

    /// A keyed multi-stream pipeline over `sink`. Implies
    /// [`DpdBuilder::keyed`].
    pub fn build_keyed<S: EventSink>(&self, sink: S) -> Result<KeyedDpd<S>, BuildError> {
        let table = self.build_table()?;
        Ok(KeyedDpd {
            table,
            sink,
            scratch: Vec::new(),
            clock: 0,
            since_sweep: 0,
            sweep_every: self.resolved_sweep_every(),
        })
    }

    /// The sweep cadence with its eviction-coupled default resolved.
    fn resolved_sweep_every(&self) -> u64 {
        self.sweep_every.unwrap_or(if self.evict_after > 0 {
            self.evict_after * 4
        } else {
            0
        })
    }

    /// Everything the sharded service needs. Requires
    /// [`DpdBuilder::shards`] (`shards(0)` selects the deterministic
    /// inline mode); finish with `MultiStreamDpd::from_builder` in
    /// `par-runtime`.
    pub fn service_spec(&self) -> Result<ServiceSpec, BuildError> {
        let shards = self.shards.ok_or(BuildError::ShardsRequired)?;
        Ok(ServiceSpec {
            table: self.keyed_table_config()?,
            shards,
            sweep_every: self.resolved_sweep_every(),
            queries: self.queries.clone(),
        })
    }

    // ------------------------------------------------------------------
    // Restore finishers: rebuild a stack bit-exactly from snapshot bytes
    // (see [`crate::snapshot`]). Each finisher first validates the
    // builder's options exactly like its `build_*` twin, then checks the
    // snapshot's embedded configuration against what this builder would
    // assemble — restoring a checkpoint into a differently-configured
    // stack is a [`BuildError::Snapshot`] error, never silent drift.

    /// Restore an event-stream detector snapshot
    /// (the [`build_detector`](DpdBuilder::build_detector) twin).
    pub fn restore_detector(
        &self,
        bytes: &[u8],
    ) -> Result<StreamingDpd<i64, EventMetric>, BuildError> {
        let expected = self.build_detector()?.config();
        let restored = StreamingDpd::<i64, EventMetric>::restore(bytes)?;
        if restored.config() != expected {
            return Err(BuildError::Snapshot(SnapshotError::ConfigMismatch {
                what: "detector configuration",
            }));
        }
        Ok(restored)
    }

    /// Restore a magnitude-stream detector snapshot
    /// (the [`build_magnitude_detector`](DpdBuilder::build_magnitude_detector) twin).
    pub fn restore_magnitude_detector(
        &self,
        bytes: &[u8],
    ) -> Result<StreamingDpd<f64, L1Metric>, BuildError> {
        let expected = self.build_magnitude_detector()?.config();
        let restored = StreamingDpd::<f64, L1Metric>::restore(bytes)?;
        if restored.config() != expected {
            return Err(BuildError::Snapshot(SnapshotError::ConfigMismatch {
                what: "magnitude detector configuration",
            }));
        }
        Ok(restored)
    }

    /// Restore a multi-scale bank snapshot
    /// (the [`build_multi_scale`](DpdBuilder::build_multi_scale) twin).
    pub fn restore_multi_scale(&self, bytes: &[u8]) -> Result<MultiScaleDpd, BuildError> {
        let expected = self.build_multi_scale()?;
        let restored = MultiScaleDpd::restore(bytes)?;
        let windows = |bank: &MultiScaleDpd| -> Vec<usize> {
            bank.scales().iter().map(|d| d.window()).collect()
        };
        if windows(&restored) != windows(&expected) {
            return Err(BuildError::Snapshot(SnapshotError::ConfigMismatch {
                what: "multi-scale window set",
            }));
        }
        Ok(restored)
    }

    /// Restore a paper-interface detector snapshot
    /// (the [`build_capi`](DpdBuilder::build_capi) twin).
    pub fn restore_capi(&self, bytes: &[u8]) -> Result<Dpd, BuildError> {
        let expected = self.build_capi()?.inner().config();
        let restored = Dpd::restore(bytes)?;
        if restored.inner().config() != expected {
            return Err(BuildError::Snapshot(SnapshotError::ConfigMismatch {
                what: "detector configuration",
            }));
        }
        Ok(restored)
    }

    /// Restore a detector + forecaster snapshot
    /// (the [`build_forecasting`](DpdBuilder::build_forecasting) twin).
    pub fn restore_forecasting(&self, bytes: &[u8]) -> Result<ForecastingDpd, BuildError> {
        let expected = self.build_forecasting()?;
        let restored = ForecastingDpd::restore(bytes)?;
        if restored.dpd().config() != expected.dpd().config() {
            return Err(BuildError::Snapshot(SnapshotError::ConfigMismatch {
                what: "detector configuration",
            }));
        }
        if restored.predictor().config() != expected.predictor().config() {
            return Err(BuildError::Snapshot(SnapshotError::ConfigMismatch {
                what: "forecaster configuration",
            }));
        }
        Ok(restored)
    }

    /// Restore a keyed stream-table snapshot
    /// (the [`build_table`](DpdBuilder::build_table) twin).
    pub fn restore_table(&self, bytes: &[u8]) -> Result<StreamTable, BuildError> {
        let expected = self.table_config()?;
        let restored = StreamTable::restore(bytes)?;
        if *restored.config() != expected {
            return Err(BuildError::Snapshot(SnapshotError::ConfigMismatch {
                what: "table configuration",
            }));
        }
        if restored.query_specs() != self.queries.as_slice() {
            return Err(BuildError::Snapshot(SnapshotError::ConfigMismatch {
                what: "standing queries",
            }));
        }
        Ok(restored)
    }
}

/// The stack a [`DpdBuilder::build`] call assembled. The size spread
/// between variants is fine: exactly one `Stack` exists per pipeline, so
/// boxing the large variant would only add an indirection to the hot
/// push path.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
enum Stack {
    Streaming(StreamingDpd<i64, EventMetric>),
    MultiScale(MultiScaleDpd),
    Forecasting(ForecastingDpd),
}

/// A single-stream detector stack behind the uniform [`Detector`] push
/// surface, reporting through one [`EventSink`].
///
/// Built by [`DpdBuilder::build`]; the stack is whichever of today's
/// detector objects the builder options selected, and the typed accessors
/// ([`DpdPipeline::streaming`], [`DpdPipeline::multi_scale`],
/// [`DpdPipeline::forecasting`]) expose it for stack-specific statistics.
#[derive(Debug, Clone)]
pub struct DpdPipeline<S: EventSink> {
    stack: Stack,
    sink: S,
    stream: StreamId,
}

impl<S: EventSink> Detector for DpdPipeline<S> {
    fn push(&mut self, sample: i64) {
        match &mut self.stack {
            Stack::Streaming(dpd) => {
                let e = dpd.push(sample);
                if e != SegmentEvent::None {
                    self.sink.on_event(self.stream, &DpdEvent::Segment(e));
                }
            }
            Stack::MultiScale(bank) => {
                for (window, event) in bank.push(sample).events {
                    self.sink
                        .on_event(self.stream, &DpdEvent::Scale { window, event });
                }
            }
            Stack::Forecasting(f) => {
                let (e, ob) = f.push(sample);
                if e != SegmentEvent::None {
                    self.sink.on_event(self.stream, &DpdEvent::Segment(e));
                }
                if ob.invalidated {
                    self.sink.on_event(
                        self.stream,
                        &DpdEvent::ForecastInvalidated {
                            dropped: ob.dropped,
                        },
                    );
                }
                if let Some(s) = ob.scored {
                    self.sink.on_event(
                        self.stream,
                        &DpdEvent::ForecastScored {
                            predicted: s.predicted,
                            actual: s.actual,
                            hit: s.hit,
                        },
                    );
                }
                if let Some((position, value)) = ob.issued {
                    self.sink
                        .on_event(self.stream, &DpdEvent::ForecastIssued { position, value });
                }
            }
        }
    }

    /// Forwards to the stack's own batch-ingestion path where one exists
    /// (`StreamingDpd::push_slice` / `MultiScaleDpd::push_slice`, which
    /// produce exactly the per-sample event sequence); the forecasting
    /// stack is inherently per-sample (the predictor must observe every
    /// sample/event pair) and falls back to the loop.
    fn push_slice(&mut self, samples: &[i64]) {
        match &mut self.stack {
            Stack::Streaming(dpd) => {
                for e in dpd.push_slice(samples) {
                    self.sink.on_event(self.stream, &DpdEvent::Segment(e));
                }
            }
            Stack::MultiScale(bank) => {
                for (window, event) in bank.push_slice(samples) {
                    self.sink
                        .on_event(self.stream, &DpdEvent::Scale { window, event });
                }
            }
            Stack::Forecasting(_) => {
                for &s in samples {
                    self.push(s);
                }
            }
        }
    }
}

impl<S: EventSink> DpdPipeline<S> {
    /// The stream tag on emitted events.
    pub fn stream_id(&self) -> StreamId {
        self.stream
    }

    /// Distinct periodicities detected so far, ascending — the union over
    /// scales for a multi-scale stack (paper Table 2 cell).
    pub fn detected_periods(&self) -> Vec<usize> {
        match &self.stack {
            Stack::Streaming(d) => d.stats().detected_periods(),
            Stack::MultiScale(bank) => bank.detected_periods(),
            Stack::Forecasting(f) => f.dpd().stats().detected_periods(),
        }
    }

    /// The currently locked periodicity, if any (largest-window lock for a
    /// multi-scale stack).
    pub fn locked_period(&self) -> Option<usize> {
        match &self.stack {
            Stack::Streaming(d) => d.locked_period(),
            Stack::MultiScale(bank) => bank
                .scales()
                .iter()
                .filter_map(|d| d.locked_period().map(|p| (d.window(), p)))
                .max_by_key(|&(window, _)| window)
                .map(|(_, period)| period),
            Stack::Forecasting(f) => f.dpd().locked_period(),
        }
    }

    /// Materialize the forecast for the next `h` positions (forecasting
    /// stacks only; `None` otherwise, or before locked-and-primed).
    pub fn forecast(&mut self, h: usize) -> Option<Forecast<'_>> {
        match &mut self.stack {
            Stack::Forecasting(f) => f.forecast(h),
            _ => None,
        }
    }

    /// The plain streaming detector, when that is the assembled stack.
    pub fn streaming(&self) -> Option<&StreamingDpd<i64, EventMetric>> {
        match &self.stack {
            Stack::Streaming(d) => Some(d),
            _ => None,
        }
    }

    /// The multi-scale bank, when that is the assembled stack.
    pub fn multi_scale(&self) -> Option<&MultiScaleDpd> {
        match &self.stack {
            Stack::MultiScale(bank) => Some(bank),
            _ => None,
        }
    }

    /// The forecasting bundle, when that is the assembled stack.
    pub fn forecasting(&self) -> Option<&ForecastingDpd> {
        match &self.stack {
            Stack::Forecasting(f) => Some(f),
            _ => None,
        }
    }

    /// The event sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the event sink (e.g. to drain a collected `Vec`).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Tear down the pipeline, returning the sink.
    pub fn into_sink(self) -> S {
        self.sink
    }
}

/// A keyed multi-stream detector table behind one [`EventSink`].
///
/// Built by [`DpdBuilder::build_keyed`]. Maintains the global sample clock
/// itself (every ingested batch advances it) and paces idle-stream sweeps
/// by the builder's [`sweep_every`](DpdBuilder::sweep_every) — the same
/// semantics as the sharded service's deterministic inline mode, so a
/// `KeyedDpd` is the in-process reference for any shard count.
///
/// # Examples
/// ```
/// use dpd_core::pipeline::{DpdBuilder, DpdEvent};
/// use dpd_core::shard::StreamId;
///
/// let mut keyed = DpdBuilder::new().window(8).keyed().build_keyed(Vec::new()).unwrap();
/// for round in 0..20i64 {
///     for s in 0..3u64 {
///         let chunk: Vec<i64> = (0..4).map(|i| (round * 4 + i) % (s as i64 + 2)).collect();
///         keyed.ingest(StreamId(s), &chunk);
///     }
/// }
/// keyed.close_all();
/// let events = keyed.into_sink();
/// assert!(events
///     .iter()
///     .any(|(s, e)| *s == StreamId(0) && matches!(e, DpdEvent::Closed { .. })));
/// ```
#[derive(Debug)]
pub struct KeyedDpd<S: EventSink> {
    table: StreamTable,
    sink: S,
    scratch: Vec<MultiStreamEvent>,
    clock: u64,
    since_sweep: u64,
    sweep_every: u64,
}

impl<S: EventSink> KeyedDpd<S> {
    /// Ingest one batch of samples for one stream.
    pub fn ingest(&mut self, stream: StreamId, samples: &[i64]) {
        self.scratch.clear();
        self.table
            .ingest(self.clock, stream, samples, &mut self.scratch);
        self.clock += samples.len() as u64;
        self.since_sweep += samples.len() as u64;
        if self.sweep_every > 0 && self.since_sweep >= self.sweep_every {
            self.table.sweep(self.clock);
            self.since_sweep = 0;
        }
        self.flush_scratch();
    }

    /// Explicitly close one stream (final flush event); returns `false`
    /// when the stream is not live.
    pub fn close(&mut self, stream: StreamId) -> bool {
        self.scratch.clear();
        let closed = self.table.close(self.clock, stream, &mut self.scratch);
        self.flush_scratch();
        closed
    }

    /// Close every live stream, ascending by id.
    pub fn close_all(&mut self) {
        self.scratch.clear();
        self.table.close_all(self.clock, &mut self.scratch);
        self.flush_scratch();
    }

    /// Sweep idle streams now; returns the number evicted.
    pub fn sweep(&mut self) -> usize {
        self.since_sweep = 0;
        self.table.sweep(self.clock)
    }

    /// Materialize the forecast for the next `h` values of one stream
    /// (forecasting tables only; see
    /// [`StreamTable::forecast`]).
    pub fn forecast(&mut self, stream: StreamId, h: usize) -> Option<Forecast<'_>> {
        self.table.forecast(stream, h)
    }

    /// The global sample clock (samples ingested across all streams).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The underlying table (per-stream statistics, rollups, lifecycle
    /// counters).
    pub fn table(&self) -> &StreamTable {
        &self.table
    }

    /// Move every pending standing-query delta into `out` (see
    /// [`StreamTable::drain_query_deltas`]).
    pub fn drain_query_deltas(&mut self, out: &mut Vec<crate::query::QueryDelta>) {
        self.table.drain_query_deltas(out);
    }

    /// The event sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the event sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Tear down the pipeline, returning the sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    fn flush_scratch(&mut self) {
        for e in &self.scratch {
            let (stream, event) = DpdEvent::from_multi_stream(e);
            self.sink.on_event(stream, &event);
        }
        self.scratch.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic(period: i64, len: usize) -> Vec<i64> {
        (0..len as i64).map(|i| i % period).collect()
    }

    #[test]
    fn plain_pipeline_segments() {
        let mut pipe = DpdBuilder::new().window(8).build(Vec::new()).unwrap();
        pipe.push_slice(&periodic(3, 60));
        assert_eq!(pipe.detected_periods(), vec![3]);
        assert_eq!(pipe.locked_period(), Some(3));
        let events = pipe.into_sink();
        assert!(events.iter().all(|(s, _)| *s == StreamId(0)));
        assert!(events
            .iter()
            .any(|(_, e)| matches!(e, DpdEvent::Segment(SegmentEvent::PeriodStart { .. }))));
    }

    #[test]
    fn multi_scale_pipeline_reports_scales() {
        let mut outer: Vec<i64> = Vec::new();
        for _ in 0..8 {
            outer.extend([1i64, 2, 3, 4]);
        }
        outer.extend(101..109);
        let data: Vec<i64> = (0..400).map(|i| outer[i % 40]).collect();
        let mut pipe = DpdBuilder::new()
            .scales(&[8, 128])
            .build(Vec::new())
            .unwrap();
        pipe.push_slice(&data);
        assert_eq!(pipe.detected_periods(), vec![4, 40]);
        assert!(pipe.multi_scale().is_some());
        let windows: std::collections::BTreeSet<usize> = pipe
            .sink()
            .iter()
            .filter_map(|(_, e)| match e {
                DpdEvent::Scale { window, .. } => Some(*window),
                _ => None,
            })
            .collect();
        assert!(windows.contains(&8) && windows.contains(&128));
    }

    #[test]
    fn forecasting_pipeline_emits_full_lifecycle() {
        let mut data = periodic(3, 60);
        data.extend((0..80).map(|i| [10i64, 20, 30, 40, 50][i % 5]));
        let mut pipe = DpdBuilder::new()
            .window(8)
            .forecast(2)
            .build(Vec::new())
            .unwrap();
        pipe.push_slice(&data);
        let events = pipe.into_sink();
        let mut issued = 0u64;
        let mut scored = 0u64;
        let mut invalidated = 0u64;
        for (_, e) in &events {
            match e {
                DpdEvent::ForecastIssued { .. } => issued += 1,
                DpdEvent::ForecastScored { hit, .. } => {
                    assert!(hit, "exactly periodic phases must score hits");
                    scored += 1;
                }
                DpdEvent::ForecastInvalidated { .. } => invalidated += 1,
                _ => {}
            }
        }
        assert!(issued > 0 && scored > 0 && invalidated >= 1);
        assert!(issued >= scored, "scoring lags issuance");
    }

    #[test]
    fn forecast_issuance_matches_predictor_bookkeeping() {
        let mut pipe = DpdBuilder::new()
            .window(8)
            .forecast(3)
            .build(Vec::new())
            .unwrap();
        pipe.push_slice(&periodic(4, 100));
        let stats = pipe.forecasting().unwrap().predictor().stats();
        let issued = pipe
            .sink()
            .iter()
            .filter(|(_, e)| matches!(e, DpdEvent::ForecastIssued { .. }))
            .count() as u64;
        let scored = pipe
            .sink()
            .iter()
            .filter(|(_, e)| matches!(e, DpdEvent::ForecastScored { .. }))
            .count() as u64;
        assert_eq!(issued, stats.issued);
        assert_eq!(scored, stats.checked);
    }

    #[test]
    fn keyed_pipeline_matches_raw_table() {
        let builder = DpdBuilder::new().window(8).evict_after(64);
        let mut keyed = builder.build_keyed(Vec::new()).unwrap();
        let mut table = builder.build_table().unwrap();
        let mut raw = Vec::new();
        let mut seq = 0u64;
        for round in 0..25i64 {
            for s in 0..4u64 {
                let chunk: Vec<i64> = (0..6).map(|i| (round * 6 + i) % (s as i64 + 2)).collect();
                keyed.ingest(StreamId(s), &chunk);
                table.ingest(seq, StreamId(s), &chunk, &mut raw);
                seq += 6;
            }
        }
        keyed.close_all();
        table.close_all(seq, &mut raw);
        let expected: Vec<(StreamId, DpdEvent)> =
            raw.iter().map(DpdEvent::from_multi_stream).collect();
        assert_eq!(keyed.sink(), &expected);
        assert_eq!(keyed.clock(), seq);
    }

    #[test]
    fn closure_and_unit_sinks() {
        let mut count = 0usize;
        let mut pipe = DpdBuilder::new()
            .window(8)
            .build(|_s: StreamId, _e: &DpdEvent| count += 1)
            .unwrap();
        pipe.push_slice(&periodic(3, 40));
        drop(pipe);
        assert!(count > 0);

        let mut silent = DpdBuilder::new().window(8).build(()).unwrap();
        silent.push_slice(&periodic(3, 40));
        assert_eq!(silent.locked_period(), Some(3));
    }

    /// Satellite: every documented incoherent option combination returns
    /// its precise `BuildError` variant — none of them panic.
    #[test]
    fn incoherent_combos_error_precisely() {
        use BuildError as E;
        let b = DpdBuilder::new;
        // (case, got, expected) triples, table-driven.
        let cases: Vec<(&str, Option<E>, E)> = vec![
            (
                "zero window",
                b().window(0).build_detector().err(),
                E::Detector(DpdError::InvalidWindow(0)),
            ),
            (
                "m_max beyond window",
                b().window(8).m_max(9).build_detector().err(),
                E::Detector(DpdError::InvalidMaxDelay {
                    m_max: 9,
                    window: 8,
                }),
            ),
            (
                "zero m_max",
                b().window(8).m_max(0).build_detector().err(),
                E::Detector(DpdError::InvalidMaxDelay {
                    m_max: 0,
                    window: 8,
                }),
            ),
            (
                "zero forecast horizon",
                b().forecast(0).build_forecasting().err(),
                E::Detector(DpdError::InvalidHorizon(0)),
            ),
            (
                "empty scales",
                b().scales(&[]).build_multi_scale().err(),
                E::EmptyScales,
            ),
            (
                "zero scale window",
                b().scales(&[8, 0]).build_multi_scale().err(),
                E::Detector(DpdError::InvalidWindow(0)),
            ),
            (
                "forecast horizon on a multi-scale bank",
                b().scales(&[8]).forecast(2).build(()).err(),
                E::ScalesWithForecast,
            ),
            (
                "scales on a keyed table",
                b().scales(&[8]).keyed().build_table().err(),
                E::ScalesWithKeyed,
            ),
            (
                "scales on the sharded service",
                b().scales(&[8]).shards(2).service_spec().err(),
                E::ScalesWithKeyed,
            ),
            (
                "scales on a plain detector",
                b().scales(&[8]).build_detector().err(),
                E::ScalesOnPlainDetector,
            ),
            (
                "multi-scale finisher without scales",
                b().build_multi_scale().err(),
                E::ScalesRequired,
            ),
            (
                "forecast on a plain detector finisher",
                b().forecast(2).build_detector().err(),
                E::ForecastOnPlainDetector,
            ),
            (
                "forecasting finisher without a horizon",
                b().build_forecasting().err(),
                E::ForecastRequired,
            ),
            (
                "magnitudes with scales",
                b().magnitudes().scales(&[8]).build(()).err(),
                E::MagnitudesWithScales,
            ),
            (
                "magnitudes with forecasting",
                b().magnitudes().forecast(2).build_forecasting().err(),
                E::MagnitudesWithForecast,
            ),
            (
                "magnitudes on a keyed table",
                b().magnitudes().keyed().build_table().err(),
                E::MagnitudesWithKeyed,
            ),
            (
                "magnitudes on the sharded service",
                b().magnitudes().shards(2).service_spec().err(),
                E::MagnitudesWithKeyed,
            ),
            (
                "magnitudes on the event pipeline",
                b().magnitudes().build(()).err(),
                E::MagnitudesOnEventPipeline,
            ),
            (
                "magnitude finisher without magnitudes()",
                b().build_magnitude_detector().err(),
                E::EventsOnMagnitudePipeline,
            ),
            (
                "keyed option on a single-stream finisher",
                b().keyed().build_detector().err(),
                E::KeyedOnSingleStream,
            ),
            (
                "eviction on a single-stream finisher",
                b().evict_after(64).build(()).err(),
                E::KeyedOnSingleStream,
            ),
            (
                "shards on a single-stream finisher",
                b().shards(4).build_detector().err(),
                E::ShardsOnSingleStream,
            ),
            (
                "shards on the in-process table",
                b().shards(4).keyed().build_table().err(),
                E::ShardsOnTable,
            ),
            (
                "service without shards",
                b().keyed().service_spec().err(),
                E::ShardsRequired,
            ),
            (
                "sweep cadence without a keyed table",
                b().sweep_every(128).build_detector().err(),
                E::SweepWithoutKeyed,
            ),
            (
                "memory budget on a single-stream finisher",
                b().memory_budget(1 << 20).build_detector().err(),
                E::KeyedOnSingleStream,
            ),
            (
                "cold summaries on a single-stream finisher",
                b().cold_summary(64).build(()).err(),
                E::KeyedOnSingleStream,
            ),
            (
                "memory budget below one hot stream",
                b().window(8).memory_budget(1).build_table().err(),
                E::MemoryBudgetTooSmall,
            ),
            (
                "cold summaries with nothing demoting",
                b().window(8).cold_summary(64).build_table().err(),
                E::ColdSummaryWithoutEviction,
            ),
            (
                "standing query with an empty period range",
                b().window(8)
                    .standing_query(QuerySpec::PeriodInRange { lo: 9, hi: 3 })
                    .build_table()
                    .err(),
                E::InvalidQuerySpec(QuerySpec::PeriodInRange { lo: 9, hi: 3 }),
            ),
            (
                "standing query with a zero loss window",
                b().window(8)
                    .standing_query(QuerySpec::LockLostWithin { window: 0 })
                    .build_table()
                    .err(),
                E::InvalidQuerySpec(QuerySpec::LockLostWithin { window: 0 }),
            ),
            (
                "standing query with an out-of-range threshold",
                b().window(8)
                    .forecast(2)
                    .standing_query(QuerySpec::ConfidenceAtLeast { threshold: 1.5 })
                    .build_table()
                    .err(),
                E::InvalidQuerySpec(QuerySpec::ConfidenceAtLeast { threshold: 1.5 }),
            ),
            (
                "confidence query without forecasting",
                b().window(8)
                    .standing_query(QuerySpec::ConfidenceAtLeast { threshold: 0.5 })
                    .build_table()
                    .err(),
                E::ConfidenceQueryWithoutForecast,
            ),
            (
                "standing query on a single-stream finisher",
                b().window(8)
                    .standing_query(QuerySpec::PeriodJoin { tolerance: 0 })
                    .build_detector()
                    .err(),
                E::QueriesOnSingleStream,
            ),
        ];
        for (case, got, expected) in cases {
            assert_eq!(got, Some(expected), "case: {case}");
        }
    }

    /// Satellite: every `BuildError` variant renders a lowercase,
    /// period-free message.
    #[test]
    fn every_build_error_variant_renders() {
        let variants = vec![
            BuildError::Detector(DpdError::InvalidWindow(0)),
            BuildError::EmptyScales,
            BuildError::ScalesWithForecast,
            BuildError::ScalesWithKeyed,
            BuildError::ScalesOnPlainDetector,
            BuildError::ScalesRequired,
            BuildError::ForecastOnPlainDetector,
            BuildError::ForecastRequired,
            BuildError::MagnitudesWithScales,
            BuildError::MagnitudesWithForecast,
            BuildError::MagnitudesWithKeyed,
            BuildError::MagnitudesOnEventPipeline,
            BuildError::EventsOnMagnitudePipeline,
            BuildError::KeyedOnSingleStream,
            BuildError::ShardsOnSingleStream,
            BuildError::ShardsOnTable,
            BuildError::ShardsRequired,
            BuildError::SweepWithoutKeyed,
            BuildError::MemoryBudgetTooSmall,
            BuildError::ColdSummaryWithoutEviction,
            BuildError::InvalidQuerySpec(QuerySpec::PeriodInRange { lo: 9, hi: 3 }),
            BuildError::ConfidenceQueryWithoutForecast,
            BuildError::QueriesOnSingleStream,
            BuildError::Snapshot(SnapshotError::Truncated),
        ];
        for v in variants {
            let msg = v.to_string();
            assert!(!msg.is_empty(), "{v:?} renders empty");
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "{v:?} message must start lowercase: {msg:?}"
            );
            assert!(!msg.ends_with('.'), "{v:?} message ends with a period");
            // std::error::Error is wired up, with sources on wrappers.
            let err: &dyn std::error::Error = &v;
            if matches!(v, BuildError::Detector(_) | BuildError::Snapshot(_)) {
                assert!(err.source().is_some());
            } else {
                assert!(err.source().is_none());
            }
        }
    }

    #[test]
    fn magnitude_detector_matches_magnitude_defaults() {
        let config = DpdBuilder::new()
            .window(24)
            .magnitudes()
            .detector_config()
            .unwrap();
        assert_eq!(config.confirm, 4);
        assert_eq!(config.lose, 2);
        assert_eq!(config.resync_interval, 8192);
        // Overrides win regardless of call order.
        let tuned = DpdBuilder::new()
            .confirm(7)
            .magnitudes()
            .window(24)
            .detector_config()
            .unwrap();
        assert_eq!(tuned.confirm, 7);
        assert_eq!(tuned.lose, 2);
        let mut dpd = DpdBuilder::new()
            .window(24)
            .magnitudes()
            .build_magnitude_detector()
            .unwrap();
        for i in 0..400usize {
            dpd.push([0.0, 2.0, 8.0, 16.0, 8.0, 2.0][i % 6] + ((i * 7919) % 11) as f64 * 0.02);
        }
        assert_eq!(dpd.locked_period(), Some(6));
    }

    #[test]
    fn detector_option_round_trips_configs() {
        let config = StreamingConfig {
            window: 48,
            m_max: 32,
            policy: MinimaPolicy::relative(0.2),
            confirm: 3,
            lose: 5,
            resync_interval: 1024,
        };
        let round = DpdBuilder::new()
            .detector(config)
            .detector_config()
            .unwrap();
        assert_eq!(round, config);
    }

    #[test]
    fn service_spec_carries_table_and_sweep_defaults() {
        let spec = DpdBuilder::new()
            .window(16)
            .evict_after(100)
            .forecast(2)
            .shards(4)
            .service_spec()
            .unwrap();
        assert_eq!(spec.shards, 4);
        assert_eq!(spec.sweep_every, 400, "defaults to four watermarks");
        assert_eq!(spec.table.evict_after, 100);
        assert_eq!(spec.table.forecast_horizon, 2);
        assert_eq!(spec.table.detector.window, 16);
        let explicit = DpdBuilder::new()
            .evict_after(100)
            .sweep_every(50)
            .shards(0)
            .service_spec()
            .unwrap();
        assert_eq!(explicit.sweep_every, 50);
        assert_eq!(explicit.shards, 0);
    }

    #[test]
    fn stream_id_tags_pipeline_events() {
        let mut pipe = DpdBuilder::new()
            .window(8)
            .stream_id(StreamId(42))
            .build(Vec::new())
            .unwrap();
        pipe.push_slice(&periodic(3, 40));
        assert_eq!(pipe.stream_id(), StreamId(42));
        assert!(!pipe.sink().is_empty());
        assert!(pipe.sink().iter().all(|(s, _)| *s == StreamId(42)));
    }
}
